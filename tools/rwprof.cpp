// rwprof: run demo workloads on the virtual platform under a PerfSession,
// print the PMU counter table and sampled profile, and write deterministic
// exports (PERF_<name>.json, Chrome trace JSON, folded stacks, CSV).
#include <iostream>
#include <string>
#include <vector>

#include "perf/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::perf::parse_prof_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::perf::run_prof(opts.value(), std::cout).exit_code;
}
