// Shared command-line machinery for the rw tool CLIs (rwlint, rwprof,
// rwfault, rwert).
//
// Before this header each tool hand-rolled the same flags with drifting
// spellings and emitted its own top-level JSON schema. Every CLI now
// parses the common surface through parse_common_flag() and wraps its
// machine output in one envelope (schema "rw-tool-1") whose header names
// the tool and the seed, so downstream tooling can dispatch on a single
// document shape. The pre-envelope per-tool documents remain available
// behind --legacy-json for one release.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace rw::cli {

/// Flags every tool understands. Tool-specific option structs inherit
/// from this so the field names stay what the drivers always used.
struct CommonOptions {
  bool list = false;         // --list: print the registry and exit
  bool json_stdout = false;  // --json: rw-tool-1 envelope on stdout
  bool legacy_json = false;  // --legacy-json: pre-envelope tool schema
  bool write_files = true;   // cleared by --no-files
  std::uint64_t seed = 1;    // --seed S
  std::string out_dir = ".";  // --out-dir DIR (also --out=DIR)
  /// --threads N: simulation-kernel tile partitions. 1 (the default) is
  /// the sequential reference kernel; N > 1 runs the conservative tiled
  /// engine in parallel mode. Results are bit-identical for every value —
  /// the flag only changes wall-clock time.
  std::uint32_t threads = 1;
};

/// Numeric value following flag `args[i]`; advances `i` past it.
inline Result<std::uint64_t> arg_u64(const std::vector<std::string>& args,
                                     std::size_t& i,
                                     const std::string& flag) {
  if (i + 1 >= args.size()) return make_error(flag + " requires a value");
  const std::string& v = args[++i];
  std::uint64_t out = 0;
  for (const char c : v) {
    if (c < '0' || c > '9')
      return make_error(flag + " requires a number, got '" + v + "'");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v.empty()) return make_error(flag + " requires a number");
  return out;
}

/// Try to consume `args[i]` as one of the shared flags. Returns true when
/// it was one (i may have advanced past a value), false when the flag is
/// tool-specific and the caller should handle it.
inline Result<bool> parse_common_flag(const std::vector<std::string>& args,
                                      std::size_t& i, CommonOptions& opts) {
  const std::string& a = args[i];
  if (a == "--list") {
    opts.list = true;
  } else if (a == "--json") {
    opts.json_stdout = true;
  } else if (a == "--legacy-json") {
    opts.json_stdout = true;
    opts.legacy_json = true;
  } else if (a == "--no-files") {
    opts.write_files = false;
  } else if (a == "--seed") {
    opts.seed = RW_TRY(arg_u64(args, i, a));
  } else if (a == "--out-dir") {
    if (i + 1 >= args.size()) return make_error("--out-dir requires a value");
    opts.out_dir = args[++i];
    if (opts.out_dir.empty()) opts.out_dir = ".";
  } else if (a.rfind("--out=", 0) == 0) {
    opts.out_dir = a.substr(6);
    if (opts.out_dir.empty()) opts.out_dir = ".";
  } else if (a == "--threads") {
    const std::uint64_t t = RW_TRY(arg_u64(args, i, a));
    if (t == 0) return make_error("--threads must be at least 1");
    opts.threads = static_cast<std::uint32_t>(t);
  } else {
    return false;
  }
  return true;
}

/// The usage fragment for the shared flags, for per-tool --help text.
inline const char* common_usage() {
  return "[--list] [--json] [--legacy-json] [--no-files] [--seed S]"
         " [--out-dir DIR] [--threads N]";
}

/// Wrap a pre-rendered legacy tool document in the rw-tool-1 envelope:
/// {schema, tool, seed, payload}. The payload keeps its own (legacy)
/// schema field, so consumers of the old format can migrate by reading
/// `.payload`. Deterministic: pure function of its inputs.
inline std::string envelope(std::string_view tool, std::uint64_t seed,
                            std::string legacy_doc) {
  // Drop the trailing newline tool docs carry, then re-indent the payload
  // one level so the envelope stays readable.
  while (!legacy_doc.empty() &&
         (legacy_doc.back() == '\n' || legacy_doc.back() == ' '))
    legacy_doc.pop_back();
  std::string indented;
  indented.reserve(legacy_doc.size());
  for (const char c : legacy_doc) {
    indented += c;
    if (c == '\n') indented += "  ";
  }
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-tool-1");
  w.key("tool").value(tool);
  w.key("seed").value(seed);
  w.key("payload").raw(indented);
  w.end_object();
  return w.str();
}

}  // namespace rw::cli
