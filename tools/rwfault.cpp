// rwfault: run the E14 fault-injection/recovery scenario per recovery
// policy, print the goodput/recovery summary table, and write the
// deterministic FAULT_<policy>.json fault/recovery timeline documents.
#include <iostream>
#include <string>
#include <vector>

#include "fault/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::fault::parse_fault_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::fault::run_fault(opts.value(), std::cout).exit_code;
}
