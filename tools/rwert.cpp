// rwert: drive the multi-tenant ert job service from the command line —
// open N tenant sessions, submit seeded template jobs, print the
// per-tenant QoS table, and write ERT_service.json / ERT_trace.json.
#include <iostream>
#include <string>
#include <vector>

#include "ert/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::ert::parse_ert_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::ert::run_ert(opts.value(), std::cout).exit_code;
}
