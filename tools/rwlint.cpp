// rwlint: run the rw::lint static-analysis passes over the seeded-defect
// corpus (or a subset), print a diagnostic table per program, write
// LINT_<name>.json, and exit nonzero iff an error-severity finding exists.
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::lint::parse_driver_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::lint::run_driver(opts.value(), std::cout).exit_code;
}
