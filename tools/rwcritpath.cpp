// rwcritpath: trace a corpus workload on the virtual platform, extract and
// attribute its critical path, sweep what-if edits against re-simulated
// ground truth, run the remap adviser, and write the deterministic
// CRITPATH_<workload>.json documents.
#include <iostream>
#include <string>
#include <vector>

#include "critpath/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::critpath::parse_crit_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::critpath::run_critpath(opts.value(), std::cout).exit_code;
}
