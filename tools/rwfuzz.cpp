// rwfuzz: invariant-checked scenario fuzzing. Sweep generated cases
// (platform x workload x fault plan x kernel policy) through the global
// invariant oracle, auto-shrink any failure to a 1-minimal reproducer,
// and account coverage over the family x kind x policy x exec matrix.
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto opts = rw::fuzz::parse_fuzz_args(args);
  if (!opts.ok()) {
    std::cerr << opts.error().to_string() << "\n";
    return 2;
  }
  return rw::fuzz::run_fuzz(opts.value(), std::cout).exit_code;
}
