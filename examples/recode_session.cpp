// A designer-controlled recoding session (Figure 3 of the paper as
// running code): open a sequential C reference model, interactively apply
// transformations — loop split, vector split, variable localization,
// channel insertion, pointer recoding — and watch the source evolve while
// the interpreter proves every step preserved the program's meaning.
#include <cstdio>

#include "recoder/recoder.hpp"
#include "recoder/shared_report.hpp"

namespace {

const char* kReferenceModel = R"(
int input[16];
int stage[16];
int output[16];

int main() {
  int t;
  int *p = &input[0];
  for (int i = 0; i < 16; i = i + 1) {
    *(p + i) = i * 7 % 13;
  }
  for (int i = 0; i < 16; i = i + 1) {
    t = input[i] * 3;
    stage[i] = t + 1;
  }
  for (int i = 0; i < 16; i = i + 1) {
    output[i] = stage[i] * stage[i];
  }
  int checksum = 0;
  for (int i = 0; i < 16; i = i + 1) {
    checksum = checksum * 31 + output[i];
  }
  return checksum % 100000;
}
)";

void banner(const char* what) { std::printf("\n===== %s =====\n", what); }

}  // namespace

int main() {
  using namespace rw::recoder;

  auto session_r = RecoderSession::from_source(kReferenceModel);
  if (!session_r.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 session_r.error().to_string().c_str());
    return 1;
  }
  RecoderSession session = std::move(session_r).take();

  const auto reference = session.execute();
  std::printf("reference model result: %lld\n",
              static_cast<long long>(reference.value().return_value));

  // The "analyze shared data accesses" step: the recoder shows what each
  // array supports before the designer picks transformations.
  banner("shared-data access analysis");
  std::printf("%s",
              render_report(analyze_shared_accesses(
                                session.program(),
                                *session.program().find_function("main")))
                  .c_str());

  struct Step {
    const char* what;
    std::function<rw::Status()> run;
  };
  const std::vector<Step> steps{
      {"pointer recoding (*(p+i) -> input[i])",
       [&] { return session.cmd_pointer_to_index("main"); }},
      {"localize t into its loop",
       [&] { return session.cmd_localize("main", "t"); }},
      {"insert channel for stage[] (producer/consumer sync)",
       [&] { return session.cmd_insert_channel("main", "stage", 1); }},
      {"split the compute loop 4 ways (data parallelism)",
       [&] { return session.cmd_split_loop("main", 1, 4); }},
      {"split the fill loop 4 ways",
       [&] { return session.cmd_split_loop("main", 0, 4); }},
      {"split input[] to match the 4 partitions",
       [&] { return session.cmd_split_vector("main", "input", 4); }},
  };

  for (const auto& step : steps) {
    banner(step.what);
    const auto st = step.run();
    if (!st.ok()) {
      std::printf("REFUSED: %s\n", st.error().message.c_str());
      continue;
    }
    const auto check = session.execute();
    std::printf("ok — %zu source lines changed, semantics %s\n",
                session.journal().back().lines_changed,
                check.ok() && check.value().return_value ==
                                  reference.value().return_value
                    ? "preserved"
                    : "BROKEN");
  }

  banner("final parallel-shaped model");
  std::printf("%s", session.source().c_str());

  banner("session journal");
  for (const auto& e : session.journal()) {
    std::printf("  [%s] %-40s %s\n", e.ok ? "ok" : "--", e.command.c_str(),
                e.ok ? (std::to_string(e.lines_changed) + " lines").c_str()
                     : e.message.c_str());
  }
  std::printf(
      "\n%zu designer commands replaced %zu lines of manual editing\n",
      session.commands_applied(), session.total_lines_changed());
  return 0;
}
