// The HOPES flow (Figure 2 of the paper as running code): one CIC
// specification of an H.264-like encoder, two architecture information
// files (a Cell-like distributed-memory machine and an MPCore-like SMP),
// two generated programs — same outputs, different code and timing.
// This is the Sec. V retargetability demonstration.
#include <cstdio>

#include "cic/archfile.hpp"
#include "cic/model.hpp"
#include "cic/translator.hpp"
#include "common/table.hpp"

namespace {

rw::cic::CicProgram build_h264_like() {
  using namespace rw;
  cic::CicProgram p("h264enc");
  const auto cam = p.add_task("camera", 4'000, {}, {"y0", "y1"});
  p.set_period(cam, microseconds(800));
  const auto me0 = p.add_task("me0", 150'000, {"in"}, {"mv"});
  const auto me1 = p.add_task("me1", 150'000, {"in"}, {"mv"});
  const auto tq0 = p.add_task("tq0", 80'000, {"mv"}, {"coef"});
  const auto tq1 = p.add_task("tq1", 80'000, {"mv"}, {"coef"});
  const auto cabac = p.add_task("cabac", 110'000, {"c0", "c1"}, {});
  p.set_preferred_pe(me0, sim::PeClass::kDsp);
  p.set_preferred_pe(me1, sim::PeClass::kDsp);
  p.connect(cam, "y0", me0, "in", 16 * 1024);
  p.connect(cam, "y1", me1, "in", 16 * 1024);
  p.connect(me0, "mv", tq0, "mv", 4 * 1024);
  p.connect(me1, "mv", tq1, "mv", 4 * 1024);
  p.connect(tq0, "coef", cabac, "c0", 8 * 1024);
  p.connect(tq1, "coef", cabac, "c1", 8 * 1024);
  return p;
}

}  // namespace

int main() {
  using namespace rw;
  const cic::CicProgram app = build_h264_like();

  // Architecture information files — literally XML, as the paper says.
  const cic::ArchInfo cell = cic::ArchInfo::cell_like(6);
  const cic::ArchInfo smp = cic::ArchInfo::smp_like(4);
  std::printf("--- architecture file for '%s' ---\n%s\n", cell.name.c_str(),
              cic::arch_to_xml(cell).c_str());

  Table t({"target", "style", "makespan", "core util", "messages",
           "deadline misses"});
  std::string first_digest;
  bool digests_match = true;

  for (const auto* arch : {&cell, &smp}) {
    const auto mapping = cic::CicMapping::automatic(app, *arch);
    if (!mapping.ok()) {
      std::fprintf(stderr, "mapping failed: %s\n",
                   mapping.error().to_string().c_str());
      return 1;
    }
    auto target = cic::TargetProgram::translate(app, *arch, mapping.value());
    if (!target.ok()) {
      std::fprintf(stderr, "translate failed: %s\n",
                   target.error().to_string().c_str());
      return 1;
    }
    const auto r = target.value().run(30);

    // Digest of the sink outputs — must be identical across targets.
    std::string digest;
    for (const auto& [task, tokens] : r.sink_outputs)
      for (const auto v : tokens) digest += std::to_string(v % 9973) + ",";
    if (first_digest.empty()) {
      first_digest = digest;
    } else if (digest != first_digest) {
      digests_match = false;
    }

    t.add_row({arch->name, cic::memory_style_name(arch->style),
               format_time(r.makespan),
               Table::percent(r.mean_core_utilization),
               Table::num(r.messages), Table::num(r.deadline_misses)});
  }
  t.print("same CIC spec, two targets");

  std::printf("sink outputs identical across targets: %s\n",
              digests_match ? "YES (retargetability confirmed)"
                            : "NO (BUG!)");
  return digests_match ? 0 : 1;
}
