// Sec. III's car-radio streaming scenario: a CSDF filter chain driven by
// a periodic source and sink, executed both time-triggered and
// data-driven while execution times occasionally blow past their
// (deliberately unreliable) WCET estimates. Buffer capacities come from
// the back-pressure analysis.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"

int main() {
  using namespace rw;
  using namespace rw::dataflow;

  // The application: ADC -> channel decoder -> FIR -> audio post -> DAC.
  Graph g;
  const auto adc = g.add_actor("adc", 800, 0);
  const auto dec = g.add_actor("decoder", 22'000, 1);
  const auto fir = g.add_actor("fir", 18'000, 2);
  const auto post = g.add_actor("post", 9'000, 3);
  const auto dac = g.add_actor("dac", 800, 0);
  g.connect(adc, dec, 1, 1);
  g.connect(dec, fir, 1, 1);
  g.connect(fir, post, 1, 1);
  g.connect(post, dac, 1, 1);

  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.source_period = microseconds(100);  // 10 kHz sample rate
  cfg.iterations = 500;

  // Design time: prove a wait-free schedule exists and size the buffers.
  const auto sizing = compute_buffer_capacities(g, cfg);
  std::printf("buffer sizing (back-pressure analysis): wait-free=%s, "
              "capacities:", sizing.wait_free ? "yes" : "NO");
  for (const auto c : sizing.capacities) std::printf(" %zu", c);
  std::printf(" (%d rounds)\n\n", sizing.rounds);
  cfg.buffer_capacities = sizing.capacities;

  // Run both disciplines under increasing WCET-overrun probability.
  Table t({"overrun prob", "TT corruptions", "TT throughput", "DD corruptions",
           "DD src drops", "DD sink underruns", "DD throughput"});
  for (const double prob : {0.0, 0.1, 0.3, 0.5}) {
    auto make_acet = [prob](std::uint64_t seed) -> ActorAcet {
      auto rng = std::make_shared<Rng>(seed);
      return [rng, prob](const Actor& a, std::uint64_t, Cycles wcet) {
        if (a.name == "adc" || a.name == "dac") return wcet;
        return rng->next_bool(prob) ? wcet * 3 : wcet;
      };
    };
    ExecConfig tt_cfg = cfg;
    tt_cfg.acet = make_acet(42);
    const auto tt = run_time_triggered(g, tt_cfg);
    ExecConfig dd_cfg = cfg;
    dd_cfg.acet = make_acet(42);
    const auto dd = run_data_driven(g, dd_cfg);

    t.add_row({Table::percent(prob, 0), Table::num(tt.internal_corruptions()),
               Table::num(tt.sink_throughput_hz(), 0) + " Hz",
               Table::num(dd.internal_corruptions()),
               Table::num(dd.source_drops), Table::num(dd.sink_underruns),
               Table::num(dd.sink_throughput_hz(), 0) + " Hz"});
  }
  t.print("time-triggered vs data-driven under WCET overruns");

  std::printf("Note the Sec. III shape: the time-triggered executor "
              "corrupts data inside the\ngraph as soon as WCETs lie, while "
              "the data-driven one never does — overload\nsurfaces only "
              "as drops/underruns at the periodic boundary.\n");
  return 0;
}
