// Hunting a Heisenbug with the virtual platform (Sec. VII as a session).
//
// A two-core firmware loses counter updates. We (1) reproduce it
// deterministically, (2) show an intrusive single-core probe makes it
// vanish — the Heisenbug — and (3) pin it down non-intrusively with a
// watchpoint, the race detector, and a scripted system-level assertion.
#include <cstdio>

#include "vpdebug/debugger.hpp"
#include "vpdebug/race.hpp"
#include "vpdebug/replay.hpp"
#include "vpdebug/script.hpp"
#include "vpdebug/tracexport.hpp"
#include "vpdebug/victim.hpp"

int main() {
  using namespace rw;
  using namespace rw::vpdebug;

  auto cfg = sim::PlatformConfig::homogeneous(2, mhz(400));
  cfg.trace_enabled = true;

  RacyCounterConfig bug;
  bug.increments_per_core = 60;
  bug.seed = 7;

  // --- 1. the defect, reproduced twice: identical both times ---
  std::printf("== step 1: reproduce ==\n");
  for (int run = 0; run < 2; ++run) {
    sim::Platform p(cfg);
    const auto r = run_racy_counter(p, bug);
    std::printf("  run %d: expected %llu, observed %llu (%llu lost)\n",
                run, static_cast<unsigned long long>(r.expected),
                static_cast<unsigned long long>(r.observed),
                static_cast<unsigned long long>(r.lost_updates()));
  }

  // --- 2. the Heisenbug: an intrusive probe perturbs it ---
  std::printf("\n== step 2: try an intrusive (single-core-stall) probe ==\n");
  {
    RacyCounterConfig probed = bug;
    probed.probe_stall_ps = nanoseconds(700);
    sim::Platform p(cfg);
    const auto r = run_racy_counter(p, probed);
    std::printf("  with probe: observed %llu (%llu lost) — "
                "the defect %s\n",
                static_cast<unsigned long long>(r.observed),
                static_cast<unsigned long long>(r.lost_updates()),
                r.bug_manifested() ? "changed shape" : "disappeared!");
  }

  // --- 3. non-intrusive: watchpoint + race detector + scripted assert ---
  std::printf("\n== step 3: virtual-platform session ==\n");
  {
    sim::Platform p(cfg);
    Debugger dbg(p);
    RaceDetector races(p, racy_counter_addr(p), 8, microseconds(2));
    ScriptEngine script(dbg);

    // Arm everything from the script — no change to the firmware.
    script.execute_line("echo armed: watchpoint + assertion");
    script.execute_line("watch-mem 0x80000000 8 w");

    // Start the victim and stop at the first write to the counter.
    RacyCounterConfig once = bug;
    once.increments_per_core = 5;
    // (run_racy_counter drives the kernel itself, so for the interactive
    // session we spawn it and step manually through the debugger.)
    const auto result = [&] {
      // spawn only; the debugger drives execution
      sim::Platform& plat = p;
      const sim::Addr counter = racy_counter_addr(plat);
      const std::uint8_t zero[8] = {};
      plat.memory().poke(counter, zero);
      return counter;
    }();
    (void)result;

    script.execute_line("run");  // runs to completion of the empty spawn
    std::printf("%s", script.transcript().c_str());

    // Full run under the race detector.
    const auto r = run_racy_counter(p, once);
    std::printf("  race detector: %zu conflicting pairs over %llu "
                "accesses, first: %s\n",
                races.races().size(),
                static_cast<unsigned long long>(races.accesses_observed()),
                races.races().empty()
                    ? "-"
                    : races.races()[0].to_string().c_str());
    std::printf("  final state: observed %llu/%llu\n",
                static_cast<unsigned long long>(r.observed),
                static_cast<unsigned long long>(r.expected));

    // Keeping the overview: the trace as an ASCII timeline.
    std::printf("\n  execution overview (first 20us):\n%s",
                render_gantt(p.tracer().events(), p.core_count(), 0,
                             microseconds(20), 64)
                    .c_str());
  }

  // --- 4. the fix, verified, and replay-proof determinism ---
  std::printf("\n== step 4: fix with the hardware semaphore ==\n");
  {
    RacyCounterConfig fixed = bug;
    fixed.use_semaphore = true;
    sim::Platform p(cfg);
    RaceDetector races(p, racy_counter_addr(p), 8, microseconds(2));
    const auto r = run_racy_counter(p, fixed);
    std::printf("  fixed run: observed %llu/%llu, races flagged: %zu\n",
                static_cast<unsigned long long>(r.observed),
                static_cast<unsigned long long>(r.expected),
                races.races().size());
  }

  const auto replay = check_replay(cfg, [&](sim::Platform& p) {
    run_racy_counter(p, bug);
  });
  std::printf("\nreplay fingerprints: %016llx / %016llx -> %s\n",
              static_cast<unsigned long long>(replay.first),
              static_cast<unsigned long long>(replay.second),
              replay.deterministic() ? "deterministic" : "DIVERGED");
  return replay.deterministic() ? 0 : 1;
}
