// Quickstart: build a 4-core platform, run a 3-task CIC pipeline on it,
// and print what happened.
//
// This is the smallest end-to-end tour of the toolkit: CIC program
// (Sec. V model) -> automatic mapping -> simulated execution -> trace.
#include <cstdio>

#include "cic/archfile.hpp"
#include "cic/model.hpp"
#include "cic/translator.hpp"

int main() {
  using namespace rw;

  // 1. The application, written once, platform-independent: a periodic
  //    sensor feeding a filter feeding a logger.
  cic::CicProgram app("quickstart");
  const auto sensor = app.add_task("sensor", 2'000, {}, {"raw"});
  app.set_period(sensor, microseconds(200));
  const auto filter = app.add_task("filter", 30'000, {"in"}, {"clean"});
  const auto logger = app.add_task("logger", 5'000, {"data"}, {});
  app.connect(sensor, "raw", filter, "in", /*token_bytes=*/64);
  app.connect(filter, "clean", logger, "data", /*token_bytes=*/32);

  // 2. The platform, described separately (here: a built-in 4-core SMP;
  //    try ArchInfo::cell_like() — the program does not change).
  const cic::ArchInfo arch = cic::ArchInfo::smp_like(4);

  // 3. Map and translate.
  const auto mapping = cic::CicMapping::automatic(app, arch);
  if (!mapping.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 mapping.error().to_string().c_str());
    return 1;
  }
  auto target = cic::TargetProgram::translate(app, arch, mapping.value());
  if (!target.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 target.error().to_string().c_str());
    return 1;
  }

  // 4. Run 50 iterations on the simulated platform.
  const auto result = target.value().run(50);

  std::printf("quickstart: ran 50 iterations of %zu tasks on '%s' (%s)\n",
              app.tasks().size(), arch.name.c_str(),
              cic::memory_style_name(arch.style));
  std::printf("  makespan        : %s\n",
              format_time(result.makespan).c_str());
  std::printf("  messages        : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.bytes_moved));
  std::printf("  core utilization: %.1f%%\n",
              result.mean_core_utilization * 100.0);
  std::printf("  logger received : %zu tokens\n",
              result.sink_outputs.at("logger").size());

  // 5. Show a slice of the code the translator synthesized.
  std::printf("\n--- synthesized target code (excerpt) ---\n");
  const std::string code = target.value().generated_code();
  std::printf("%.900s...\n", code.c_str());
  return 0;
}
