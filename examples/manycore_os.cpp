// Sec. II's many-core OS in action: a hybrid scheduler with predictable
// hard-RT admission on boostable time-shared cores plus a reactive
// space-shared pool, exercised with a mixed workload (a control task set,
// a burst of parallel jobs, a late-arriving interactive job).
#include <cstdio>

#include "common/table.hpp"
#include "sched/hybrid.hpp"
#include "sched/uniproc.hpp"

int main() {
  using namespace rw;
  using namespace rw::sched;

  HybridConfig cfg;
  cfg.time_shared_cores = 2;
  cfg.pool_cores = 14;
  cfg.serial_boost = 2.0;
  HybridScheduler os(cfg);

  // --- hard-RT admission (predictable: backed by response-time analysis)
  std::printf("== hard-RT admission onto time-shared cores ==\n");
  auto admit = [&](const char* name, Cycles wcet, DurationPs period) {
    TaskSet ts;
    ts.add(name, wcet, period);
    const auto a = os.admit_rt(ts);
    if (a.admitted) {
      std::printf("  %-10s -> core %zu at %s\n", name, a.core,
                  format_hz(a.frequency).c_str());
    } else {
      std::printf("  %-10s -> REJECTED (%s)\n", name, a.reason.c_str());
    }
  };
  admit("audio_ctrl", 300'000, milliseconds(2));
  admit("can_bus", 150'000, milliseconds(1));
  admit("display", 2'000'000, milliseconds(8));
  admit("monster", 9'000'000'000ULL, milliseconds(1));  // impossible

  // Verify the admitted sets by simulation (the predictability claim).
  std::printf("\n  verification by simulation:\n");
  for (std::size_t c = 0; c < os.rt_cores().size(); ++c) {
    TaskSet ts = os.rt_cores()[c];
    if (ts.tasks.empty()) continue;
    ts.frequency = os.rt_frequencies()[c];
    assign_dm_priorities(ts);
    const auto r = simulate_uniproc(ts, milliseconds(200),
                                    {Policy::kFixedPriority, 200});
    std::printf("  core %zu: %llu jobs, %llu deadline misses\n", c,
                static_cast<unsigned long long>(r.tasks.size() ? r.tasks[0]
                        .released : 0),
                static_cast<unsigned long long>(r.total_misses()));
  }

  // --- the reactive space-shared pool ---
  std::printf("\n== reactive equipartition pool (14 cores) ==\n");
  auto app = [](const char* name, Cycles work, double serial,
                TimePs arrival) {
    HybridScheduler::GangArrival a;
    a.app.name = name;
    a.app.total_work = work;
    a.app.serial_fraction = serial;
    a.arrival = arrival;
    return a;
  };
  const auto result = os.run_pool({
      app("render", 400'000'000, 0.05, 0),
      app("physics", 250'000'000, 0.10, 0),
      app("compile", 600'000'000, 0.20, milliseconds(1)),
      app("query", 12'000'000, 0.02, milliseconds(3)),  // interactive!
  });

  Table t({"app", "arrival", "finish", "response", "mean cores"});
  for (const auto& a : result.pool_apps) {
    t.add_row({a.name, format_time(a.arrival), format_time(a.finish),
               format_time(a.response()), Table::num(a.mean_cores, 1)});
  }
  t.print("pool schedule");
  std::printf("pool utilization %.1f%%, %llu reactive reallocations\n",
              result.pool_utilization * 100.0,
              static_cast<unsigned long long>(result.reallocations));
  std::printf("\nNote: the interactive 'query' job gets its fair share "
              "immediately on arrival\n(reactive space-sharing), instead "
              "of queueing behind the long batch jobs.\n");
  return 0;
}
