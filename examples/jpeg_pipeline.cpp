// The MAPS flow end-to-end (Figure 1 of the paper as running code):
// sequential JPEG-encoder-like C profile -> dataflow analysis ->
// semi-automatic partitioning -> task graph -> mapping onto a
// heterogeneous platform -> validation on the simulator (the MVP role).
#include <cstdio>

#include "common/table.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace rw;
  using namespace rw::maps;

  // --- the "application specification" phase: sequential C, profiled ---
  const SeqProgram jpeg = jpeg_encoder_program(/*blocks=*/16);
  std::printf("JPEG-like encoder: %zu statements, %llu cycles total, "
              "ideal speedup %.2fx\n",
              jpeg.stmts().size(),
              static_cast<unsigned long long>(jpeg.total_cycles()),
              jpeg.ideal_speedup());

  // --- dataflow analysis + partitioning ---
  const PartitionResult part = partition_program(jpeg, {6, 1.0});
  std::printf("partitioned into %zu tasks (cut: %llu bytes crossing)\n",
              part.graph.tasks().size(),
              static_cast<unsigned long long>(part.cut_bytes));

  // --- the target: 2 RISC + 4 DSP wireless-terminal-style MPSoC ---
  std::vector<PeDesc> pes{{sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kDsp, mhz(300)},
                          {sim::PeClass::kDsp, mhz(300)},
                          {sim::PeClass::kDsp, mhz(300)},
                          {sim::PeClass::kDsp, mhz(300)}};
  const auto comm = simple_comm_cost(nanoseconds(200), 0.004);

  // --- mapping: static HEFT, refined by annealing ---
  const auto heft = heft_map(part.graph, pes, comm);
  const auto annealed = anneal_map(part.graph, pes, comm, /*seed=*/1);
  const TimePs seq = best_sequential_time(part.graph, pes);

  Table t({"schedule", "makespan", "speedup vs 1 PE"});
  t.add_row({"sequential (best single PE)", format_time(seq), "1.00"});
  t.add_row({"HEFT", format_time(heft.makespan),
             Table::num(heft.speedup_vs(seq))});
  t.add_row({"HEFT + annealing", format_time(annealed.makespan),
             Table::num(annealed.speedup_vs(seq))});
  t.print("MAPS mapping results (6 tasks on 2xRISC + 4xDSP)");

  // --- validation on the virtual platform (with interconnect contention) ---
  sim::PlatformConfig cfg = sim::PlatformConfig::heterogeneous(2, 4);
  sim::Platform platform(std::move(cfg));
  const TimePs measured =
      execute_on_platform(part.graph, annealed.task_to_pe, platform);
  std::printf("virtual-platform replay: %s (estimate was %s)\n",
              format_time(measured).c_str(),
              format_time(annealed.makespan).c_str());

  // --- the schedule itself ---
  std::printf("\nschedule (annealed):\n");
  for (const auto& slot : annealed.slots) {
    std::printf("  %-8s on PE%zu  %10s .. %s\n",
                part.graph.task(slot.task).name.c_str(), slot.pe,
                format_time(slot.start).c_str(),
                format_time(slot.finish).c_str());
  }
  return 0;
}
