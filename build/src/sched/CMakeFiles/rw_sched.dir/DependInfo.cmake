
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analysis.cpp" "src/sched/CMakeFiles/rw_sched.dir/analysis.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/analysis.cpp.o.d"
  "/root/repo/src/sched/dvfs.cpp" "src/sched/CMakeFiles/rw_sched.dir/dvfs.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/dvfs.cpp.o.d"
  "/root/repo/src/sched/hybrid.cpp" "src/sched/CMakeFiles/rw_sched.dir/hybrid.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/hybrid.cpp.o.d"
  "/root/repo/src/sched/partitioned.cpp" "src/sched/CMakeFiles/rw_sched.dir/partitioned.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/partitioned.cpp.o.d"
  "/root/repo/src/sched/spacealloc.cpp" "src/sched/CMakeFiles/rw_sched.dir/spacealloc.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/spacealloc.cpp.o.d"
  "/root/repo/src/sched/uniproc.cpp" "src/sched/CMakeFiles/rw_sched.dir/uniproc.cpp.o" "gcc" "src/sched/CMakeFiles/rw_sched.dir/uniproc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
