file(REMOVE_RECURSE
  "CMakeFiles/rw_sched.dir/analysis.cpp.o"
  "CMakeFiles/rw_sched.dir/analysis.cpp.o.d"
  "CMakeFiles/rw_sched.dir/dvfs.cpp.o"
  "CMakeFiles/rw_sched.dir/dvfs.cpp.o.d"
  "CMakeFiles/rw_sched.dir/hybrid.cpp.o"
  "CMakeFiles/rw_sched.dir/hybrid.cpp.o.d"
  "CMakeFiles/rw_sched.dir/partitioned.cpp.o"
  "CMakeFiles/rw_sched.dir/partitioned.cpp.o.d"
  "CMakeFiles/rw_sched.dir/spacealloc.cpp.o"
  "CMakeFiles/rw_sched.dir/spacealloc.cpp.o.d"
  "CMakeFiles/rw_sched.dir/uniproc.cpp.o"
  "CMakeFiles/rw_sched.dir/uniproc.cpp.o.d"
  "librw_sched.a"
  "librw_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
