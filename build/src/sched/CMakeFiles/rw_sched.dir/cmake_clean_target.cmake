file(REMOVE_RECURSE
  "librw_sched.a"
)
