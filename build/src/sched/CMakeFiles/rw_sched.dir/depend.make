# Empty dependencies file for rw_sched.
# This may be replaced when dependencies are built.
