file(REMOVE_RECURSE
  "librw_recoder.a"
)
