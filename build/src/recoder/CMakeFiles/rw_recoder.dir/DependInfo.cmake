
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recoder/analysis.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/analysis.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/analysis.cpp.o.d"
  "/root/repo/src/recoder/ast.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/ast.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/ast.cpp.o.d"
  "/root/repo/src/recoder/interp.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/interp.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/interp.cpp.o.d"
  "/root/repo/src/recoder/parser.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/parser.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/parser.cpp.o.d"
  "/root/repo/src/recoder/printer.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/printer.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/printer.cpp.o.d"
  "/root/repo/src/recoder/recoder.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/recoder.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/recoder.cpp.o.d"
  "/root/repo/src/recoder/shared_report.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/shared_report.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/shared_report.cpp.o.d"
  "/root/repo/src/recoder/transforms.cpp" "src/recoder/CMakeFiles/rw_recoder.dir/transforms.cpp.o" "gcc" "src/recoder/CMakeFiles/rw_recoder.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
