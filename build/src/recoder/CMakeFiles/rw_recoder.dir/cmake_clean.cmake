file(REMOVE_RECURSE
  "CMakeFiles/rw_recoder.dir/analysis.cpp.o"
  "CMakeFiles/rw_recoder.dir/analysis.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/ast.cpp.o"
  "CMakeFiles/rw_recoder.dir/ast.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/interp.cpp.o"
  "CMakeFiles/rw_recoder.dir/interp.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/parser.cpp.o"
  "CMakeFiles/rw_recoder.dir/parser.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/printer.cpp.o"
  "CMakeFiles/rw_recoder.dir/printer.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/recoder.cpp.o"
  "CMakeFiles/rw_recoder.dir/recoder.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/shared_report.cpp.o"
  "CMakeFiles/rw_recoder.dir/shared_report.cpp.o.d"
  "CMakeFiles/rw_recoder.dir/transforms.cpp.o"
  "CMakeFiles/rw_recoder.dir/transforms.cpp.o.d"
  "librw_recoder.a"
  "librw_recoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_recoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
