# Empty compiler generated dependencies file for rw_recoder.
# This may be replaced when dependencies are built.
