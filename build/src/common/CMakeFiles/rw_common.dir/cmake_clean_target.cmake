file(REMOVE_RECURSE
  "librw_common.a"
)
