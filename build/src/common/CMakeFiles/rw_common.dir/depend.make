# Empty dependencies file for rw_common.
# This may be replaced when dependencies are built.
