file(REMOVE_RECURSE
  "CMakeFiles/rw_common.dir/rng.cpp.o"
  "CMakeFiles/rw_common.dir/rng.cpp.o.d"
  "CMakeFiles/rw_common.dir/strings.cpp.o"
  "CMakeFiles/rw_common.dir/strings.cpp.o.d"
  "CMakeFiles/rw_common.dir/table.cpp.o"
  "CMakeFiles/rw_common.dir/table.cpp.o.d"
  "CMakeFiles/rw_common.dir/units.cpp.o"
  "CMakeFiles/rw_common.dir/units.cpp.o.d"
  "CMakeFiles/rw_common.dir/xml.cpp.o"
  "CMakeFiles/rw_common.dir/xml.cpp.o.d"
  "librw_common.a"
  "librw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
