file(REMOVE_RECURSE
  "CMakeFiles/rw_maps.dir/concurrency.cpp.o"
  "CMakeFiles/rw_maps.dir/concurrency.cpp.o.d"
  "CMakeFiles/rw_maps.dir/ir.cpp.o"
  "CMakeFiles/rw_maps.dir/ir.cpp.o.d"
  "CMakeFiles/rw_maps.dir/mapping.cpp.o"
  "CMakeFiles/rw_maps.dir/mapping.cpp.o.d"
  "CMakeFiles/rw_maps.dir/multiapp.cpp.o"
  "CMakeFiles/rw_maps.dir/multiapp.cpp.o.d"
  "CMakeFiles/rw_maps.dir/osip.cpp.o"
  "CMakeFiles/rw_maps.dir/osip.cpp.o.d"
  "CMakeFiles/rw_maps.dir/partition.cpp.o"
  "CMakeFiles/rw_maps.dir/partition.cpp.o.d"
  "CMakeFiles/rw_maps.dir/taskgraph.cpp.o"
  "CMakeFiles/rw_maps.dir/taskgraph.cpp.o.d"
  "CMakeFiles/rw_maps.dir/workloads.cpp.o"
  "CMakeFiles/rw_maps.dir/workloads.cpp.o.d"
  "librw_maps.a"
  "librw_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
