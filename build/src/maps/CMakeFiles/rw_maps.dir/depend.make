# Empty dependencies file for rw_maps.
# This may be replaced when dependencies are built.
