
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maps/concurrency.cpp" "src/maps/CMakeFiles/rw_maps.dir/concurrency.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/concurrency.cpp.o.d"
  "/root/repo/src/maps/ir.cpp" "src/maps/CMakeFiles/rw_maps.dir/ir.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/ir.cpp.o.d"
  "/root/repo/src/maps/mapping.cpp" "src/maps/CMakeFiles/rw_maps.dir/mapping.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/mapping.cpp.o.d"
  "/root/repo/src/maps/multiapp.cpp" "src/maps/CMakeFiles/rw_maps.dir/multiapp.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/multiapp.cpp.o.d"
  "/root/repo/src/maps/osip.cpp" "src/maps/CMakeFiles/rw_maps.dir/osip.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/osip.cpp.o.d"
  "/root/repo/src/maps/partition.cpp" "src/maps/CMakeFiles/rw_maps.dir/partition.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/partition.cpp.o.d"
  "/root/repo/src/maps/taskgraph.cpp" "src/maps/CMakeFiles/rw_maps.dir/taskgraph.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/taskgraph.cpp.o.d"
  "/root/repo/src/maps/workloads.cpp" "src/maps/CMakeFiles/rw_maps.dir/workloads.cpp.o" "gcc" "src/maps/CMakeFiles/rw_maps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rw_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
