file(REMOVE_RECURSE
  "librw_maps.a"
)
