file(REMOVE_RECURSE
  "CMakeFiles/rw_sim.dir/core.cpp.o"
  "CMakeFiles/rw_sim.dir/core.cpp.o.d"
  "CMakeFiles/rw_sim.dir/interconnect.cpp.o"
  "CMakeFiles/rw_sim.dir/interconnect.cpp.o.d"
  "CMakeFiles/rw_sim.dir/kernel.cpp.o"
  "CMakeFiles/rw_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/rw_sim.dir/memory.cpp.o"
  "CMakeFiles/rw_sim.dir/memory.cpp.o.d"
  "CMakeFiles/rw_sim.dir/peripherals.cpp.o"
  "CMakeFiles/rw_sim.dir/peripherals.cpp.o.d"
  "CMakeFiles/rw_sim.dir/platform.cpp.o"
  "CMakeFiles/rw_sim.dir/platform.cpp.o.d"
  "CMakeFiles/rw_sim.dir/trace.cpp.o"
  "CMakeFiles/rw_sim.dir/trace.cpp.o.d"
  "librw_sim.a"
  "librw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
