file(REMOVE_RECURSE
  "librw_sim.a"
)
