# Empty compiler generated dependencies file for rw_sim.
# This may be replaced when dependencies are built.
