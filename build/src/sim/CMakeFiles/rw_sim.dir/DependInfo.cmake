
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/rw_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/interconnect.cpp" "src/sim/CMakeFiles/rw_sim.dir/interconnect.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/interconnect.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/rw_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/rw_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/peripherals.cpp" "src/sim/CMakeFiles/rw_sim.dir/peripherals.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/peripherals.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/rw_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/rw_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/rw_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
