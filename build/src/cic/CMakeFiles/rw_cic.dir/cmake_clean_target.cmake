file(REMOVE_RECURSE
  "librw_cic.a"
)
