# Empty dependencies file for rw_cic.
# This may be replaced when dependencies are built.
