file(REMOVE_RECURSE
  "CMakeFiles/rw_cic.dir/archfile.cpp.o"
  "CMakeFiles/rw_cic.dir/archfile.cpp.o.d"
  "CMakeFiles/rw_cic.dir/dse.cpp.o"
  "CMakeFiles/rw_cic.dir/dse.cpp.o.d"
  "CMakeFiles/rw_cic.dir/model.cpp.o"
  "CMakeFiles/rw_cic.dir/model.cpp.o.d"
  "CMakeFiles/rw_cic.dir/translator.cpp.o"
  "CMakeFiles/rw_cic.dir/translator.cpp.o.d"
  "librw_cic.a"
  "librw_cic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_cic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
