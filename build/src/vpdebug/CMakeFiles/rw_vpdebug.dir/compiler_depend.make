# Empty compiler generated dependencies file for rw_vpdebug.
# This may be replaced when dependencies are built.
