
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpdebug/debugger.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/debugger.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/debugger.cpp.o.d"
  "/root/repo/src/vpdebug/race.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/race.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/race.cpp.o.d"
  "/root/repo/src/vpdebug/replay.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/replay.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/replay.cpp.o.d"
  "/root/repo/src/vpdebug/script.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/script.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/script.cpp.o.d"
  "/root/repo/src/vpdebug/tracexport.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/tracexport.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/tracexport.cpp.o.d"
  "/root/repo/src/vpdebug/victim.cpp" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/victim.cpp.o" "gcc" "src/vpdebug/CMakeFiles/rw_vpdebug.dir/victim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
