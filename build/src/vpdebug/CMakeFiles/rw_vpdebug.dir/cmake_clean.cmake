file(REMOVE_RECURSE
  "CMakeFiles/rw_vpdebug.dir/debugger.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/debugger.cpp.o.d"
  "CMakeFiles/rw_vpdebug.dir/race.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/race.cpp.o.d"
  "CMakeFiles/rw_vpdebug.dir/replay.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/replay.cpp.o.d"
  "CMakeFiles/rw_vpdebug.dir/script.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/script.cpp.o.d"
  "CMakeFiles/rw_vpdebug.dir/tracexport.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/tracexport.cpp.o.d"
  "CMakeFiles/rw_vpdebug.dir/victim.cpp.o"
  "CMakeFiles/rw_vpdebug.dir/victim.cpp.o.d"
  "librw_vpdebug.a"
  "librw_vpdebug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_vpdebug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
