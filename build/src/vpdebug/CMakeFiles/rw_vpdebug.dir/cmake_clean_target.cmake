file(REMOVE_RECURSE
  "librw_vpdebug.a"
)
