file(REMOVE_RECURSE
  "librw_dataflow.a"
)
