# Empty compiler generated dependencies file for rw_dataflow.
# This may be replaced when dependencies are built.
