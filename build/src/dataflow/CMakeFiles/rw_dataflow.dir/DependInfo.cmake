
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/buffers.cpp" "src/dataflow/CMakeFiles/rw_dataflow.dir/buffers.cpp.o" "gcc" "src/dataflow/CMakeFiles/rw_dataflow.dir/buffers.cpp.o.d"
  "/root/repo/src/dataflow/deadlock.cpp" "src/dataflow/CMakeFiles/rw_dataflow.dir/deadlock.cpp.o" "gcc" "src/dataflow/CMakeFiles/rw_dataflow.dir/deadlock.cpp.o.d"
  "/root/repo/src/dataflow/executor.cpp" "src/dataflow/CMakeFiles/rw_dataflow.dir/executor.cpp.o" "gcc" "src/dataflow/CMakeFiles/rw_dataflow.dir/executor.cpp.o.d"
  "/root/repo/src/dataflow/graph.cpp" "src/dataflow/CMakeFiles/rw_dataflow.dir/graph.cpp.o" "gcc" "src/dataflow/CMakeFiles/rw_dataflow.dir/graph.cpp.o.d"
  "/root/repo/src/dataflow/throughput.cpp" "src/dataflow/CMakeFiles/rw_dataflow.dir/throughput.cpp.o" "gcc" "src/dataflow/CMakeFiles/rw_dataflow.dir/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
