file(REMOVE_RECURSE
  "CMakeFiles/rw_dataflow.dir/buffers.cpp.o"
  "CMakeFiles/rw_dataflow.dir/buffers.cpp.o.d"
  "CMakeFiles/rw_dataflow.dir/deadlock.cpp.o"
  "CMakeFiles/rw_dataflow.dir/deadlock.cpp.o.d"
  "CMakeFiles/rw_dataflow.dir/executor.cpp.o"
  "CMakeFiles/rw_dataflow.dir/executor.cpp.o.d"
  "CMakeFiles/rw_dataflow.dir/graph.cpp.o"
  "CMakeFiles/rw_dataflow.dir/graph.cpp.o.d"
  "CMakeFiles/rw_dataflow.dir/throughput.cpp.o"
  "CMakeFiles/rw_dataflow.dir/throughput.cpp.o.d"
  "librw_dataflow.a"
  "librw_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
