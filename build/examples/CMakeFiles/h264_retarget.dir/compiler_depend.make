# Empty compiler generated dependencies file for h264_retarget.
# This may be replaced when dependencies are built.
