file(REMOVE_RECURSE
  "CMakeFiles/h264_retarget.dir/h264_retarget.cpp.o"
  "CMakeFiles/h264_retarget.dir/h264_retarget.cpp.o.d"
  "h264_retarget"
  "h264_retarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h264_retarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
