file(REMOVE_RECURSE
  "CMakeFiles/recode_session.dir/recode_session.cpp.o"
  "CMakeFiles/recode_session.dir/recode_session.cpp.o.d"
  "recode_session"
  "recode_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recode_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
