# Empty compiler generated dependencies file for recode_session.
# This may be replaced when dependencies are built.
