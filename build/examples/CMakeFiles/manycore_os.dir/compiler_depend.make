# Empty compiler generated dependencies file for manycore_os.
# This may be replaced when dependencies are built.
