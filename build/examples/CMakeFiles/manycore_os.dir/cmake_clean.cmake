file(REMOVE_RECURSE
  "CMakeFiles/manycore_os.dir/manycore_os.cpp.o"
  "CMakeFiles/manycore_os.dir/manycore_os.cpp.o.d"
  "manycore_os"
  "manycore_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manycore_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
