file(REMOVE_RECURSE
  "CMakeFiles/jpeg_pipeline.dir/jpeg_pipeline.cpp.o"
  "CMakeFiles/jpeg_pipeline.dir/jpeg_pipeline.cpp.o.d"
  "jpeg_pipeline"
  "jpeg_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
