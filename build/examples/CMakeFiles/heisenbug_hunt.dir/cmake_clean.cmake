file(REMOVE_RECURSE
  "CMakeFiles/heisenbug_hunt.dir/heisenbug_hunt.cpp.o"
  "CMakeFiles/heisenbug_hunt.dir/heisenbug_hunt.cpp.o.d"
  "heisenbug_hunt"
  "heisenbug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heisenbug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
