# Empty dependencies file for heisenbug_hunt.
# This may be replaced when dependencies are built.
