# Empty compiler generated dependencies file for radio_stream.
# This may be replaced when dependencies are built.
