file(REMOVE_RECURSE
  "CMakeFiles/radio_stream.dir/radio_stream.cpp.o"
  "CMakeFiles/radio_stream.dir/radio_stream.cpp.o.d"
  "radio_stream"
  "radio_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
