file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_interconnect.dir/bench_a3_interconnect.cpp.o"
  "CMakeFiles/bench_a3_interconnect.dir/bench_a3_interconnect.cpp.o.d"
  "bench_a3_interconnect"
  "bench_a3_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
