# Empty dependencies file for bench_e2_amdahl_boost.
# This may be replaced when dependencies are built.
