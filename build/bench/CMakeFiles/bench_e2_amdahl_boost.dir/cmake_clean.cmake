file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_amdahl_boost.dir/bench_e2_amdahl_boost.cpp.o"
  "CMakeFiles/bench_e2_amdahl_boost.dir/bench_e2_amdahl_boost.cpp.o.d"
  "bench_e2_amdahl_boost"
  "bench_e2_amdahl_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_amdahl_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
