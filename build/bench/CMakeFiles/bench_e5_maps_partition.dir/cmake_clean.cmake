file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_maps_partition.dir/bench_e5_maps_partition.cpp.o"
  "CMakeFiles/bench_e5_maps_partition.dir/bench_e5_maps_partition.cpp.o.d"
  "bench_e5_maps_partition"
  "bench_e5_maps_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_maps_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
