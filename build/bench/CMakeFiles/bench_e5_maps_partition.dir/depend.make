# Empty dependencies file for bench_e5_maps_partition.
# This may be replaced when dependencies are built.
