# Empty compiler generated dependencies file for bench_e7_cic_retarget.
# This may be replaced when dependencies are built.
