file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_cic_retarget.dir/bench_e7_cic_retarget.cpp.o"
  "CMakeFiles/bench_e7_cic_retarget.dir/bench_e7_cic_retarget.cpp.o.d"
  "bench_e7_cic_retarget"
  "bench_e7_cic_retarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_cic_retarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
