file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_recoder_productivity.dir/bench_e8_recoder_productivity.cpp.o"
  "CMakeFiles/bench_e8_recoder_productivity.dir/bench_e8_recoder_productivity.cpp.o.d"
  "bench_e8_recoder_productivity"
  "bench_e8_recoder_productivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_recoder_productivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
