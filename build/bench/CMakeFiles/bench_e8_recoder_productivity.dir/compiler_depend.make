# Empty compiler generated dependencies file for bench_e8_recoder_productivity.
# This may be replaced when dependencies are built.
