# Empty dependencies file for bench_e3_trigger_robustness.
# This may be replaced when dependencies are built.
