file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_trigger_robustness.dir/bench_e3_trigger_robustness.cpp.o"
  "CMakeFiles/bench_e3_trigger_robustness.dir/bench_e3_trigger_robustness.cpp.o.d"
  "bench_e3_trigger_robustness"
  "bench_e3_trigger_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_trigger_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
