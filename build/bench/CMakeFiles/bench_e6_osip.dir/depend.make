# Empty dependencies file for bench_e6_osip.
# This may be replaced when dependencies are built.
