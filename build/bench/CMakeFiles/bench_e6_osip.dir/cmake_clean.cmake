file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_osip.dir/bench_e6_osip.cpp.o"
  "CMakeFiles/bench_e6_osip.dir/bench_e6_osip.cpp.o.d"
  "bench_e6_osip"
  "bench_e6_osip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_osip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
