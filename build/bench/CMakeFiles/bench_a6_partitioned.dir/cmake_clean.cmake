file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_partitioned.dir/bench_a6_partitioned.cpp.o"
  "CMakeFiles/bench_a6_partitioned.dir/bench_a6_partitioned.cpp.o.d"
  "bench_a6_partitioned"
  "bench_a6_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
