file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_heisenbug.dir/bench_e9_heisenbug.cpp.o"
  "CMakeFiles/bench_e9_heisenbug.dir/bench_e9_heisenbug.cpp.o.d"
  "bench_e9_heisenbug"
  "bench_e9_heisenbug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_heisenbug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
