# Empty compiler generated dependencies file for bench_e10_hybrid_sched.
# This may be replaced when dependencies are built.
