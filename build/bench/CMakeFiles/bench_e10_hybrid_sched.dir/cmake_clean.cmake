file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_hybrid_sched.dir/bench_e10_hybrid_sched.cpp.o"
  "CMakeFiles/bench_e10_hybrid_sched.dir/bench_e10_hybrid_sched.cpp.o.d"
  "bench_e10_hybrid_sched"
  "bench_e10_hybrid_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_hybrid_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
