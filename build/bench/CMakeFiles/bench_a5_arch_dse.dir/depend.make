# Empty dependencies file for bench_a5_arch_dse.
# This may be replaced when dependencies are built.
