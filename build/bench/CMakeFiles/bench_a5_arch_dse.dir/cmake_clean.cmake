file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_arch_dse.dir/bench_a5_arch_dse.cpp.o"
  "CMakeFiles/bench_a5_arch_dse.dir/bench_a5_arch_dse.cpp.o.d"
  "bench_a5_arch_dse"
  "bench_a5_arch_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_arch_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
