# Empty dependencies file for bench_a4_multiapp.
# This may be replaced when dependencies are built.
