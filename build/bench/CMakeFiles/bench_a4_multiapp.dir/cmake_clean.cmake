file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_multiapp.dir/bench_a4_multiapp.cpp.o"
  "CMakeFiles/bench_a4_multiapp.dir/bench_a4_multiapp.cpp.o.d"
  "bench_a4_multiapp"
  "bench_a4_multiapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_multiapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
