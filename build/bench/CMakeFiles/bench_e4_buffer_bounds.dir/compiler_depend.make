# Empty compiler generated dependencies file for bench_e4_buffer_bounds.
# This may be replaced when dependencies are built.
