file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_buffer_bounds.dir/bench_e4_buffer_bounds.cpp.o"
  "CMakeFiles/bench_e4_buffer_bounds.dir/bench_e4_buffer_bounds.cpp.o.d"
  "bench_e4_buffer_bounds"
  "bench_e4_buffer_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_buffer_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
