file(REMOVE_RECURSE
  "CMakeFiles/test_recoder.dir/test_recoder_frontend.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder_frontend.cpp.o.d"
  "CMakeFiles/test_recoder.dir/test_recoder_fusion.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder_fusion.cpp.o.d"
  "CMakeFiles/test_recoder.dir/test_recoder_rename_unroll.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder_rename_unroll.cpp.o.d"
  "CMakeFiles/test_recoder.dir/test_recoder_shared_report.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder_shared_report.cpp.o.d"
  "CMakeFiles/test_recoder.dir/test_recoder_transforms.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder_transforms.cpp.o.d"
  "test_recoder"
  "test_recoder.pdb"
  "test_recoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
