file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/test_sched_analysis.cpp.o"
  "CMakeFiles/test_sched.dir/test_sched_analysis.cpp.o.d"
  "CMakeFiles/test_sched.dir/test_sched_partitioned.cpp.o"
  "CMakeFiles/test_sched.dir/test_sched_partitioned.cpp.o.d"
  "CMakeFiles/test_sched.dir/test_sched_policies_extra.cpp.o"
  "CMakeFiles/test_sched.dir/test_sched_policies_extra.cpp.o.d"
  "CMakeFiles/test_sched.dir/test_sched_space_hybrid.cpp.o"
  "CMakeFiles/test_sched.dir/test_sched_space_hybrid.cpp.o.d"
  "CMakeFiles/test_sched.dir/test_sched_uniproc.cpp.o"
  "CMakeFiles/test_sched.dir/test_sched_uniproc.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
