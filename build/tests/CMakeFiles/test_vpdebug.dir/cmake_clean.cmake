file(REMOVE_RECURSE
  "CMakeFiles/test_vpdebug.dir/test_vpdebug.cpp.o"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug.cpp.o.d"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_dma_watch.cpp.o"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_dma_watch.cpp.o.d"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_script_trace.cpp.o"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_script_trace.cpp.o.d"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_tracexport.cpp.o"
  "CMakeFiles/test_vpdebug.dir/test_vpdebug_tracexport.cpp.o.d"
  "test_vpdebug"
  "test_vpdebug.pdb"
  "test_vpdebug[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpdebug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
