# Empty dependencies file for test_vpdebug.
# This may be replaced when dependencies are built.
