file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_common_ids_trace.cpp.o"
  "CMakeFiles/test_common.dir/test_common_ids_trace.cpp.o.d"
  "CMakeFiles/test_common.dir/test_common_rng.cpp.o"
  "CMakeFiles/test_common.dir/test_common_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/test_common_strings.cpp.o"
  "CMakeFiles/test_common.dir/test_common_strings.cpp.o.d"
  "CMakeFiles/test_common.dir/test_common_table.cpp.o"
  "CMakeFiles/test_common.dir/test_common_table.cpp.o.d"
  "CMakeFiles/test_common.dir/test_common_units.cpp.o"
  "CMakeFiles/test_common.dir/test_common_units.cpp.o.d"
  "CMakeFiles/test_common.dir/test_common_xml.cpp.o"
  "CMakeFiles/test_common.dir/test_common_xml.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
