
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common_ids_trace.cpp" "tests/CMakeFiles/test_common.dir/test_common_ids_trace.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_ids_trace.cpp.o.d"
  "/root/repo/tests/test_common_rng.cpp" "tests/CMakeFiles/test_common.dir/test_common_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_rng.cpp.o.d"
  "/root/repo/tests/test_common_strings.cpp" "tests/CMakeFiles/test_common.dir/test_common_strings.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_strings.cpp.o.d"
  "/root/repo/tests/test_common_table.cpp" "tests/CMakeFiles/test_common.dir/test_common_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_table.cpp.o.d"
  "/root/repo/tests/test_common_units.cpp" "tests/CMakeFiles/test_common.dir/test_common_units.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_units.cpp.o.d"
  "/root/repo/tests/test_common_xml.cpp" "tests/CMakeFiles/test_common.dir/test_common_xml.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rw_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rw_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/rw_maps.dir/DependInfo.cmake"
  "/root/repo/build/src/cic/CMakeFiles/rw_cic.dir/DependInfo.cmake"
  "/root/repo/build/src/recoder/CMakeFiles/rw_recoder.dir/DependInfo.cmake"
  "/root/repo/build/src/vpdebug/CMakeFiles/rw_vpdebug.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
