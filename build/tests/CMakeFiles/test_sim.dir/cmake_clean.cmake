file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_sim_channel.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_channel.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_core.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_core.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_interconnect.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_interconnect.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_kernel.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_kernel.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_memory.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_memory.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_peripherals.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_peripherals.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_platform.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_platform.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_process.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_process.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
