# Empty dependencies file for test_cic.
# This may be replaced when dependencies are built.
