# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_maps[1]_include.cmake")
include("/root/repo/build/tests/test_cic[1]_include.cmake")
include("/root/repo/build/tests/test_recoder[1]_include.cmake")
include("/root/repo/build/tests/test_vpdebug[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
