// E8 — Sec. VI: "about 90% of the system design time is spent on coding
// and re-coding of MPSoC models" and "our experimental results show a
// great reduction in modeling time and significant productivity gains up
// to two orders of magnitude over manual recoding."
//
// Methodology: drive full recoding sessions of increasing size through
// the transformation engine. Effort is counted in *editing operations*:
// the designer issues one command per transformation; doing the same by
// hand means touching every changed source line. The ratio
// (lines changed) / (commands issued) is the productivity gain, and every
// session is verified semantics-preserving by the interpreter.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "recoder/recoder.hpp"

namespace {

/// A reference model shaped like the paper's subjects: P parallel
/// producer/consumer array pipelines plus a pointer-walked init.
std::string reference_model(int pipelines, int width) {
  using rw::strformat;
  std::string s;
  for (int k = 0; k < pipelines; ++k) {
    s += strformat("int in%d[%d];\nint mid%d[%d];\n", k, width, k, width);
  }
  s += "int main() {\n  int t;\n";
  for (int k = 0; k < pipelines; ++k) {
    s += strformat(
        "  int *p%d = &in%d[0];\n"
        "  for (int i = 0; i < %d; i = i + 1) { *(p%d + i) = i * %d; }\n",
        k, k, width, k, k + 3);
  }
  for (int k = 0; k < pipelines; ++k) {
    s += strformat(
        "  for (int i = 0; i < %d; i = i + 1) {\n"
        "    t = in%d[i] * 3;\n"
        "    mid%d[i] = t + %d;\n"
        "  }\n",
        width, k, k, k);
  }
  s += "  int acc = 0;\n";
  for (int k = 0; k < pipelines; ++k) {
    s += strformat(
        "  for (int i = 0; i < %d; i = i + 1) { acc = acc * 17 + "
        "mid%d[i]; }\n",
        width, k);
  }
  s += "  return acc % 1000000;\n}\n";
  return s;
}

}  // namespace

int main() {
  using namespace rw;
  using namespace rw::recoder;

  std::printf("E8: designer-controlled recoding productivity\n");
  Table t({"model size", "commands", "lines changed", "gain (lines/cmd)",
           "semantics"});

  for (const int pipelines : {1, 2, 4, 8, 16}) {
    const std::string src = reference_model(pipelines, 32);
    auto sr = RecoderSession::from_source(src);
    if (!sr.ok()) {
      std::fprintf(stderr, "parse: %s\n", sr.error().to_string().c_str());
      return 1;
    }
    RecoderSession s = std::move(sr).take();
    const auto ref = s.execute();

    // The session: recode every pipeline for parallelism. Loops are split
    // back-to-front so earlier loop indices stay stable.
    bool ok = true;
    ok &= s.cmd_pointer_to_index("main").ok();
    ok &= s.cmd_localize("main", "t").ok();
    for (int k = 0; k < pipelines; ++k)
      ok &= s.cmd_insert_channel("main", "mid" + std::to_string(k),
                                 k + 1).ok();
    // Top-level loops are now: fill 0..P-1, compute P..2P-1, acc 2P..3P-1.
    for (int k = pipelines - 1; k >= 0; --k)
      ok &= s.cmd_split_loop("main",
                             static_cast<std::size_t>(pipelines + k), 4)
                .ok();
    for (int k = pipelines - 1; k >= 0; --k)
      ok &= s.cmd_split_loop("main", static_cast<std::size_t>(k), 4).ok();
    for (int k = 0; k < pipelines; ++k)
      ok &= s.cmd_split_vector("main", "in" + std::to_string(k), 4).ok();
    if (!ok) {
      // Surface the journal for debugging but keep going: partial
      // sessions still measure productivity honestly.
      for (const auto& e : s.journal())
        if (!e.ok) std::printf("  [refused] %s: %s\n", e.command.c_str(),
                               e.message.c_str());
    }

    const auto after = s.execute();
    const bool preserved = after.ok() && ref.ok() &&
                           after.value().return_value ==
                               ref.value().return_value;
    const double gain =
        s.commands_applied() == 0
            ? 0.0
            : static_cast<double>(s.total_lines_changed()) /
                  static_cast<double>(s.commands_applied());
    t.add_row({strformat("%d pipelines", pipelines),
               Table::num(static_cast<std::uint64_t>(s.commands_applied())),
               Table::num(static_cast<std::uint64_t>(
                   s.total_lines_changed())),
               Table::num(gain, 1) + "x",
               preserved ? "preserved" : "BROKEN"});
  }
  t.print("recoding sessions of growing size");

  std::printf("expected shape: the per-command gain is roughly constant "
              "(each command edits\nmany lines), so total manual-edit "
              "volume grows linearly with model size while\ndesigner "
              "effort grows only with the number of *decisions* — the "
              "source of the\npaper's order-of-magnitude productivity "
              "claim. Every row must say 'preserved'.\n");
  return 0;
}
