// Helpers shared by the experiment benches.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace rw::bench {

/// Zero every wall-clock field of `result` — the scenario total and each
/// run — and drop the extras derived from them (throughputs, millisecond
/// mirrors), so the exported JSON document is byte-identical across
/// reruns. Timing stays on stdout and in the process's gate exit code.
inline harness::ScenarioResult scrub_wall_clock(
    harness::ScenarioResult result,
    const std::vector<std::string>& derived_extras = {"events_per_sec",
                                                      "wall_ms"}) {
  result.wall_ns = 0;
  for (harness::RunRecord& r : result.runs) {
    r.metrics.wall_ns = 0;
    std::erase_if(r.metrics.extra, [&](const auto& kv) {
      return std::find(derived_extras.begin(), derived_extras.end(),
                       kv.first) != derived_extras.end();
    });
  }
  return result;
}

}  // namespace rw::bench
