// E14 — Sec. VIII: "road works ahead" also means the platform breaking
// under you. A deterministic fault-injection campaign over the E14
// streaming pipeline compares three recovery postures: none (block
// forever), watchdog-restart (detect via expiry, restart the dead core,
// force-release its semaphores), and watchdog-remap (migrate the dead
// core's work to the least-loaded survivor and leave the core dead).
//
// Shape to reproduce: with no recovery, goodput collapses past a knee in
// the fault rate (a single crash wedges the pipeline); watchdog-restart
// holds goodput near 100% with recovery latency bounded by a couple of
// watchdog periods; remap degrades gracefully and never does worse than
// no recovery. Two identity gates ride along: arming an *empty* fault
// plan must leave every perf-corpus workload's execution fingerprint
// bit-identical, and the degradation-aware remap in rw::maps must sit
// between the healthy makespan and at/above the hindsight oracle.
//
// One rw::harness run per (rate, policy) cell plus the gates; results
// land in BENCH_fault.json.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "harness/harness.hpp"
#include "maps/mapping.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"
#include "vpdebug/replay.hpp"

namespace {

using namespace rw;

constexpr std::uint64_t kSeed = 1;

struct BenchConfig {
  std::size_t cores = 4;
  std::uint64_t items = 32;
  std::uint64_t workload_scale = 2;
  std::vector<double> rates_per_ms = {5, 15, 40, 80, 150};
};

std::string cell(double rate, fault::RecoveryPolicy policy) {
  return strformat("r%03.0f_%s", rate, fault::recovery_policy_name(policy));
}

RunMetrics run_cell(const BenchConfig& cfg, double rate,
                    fault::RecoveryPolicy policy) {
  fault::ScenarioConfig scfg;
  scfg.cores = cfg.cores;
  scfg.seed = kSeed;
  scfg.items = cfg.items;
  scfg.fault_rate_per_ms = rate;
  scfg.policy = policy;
  return run_fault_scenario(scfg).to_metrics();
}

/// Fingerprint a perf-corpus workload with and without an armed empty
/// FaultPlan; identical hashes prove the fault machinery is invisible
/// until a fault actually fires.
RunMetrics run_identity_gate(const std::string& workload,
                             std::uint64_t scale) {
  auto one = [&](bool armed) {
    sim::PlatformConfig pcfg = sim::PlatformConfig::homogeneous(4);
    pcfg.trace_enabled = true;
    sim::Platform plat(std::move(pcfg));
    vpdebug::ExecutionRecorder rec(plat);
    std::unique_ptr<fault::FaultInjector> injector;
    if (armed) {
      injector = std::make_unique<fault::FaultInjector>(plat, fault::FaultPlan{});
      injector->arm();
    }
    perf::spawn_workload(workload, plat, kSeed, scale);
    plat.kernel().run();
    struct {
      std::uint64_t fp;
      TimePs makespan;
    } out{rec.fingerprint(), plat.kernel().now()};
    return out;
  };
  const auto off = one(false);
  const auto on = one(true);
  RunMetrics m;
  m.makespan = off.makespan;
  m.set_extra("fp_identical",
              (off.fp == on.fp && off.makespan == on.makespan) ? 1.0 : 0.0);
  m.set_extra("fingerprint_off", static_cast<double>(off.fp % 1000000));
  return m;
}

/// Degradation-aware remap vs the hindsight oracle on a fork-join graph.
RunMetrics run_remap_gate() {
  maps::TaskGraph g;
  const auto src = g.add_task("src", 500);
  const auto join = g.add_task("join", 500);
  for (int i = 0; i < 6; ++i) {
    const auto t = g.add_task("mid" + std::to_string(i), 20'000);
    g.add_edge(src, t, 256);
    g.add_edge(t, join, 256);
  }
  const std::vector<maps::PeDesc> pes(
      4, maps::PeDesc{sim::PeClass::kRisc, mhz(400)});
  const maps::CommCost comm = maps::simple_comm_cost(nanoseconds(100), 0.004);
  const maps::MappingResult healthy = maps::heft_map(g, pes, comm);
  const maps::DegradationReport rep = maps::remap_on_failure(
      g, pes, comm, healthy.task_to_pe, healthy.task_to_pe[2]);
  RunMetrics m;
  m.makespan = rep.remap_makespan;
  m.set_extra("healthy_makespan_ps", static_cast<double>(rep.healthy_makespan));
  m.set_extra("oracle_makespan_ps", static_cast<double>(rep.oracle_makespan));
  m.set_extra("moved_tasks", static_cast<double>(rep.moved_tasks));
  m.set_extra("remap_vs_oracle", rep.remap_vs_oracle());
  m.set_extra("degradation_vs_healthy", rep.degradation_vs_healthy());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      // CI smoke configuration: two rates, fewer items.
      cfg.items = 16;
      cfg.workload_scale = 1;
      cfg.rates_per_ms = {15, 80};
    }
  }
  const std::vector<fault::RecoveryPolicy> policies = {
      fault::RecoveryPolicy::kNone, fault::RecoveryPolicy::kWatchdogRestart,
      fault::RecoveryPolicy::kWatchdogRemap};
  const std::vector<std::string> corpus = {"pipeline", "forkjoin",
                                           "shared_hammer"};

  harness::Scenario scenario("e14_fault_recovery");
  for (const double rate : cfg.rates_per_ms)
    for (const auto policy : policies)
      scenario.add_run(cell(rate, policy),
                       [&cfg, rate, policy](const harness::RunContext&) {
                         return run_cell(cfg, rate, policy);
                       });
  for (const auto& w : corpus)
    scenario.add_run("identity_" + w, [&cfg, &w](const harness::RunContext&) {
      return run_identity_gate(w, cfg.workload_scale);
    });
  scenario.add_run("remap_vs_oracle", [](const harness::RunContext&) {
    return run_remap_gate();
  });
  const auto result = harness::Runner().run(scenario);

  std::printf("E14: fault injection x recovery policy (%llu items, %zu "
              "cores, seed %llu)\n",
              static_cast<unsigned long long>(cfg.items), cfg.cores,
              static_cast<unsigned long long>(kSeed));

  Table t({"rate/ms", "policy", "goodput", "faults", "crashes", "recov",
           "max_rec", "deadlock"});
  bool shape_ok = true;
  for (const double rate : cfg.rates_per_ms) {
    const double none_goodput =
        result.find(cell(rate, fault::RecoveryPolicy::kNone))
            ->metrics.extra_or("fault.goodput");
    for (const auto policy : policies) {
      const auto& m = result.find(cell(rate, policy))->metrics;
      const double goodput = m.extra_or("fault.goodput");
      if (goodput + 1e-9 < none_goodput) shape_ok = false;  // recovery >= none
      t.add_row({strformat("%.0f", rate), fault::recovery_policy_name(policy),
                 Table::percent(goodput),
                 Table::num(m.extra_or("fault.injected")),
                 Table::num(m.extra_or("fault.crashes")),
                 Table::num(m.extra_or("fault.recoveries")),
                 format_time(static_cast<TimePs>(
                     m.extra_or("fault.max_recovery_latency_ps"))),
                 m.extra_or("fault.deadlocked") > 0 ? "yes" : "no"});
    }
  }
  t.print("no-recovery collapses past the knee; watchdog policies degrade "
          "gracefully");

  for (const auto& w : corpus) {
    const auto& m = result.find("identity_" + w)->metrics;
    const bool identical = m.extra_or("fp_identical") > 0;
    if (!identical) shape_ok = false;
    std::printf("identity gate [%s]: empty armed plan %s (makespan %s)\n",
                w.c_str(), identical ? "bit-identical" : "DIVERGED",
                format_time(m.makespan).c_str());
  }
  {
    const auto& m = result.find("remap_vs_oracle")->metrics;
    if (m.extra_or("remap_vs_oracle") < 1.0) shape_ok = false;
    std::printf("remap gate: healthy %s -> remap %s (oracle %s, %.0f tasks "
                "moved, %.2fx oracle)\n",
                format_time(static_cast<TimePs>(
                    m.extra_or("healthy_makespan_ps"))).c_str(),
                format_time(m.makespan).c_str(),
                format_time(static_cast<TimePs>(
                    m.extra_or("oracle_makespan_ps"))).c_str(),
                m.extra_or("moved_tasks"), m.extra_or("remap_vs_oracle"));
  }

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s = harness::write_json("BENCH_fault.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: none-policy goodput collapses past a knee "
              "(deadlock on first\nwedging crash); watchdog_restart stays "
              "near 100%% with recovery latency bounded\nby ~2 watchdog "
              "periods; watchdog_remap >= none everywhere; identity gates "
              "hold.\n");
  return shape_ok ? 0 : 1;
}
