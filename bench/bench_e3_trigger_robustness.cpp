// E3 — Sec. III: "data is not necessarily corrupted in case the execution
// time of a task exceeds an unreliable worst-case execution time estimate
// ... In a time-driven system, the data is corrupted in this situation."
//
// Shape to reproduce: sweeping the probability and magnitude of WCET
// overruns, the time-triggered executor's internal corruption count grows
// with overload while the data-driven executor's stays exactly zero; its
// overload shows up only as source drops / sink underruns (where the
// paper says applications are robust).
//
// Each (probability, trigger mode) cell is an independent rw::harness run;
// the sweep fans out over the pool and lands in
// BENCH_e3_trigger_robustness.json.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"
#include "harness/harness.hpp"

namespace {

using namespace rw;
using namespace rw::dataflow;

Graph car_radio() {
  Graph g;
  const auto src = g.add_actor("src", 800, 0);
  const auto a = g.add_actor("demod", 20'000, 1);
  const auto b = g.add_actor("fir", 16'000, 2);
  const auto c = g.add_actor("agc", 8'000, 3);
  const auto snk = g.add_actor("snk", 800, 0);
  g.connect(src, a, 1, 1);
  g.connect(a, b, 1, 1);
  g.connect(b, c, 1, 1);
  g.connect(c, snk, 1, 1);
  return g;
}

RunMetrics to_metrics(const ExecResult& r) {
  RunMetrics m;
  m.makespan = r.finish;
  m.set_extra("firings", static_cast<double>(r.firings));
  m.set_extra("stale_reads", static_cast<double>(r.stale_reads));
  m.set_extra("overwrites", static_cast<double>(r.overwrites));
  m.set_extra("internal_corruptions",
              static_cast<double>(r.internal_corruptions()));
  m.set_extra("source_drops", static_cast<double>(r.source_drops));
  m.set_extra("sink_underruns", static_cast<double>(r.sink_underruns));
  m.set_extra("sink_throughput_hz", r.sink_throughput_hz());
  return m;
}

RunMetrics run_cell(const Graph& g, const ExecConfig& base, double prob,
                    bool time_triggered, std::uint64_t seed) {
  // The same seeded overrun pattern feeds both executors of a probability
  // cell, so rows compare like with like.
  auto rng = std::make_shared<Rng>(seed);
  ExecConfig cfg = base;
  cfg.acet = [rng, prob](const Actor& a, std::uint64_t, Cycles wcet) {
    if (a.name == "src" || a.name == "snk") return wcet;
    return rng->next_bool(prob) ? wcet * 3 : wcet;
  };
  return to_metrics(time_triggered ? run_time_triggered(g, cfg)
                                   : run_data_driven(g, cfg));
}

std::string label(double prob, bool time_triggered) {
  return strformat("%s_p%02.0f", time_triggered ? "tt" : "dd", prob * 100);
}

}  // namespace

int main() {
  const Graph g = car_radio();
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.source_period = microseconds(90);
  cfg.iterations = 400;
  cfg.buffer_capacities = compute_buffer_capacities(g, cfg).capacities;

  const double probs[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};

  harness::Scenario scenario("e3_trigger_robustness");
  for (const double prob : probs)
    for (const bool tt : {true, false})
      scenario.add_run(label(prob, tt),
                       [&g, &cfg, prob, tt](const harness::RunContext&) {
                         // Fixed overrun seed (not ctx.seed): both modes of
                         // a probability cell must see the same pattern.
                         return run_cell(g, cfg, prob, tt, 1234);
                       });
  const auto result = harness::Runner().run(scenario);

  std::printf("E3: corruption under WCET-estimate violations "
              "(overrun = 3x WCET)\n");
  Table t({"overrun prob", "TT stale reads", "TT overwrites",
           "DD internal corrupt", "DD src drops", "DD sink underruns"});
  for (const double prob : probs) {
    const auto& mt = result.find(label(prob, true))->metrics;
    const auto& md = result.find(label(prob, false))->metrics;
    t.add_row(
        {Table::percent(prob, 0),
         Table::num(static_cast<std::uint64_t>(mt.extra_or("stale_reads"))),
         Table::num(static_cast<std::uint64_t>(mt.extra_or("overwrites"))),
         Table::num(static_cast<std::uint64_t>(
             md.extra_or("internal_corruptions"))),
         Table::num(static_cast<std::uint64_t>(md.extra_or("source_drops"))),
         Table::num(
             static_cast<std::uint64_t>(md.extra_or("sink_underruns")))});
  }
  t.print("time-triggered vs data-driven, 400 iterations");
  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s =
          harness::write_json("BENCH_e3_trigger_robustness.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: TT corruption grows from 0 with the overrun "
              "rate; DD internal\ncorruption is identically 0 — failures "
              "move to the robust source/sink boundary.\n");
  return 0;
}
