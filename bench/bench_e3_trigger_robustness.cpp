// E3 — Sec. III: "data is not necessarily corrupted in case the execution
// time of a task exceeds an unreliable worst-case execution time estimate
// ... In a time-driven system, the data is corrupted in this situation."
//
// Shape to reproduce: sweeping the probability and magnitude of WCET
// overruns, the time-triggered executor's internal corruption count grows
// with overload while the data-driven executor's stays exactly zero; its
// overload shows up only as source drops / sink underruns (where the
// paper says applications are robust).
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"

namespace {

rw::dataflow::Graph car_radio() {
  using namespace rw::dataflow;
  Graph g;
  const auto src = g.add_actor("src", 800, 0);
  const auto a = g.add_actor("demod", 20'000, 1);
  const auto b = g.add_actor("fir", 16'000, 2);
  const auto c = g.add_actor("agc", 8'000, 3);
  const auto snk = g.add_actor("snk", 800, 0);
  g.connect(src, a, 1, 1);
  g.connect(a, b, 1, 1);
  g.connect(b, c, 1, 1);
  g.connect(c, snk, 1, 1);
  return g;
}

}  // namespace

int main() {
  using namespace rw;
  using namespace rw::dataflow;

  const Graph g = car_radio();
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.source_period = microseconds(90);
  cfg.iterations = 400;
  cfg.buffer_capacities = compute_buffer_capacities(g, cfg).capacities;

  std::printf("E3: corruption under WCET-estimate violations "
              "(overrun = 3x WCET)\n");
  Table t({"overrun prob", "TT stale reads", "TT overwrites",
           "DD internal corrupt", "DD src drops", "DD sink underruns"});

  for (const double prob :
       {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    auto acet_for = [prob](std::uint64_t seed) -> ActorAcet {
      auto rng = std::make_shared<Rng>(seed);
      return [rng, prob](const Actor& a, std::uint64_t, Cycles wcet) {
        if (a.name == "src" || a.name == "snk") return wcet;
        return rng->next_bool(prob) ? wcet * 3 : wcet;
      };
    };
    ExecConfig tt = cfg;
    tt.acet = acet_for(1234);
    const auto rt = run_time_triggered(g, tt);
    ExecConfig dd = cfg;
    dd.acet = acet_for(1234);
    const auto rd = run_data_driven(g, dd);

    t.add_row({Table::percent(prob, 0), Table::num(rt.stale_reads),
               Table::num(rt.overwrites),
               Table::num(rd.internal_corruptions()),
               Table::num(rd.source_drops), Table::num(rd.sink_underruns)});
  }
  t.print("time-triggered vs data-driven, 400 iterations");
  std::printf("expected shape: TT corruption grows from 0 with the overrun "
              "rate; DD internal\ncorruption is identically 0 — failures "
              "move to the robust source/sink boundary.\n");
  return 0;
}
