// E9 — Sec. VII: "Debugging using real hardware is typically intrusive
// ... The so-called 'Heisenbug' is a prominent artefact of intrusive
// debugging. Those kinds of bugs disappear as soon as debugging is
// performed ... A virtual hardware platform overcomes those problems."
//
// Shape to reproduce: across seeds, a seeded lost-update race
//  (a) reproduces bit-exactly under the virtual platform (replay
//      fingerprints equal, lost-update counts equal),
//  (b) is perturbed or masked by an intrusive single-core debug stall,
//      with the effect growing with the stall length,
//  (c) is pinpointed non-intrusively by the race detector, and the
//      semaphore fix passes the same scrutiny clean.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "vpdebug/race.hpp"
#include "vpdebug/replay.hpp"
#include "vpdebug/victim.hpp"

int main() {
  using namespace rw;
  using namespace rw::vpdebug;

  auto platform_cfg = sim::PlatformConfig::homogeneous(2, mhz(400));
  platform_cfg.trace_enabled = true;
  const int kSeeds = 20;

  std::printf("E9: Heisenbug reproduction, %d seeded runs\n", kSeeds);

  // (a)+(b): manifestation under increasing probe intrusiveness.
  Table t({"probe stall", "bugs manifested", "mean lost updates",
           "runs changed vs clean"});
  std::vector<std::uint64_t> clean_observed;
  for (const std::uint64_t stall_ns : {0u, 100u, 400u, 700u, 1500u, 5000u,
                                       20000u}) {
    int manifested = 0, changed = 0;
    double lost_sum = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      RacyCounterConfig cfg;
      cfg.increments_per_core = 50;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.probe_stall_ps = nanoseconds(stall_ns);
      sim::Platform p(platform_cfg);
      const auto r = run_racy_counter(p, cfg);
      if (r.bug_manifested()) ++manifested;
      lost_sum += static_cast<double>(r.lost_updates());
      if (stall_ns == 0) {
        clean_observed.push_back(r.observed);
      } else if (r.observed != clean_observed[static_cast<std::size_t>(
                     seed)]) {
        ++changed;
      }
    }
    t.add_row({stall_ns == 0 ? "none (virtual platform)"
                             : format_time(nanoseconds(stall_ns)),
               strformat("%d/%d", manifested, kSeeds),
               Table::num(lost_sum / kSeeds),
               stall_ns == 0 ? "-" : strformat("%d/%d", changed, kSeeds)});
  }
  t.print("intrusive probing perturbs the defect");

  // (a) determinism: replay fingerprints.
  int deterministic = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    RacyCounterConfig cfg;
    cfg.increments_per_core = 50;
    cfg.seed = static_cast<std::uint64_t>(seed);
    const auto check = check_replay(platform_cfg, [&](sim::Platform& p) {
      run_racy_counter(p, cfg);
    });
    if (check.deterministic()) ++deterministic;
  }
  std::printf("replay determinism: %d/%d runs reproduce bit-exactly\n\n",
              deterministic, kSeeds);

  // (c) localization + fix verification.
  Table f({"version", "races flagged", "lost updates"});
  for (const bool fixed : {false, true}) {
    sim::Platform p(platform_cfg);
    RaceDetector det(p, racy_counter_addr(p), 8, microseconds(2));
    RacyCounterConfig cfg;
    cfg.increments_per_core = 60;
    cfg.seed = 9;
    cfg.use_semaphore = fixed;
    const auto r = run_racy_counter(p, cfg);
    f.add_row({fixed ? "hwsem-protected (fix)" : "racy firmware",
               Table::num(static_cast<std::uint64_t>(det.races().size())),
               Table::num(r.lost_updates())});
  }
  f.print("non-intrusive race localization");

  std::printf("expected shape: 100%% bit-exact replay with no probe; the "
              "intrusive stall\nchanges most runs (the Heisenbug); the "
              "detector flags the racy version and is\nsilent on the "
              "fixed one.\n");
  return 0;
}
