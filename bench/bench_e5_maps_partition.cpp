// E5 — Sec. IV: "Initial case studies on partitioning applications like
// JPEG encoder indicate promising speedup results with considerably
// reduced manual parallelization efforts."
//
// Shape to reproduce: the MAPS-style semi-automatic partition of the
// JPEG-like encoder approaches the critical-path speedup bound as PEs are
// added, while the sequential baseline stays at 1x; the Amdahl tail
// (serial Huffman stage) caps the curve. The heterogeneous row shows PE
// preference exploitation (DSP-friendly stages land on DSPs).
#include <cstdio>

#include "common/table.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace rw;
  using namespace rw::maps;

  const SeqProgram jpeg = jpeg_encoder_program(16);
  std::printf("E5: MAPS partitioning of a JPEG-like encoder "
              "(%zu statements, ideal speedup %.2fx)\n",
              jpeg.stmts().size(), jpeg.ideal_speedup());

  const auto comm = simple_comm_cost(nanoseconds(200), 0.004);

  Table t({"PEs", "partition tasks", "HEFT speedup", "anneal speedup",
           "bound", "platform-validated"});
  for (const std::size_t pes_n : {1u, 2u, 4u, 6u, 8u}) {
    const PartitionResult part =
        partition_program(jpeg, {pes_n == 1 ? 1 : pes_n, 8.0});
    const std::vector<PeDesc> pes(pes_n,
                                  PeDesc{sim::PeClass::kRisc, mhz(400)});
    const auto heft = heft_map(part.graph, pes, comm);
    const auto ann = anneal_map(part.graph, pes, comm, 3, 1200);
    const TimePs seq = best_sequential_time(part.graph, pes);

    sim::Platform platform(
        sim::PlatformConfig::homogeneous(pes_n, mhz(400)));
    const TimePs measured =
        execute_on_platform(part.graph, ann.task_to_pe, platform);

    t.add_row({Table::num(static_cast<std::uint64_t>(pes_n)),
               Table::num(static_cast<std::uint64_t>(
                   part.graph.tasks().size())),
               Table::num(heft.speedup_vs(seq)),
               Table::num(ann.speedup_vs(seq)),
               Table::num(part.bound_speedup(pes_n)),
               Table::num(static_cast<double>(seq) /
                          static_cast<double>(measured))});
  }
  t.print("homogeneous RISC platform");

  // Heterogeneity: same app on 2 RISC + 4 DSP exploits DSP-friendly tasks.
  {
    const PartitionResult part = partition_program(jpeg, {6, 8.0});
    std::vector<PeDesc> het{{sim::PeClass::kRisc, mhz(400)},
                            {sim::PeClass::kRisc, mhz(400)},
                            {sim::PeClass::kDsp, mhz(300)},
                            {sim::PeClass::kDsp, mhz(300)},
                            {sim::PeClass::kDsp, mhz(300)},
                            {sim::PeClass::kDsp, mhz(300)}};
    std::vector<PeDesc> hom(6, PeDesc{sim::PeClass::kRisc, mhz(400)});
    const auto mhet = heft_map(part.graph, het, comm);
    const auto mhom = heft_map(part.graph, hom, comm);
    Table h({"platform", "makespan"});
    h.add_row({"6x RISC@400", format_time(mhom.makespan)});
    h.add_row({"2x RISC@400 + 4x DSP@300", format_time(mhet.makespan)});
    h.print("heterogeneous mapping (DCT/quant are DSP kernels)");
  }

  std::printf("expected shape: speedup climbs with PEs toward the bound, "
              "capped by the serial\nHuffman tail; the DSP platform beats "
              "the same-size RISC one despite lower clocks.\n");
  return 0;
}
