// Experiment E11 — lint pass scaling.
//
// ISSUE 2's framework claim is only useful if the static passes stay
// design-time cheap while the programs grow: the paper's pitch for
// abstract models (Secs. III/IV/VI) is precisely that analyses run on
// them instead of on RTL-speed simulation. This bench synthesizes mapped
// programs, mini-C functions and dataflow chains at increasing sizes,
// runs the full default pass set on each, and reports per-pass wall time
// plus finding counts. Expected shape: race/deadlock grow with the
// transitive closure (cubic in tasks, still ms at hundreds of tasks);
// uninit and buffer-bounds stay near-linear.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/graph.hpp"
#include "harness/harness.hpp"
#include "lint/pass.hpp"
#include "maps/ir.hpp"
#include "maps/taskgraph.hpp"
#include "recoder/parser.hpp"
#include "sim/platform.hpp"

namespace {

using namespace rw;

/// A mapped program with `n` single-statement tasks chained by channels,
/// round-robin on 4 PEs, with every 16th channel missing so a sprinkle of
/// genuinely unordered shared accesses survives for the race pass.
struct MappedModel {
  maps::SeqProgram seq;
  maps::TaskGraph tasks;
  std::vector<std::size_t> stmt_to_task;
  std::vector<std::size_t> task_to_pe;
  // The machine the mapping targets, so the static-makespan contract
  // pass (ISSUE 7) joins the scaling sweep.
  sim::PlatformConfig platform = sim::PlatformConfig::homogeneous(4);
};

MappedModel make_mapped(std::size_t n) {
  MappedModel m;
  const std::size_t nvars = std::max<std::size_t>(4, n / 8);
  std::vector<maps::VarId> vars;
  for (std::size_t v = 0; v < nvars; ++v)
    vars.push_back(m.seq.add_var(strformat("v%zu", v)));
  std::vector<maps::TaskNodeId> tids;
  for (std::size_t i = 0; i < n; ++i) {
    m.seq.add_stmt(strformat("s%zu", i), 100,
                   {vars[(i + nvars - 1) % nvars]}, {vars[i % nvars]});
    tids.push_back(m.tasks.add_task(strformat("t%zu", i), 100));
    m.stmt_to_task.push_back(i);
    m.task_to_pe.push_back(i % 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i)
    if (i % 16 != 15) m.tasks.add_edge(tids[i], tids[i + 1], 4);
  return m;
}

/// A straight-line mini-C function with `n` statements, one dead store
/// and one never-assigned read per 32 statements.
recoder::Program make_ast(std::size_t n) {
  std::string src = "int main() {\n  int a0 = 0;\n";
  for (std::size_t i = 1; i < n; ++i) {
    if (i % 32 == 7) {
      src += strformat("  int d%zu = 1;\n  d%zu = 2;\n", i, i);
    } else if (i % 32 == 19) {
      src += strformat("  int u%zu;\n  a0 = a0 + u%zu;\n", i, i);
    } else {
      src += strformat("  int a%zu = a%zu + 1;\n", i, i - 1);
    }
  }
  src += "  return a0;\n}\n";
  auto p = recoder::parse_program(src);
  if (!p.ok()) throw std::runtime_error(p.error().to_string());
  return std::move(p).take();
}

/// An SDF chain of `n` actors for the buffer-bounds pass.
dataflow::Graph make_chain(std::size_t n) {
  dataflow::Graph g;
  std::vector<dataflow::ActorId> actors;
  for (std::size_t i = 0; i < n; ++i)
    actors.push_back(g.add_actor(strformat("a%zu", i), 100));
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.connect(actors[i], actors[i + 1], 1, 1);
  return g;
}

}  // namespace

int main() {
  const std::size_t sizes[] = {16, 64, 256, 512};

  // Keep the generated models alive across the (parallel) runs: Target
  // views are non-owning.
  std::vector<MappedModel> mapped;
  std::vector<recoder::Program> asts;
  std::vector<dataflow::Graph> chains;
  for (const std::size_t n : sizes) {
    mapped.push_back(make_mapped(n));
    asts.push_back(make_ast(n));
    // Depth-capped: past ~256 stages the pipeline-fill latency exceeds
    // the default sink period and the executor-backed sizing legitimately
    // burns its whole round budget declaring the period unsustainable —
    // a different experiment than the scaling curve this bench plots.
    chains.push_back(make_chain(std::min<std::size_t>(n, 256)));
  }

  harness::Scenario scenario("e11_lint_scaling");
  for (std::size_t si = 0; si < std::size(sizes); ++si) {
    scenario.add_run(
        strformat("n%zu", sizes[si]),
        [&, si](const harness::RunContext&) {
          lint::Target t;
          t.name = strformat("synthetic_%zu", sizes[si]);
          t.program = &asts[si];
          t.seq = &mapped[si].seq;
          t.task_graph = &mapped[si].tasks;
          t.stmt_to_task = mapped[si].stmt_to_task;
          t.task_to_pe = mapped[si].task_to_pe;
          t.dataflow = &chains[si];
          t.platform = &mapped[si].platform;

          const auto result =
              lint::PassManager::with_default_passes().run(t);
          RunMetrics out;
          std::uint64_t total_ns = 0;
          for (const auto& s : result.stats) {
            if (!s.ran) continue;
            total_ns += s.wall_ns;
            out.set_extra(s.pass + "_ms",
                          static_cast<double>(s.wall_ns) / 1e6);
            out.set_extra(s.pass + "_findings",
                          static_cast<double>(s.findings));
          }
          out.set_extra("diagnostics",
                        static_cast<double>(result.diagnostics.size()));
          out.wall_ns = total_ns;
          return out;
        });
  }
  const auto result = harness::Runner().run(scenario);

  std::printf("E11: lint pass wall-time vs program size\n");
  Table t({"tasks/stmts/actors", "race ms", "deadlock ms", "uninit ms",
           "buffers ms", "tput ms", "bufsize ms", "makespan ms",
           "findings"});
  for (std::size_t si = 0; si < std::size(sizes); ++si) {
    const auto* r = result.find(strformat("n%zu", sizes[si]));
    t.add_row({Table::num(static_cast<std::uint64_t>(sizes[si])),
               Table::num(r->metrics.extra_or("static-race_ms"), 3),
               Table::num(r->metrics.extra_or("static-deadlock_ms"), 3),
               Table::num(r->metrics.extra_or("uninit-dataflow_ms"), 3),
               Table::num(r->metrics.extra_or("buffer-bounds_ms"), 3),
               Table::num(r->metrics.extra_or("static-throughput_ms"), 3),
               Table::num(r->metrics.extra_or("static-buffer-size_ms"), 3),
               Table::num(r->metrics.extra_or("static-makespan_ms"), 3),
               Table::num(r->metrics.extra_or("diagnostics"), 0)});
  }
  t.print("per-pass wall time (host), finding count");
  if (const auto s = harness::write_json("BENCH_lint.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: race/deadlock dominated by the O(n^3) "
              "order-graph closure yet\nstill interactive at n=512; uninit "
              "and buffer-bounds near-linear; finding count\ngrows with "
              "the seeded defect density, not with noise.\n");
  return 0;
}
