// E13 — kernel event throughput: the two-tier calendar queue vs the
// legacy binary heap.
//
// Every experiment in this repo advances time through rw::sim::Kernel, so
// events/sec is the multiplier on every sweep. This bench drives the bare
// kernel with a deterministic event storm parameterized by steady queue
// depth (a parked far-future backlog) and fan-out (children scheduled per
// executed event), plus one end-to-end pair running a full virtual-
// platform workload under each queue. Expected shape: the binary heap
// degrades as O(log depth) per event while the calendar wheel stays
// flat — >=2x events/sec at 10k pending — and both queues execute the
// bit-identical event order (checked here via an order hash, and held by
// tests/test_sim_kernel_queue.cpp via ExecutionRecorder fingerprints).
//
// Results land in BENCH_kernel.json; CI replays --tiny and fails if the
// calendar queue regresses below the heap baseline recorded the same run.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "perf/workload.hpp"
#include "sim/kernel.hpp"
#include "sim/platform.hpp"

namespace {

using namespace rw;

struct BenchConfig {
  std::uint64_t events = 1'000'000;       // per storm run
  std::uint64_t e2e_scale = 512;          // platform workload scale
  std::vector<std::int64_t> pendings = {0, 100, 10'000};
  std::vector<std::uint64_t> fanouts = {1, 4};
};

constexpr sim::QueuePolicy kPolicies[] = {sim::QueuePolicy::kBinaryHeap,
                                          sim::QueuePolicy::kCalendar};

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic self-sustaining event storm. Each fired event folds its id
// and timestamp into an order hash (the cross-queue identity probe) and
// schedules `fanout` children with mixed deltas: mostly near-term (wheel
// territory), occasionally far future (spill territory), priority jitter.
struct Storm {
  sim::Kernel* k;
  std::uint64_t budget;
  std::uint64_t fanout;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t order_hash = 1469598103934665603ULL;

  void fire(std::uint64_t id) {
    ++executed;
    order_hash = (order_hash ^ id) * 1099511628211ULL;
    order_hash = (order_hash ^ k->now()) * 1099511628211ULL;
    for (std::uint64_t c = 0; c < fanout && scheduled < budget; ++c) {
      const std::uint64_t child = scheduled++;
      const std::uint64_t h = mix64(child);
      const TimePs dt =
          (h % 16 == 0) ? 1'000'000 + h % 8'000'000  // beyond the horizon
                        : h % 2'048;                 // wheel territory
      const int pri = static_cast<int>((h >> 8) % 3) - 1;
      k->schedule_in(dt, StormEvent{this, child}, pri);
    }
  }

  struct StormEvent {
    Storm* storm;
    std::uint64_t id;
    void operator()() const { storm->fire(id); }
  };
};
static_assert(sim::EventFn::stores_inline<Storm::StormEvent>);

RunMetrics run_storm(sim::QueuePolicy policy, const BenchConfig& cfg,
                     std::int64_t pending, std::uint64_t fanout) {
  sim::Kernel k(policy);
  // Parked backlog: daemons beyond the storm window set the steady queue
  // depth without ever executing.
  for (std::int64_t i = 0; i < pending; ++i)
    k.schedule_daemon_at(milliseconds(1000) + static_cast<TimePs>(i) * 1000,
                         [] {});

  Storm storm{&k, cfg.events, fanout};
  const std::uint64_t roots = std::min<std::uint64_t>(16, cfg.events);
  for (std::uint64_t r = 0; r < roots; ++r)
    k.schedule_at(mix64(r) % 1000, Storm::StormEvent{&storm, storm.scheduled++});

  const auto t0 = std::chrono::steady_clock::now();
  k.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = k.now();
  m.set_extra("events", static_cast<double>(storm.executed));
  m.set_extra("events_per_sec",
              static_cast<double>(storm.executed) / (wall_ns / 1e9));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("pending", static_cast<double>(pending));
  m.set_extra("fanout", static_cast<double>(fanout));
  m.set_extra("calendar",
              policy == sim::QueuePolicy::kCalendar ? 1.0 : 0.0);
  m.set_extra("order_hash_lo",
              static_cast<double>(storm.order_hash & 0xffffffffULL));
  m.set_extra("order_hash_hi", static_cast<double>(storm.order_hash >> 32));
  return m;
}

// End-to-end: a full virtual platform (cores, channels, DMA, interconnect)
// running the communication-heavy pipeline workload under each queue.
RunMetrics run_e2e(sim::QueuePolicy policy, const BenchConfig& cfg) {
  sim::PlatformConfig pcfg = sim::PlatformConfig::homogeneous(4);
  pcfg.kernel.policy = policy;
  sim::Platform plat(std::move(pcfg));
  perf::spawn_workload("pipeline", plat, /*seed=*/7, cfg.e2e_scale);
  const auto t0 = std::chrono::steady_clock::now();
  plat.kernel().run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = plat.kernel().now();
  m.set_extra("events",
              static_cast<double>(plat.kernel().events_executed()));
  m.set_extra("events_per_sec",
              static_cast<double>(plat.kernel().events_executed()) /
                  (wall_ns / 1e9));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("calendar",
              policy == sim::QueuePolicy::kCalendar ? 1.0 : 0.0);
  return m;
}

std::string storm_label(sim::QueuePolicy policy, std::int64_t pending,
                        std::uint64_t fanout) {
  return strformat("%s_p%lld_f%llu", sim::queue_policy_name(policy),
                   static_cast<long long>(pending),
                   static_cast<unsigned long long>(fanout));
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      // CI smoke configuration: shallow and deep depth, single fan-out.
      cfg.events = 60'000;
      cfg.e2e_scale = 2;
      cfg.pendings = {0, 10'000};
      cfg.fanouts = {1};
    }
  }

  harness::Scenario scenario("e13_kernel_throughput");
  for (const std::int64_t pending : cfg.pendings)
    for (const std::uint64_t fanout : cfg.fanouts)
      for (const sim::QueuePolicy policy : kPolicies)
        scenario.add_run(storm_label(policy, pending, fanout),
                         [&cfg, policy, pending, fanout](
                             const harness::RunContext&) {
                           return run_storm(policy, cfg, pending, fanout);
                         });
  for (const sim::QueuePolicy policy : kPolicies)
    scenario.add_run(strformat("e2e_%s", sim::queue_policy_name(policy)),
                     [&cfg, policy](const harness::RunContext&) {
                       return run_e2e(policy, cfg);
                     });
  // Timing bench: one thread, so runs never contend for cores.
  const auto result = harness::Runner(harness::RunnerConfig{1}).run(scenario);

  std::printf("E13: kernel event throughput, calendar/two-tier queue vs "
              "binary heap (%llu-event storms)\n",
              static_cast<unsigned long long>(cfg.events));
  Table t({"pending", "fanout", "heap Mev/s", "calendar Mev/s", "speedup",
           "identical"});
  bool deterministic = true;
  double deep_speedup = 0.0;
  for (const std::int64_t pending : cfg.pendings) {
    for (const std::uint64_t fanout : cfg.fanouts) {
      const auto* heap = result.find(
          storm_label(sim::QueuePolicy::kBinaryHeap, pending, fanout));
      const auto* cal = result.find(
          storm_label(sim::QueuePolicy::kCalendar, pending, fanout));
      const bool identical =
          heap->metrics.makespan == cal->metrics.makespan &&
          heap->metrics.extra_or("events") == cal->metrics.extra_or("events") &&
          heap->metrics.extra_or("order_hash_lo") ==
              cal->metrics.extra_or("order_hash_lo") &&
          heap->metrics.extra_or("order_hash_hi") ==
              cal->metrics.extra_or("order_hash_hi");
      deterministic = deterministic && identical;
      const double h = heap->metrics.extra_or("events_per_sec");
      const double c = cal->metrics.extra_or("events_per_sec");
      const double speedup = c / h;
      if (pending == cfg.pendings.back() && fanout == cfg.fanouts.front())
        deep_speedup = speedup;
      t.add_row({Table::num(static_cast<std::uint64_t>(pending)),
                 Table::num(fanout), strformat("%.1f", h / 1e6),
                 strformat("%.1f", c / 1e6), strformat("%.2fx", speedup),
                 identical ? "yes" : "NO"});
    }
  }
  t.print("two-tier queue vs heap; 'identical' = same makespan, event "
          "count and order hash");

  const auto* eh = result.find("e2e_heap");
  const auto* ec = result.find("e2e_calendar");
  std::printf("end-to-end (pipeline workload on a 4-core platform): "
              "heap %.0fms, calendar %.0fms (%.2fx), makespans %s\n",
              eh->metrics.extra_or("wall_ms"),
              ec->metrics.extra_or("wall_ms"),
              eh->metrics.extra_or("wall_ms") /
                  ec->metrics.extra_or("wall_ms"),
              eh->metrics.makespan == ec->metrics.makespan
                  ? "identical"
                  : "DIVERGENT");
  deterministic =
      deterministic && eh->metrics.makespan == ec->metrics.makespan;

  if (const auto s = harness::write_json("BENCH_kernel.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: speedup grows with pending depth (the heap "
              "pays O(log n)\nper event); >=2x at 10k pending "
              "(measured %.2fx); every row identical.\n",
              deep_speedup);
  return deterministic ? 0 : 1;
}
