// E13 — kernel event throughput: the two-tier calendar queue vs the
// legacy binary heap.
//
// Every experiment in this repo advances time through rw::sim::Kernel, so
// events/sec is the multiplier on every sweep. This bench drives the bare
// kernel with a deterministic event storm parameterized by steady queue
// depth (a parked far-future backlog) and fan-out (children scheduled per
// executed event), plus one end-to-end pair running a full virtual-
// platform workload under each queue. Expected shape: the binary heap
// degrades as O(log depth) per event while the calendar wheel stays
// flat — >=2x events/sec at 10k pending — and both queues execute the
// bit-identical event order (checked here via an order hash, and held by
// tests/test_sim_kernel_queue.cpp via ExecutionRecorder fingerprints).
//
// A second axis covers the tile-partitioned engine (sim/parallel.hpp):
// the same storm split over 1/2/4 tiles with cross-tile mailbox posts,
// run once in the sequential reference mode and once with real worker
// threads (force_threads, so the 1-CPU CI smoke still exercises the
// threaded code path). Gates: the parallel fingerprint must equal the
// sequential one on every cell (unconditional), and on machines with
// enough hardware threads the 4-tile parallel run must clear a >=2x
// wall-clock speedup over its own sequential reference.
//
// Results land in BENCH_kernel.json with wall-clock-derived fields
// scrubbed (byte-identical across reruns, like BENCH_contracts.json); the
// timing gates — calendar vs heap floors and the tiled speedup — are
// enforced by this process's exit code, and CI replays --tiny, diffs the
// rerun, and python-checks the identity fields plus the printed verdicts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "perf/workload.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel.hpp"
#include "sim/platform.hpp"
#include "vpdebug/replay.hpp"

namespace {

using namespace rw;

struct BenchConfig {
  std::uint64_t events = 1'000'000;       // per storm run
  std::uint64_t e2e_scale = 512;          // platform workload scale
  std::vector<std::int64_t> pendings = {0, 100, 10'000};
  std::vector<std::uint64_t> fanouts = {1, 4};
  std::uint64_t tiled_events = 400'000;   // per tiled-storm run, all tiles
  std::uint64_t tile_work = 256;          // mix64 rounds per event body
  std::vector<std::uint32_t> tiles_axis = {1, 2, 4};
};

constexpr sim::QueuePolicy kPolicies[] = {sim::QueuePolicy::kBinaryHeap,
                                          sim::QueuePolicy::kCalendar};

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic self-sustaining event storm. Each fired event folds its id
// and timestamp into an order hash (the cross-queue identity probe) and
// schedules `fanout` children with mixed deltas: mostly near-term (wheel
// territory), occasionally far future (spill territory), priority jitter.
struct Storm {
  sim::Kernel* k;
  std::uint64_t budget;
  std::uint64_t fanout;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t order_hash = 1469598103934665603ULL;

  void fire(std::uint64_t id) {
    ++executed;
    order_hash = (order_hash ^ id) * 1099511628211ULL;
    order_hash = (order_hash ^ k->now()) * 1099511628211ULL;
    for (std::uint64_t c = 0; c < fanout && scheduled < budget; ++c) {
      const std::uint64_t child = scheduled++;
      const std::uint64_t h = mix64(child);
      const TimePs dt =
          (h % 16 == 0) ? 1'000'000 + h % 8'000'000  // beyond the horizon
                        : h % 2'048;                 // wheel territory
      const int pri = static_cast<int>((h >> 8) % 3) - 1;
      k->schedule_in(dt, StormEvent{this, child}, pri);
    }
  }

  struct StormEvent {
    Storm* storm;
    std::uint64_t id;
    void operator()() const { storm->fire(id); }
  };
};
static_assert(sim::EventFn::stores_inline<Storm::StormEvent>);

RunMetrics run_storm(sim::QueuePolicy policy, const BenchConfig& cfg,
                     std::int64_t pending, std::uint64_t fanout) {
  sim::Kernel k(policy);
  // Parked backlog: daemons beyond the storm window set the steady queue
  // depth without ever executing.
  for (std::int64_t i = 0; i < pending; ++i)
    k.schedule_daemon_at(milliseconds(1000) + static_cast<TimePs>(i) * 1000,
                         [] {});

  Storm storm{&k, cfg.events, fanout};
  const std::uint64_t roots = std::min<std::uint64_t>(16, cfg.events);
  for (std::uint64_t r = 0; r < roots; ++r)
    k.schedule_at(mix64(r) % 1000, Storm::StormEvent{&storm, storm.scheduled++});

  const auto t0 = std::chrono::steady_clock::now();
  k.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = k.now();
  m.set_extra("events", static_cast<double>(storm.executed));
  m.set_extra("events_per_sec",
              static_cast<double>(storm.executed) / (wall_ns / 1e9));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("pending", static_cast<double>(pending));
  m.set_extra("fanout", static_cast<double>(fanout));
  m.set_extra("calendar",
              policy == sim::QueuePolicy::kCalendar ? 1.0 : 0.0);
  m.set_extra("order_hash_lo",
              static_cast<double>(storm.order_hash & 0xffffffffULL));
  m.set_extra("order_hash_hi", static_cast<double>(storm.order_hash >> 32));
  return m;
}

// End-to-end: a full virtual platform (cores, channels, DMA, interconnect)
// running the communication-heavy pipeline workload under each queue.
RunMetrics run_e2e(sim::QueuePolicy policy, const BenchConfig& cfg) {
  sim::PlatformConfig pcfg = sim::PlatformConfig::homogeneous(4);
  pcfg.kernel.policy = policy;
  sim::Platform plat(std::move(pcfg));
  perf::spawn_workload("pipeline", plat, /*seed=*/7, cfg.e2e_scale);
  const auto t0 = std::chrono::steady_clock::now();
  plat.kernel().run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = plat.kernel().now();
  m.set_extra("events",
              static_cast<double>(plat.kernel().events_executed()));
  m.set_extra("events_per_sec",
              static_cast<double>(plat.kernel().events_executed()) /
                  (wall_ns / 1e9));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("calendar",
              policy == sim::QueuePolicy::kCalendar ? 1.0 : 0.0);
  return m;
}

std::string storm_label(sim::QueuePolicy policy, std::int64_t pending,
                        std::uint64_t fanout) {
  return strformat("%s_p%lld_f%llu", sim::queue_policy_name(policy),
                   static_cast<long long>(pending),
                   static_cast<unsigned long long>(fanout));
}

// ------------------------------------------------------------ tiled storm

constexpr DurationPs kTileLookahead = 2048;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFnvInit = 1469598103934665603ULL;

// Partitioned event storm: one independent sub-storm per tile, with 1/8 of
// the children posted to a sibling tile through the engine's timestamped
// mailboxes (landing exactly lookahead-deep, the earliest instant the
// conservative contract admits). Tiles share no mutable state — each event
// touches only its own tile's slot — so sequential and parallel execution
// are bit-identical; per-tile order hashes fold in tile order into one
// fingerprint.
struct TiledStorm {
  struct alignas(64) Tile {
    sim::Kernel* k = nullptr;
    std::uint64_t budget = 0;     // children this tile may still schedule
    std::uint64_t fanout = 0;
    std::uint64_t work = 0;       // mix64 rounds per event body
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t order_hash = kFnvInit;
  };

  sim::TiledEngine* engine = nullptr;
  std::vector<Tile> tiles;

  struct Event {
    TiledStorm* storm;
    std::uint32_t tile;
    std::uint64_t id;
    void operator()() const { storm->fire(tile, id); }
  };

  void fire(std::uint32_t t, std::uint64_t id) {
    Tile& tl = tiles[t];
    ++tl.executed;
    // The event "body": deterministic busy work, folded into the hash so
    // the optimizer cannot drop it.
    std::uint64_t acc = id;
    for (std::uint64_t w = 0; w < tl.work; ++w) acc = mix64(acc);
    tl.order_hash = (tl.order_hash ^ id ^ (acc >> 63)) * kFnvPrime;
    tl.order_hash = (tl.order_hash ^ tl.k->now()) * kFnvPrime;
    const auto tcount = static_cast<std::uint32_t>(tiles.size());
    for (std::uint64_t c = 0; c < tl.fanout && tl.scheduled < tl.budget;
         ++c) {
      const std::uint64_t child =
          (static_cast<std::uint64_t>(t) << 40) | tl.scheduled++;
      const std::uint64_t h = mix64(child);
      const int pri = static_cast<int>((h >> 8) % 3) - 1;
      if (tcount > 1 && h % 8 == 0) {
        const std::uint32_t dst =
            (t + 1 + static_cast<std::uint32_t>((h >> 16) % (tcount - 1))) %
            tcount;
        engine->post(t, dst, tl.k->now() + kTileLookahead + h % 2048,
                     Event{this, dst, child}, pri);
      } else {
        tl.k->schedule_in(h % 2048, Event{this, t, child}, pri);
      }
    }
  }

  [[nodiscard]] std::uint64_t total_executed() const {
    std::uint64_t n = 0;
    for (const Tile& t : tiles) n += t.executed;
    return n;
  }

  // Per-tile digests combined in tile order — the same canonicalization
  // ExecutionRecorder uses, so it is identical across exec modes.
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t f = kFnvInit;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      f = (f ^ t) * kFnvPrime;
      f = (f ^ tiles[t].executed) * kFnvPrime;
      f = (f ^ tiles[t].order_hash) * kFnvPrime;
    }
    return f;
  }
};

RunMetrics run_tiled_storm(sim::QueuePolicy policy, const BenchConfig& cfg,
                           std::uint32_t tiles, std::int64_t pending,
                           bool parallel) {
  std::vector<std::unique_ptr<sim::Kernel>> kernels;
  std::vector<sim::Kernel*> ptrs;
  for (std::uint32_t t = 0; t < tiles; ++t) {
    kernels.push_back(std::make_unique<sim::Kernel>(policy));
    ptrs.push_back(kernels.back().get());
  }
  sim::TiledEngine engine(
      ptrs, kTileLookahead,
      {parallel ? sim::ExecMode::kParallel : sim::ExecMode::kSequential,
       /*force_threads=*/parallel});

  TiledStorm storm;
  storm.engine = &engine;
  storm.tiles.resize(tiles);
  for (std::uint32_t t = 0; t < tiles; ++t) {
    TiledStorm::Tile& tl = storm.tiles[t];
    tl.k = ptrs[t];
    tl.budget = cfg.tiled_events / tiles;
    tl.fanout = 4;
    tl.work = cfg.tile_work;
    // Parked backlog: `pending` is the steady depth of each tile's queue.
    for (std::int64_t i = 0; i < pending; ++i)
      tl.k->schedule_daemon_at(
          milliseconds(1000) + static_cast<TimePs>(i) * 1000, [] {});
    const std::uint64_t roots = std::min<std::uint64_t>(16, tl.budget);
    for (std::uint64_t r = 0; r < roots; ++r)
      tl.k->schedule_at(
          mix64(r ^ (t * 0x9e3779b9ULL)) % 1000,
          TiledStorm::Event{
              &storm, t,
              (static_cast<std::uint64_t>(t) << 40) | tl.scheduled++});
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = engine.now();
  const std::uint64_t fp = storm.fingerprint();
  m.set_extra("events", static_cast<double>(storm.total_executed()));
  m.set_extra("events_per_sec",
              static_cast<double>(storm.total_executed()) / (wall_ns / 1e9));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("tiles", static_cast<double>(tiles));
  m.set_extra("pending", static_cast<double>(pending));
  m.set_extra("calendar",
              policy == sim::QueuePolicy::kCalendar ? 1.0 : 0.0);
  m.set_extra("parallel", parallel ? 1.0 : 0.0);
  m.set_extra("used_parallel", engine.last_run_parallel() ? 1.0 : 0.0);
  m.set_extra("epochs", static_cast<double>(engine.epochs()));
  m.set_extra("cross_posts", static_cast<double>(engine.cross_posts()));
  m.set_extra("fingerprint_lo", static_cast<double>(fp & 0xffffffffULL));
  m.set_extra("fingerprint_hi", static_cast<double>(fp >> 32));
  const unsigned hw = std::thread::hardware_concurrency();
  m.set_extra("hw_threads", static_cast<double>(hw));
  m.set_extra("parallel_capable", hw >= tiles ? 1.0 : 0.0);
  return m;
}

// End-to-end tiled identity: the tiled_pipeline workload on a 4-core
// platform partitioned into 4 tiles, sequential vs threaded, fingerprinted
// through ExecutionRecorder — the whole-stack version of the storm gate.
RunMetrics run_e2e_tiled(const BenchConfig& cfg, bool parallel) {
  sim::PlatformConfig pcfg = sim::PlatformConfig::homogeneous(4);
  pcfg.trace_enabled = true;
  sim::apply_tiling(pcfg, 4, /*partition_cores=*/true);
  pcfg.kernel.exec =
      parallel ? sim::ExecMode::kParallel : sim::ExecMode::kSequential;
  sim::Platform plat(std::move(pcfg));
  if (parallel) plat.engine()->set_force_threads(true);
  vpdebug::ExecutionRecorder rec(plat);
  perf::spawn_workload("tiled_pipeline", plat, /*seed=*/7, cfg.e2e_scale);

  const auto t0 = std::chrono::steady_clock::now();
  plat.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RunMetrics m;
  m.makespan = plat.now();
  const std::uint64_t fp = rec.fingerprint();
  m.set_extra("events", static_cast<double>(rec.events()));
  m.set_extra("wall_ms", wall_ns / 1e6);
  m.set_extra("parallel", parallel ? 1.0 : 0.0);
  m.set_extra("used_parallel",
              plat.engine()->last_run_parallel() ? 1.0 : 0.0);
  m.set_extra("fingerprint_lo", static_cast<double>(fp & 0xffffffffULL));
  m.set_extra("fingerprint_hi", static_cast<double>(fp >> 32));
  const unsigned hw = std::thread::hardware_concurrency();
  m.set_extra("hw_threads", static_cast<double>(hw));
  m.set_extra("parallel_capable", hw >= 4 ? 1.0 : 0.0);
  return m;
}

std::string tiled_label(std::uint32_t tiles, sim::QueuePolicy policy,
                        std::int64_t pending, bool parallel) {
  return strformat("tiled_t%u_%s_p%lld_%s", tiles,
                   sim::queue_policy_name(policy),
                   static_cast<long long>(pending),
                   parallel ? "par" : "seq");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      // CI smoke configuration: shallow and deep depth, single fan-out.
      cfg.events = 60'000;
      cfg.e2e_scale = 2;
      cfg.pendings = {0, 10'000};
      cfg.fanouts = {1};
      cfg.tiled_events = 60'000;
    }
  }

  harness::Scenario scenario("e13_kernel_throughput");
  for (const std::int64_t pending : cfg.pendings)
    for (const std::uint64_t fanout : cfg.fanouts)
      for (const sim::QueuePolicy policy : kPolicies)
        scenario.add_run(storm_label(policy, pending, fanout),
                         [&cfg, policy, pending, fanout](
                             const harness::RunContext&) {
                           return run_storm(policy, cfg, pending, fanout);
                         });
  for (const sim::QueuePolicy policy : kPolicies)
    scenario.add_run(strformat("e2e_%s", sim::queue_policy_name(policy)),
                     [&cfg, policy](const harness::RunContext&) {
                       return run_e2e(policy, cfg);
                     });
  for (const std::uint32_t tiles : cfg.tiles_axis)
    for (const sim::QueuePolicy policy : kPolicies)
      for (const std::int64_t pending : cfg.pendings) {
        scenario.add_run(tiled_label(tiles, policy, pending, false),
                         [&cfg, tiles, policy, pending](
                             const harness::RunContext&) {
                           return run_tiled_storm(policy, cfg, tiles,
                                                  pending, false);
                         });
        if (tiles > 1)
          scenario.add_run(tiled_label(tiles, policy, pending, true),
                           [&cfg, tiles, policy, pending](
                               const harness::RunContext&) {
                             return run_tiled_storm(policy, cfg, tiles,
                                                    pending, true);
                           });
      }
  scenario.add_run("e2e_tiled_seq", [&cfg](const harness::RunContext&) {
    return run_e2e_tiled(cfg, false);
  });
  scenario.add_run("e2e_tiled_par", [&cfg](const harness::RunContext&) {
    return run_e2e_tiled(cfg, true);
  });
  // Timing bench: one thread, so runs never contend for cores.
  const auto result = harness::Runner(harness::RunnerConfig{1}).run(scenario);

  std::printf("E13: kernel event throughput, calendar/two-tier queue vs "
              "binary heap (%llu-event storms)\n",
              static_cast<unsigned long long>(cfg.events));
  Table t({"pending", "fanout", "heap Mev/s", "calendar Mev/s", "speedup",
           "identical"});
  bool deterministic = true;
  bool queue_perf_ok = true;
  double deep_speedup = 0.0;
  for (const std::int64_t pending : cfg.pendings) {
    for (const std::uint64_t fanout : cfg.fanouts) {
      const auto* heap = result.find(
          storm_label(sim::QueuePolicy::kBinaryHeap, pending, fanout));
      const auto* cal = result.find(
          storm_label(sim::QueuePolicy::kCalendar, pending, fanout));
      const bool identical =
          heap->metrics.makespan == cal->metrics.makespan &&
          heap->metrics.extra_or("events") == cal->metrics.extra_or("events") &&
          heap->metrics.extra_or("order_hash_lo") ==
              cal->metrics.extra_or("order_hash_lo") &&
          heap->metrics.extra_or("order_hash_hi") ==
              cal->metrics.extra_or("order_hash_hi");
      deterministic = deterministic && identical;
      const double h = heap->metrics.extra_or("events_per_sec");
      const double c = cal->metrics.extra_or("events_per_sec");
      const double speedup = c / h;
      const bool deep_cell =
          pending == cfg.pendings.back() && fanout == cfg.fanouts.front();
      if (deep_cell) deep_speedup = speedup;
      // Perf gate: the calendar queue must not regress below the heap
      // baseline recorded in this same run. Strict on the deep queue (the
      // win case), 25% noise allowance elsewhere.
      queue_perf_ok = queue_perf_ok && speedup >= (deep_cell ? 1.0 : 0.75);
      t.add_row({Table::num(static_cast<std::uint64_t>(pending)),
                 Table::num(fanout), strformat("%.1f", h / 1e6),
                 strformat("%.1f", c / 1e6), strformat("%.2fx", speedup),
                 identical ? "yes" : "NO"});
    }
  }
  t.print("two-tier queue vs heap; 'identical' = same makespan, event "
          "count and order hash");

  const auto* eh = result.find("e2e_heap");
  const auto* ec = result.find("e2e_calendar");
  std::printf("end-to-end (pipeline workload on a 4-core platform): "
              "heap %.0fms, calendar %.0fms (%.2fx), makespans %s\n",
              eh->metrics.extra_or("wall_ms"),
              ec->metrics.extra_or("wall_ms"),
              eh->metrics.extra_or("wall_ms") /
                  ec->metrics.extra_or("wall_ms"),
              eh->metrics.makespan == ec->metrics.makespan
                  ? "identical"
                  : "DIVERGENT");
  deterministic =
      deterministic && eh->metrics.makespan == ec->metrics.makespan;

  // ----------------------------------------------------------- tiles axis
  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint32_t max_tiles = cfg.tiles_axis.back();
  const bool parallel_capable = hw >= max_tiles;
  std::printf("\ntile-partitioned engine (%u hardware threads, parallel "
              "speedup gate %s)\n",
              hw, parallel_capable ? "armed" : "skipped");
  Table tt({"tiles", "policy", "pending", "seq Mev/s", "par Mev/s",
            "par speedup", "identical"});
  bool tiled_identical = true;
  double tiled_speedup = 0.0;
  for (const std::uint32_t tiles : cfg.tiles_axis) {
    for (const sim::QueuePolicy policy : kPolicies) {
      for (const std::int64_t pending : cfg.pendings) {
        const auto* seq =
            result.find(tiled_label(tiles, policy, pending, false));
        const double s = seq->metrics.extra_or("events_per_sec");
        if (tiles == 1) {
          tt.add_row({Table::num(static_cast<std::uint64_t>(tiles)),
                    sim::queue_policy_name(policy),
                      Table::num(static_cast<std::uint64_t>(pending)),
                      strformat("%.1f", s / 1e6), "-", "-", "-"});
          continue;
        }
        const auto* par =
            result.find(tiled_label(tiles, policy, pending, true));
        const bool identical =
            seq->metrics.makespan == par->metrics.makespan &&
            seq->metrics.extra_or("events") ==
                par->metrics.extra_or("events") &&
            seq->metrics.extra_or("fingerprint_lo") ==
                par->metrics.extra_or("fingerprint_lo") &&
            seq->metrics.extra_or("fingerprint_hi") ==
                par->metrics.extra_or("fingerprint_hi");
        tiled_identical = tiled_identical && identical;
        const double p = par->metrics.extra_or("events_per_sec");
        const double speedup = p / s;
        if (tiles == max_tiles &&
            policy == sim::QueuePolicy::kCalendar &&
            pending == cfg.pendings.back())
          tiled_speedup = speedup;
        tt.add_row({Table::num(static_cast<std::uint64_t>(tiles)),
                    sim::queue_policy_name(policy),
                    Table::num(static_cast<std::uint64_t>(pending)),
                    strformat("%.1f", s / 1e6), strformat("%.1f", p / 1e6),
                    strformat("%.2fx", speedup),
                    identical ? "yes" : "NO"});
      }
    }
  }
  tt.print("conservative lookahead epochs; 'identical' = same makespan, "
           "event count and per-tile order fingerprint, sequential vs "
           "threaded");

  const auto* ets = result.find("e2e_tiled_seq");
  const auto* etp = result.find("e2e_tiled_par");
  const bool e2e_tiled_identical =
      ets->metrics.makespan == etp->metrics.makespan &&
      ets->metrics.extra_or("fingerprint_lo") ==
          etp->metrics.extra_or("fingerprint_lo") &&
      ets->metrics.extra_or("fingerprint_hi") ==
          etp->metrics.extra_or("fingerprint_hi");
  std::printf("end-to-end tiled_pipeline (4 cores / 4 tiles): seq %.0fms, "
              "par %.0fms, fingerprints %s\n",
              ets->metrics.extra_or("wall_ms"),
              etp->metrics.extra_or("wall_ms"),
              e2e_tiled_identical ? "identical" : "DIVERGENT");
  tiled_identical = tiled_identical && e2e_tiled_identical;

  const bool speedup_ok = !parallel_capable || tiled_speedup >= 2.0;
  std::printf("parallel gates: fingerprints %s; %u-tile speedup %.2fx "
              "(>=2x gate %s)\n",
              tiled_identical ? "identical" : "DIVERGENT", max_tiles,
              tiled_speedup,
              parallel_capable ? (speedup_ok ? "pass" : "FAIL")
                               : "skipped: too few hardware threads");

  // Scrub the nondeterministic wall-clock fields (and the throughputs
  // derived from them) so the exported document is byte-identical across
  // reruns — the timing lives on stdout and in this process's gates.
  const harness::ScenarioResult scrubbed = bench::scrub_wall_clock(result);
  if (const auto s = harness::write_json("BENCH_kernel.json", {scrubbed});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: speedup grows with pending depth (the heap "
              "pays O(log n)\nper event); >=2x at 10k pending "
              "(measured %.2fx, floor %s); every row identical.\n",
              deep_speedup, queue_perf_ok ? "held" : "BROKEN");
  return deterministic && queue_perf_ok && tiled_identical && speedup_ok
             ? 0
             : 1;
}
