// Ablation A1 — mapper choice.
//
// MAPS (Sec. IV) maps "using optimization algorithms"; this ablation
// quantifies what each layer buys: random placement, run-time dynamic
// dispatch, HEFT list scheduling, and simulated-annealing refinement,
// across three task-graph shapes. Each (workload, mapper) cell is one
// rw::harness run, fanned out over the hardware threads; the pivoted
// table below is assembled from the collected records.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"

namespace {

using namespace rw;
using namespace rw::maps;

TimePs random_mapping_makespan(const TaskGraph& g,
                               const std::vector<PeDesc>& pes,
                               const CommCost& comm, int tries,
                               std::uint64_t seed) {
  Rng rng(seed);
  TimePs best = UINT64_MAX;
  for (int i = 0; i < tries; ++i) {
    std::vector<std::size_t> assign(g.tasks().size());
    for (auto& a : assign) a = rng.next_below(pes.size());
    best = std::min(best, evaluate_mapping(g, pes, comm, assign));
  }
  return best;
}

}  // namespace

int main() {
  const auto comm = simple_comm_cost(nanoseconds(200), 0.004);
  std::vector<PeDesc> pes{{sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kDsp, mhz(300)},
                          {sim::PeClass::kDsp, mhz(300)}};

  struct Workload {
    const char* name;
    TaskGraph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"jpeg/6t", partition_program(jpeg_encoder_program(16), {6, 8.0})
                      .graph});
  workloads.push_back({"h264/4sl", h264_encoder_taskgraph(4)});
  workloads.push_back(
      {"mixed/8t", partition_program(mixed_kind_program(8), {8, 8.0})
                       .graph});

  const char* mappers[] = {"random", "dynamic", "heft", "anneal"};
  harness::Scenario scenario("a1_mapping_ablation");
  for (const auto& w : workloads) {
    for (const char* m : mappers) {
      scenario.add_run(
          std::string(w.name) + ":" + m,
          [&w, &pes, &comm, m](const harness::RunContext& ctx) {
            RunMetrics out;
            const std::string mapper(m);
            if (mapper == "random")
              out.makespan =
                  random_mapping_makespan(w.graph, pes, comm, 50, ctx.seed);
            else if (mapper == "dynamic")
              out.makespan = dynamic_schedule(w.graph, pes, comm).makespan;
            else if (mapper == "heft")
              out.makespan = heft_map(w.graph, pes, comm).makespan;
            else
              out.makespan =
                  anneal_map(w.graph, pes, comm, 3, 2000).makespan;
            return out;
          });
    }
  }
  const auto result = harness::Runner().run(scenario);

  std::printf("A1: mapping-algorithm ablation on 2xRISC + 2xDSP\n");
  Table t({"workload", "random best-of-50", "dynamic", "HEFT",
           "HEFT+anneal", "anneal gain vs random"});
  for (const auto& w : workloads) {
    const auto cell = [&](const char* m) {
      return result.find(std::string(w.name) + ":" + m)->metrics.makespan;
    };
    const TimePs rnd = cell("random");
    const TimePs ann = cell("anneal");
    t.add_row({w.name, format_time(rnd), format_time(cell("dynamic")),
               format_time(cell("heft")), format_time(ann),
               Table::num(static_cast<double>(rnd) /
                          static_cast<double>(ann)) + "x"});
  }
  t.print("makespan by mapper");
  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s =
          harness::write_json("BENCH_a1_mapping_ablation.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: HEFT/anneal at or below every alternative "
              "(anneal starts from\nHEFT, so it can only improve); dynamic "
              "pays for its lack of lookahead; random\nneeds dozens of "
              "tries to get close on small graphs and falls behind on "
              "bigger ones.\n");
  return 0;
}
