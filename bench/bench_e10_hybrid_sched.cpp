// E10 — Sec. II-B: "there is a need for scheduling algorithms that can in
// a reactive way mitigate multiple requests for parallel computing
// resources as well [as] sequential computing resources ... a predictable
// approach shall be designed, that can meet application dead-line
// requirements. To the best of our knowledge, no such algorithm has been
// published yet." — plus Sec. IV's concurrency graph for worst-case load.
//
// Shape to reproduce: the hybrid scheduler admits hard-RT sets up to the
// analysis-certified capacity of its time-shared cores (admitted sets
// never miss in simulation); the reactive pool keeps interactive response
// low under rising batch load; and the concurrency graph sizes the
// platform for the worst legal application mix.
//
// All three parts run as rw::harness runs (the admission sequence and the
// concurrency graph as one run each, the pool sweep as one run per batch
// load) and land in BENCH_e10_hybrid_sched.json.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "maps/concurrency.hpp"
#include "sched/hybrid.hpp"
#include "sched/uniproc.hpp"

namespace {

using namespace rw;
using namespace rw::sched;

constexpr int kRtSets = 8;

// Part 1: sequential admission of 8 RT sets onto 2 time-shared cores.
// Admission is stateful (later sets see earlier load), so the whole
// sequence is one deterministic run; per-set outcomes become extras.
RunMetrics run_admission() {
  HybridConfig cfg;
  cfg.time_shared_cores = 2;
  HybridScheduler os(cfg);
  RunMetrics m;
  std::uint64_t admitted = 0, total_misses = 0;
  for (int i = 0; i < kRtSets; ++i) {
    TaskSet ts;
    ts.add("rt" + std::to_string(i), 900'000,
           milliseconds(2 + (i % 3)));  // ~0.9Mcycles every 2-4 ms
    const auto adm = os.admit_rt(ts);
    m.set_extra(strformat("rt%d_admitted", i), adm.admitted ? 1.0 : 0.0);
    if (!adm.admitted) continue;
    ++admitted;
    m.set_extra(strformat("rt%d_core", i),
                static_cast<double>(adm.core));
    m.set_extra(strformat("rt%d_freq_hz", i),
                static_cast<double>(adm.frequency));
    TaskSet merged = os.rt_cores()[adm.core];
    merged.frequency = os.rt_frequencies()[adm.core];
    assign_dm_priorities(merged);
    const auto sim = simulate_uniproc(merged, milliseconds(120),
                                      {Policy::kFixedPriority, 200});
    m.set_extra(strformat("rt%d_misses", i),
                static_cast<double>(sim.total_misses()));
    total_misses += sim.total_misses();
  }
  m.deadline_misses = total_misses;
  m.set_extra("admitted", static_cast<double>(admitted));
  return m;
}

// Part 2: one pool run per batch load level.
RunMetrics run_pool_level(int batch) {
  HybridConfig cfg;
  cfg.pool_cores = 16;
  HybridScheduler os(cfg);
  std::vector<HybridScheduler::GangArrival> arr;
  for (int b = 0; b < batch; ++b) {
    HybridScheduler::GangArrival a;
    a.app.name = "batch" + std::to_string(b);
    a.app.total_work = 200'000'000;
    a.app.serial_fraction = 0.05;
    a.arrival = 0;
    arr.push_back(a);
  }
  HybridScheduler::GangArrival inter;
  inter.app.name = "interactive";
  inter.app.total_work = 4'000'000;
  inter.app.serial_fraction = 0.0;
  inter.arrival = milliseconds(5);
  arr.push_back(inter);

  const auto r = os.run_pool(arr);
  double batch_sum = 0;
  DurationPs inter_resp = 0;
  for (const auto& a : r.pool_apps) {
    if (a.name == "interactive") {
      inter_resp = a.response();
    } else {
      batch_sum += static_cast<double>(a.response());
    }
  }
  RunMetrics m;
  m.makespan = r.pool_makespan;
  m.mean_core_utilization = r.pool_utilization;
  m.set_extra("batch_jobs", batch);
  m.set_extra("batch_mean_response_ps", batch_sum / batch);
  m.set_extra("interactive_response_ps", static_cast<double>(inter_resp));
  m.set_extra("reallocations", static_cast<double>(r.reallocations));
  return m;
}

// Part 3: concurrency-graph provisioning (Sec. IV).
RunMetrics run_concurrency() {
  maps::ConcurrencyGraph cg;
  const auto mp3 = cg.add_app("mp3", 0.2);
  const auto call = cg.add_app("voice_call", 0.6);
  const auto video = cg.add_app("video_rec", 1.4);
  const auto browser = cg.add_app("browser", 0.8);
  const auto sync = cg.add_app("bg_sync", 0.3);
  cg.add_conflict(mp3, browser);
  cg.add_conflict(mp3, sync);
  cg.add_conflict(call, sync);
  cg.add_conflict(video, sync);
  cg.add_conflict(browser, sync);
  cg.add_conflict(call, browser);
  const auto wc = cg.worst_case_load();
  RunMetrics m;
  m.set_extra("worst_case_load", wc.load);
  m.set_extra("clique_size", static_cast<double>(wc.clique.size()));
  m.set_extra("cores_needed", static_cast<double>(cg.cores_needed(0.7)));
  return m;
}

}  // namespace

int main() {
  const int batches[] = {1, 2, 4, 8, 16};

  harness::Scenario scenario("e10_hybrid_sched");
  scenario.add_run("admission",
                   [](const harness::RunContext&) { return run_admission(); });
  for (const int batch : batches)
    scenario.add_run(strformat("pool_b%02d", batch),
                     [batch](const harness::RunContext&) {
                       return run_pool_level(batch);
                     });
  scenario.add_run("concurrency", [](const harness::RunContext&) {
    return run_concurrency();
  });
  const auto result = harness::Runner().run(scenario);

  std::printf("E10: hybrid time-shared/space-shared reactive scheduling\n");
  {
    const auto& m = result.find("admission")->metrics;
    Table t({"arriving RT set", "admitted?", "core", "frequency",
             "sim misses"});
    for (int i = 0; i < kRtSets; ++i) {
      const bool adm = m.extra_or(strformat("rt%d_admitted", i)) > 0.5;
      t.add_row({"rt" + std::to_string(i), adm ? "yes" : "REJECTED",
                 adm ? Table::num(static_cast<std::uint64_t>(
                           m.extra_or(strformat("rt%d_core", i))))
                     : "-",
                 adm ? format_hz(static_cast<HertzT>(
                           m.extra_or(strformat("rt%d_freq_hz", i))))
                     : "-",
                 adm ? Table::num(static_cast<std::uint64_t>(
                           m.extra_or(strformat("rt%d_misses", i))))
                     : "-"});
    }
    t.print("admission control (2 time-shared cores, DVFS ladder)");
    std::printf("admitted %.0f/%d; every admitted row must show 0 misses "
                "(predictability).\n\n",
                m.extra_or("admitted"), kRtSets);
  }
  {
    Table t({"batch jobs", "batch mean response", "interactive response",
             "pool util"});
    for (const int batch : batches) {
      const auto& m = result.find(strformat("pool_b%02d", batch))->metrics;
      t.add_row({Table::num(static_cast<std::uint64_t>(batch)),
                 format_time(static_cast<TimePs>(
                     m.extra_or("batch_mean_response_ps"))),
                 format_time(static_cast<TimePs>(
                     m.extra_or("interactive_response_ps"))),
                 Table::percent(m.mean_core_utilization)});
    }
    t.print("reactive equipartition: interactive job vs batch load");
  }
  {
    const auto& m = result.find("concurrency")->metrics;
    std::printf("concurrency graph: worst-case load %.2f from a %zu-app "
                "clique -> %zu cores needed at U=0.7 each\n",
                m.extra_or("worst_case_load"),
                static_cast<std::size_t>(m.extra_or("clique_size")),
                static_cast<std::size_t>(m.extra_or("cores_needed")));
  }

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s =
          harness::write_json("BENCH_e10_hybrid_sched.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("\nexpected shape: admission fills both cores then rejects; "
              "interactive response\nstays near its 16-core lower bound "
              "while batch responses stretch; provisioning\nfollows the "
              "heaviest legal clique, not the sum of all apps.\n");
  return 0;
}
