// E10 — Sec. II-B: "there is a need for scheduling algorithms that can in
// a reactive way mitigate multiple requests for parallel computing
// resources as well [as] sequential computing resources ... a predictable
// approach shall be designed, that can meet application dead-line
// requirements. To the best of our knowledge, no such algorithm has been
// published yet." — plus Sec. IV's concurrency graph for worst-case load.
//
// Shape to reproduce: the hybrid scheduler admits hard-RT sets up to the
// analysis-certified capacity of its time-shared cores (admitted sets
// never miss in simulation); the reactive pool keeps interactive response
// low under rising batch load; and the concurrency graph sizes the
// platform for the worst legal application mix.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "maps/concurrency.hpp"
#include "sched/hybrid.hpp"
#include "sched/uniproc.hpp"

int main() {
  using namespace rw;
  using namespace rw::sched;

  // --- part 1: predictable hard-RT admission ---
  std::printf("E10: hybrid time-shared/space-shared reactive scheduling\n");
  {
    HybridConfig cfg;
    cfg.time_shared_cores = 2;
    HybridScheduler os(cfg);
    Table t({"arriving RT set", "admitted?", "core", "frequency",
             "sim misses"});
    int admitted_count = 0;
    for (int i = 0; i < 8; ++i) {
      TaskSet ts;
      ts.add("rt" + std::to_string(i), 900'000,
             milliseconds(2 + (i % 3)));  // ~0.9Mcycles every 2-4 ms
      const auto adm = os.admit_rt(ts);
      std::string misses = "-";
      if (adm.admitted) {
        ++admitted_count;
        TaskSet merged = os.rt_cores()[adm.core];
        merged.frequency = os.rt_frequencies()[adm.core];
        assign_dm_priorities(merged);
        const auto sim = simulate_uniproc(merged, milliseconds(120),
                                          {Policy::kFixedPriority, 200});
        misses = Table::num(sim.total_misses());
      }
      t.add_row({"rt" + std::to_string(i),
                 adm.admitted ? "yes" : "REJECTED",
                 adm.admitted ? Table::num(static_cast<std::uint64_t>(
                                    adm.core))
                              : "-",
                 adm.admitted ? format_hz(adm.frequency) : "-", misses});
    }
    t.print("admission control (2 time-shared cores, DVFS ladder)");
    std::printf("admitted %d/8; every admitted row must show 0 misses "
                "(predictability).\n\n", admitted_count);
  }

  // --- part 2: reactive pool under rising load ---
  {
    Table t({"batch jobs", "batch mean response", "interactive response",
             "pool util"});
    for (const int batch : {1, 2, 4, 8, 16}) {
      HybridConfig cfg;
      cfg.pool_cores = 16;
      HybridScheduler os(cfg);
      std::vector<HybridScheduler::GangArrival> arr;
      for (int b = 0; b < batch; ++b) {
        HybridScheduler::GangArrival a;
        a.app.name = "batch" + std::to_string(b);
        a.app.total_work = 200'000'000;
        a.app.serial_fraction = 0.05;
        a.arrival = 0;
        arr.push_back(a);
      }
      HybridScheduler::GangArrival inter;
      inter.app.name = "interactive";
      inter.app.total_work = 4'000'000;
      inter.app.serial_fraction = 0.0;
      inter.arrival = milliseconds(5);
      arr.push_back(inter);

      const auto r = os.run_pool(arr);
      double batch_sum = 0;
      DurationPs inter_resp = 0;
      for (const auto& a : r.pool_apps) {
        if (a.name == "interactive") {
          inter_resp = a.response();
        } else {
          batch_sum += static_cast<double>(a.response());
        }
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(batch)),
                 format_time(static_cast<TimePs>(batch_sum / batch)),
                 format_time(inter_resp),
                 Table::percent(r.pool_utilization)});
    }
    t.print("reactive equipartition: interactive job vs batch load");
  }

  // --- part 3: concurrency-graph provisioning (Sec. IV) ---
  {
    maps::ConcurrencyGraph cg;
    const auto mp3 = cg.add_app("mp3", 0.2);
    const auto call = cg.add_app("voice_call", 0.6);
    const auto video = cg.add_app("video_rec", 1.4);
    const auto browser = cg.add_app("browser", 0.8);
    const auto sync = cg.add_app("bg_sync", 0.3);
    cg.add_conflict(mp3, browser);
    cg.add_conflict(mp3, sync);
    cg.add_conflict(call, sync);
    cg.add_conflict(video, sync);
    cg.add_conflict(browser, sync);
    cg.add_conflict(call, browser);
    const auto wc = cg.worst_case_load();
    std::printf("concurrency graph: worst-case load %.2f from clique {",
                wc.load);
    for (const auto i : wc.clique)
      std::printf(" %s", cg.apps()[i].name.c_str());
    std::printf(" } -> %zu cores needed at U=0.7 each\n",
                cg.cores_needed(0.7));
  }

  std::printf("\nexpected shape: admission fills both cores then rejects; "
              "interactive response\nstays near its 16-core lower bound "
              "while batch responses stretch; provisioning\nfollows the "
              "heaviest legal clique, not the sum of all apps.\n");
  return 0;
}
