// E15 — the rw::ert multi-tenant job service under open-loop load.
//
// N tenants submit template jobs with Poisson arrivals through the one
// Session/JobSpec API; the sweep (tenant count x arrival rate) measures
// p50/p99 end-to-end latency and goodput per cell. Three gates ride
// along:
//   * identity — a single-tenant single-job Session run must reproduce
//     run_jobspec_direct() metrics exactly (same execution model, zero
//     service residue);
//   * shared-pool isolation — an abusive tenant flooding the shared pool
//     may not move a well-behaved tenant's p99 beyond the documented
//     bound (DESIGN.md: <= 2.0x quiet-cell p99, enforced by the
//     fair-share cap under contention);
//   * reserved isolation — with a hard reservation the victim's
//     completion fingerprint is bit-identical no matter the neighbor's
//     load (ratio exactly 1.0).
//
// One rw::harness run per cell; results land in BENCH_ert.json with the
// nondeterministic wall-clock fields scrubbed, so a fixed seed gives a
// byte-identical document.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "ert/service.hpp"
#include "ert/templates.hpp"
#include "harness/harness.hpp"

namespace {

using namespace rw;

constexpr std::uint64_t kSeed = 1;
/// Documented shared-pool isolation bound (see DESIGN.md, rw::ert): the
/// abusive-neighbor cell may inflate the victim's p99 by at most this
/// factor over the quiet cell.
constexpr double kSharedIsolationBound = 2.0;

struct BenchConfig {
  std::size_t cores = 8;
  std::uint64_t jobs_per_tenant = 24;
  std::vector<std::size_t> tenant_counts = {2, 4};
  std::vector<std::uint64_t> gaps_us = {80, 30, 12};  // mean inter-arrival
};

/// Submit `n` template jobs open-loop with Poisson arrivals. The stream
/// is a pure function of (tenant_seed, n, mean_gap) — in particular it is
/// independent of what any other tenant does, which the isolation gates
/// rely on.
std::vector<ert::JobHandle> submit_open_loop(
    ert::Session& session, std::uint64_t tenant_seed, std::uint64_t n,
    DurationPs mean_gap, std::vector<std::string> names = {}) {
  if (names.empty()) names = ert::template_names();
  Rng rng(tenant_seed);
  TimePs arrival = 0;
  std::vector<ert::JobHandle> handles;
  handles.reserve(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    arrival += static_cast<DurationPs>(
        rng.next_exponential(static_cast<double>(mean_gap)));
    ert::JobSpec spec =
        ert::make_template(names[static_cast<std::size_t>(j) % names.size()]);
    spec.arrival = arrival;
    handles.push_back(session.submit(std::move(spec)));
  }
  return handles;
}

DurationPs percentile(std::vector<DurationPs> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string cell(std::size_t tenants, std::uint64_t gap_us) {
  return strformat("t%zu_gap%03llu", tenants,
                   static_cast<unsigned long long>(gap_us));
}

/// One sweep cell: `tenants` equal-share tenants, Poisson arrivals with
/// the given mean gap, merged latency percentiles + goodput.
RunMetrics run_cell(const BenchConfig& cfg, std::size_t tenants,
                    std::uint64_t gap_us) {
  ert::ServiceConfig scfg;
  scfg.total_cores = cfg.cores;
  scfg.record_trace = false;
  ert::Service service(scfg);

  std::vector<ert::Session> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    auto s = service.open_session(ert::TenantConfig{
        .name = strformat("t%zu", t),
        .share = 1.0 / static_cast<double>(tenants)});
    sessions.push_back(s.value());
  }
  std::vector<ert::JobHandle> handles;
  for (std::size_t t = 0; t < tenants; ++t) {
    auto h = submit_open_loop(sessions[t], kSeed * 0x9e3779b97f4a7c15ULL + t,
                              cfg.jobs_per_tenant, microseconds(gap_us));
    handles.insert(handles.end(), h.begin(), h.end());
  }
  service.drain();

  std::vector<DurationPs> latencies;
  std::uint64_t completed = 0, rejected = 0, misses = 0;
  for (const ert::TenantStats& s : service.all_tenant_stats()) {
    latencies.insert(latencies.end(), s.latencies.begin(),
                     s.latencies.end());
    completed += s.completed;
    rejected += s.rejected;
    misses += s.deadline_misses;
  }
  RunMetrics m;
  m.makespan = service.now();
  m.deadline_misses = misses;
  m.set_extra("ert.completed", static_cast<double>(completed));
  m.set_extra("ert.rejected", static_cast<double>(rejected));
  m.set_extra("ert.p50_us",
              static_cast<double>(percentile(latencies, 50.0)) * 1e-6);
  m.set_extra("ert.p99_us",
              static_cast<double>(percentile(latencies, 99.0)) * 1e-6);
  m.set_extra("ert.goodput_jobs_per_ms",
              m.makespan == 0 ? 0.0
                              : static_cast<double>(completed) /
                                    (static_cast<double>(m.makespan) / 1e9));
  return m;
}

/// Victim p99 quiet vs beside an abusive tenant. The victim's submission
/// stream is identical in both services; only the neighbor changes. The
/// victim's jobs are gangs that fit inside its 25% share (max 2 of 8
/// cores), so the documented bound measures queueing interference — the
/// fair-share cap legitimately shrinks gangs larger than the share.
RunMetrics run_isolation(const BenchConfig& cfg, bool reserved) {
  const std::uint64_t victim_seed = kSeed * 0x9e3779b97f4a7c15ULL + 17;
  const std::uint64_t victim_jobs = 16;
  const DurationPs victim_gap = microseconds(300);  // well-behaved
  const std::vector<std::string> victim_mix = {"pipeline", "diamond",
                                               "cic_chain"};

  auto victim_stats = [&](bool abusive_neighbor) {
    ert::ServiceConfig scfg;
    scfg.total_cores = cfg.cores;
    scfg.record_trace = false;
    ert::Service service(scfg);
    auto victim = service.open_session(ert::TenantConfig{
        .name = "victim", .share = 0.25, .reserved = reserved});
    auto victim_handles = submit_open_loop(victim.value(), victim_seed,
                                           victim_jobs, victim_gap,
                                           victim_mix);
    if (abusive_neighbor) {
      auto abuser = service.open_session(
          ert::TenantConfig{.name = "abuser", .share = 0.75});
      // 8x the victim's volume at 30x its rate: a flood, not a workload.
      auto abuse_handles = submit_open_loop(
          abuser.value(), victim_seed + 1, victim_jobs * 8,
          victim_gap / 30);
      service.drain();
    } else {
      service.drain();
    }
    return service.tenant_stats(0);
  };

  const ert::TenantStats quiet = victim_stats(false);
  const ert::TenantStats loaded = victim_stats(true);
  const double quiet_p99 = static_cast<double>(quiet.percentile(99.0));
  const double loaded_p99 = static_cast<double>(loaded.percentile(99.0));

  RunMetrics m;
  m.makespan = static_cast<TimePs>(loaded_p99);
  m.set_extra("ert.quiet_p99_us", quiet_p99 * 1e-6);
  m.set_extra("ert.loaded_p99_us", loaded_p99 * 1e-6);
  m.set_extra("ert.p99_ratio",
              quiet_p99 == 0 ? 1.0 : loaded_p99 / quiet_p99);
  m.set_extra("ert.fingerprint_equal",
              quiet.fingerprint == loaded.fingerprint ? 1.0 : 0.0);
  return m;
}

/// Single-tenant single-job Session vs run_jobspec_direct: RunMetrics
/// must be equal on every deterministic field.
RunMetrics run_identity(const std::string& tmpl) {
  ert::ServiceConfig scfg;
  ert::Service service(scfg);
  auto session = service.open_session(ert::TenantConfig{.name = "solo"});
  const ert::JobSpec spec = ert::make_template(tmpl);
  const ert::JobHandle handle = session.value().submit(spec);
  const auto& outcome = handle.result();
  const auto direct = ert::run_jobspec_direct(spec, scfg);

  RunMetrics m = outcome.ok() ? outcome.value().metrics : RunMetrics{};
  m.set_extra("ert.identical",
              outcome.ok() && direct.ok() &&
                      outcome.value().metrics.sim_equal(direct.value())
                  ? 1.0
                  : 0.0);
  return m;
}

/// ISSUE 7 gate: with the static-admission precheck enabled, a realtime
/// job whose static makespan bound cannot meet its deadline is rejected
/// at submit with the typed reason, while the identical job with an
/// honest deadline is admitted and — the bound being conservative —
/// meets it. Purpose-built specs only: the stock templates' realtime
/// deadlines are not statically provable (conservative bounds reject
/// them), which is exactly why the precheck defaults off and no other
/// cell enables it.
RunMetrics run_static_admission() {
  ert::ServiceConfig scfg;
  scfg.static_admission = true;
  ert::Service service(scfg);
  auto session = service.open_session(ert::TenantConfig{.name = "rt"});

  ert::JobSpec spec;
  spec.name = "rt_probe";
  const auto a = spec.graph.add_task("a", 4'000);
  const auto b = spec.graph.add_task("b", 4'000);
  spec.graph.add_edge(a, b, 256);
  spec.qos = ert::QosClass::kRealtime;
  const DurationPs bound = ert::static_makespan_bound_ps(spec, scfg);

  ert::JobSpec doomed = spec;
  doomed.deadline = bound + scfg.arbitration_latency - 1;
  const ert::JobHandle hd = session.value().submit(doomed);

  ert::JobSpec honest = spec;
  honest.deadline = bound + scfg.arbitration_latency;
  const ert::JobHandle ho = session.value().submit(honest);

  RunMetrics m;
  m.makespan = ho.result().ok() ? ho.result().value().finished : 0;
  m.set_extra("ert.static_bound_us", static_cast<double>(bound) * 1e-6);
  m.set_extra("ert.static_rejected",
              !hd.result().ok() &&
                      hd.result().error().to_string().find(
                          "static-infeasible") != std::string::npos
                  ? 1.0
                  : 0.0);
  m.set_extra("ert.static_admitted",
              ho.result().ok() && ho.result().value().deadline_met ? 1.0
                                                                   : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      // CI smoke configuration: one tenant count, two rates, fewer jobs.
      cfg.jobs_per_tenant = 10;
      cfg.tenant_counts = {2};
      cfg.gaps_us = {80, 20};
    }
  }

  harness::Scenario scenario("e15_ert_service", kSeed);
  for (const std::size_t tenants : cfg.tenant_counts)
    for (const std::uint64_t gap : cfg.gaps_us)
      scenario.add_run(cell(tenants, gap),
                       [&cfg, tenants, gap](const harness::RunContext&) {
                         return run_cell(cfg, tenants, gap);
                       });
  scenario.add_run("isolation_shared", [&cfg](const harness::RunContext&) {
    return run_isolation(cfg, /*reserved=*/false);
  });
  scenario.add_run("isolation_reserved", [&cfg](const harness::RunContext&) {
    return run_isolation(cfg, /*reserved=*/true);
  });
  for (const std::string& tmpl : ert::template_names())
    scenario.add_run("identity_" + tmpl,
                     [tmpl](const harness::RunContext&) {
                       return run_identity(tmpl);
                     });
  scenario.add_run("static_admission", [](const harness::RunContext&) {
    return run_static_admission();
  });
  harness::ScenarioResult result = harness::Runner().run(scenario);

  std::printf("E15: ert service open-loop sweep (%zu cores, %llu "
              "jobs/tenant, seed %llu)\n",
              cfg.cores,
              static_cast<unsigned long long>(cfg.jobs_per_tenant),
              static_cast<unsigned long long>(kSeed));

  bool shape_ok = true;
  Table t({"tenants", "gap_us", "p50_us", "p99_us", "jobs/ms", "rejected",
           "makespan"});
  for (const std::size_t tenants : cfg.tenant_counts) {
    for (const std::uint64_t gap : cfg.gaps_us) {
      const auto& m = result.find(cell(tenants, gap))->metrics;
      const double p50 = m.extra_or("ert.p50_us");
      const double p99 = m.extra_or("ert.p99_us");
      if (p99 + 1e-9 < p50) shape_ok = false;
      t.add_row({Table::num(static_cast<std::uint64_t>(tenants)),
                 Table::num(gap), strformat("%.1f", p50),
                 strformat("%.1f", p99),
                 strformat("%.2f", m.extra_or("ert.goodput_jobs_per_ms")),
                 Table::num(m.extra_or("ert.rejected")),
                 format_time(m.makespan)});
    }
  }
  t.print("latency rises as the mean arrival gap shrinks; goodput "
          "saturates at capacity");

  {
    const auto& m = result.find("isolation_shared")->metrics;
    const double ratio = m.extra_or("ert.p99_ratio");
    if (ratio > kSharedIsolationBound) shape_ok = false;
    std::printf("isolation gate [shared]: victim p99 %.1fus quiet -> "
                "%.1fus beside flood (%.2fx, bound %.1fx) %s\n",
                m.extra_or("ert.quiet_p99_us"),
                m.extra_or("ert.loaded_p99_us"), ratio,
                kSharedIsolationBound,
                ratio <= kSharedIsolationBound ? "OK" : "VIOLATED");
  }
  {
    const auto& m = result.find("isolation_reserved")->metrics;
    const bool exact = m.extra_or("ert.p99_ratio") == 1.0 &&
                       m.extra_or("ert.fingerprint_equal") == 1.0;
    if (!exact) shape_ok = false;
    std::printf("isolation gate [reserved]: p99 ratio %.4f, fingerprint "
                "%s\n",
                m.extra_or("ert.p99_ratio"),
                m.extra_or("ert.fingerprint_equal") == 1.0
                    ? "bit-identical"
                    : "DIVERGED");
  }
  for (const std::string& tmpl : ert::template_names()) {
    const auto& m = result.find("identity_" + tmpl)->metrics;
    const bool identical = m.extra_or("ert.identical") == 1.0;
    if (!identical) shape_ok = false;
    std::printf("identity gate [%s]: session == direct %s (makespan %s)\n",
                tmpl.c_str(), identical ? "exactly" : "DIVERGED",
                format_time(m.makespan).c_str());
  }

  {
    const auto& m = result.find("static_admission")->metrics;
    const bool rejected = m.extra_or("ert.static_rejected") == 1.0;
    const bool admitted = m.extra_or("ert.static_admitted") == 1.0;
    if (!rejected || !admitted) shape_ok = false;
    std::printf("admission gate [static]: infeasible realtime job %s at "
                "submit; honest twin %s its deadline (bound %.1fus)\n",
                rejected ? "rejected" : "NOT REJECTED",
                admitted ? "admitted and met" : "MISSED",
                m.extra_or("ert.static_bound_us"));
  }

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  // Scrub the nondeterministic wall-clock fields so the exported document
  // is byte-identical for a fixed seed (the E15 CI gate diffs two runs).
  result.threads_used = 1;
  result.wall_ns = 0;
  for (harness::RunRecord& r : result.runs) r.metrics.wall_ns = 0;
  if (const auto s = harness::write_json("BENCH_ert.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: per-cell p99 >= p50 with latency growing "
              "as arrivals densify;\nshared-pool victim p99 stays within "
              "the documented %.1fx bound; a reserved\nvictim is "
              "bit-identical under any neighbor load; Session == direct "
              "path exactly.\n",
              kSharedIsolationBound);
  return shape_ok ? 0 : 1;
}
