// E2 — Sec. II-A: "there is a need to boost the performance of individual
// cores in order to achieve higher execution speed for sequential code
// ... the frequency at which each core executes shall be modifiable".
//
// Shape to reproduce: for an Amdahl-limited application the speedup curve
// saturates at 1/s; boosting the serial phase's core raises the ceiling
// roughly by the boost factor (at quadratic energy cost per cycle).
//
// Two parts, both through rw::harness (BENCH_e2_amdahl_boost.json):
//   * analytic — the classic Amdahl sweep over (serial fraction, cores,
//     boost), one run per serial fraction;
//   * simulated — a chunked fork-join app on the virtual platform where a
//     perf::PmuGovernor reads PMU utilization windows and boosts the
//     serial-phase core, versus the same app at a fixed clock. The
//     governed speedup must grow with the serial fraction — the
//     frequency-boost shape, now closed through the counter pipeline.
#include <cstdio>
#include <memory>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "perf/governor.hpp"
#include "perf/session.hpp"
#include "sched/dvfs.hpp"
#include "sched/task.hpp"
#include "sim/channel.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"

namespace {

using namespace rw;

constexpr std::size_t kCores = 4;
constexpr std::uint64_t kRounds = 4;
constexpr Cycles kWorkPerRound = 4'000'000;  // cycles, serial + parallel
constexpr Cycles kChunk = 4'000;             // 10 us at 400 MHz

struct AmdahlState {
  std::vector<std::unique_ptr<sim::Channel<std::uint64_t>>> fork;
  std::unique_ptr<sim::Channel<std::uint64_t>> join;
  Cycles parallel_per_worker = 0;
};

sim::Process amdahl_worker(sim::Platform& plat,
                           std::shared_ptr<AmdahlState> st,
                           std::size_t worker) {
  sim::Core& core = plat.core(worker);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    (void)co_await st->fork[worker]->recv();
    // Chunked so a DVFS decision between chunks takes effect mid-phase.
    for (Cycles left = st->parallel_per_worker; left > 0;) {
      const Cycles c = left < kChunk ? left : kChunk;
      co_await core.compute(c, "parallel");
      left -= c;
    }
    co_await st->join->send(worker);
  }
}

sim::Process amdahl_master(sim::Platform& plat,
                           std::shared_ptr<AmdahlState> st,
                           Cycles serial_per_round) {
  sim::Core& core = plat.core(0);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (Cycles left = serial_per_round; left > 0;) {
      const Cycles c = left < kChunk ? left : kChunk;
      co_await core.compute(c, "serial");
      left -= c;
    }
    for (auto& ch : st->fork) co_await ch->send(r);
    for (std::size_t w = 0; w < st->fork.size(); ++w)
      (void)co_await st->join->recv();
  }
}

RunMetrics run_sim(double serial_frac, bool governed) {
  sim::Platform plat(sim::PlatformConfig::homogeneous(kCores, mhz(400)));
  perf::PerfConfig pcfg;
  pcfg.profile = false;  // counters + epochs only; keep the run lean
  perf::PerfSession session(plat, pcfg);
  std::unique_ptr<perf::PmuGovernor> gov;
  if (governed) {
    gov = std::make_unique<perf::PmuGovernor>(plat, session.pmu(),
                                              perf::GovernorConfig{});
    gov->start();
  }

  auto st = std::make_shared<AmdahlState>();
  const auto serial =
      static_cast<Cycles>(static_cast<double>(kWorkPerRound) * serial_frac);
  st->parallel_per_worker = (kWorkPerRound - serial) / kCores;
  for (std::size_t w = 0; w < kCores; ++w)
    st->fork.push_back(std::make_unique<sim::Channel<std::uint64_t>>(
        plat.kernel(), 1, strformat("fork%zu", w)));
  st->join = std::make_unique<sim::Channel<std::uint64_t>>(plat.kernel(),
                                                           kCores, "join");
  for (std::size_t w = 0; w < kCores; ++w)
    sim::spawn(plat.kernel(), amdahl_worker(plat, st, w));
  sim::spawn(plat.kernel(), amdahl_master(plat, st, serial));
  plat.kernel().run();

  const perf::PerfReport report = session.report();
  RunMetrics m;
  m.makespan = report.makespan;
  m.mean_core_utilization = report.mean_utilization();
  report.to_extras(m);
  m.set_extra("dvfs_transitions",
              gov ? static_cast<double>(gov->transitions()) : 0.0);
  m.set_extra("serial_fraction", serial_frac);
  return m;
}

std::string sim_label(double serial_frac, bool governed) {
  return strformat("sim_s%02.0f_%s", serial_frac * 100,
                   governed ? "governed" : "fixed");
}

}  // namespace

int main() {
  using namespace rw::sched;

  std::printf("E2: Amdahl's law with serial-phase frequency boosting\n");

  const double fracs[] = {0.05, 0.20, 0.50};

  harness::Scenario scenario("e2_amdahl_boost");
  // Analytic sweep: one run per serial fraction, metrics carry the curve.
  for (const double serial : fracs) {
    scenario.add_run(strformat("amdahl_s%02.0f", serial * 100),
                     [serial](const harness::RunContext&) {
                       ParallelApp app;
                       app.total_work = 100'000'000;
                       app.serial_fraction = serial;
                       RunMetrics m;
                       for (const std::size_t n : {1u, 4u, 16u, 64u, 256u})
                         for (const double b : {1.0, 2.0, 4.0})
                           m.set_extra(
                               strformat("speedup_n%zu_b%.0f", n, b),
                               app.speedup(n, b));
                       m.set_extra("serial_fraction", serial);
                       return m;
                     });
  }
  // Simulated sweep: fixed clock vs PMU-governed DVFS.
  for (const double serial : fracs)
    for (const bool governed : {false, true})
      scenario.add_run(sim_label(serial, governed),
                       [serial, governed](const harness::RunContext&) {
                         return run_sim(serial, governed);
                       });
  const auto result = harness::Runner().run(scenario);

  for (const double serial : fracs) {
    const auto& m = result.find(strformat("amdahl_s%02.0f", serial * 100))
                        ->metrics;
    Table t({"cores", "speedup (no boost)", "speedup (2x boost)",
             "speedup (4x boost)"});
    for (const std::size_t n : {1u, 4u, 16u, 64u, 256u})
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(m.extra_or(strformat("speedup_n%zu_b1", n))),
                 Table::num(m.extra_or(strformat("speedup_n%zu_b2", n))),
                 Table::num(m.extra_or(strformat("speedup_n%zu_b4", n)))});
    t.print(strformat("serial fraction %.0f%% (analytic)", serial * 100));
  }

  Table e({"boost", "energy/cycle vs nominal"});
  for (const double b : {1.0, 2.0, 4.0})
    e.add_row({Table::num(b, 1),
               Table::num(relative_energy_per_cycle(
                   static_cast<HertzT>(mhz(400) * b), mhz(400)))});
  e.print("the price: energy per cycle grows quadratically with boost");

  Table s({"serial", "fixed makespan", "governed makespan",
           "governed speedup", "DVFS transitions", "busy cycles"});
  for (const double serial : fracs) {
    const auto& mf = result.find(sim_label(serial, false))->metrics;
    const auto& mg = result.find(sim_label(serial, true))->metrics;
    s.add_row({Table::percent(serial, 0), format_time(mf.makespan),
               format_time(mg.makespan),
               Table::num(static_cast<double>(mf.makespan) /
                          static_cast<double>(mg.makespan)),
               Table::num(static_cast<std::uint64_t>(
                   mg.extra_or("dvfs_transitions"))),
               Table::num(static_cast<std::uint64_t>(
                   mg.extra_or("pmu.busy_cycles")))});
  }
  s.print("simulated 4-core fork-join: PMU-windowed governor vs fixed "
          "400 MHz");

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto st =
          harness::write_json("BENCH_e2_amdahl_boost.json", {result});
      !st.ok())
    std::printf("warning: %s\n", st.error().to_string().c_str());
  std::printf("expected shape: unboosted analytic curves saturate at 1/s; "
              "boosting raises\nthe asymptote by the boost factor. In "
              "simulation the governor reads PMU\nutilization windows and "
              "boosts the busy core, so the governed speedup grows\nwith "
              "the serial fraction.\n");
  return 0;
}
