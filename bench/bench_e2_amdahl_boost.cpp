// E2 — Sec. II-A: "there is a need to boost the performance of individual
// cores in order to achieve higher execution speed for sequential code
// ... the frequency at which each core executes shall be modifiable".
//
// Shape to reproduce: for an Amdahl-limited application the speedup curve
// saturates at 1/s; boosting the serial phase's core raises the ceiling
// roughly by the boost factor (at quadratic energy cost per cycle).
#include <cstdio>

#include "common/table.hpp"
#include "common/strings.hpp"
#include "sched/dvfs.hpp"
#include "sched/task.hpp"

int main() {
  using namespace rw;
  using namespace rw::sched;

  std::printf("E2: Amdahl's law with serial-phase frequency boosting\n");

  for (const double serial : {0.05, 0.20, 0.50}) {
    ParallelApp app;
    app.total_work = 100'000'000;
    app.serial_fraction = serial;

    Table t({"cores", "speedup (no boost)", "speedup (2x boost)",
             "speedup (4x boost)"});
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(app.speedup(n, 1.0)),
                 Table::num(app.speedup(n, 2.0)),
                 Table::num(app.speedup(n, 4.0))});
    }
    t.print(strformat("serial fraction %.0f%%", serial * 100));
  }

  Table e({"boost", "energy/cycle vs nominal"});
  for (const double b : {1.0, 2.0, 4.0})
    e.add_row({Table::num(b, 1),
               Table::num(relative_energy_per_cycle(
                   static_cast<HertzT>(mhz(400) * b), mhz(400)))});
  e.print("the price: energy per cycle grows quadratically with boost");

  std::printf("expected shape: unboosted curves saturate at 1/s "
              "(20x, 5x, 2x); boosting\nthe serial phase multiplies the "
              "asymptote by roughly the boost factor.\n");
  return 0;
}
