// E6 — Sec. IV: "Early evaluation case studies exhibited great potential
// of the OSIP approach in lowering the task-switching overhead, compared
// to an additional RISC performing scheduling in a typical MPSoC
// environment" — enabling "higher PE utilization via more fine-grained
// tasks".
//
// Shape to reproduce: sweeping task grain downward, PE utilization under
// the RISC software scheduler collapses once its dispatch rate saturates,
// while OSIP keeps the PEs busy one to two orders of magnitude deeper
// into fine-grained territory.
#include <cstdio>

#include "common/table.hpp"
#include "maps/osip.hpp"

int main() {
  using namespace rw;
  using namespace rw::maps;

  const std::size_t kPes = 8;
  const std::uint64_t kTasks = 4000;
  const HertzT kFreq = mhz(400);

  std::printf("E6: OSIP vs RISC dispatcher, %llu tasks on %zu PEs\n",
              static_cast<unsigned long long>(kTasks), kPes);

  Table t({"grain (cycles)", "RISC util", "RISC overhead", "OSIP util",
           "OSIP overhead", "OSIP makespan gain"});
  for (const Cycles grain :
       {100'000u, 20'000u, 5'000u, 2'000u, 1'000u, 500u, 200u, 100u}) {
    const auto r =
        simulate_dispatch(kTasks, grain, kPes, kFreq, risc_dispatcher());
    const auto o =
        simulate_dispatch(kTasks, grain, kPes, kFreq, osip_dispatcher());
    t.add_row({Table::num(static_cast<std::uint64_t>(grain)),
               Table::percent(r.pe_utilization),
               Table::percent(r.dispatch_overhead),
               Table::percent(o.pe_utilization),
               Table::percent(o.dispatch_overhead),
               Table::num(static_cast<double>(r.makespan) /
                          static_cast<double>(o.makespan)) + "x"});
  }
  t.print("task-grain sweep");

  std::printf("expected shape: both fine at coarse grain; as the grain "
              "shrinks below the RISC\ndispatch latency (~1200 cycles x "
              "%zu PEs), RISC utilization collapses while OSIP\nsustains "
              "it — the 'more fine-grained tasks' the paper promises.\n",
              kPes);
  return 0;
}
