// Microbenchmarks (google-benchmark): the hot paths of the toolkit.
// These are engineering benchmarks, not paper experiments — they guard
// the simulator's own performance so the experiment sweeps stay fast.
#include <benchmark/benchmark.h>

#include "dataflow/executor.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"
#include "recoder/interp.hpp"
#include "recoder/parser.hpp"
#include "sched/analysis.hpp"
#include "sched/uniproc.hpp"
#include "sim/channel.hpp"
#include "sim/kernel.hpp"
#include "sim/process.hpp"

namespace {

using namespace rw;

// The self-rescheduling tick goes through the kernel-owned callable type
// (a 24-byte functor, inline in EventFn) rather than a self-capturing
// std::function, so the benchmark measures the event fast path and not an
// extra type-erasure indirection per event.
struct KernelTick {
  sim::Kernel* k;
  std::uint64_t* count;
  void operator()() const {
    if (++*count < 10000) k->schedule_in(10, KernelTick{k, count});
  }
};
static_assert(sim::EventFn::stores_inline<KernelTick>);

// Backlog events parked beyond the active window (daemons at far-future
// times never execute) set the steady queue depth the hot loop runs at:
// the binary heap pays O(log depth) per operation, the calendar wheel
// does not.
void fill_backlog(sim::Kernel& k, std::int64_t depth) {
  for (std::int64_t i = 0; i < depth; ++i)
    k.schedule_daemon_at(milliseconds(1) + static_cast<TimePs>(i) * 100,
                         [] {});
}

sim::QueuePolicy bench_policy(std::int64_t arg) {
  return arg != 0 ? sim::QueuePolicy::kCalendar
                  : sim::QueuePolicy::kBinaryHeap;
}

void BM_KernelEventThroughput(benchmark::State& state) {
  const sim::QueuePolicy policy = bench_policy(state.range(0));
  const std::int64_t pending = state.range(1);
  for (auto _ : state) {
    sim::Kernel k(policy);
    fill_backlog(k, pending);
    std::uint64_t count = 0;
    k.schedule_at(0, KernelTick{&k, &count});
    k.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_KernelEventThroughput)
    ->ArgNames({"calendar", "pending"})
    ->ArgsProduct({{0, 1}, {1, 100, 10000}});

sim::Process bench_producer(sim::Kernel& k, sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) co_await ch.send(i);
  (void)k;
}
sim::Process bench_consumer(sim::Channel<int>& ch, int n, int& sink) {
  for (int i = 0; i < n; ++i) sink += co_await ch.recv();
}

void BM_ChannelPingPong(benchmark::State& state) {
  const sim::QueuePolicy policy = bench_policy(state.range(0));
  const std::int64_t pending = state.range(1);
  for (auto _ : state) {
    sim::Kernel k(policy);
    fill_backlog(k, pending);
    sim::Channel<int> ch(k, 4);
    int sink = 0;
    sim::spawn(k, bench_producer(k, ch, 5000));
    sim::spawn(k, bench_consumer(ch, 5000, sink));
    k.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ChannelPingPong)
    ->ArgNames({"calendar", "pending"})
    ->ArgsProduct({{0, 1}, {0, 10000}});

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  sched::TaskSet ts;
  ts.frequency = mhz(200);
  for (int i = 0; i < 12; ++i)
    ts.add("t" + std::to_string(i), 50'000 + i * 10'000,
           milliseconds(2 + i));
  sched::assign_rm_priorities(ts);
  for (auto _ : state) {
    auto r = sched::response_time_analysis(ts, 200);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ResponseTimeAnalysis);

void BM_UniprocSimulation(benchmark::State& state) {
  sched::TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 100'000, milliseconds(4));
  ts.add("b", 200'000, milliseconds(6));
  ts.add("c", 300'000, milliseconds(12));
  for (auto _ : state) {
    auto r = sched::simulate_uniproc(ts, milliseconds(240),
                                     {sched::Policy::kEdf});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UniprocSimulation);

void BM_DataflowExecution(benchmark::State& state) {
  dataflow::Graph g;
  const auto a = g.add_actor("src", 500, 0);
  const auto b = g.add_actor("f1", 10'000, 1);
  const auto c = g.add_actor("f2", 10'000, 2);
  const auto d = g.add_actor("snk", 500, 3);
  g.connect(a, b, 1, 1);
  g.connect(b, c, 1, 1);
  g.connect(c, d, 1, 1);
  dataflow::ExecConfig cfg;
  cfg.num_cores = 4;
  cfg.source_period = microseconds(50);
  cfg.iterations = 200;
  for (auto _ : state) {
    auto r = dataflow::run_data_driven(g, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_DataflowExecution);

void BM_JpegPartition(benchmark::State& state) {
  const auto prog = maps::jpeg_encoder_program(16);
  for (auto _ : state) {
    auto r = maps::partition_program(prog, {6, 1.0});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JpegPartition);

void BM_HeftMapping(benchmark::State& state) {
  const auto part =
      maps::partition_program(maps::jpeg_encoder_program(16), {8, 1.0});
  const std::vector<maps::PeDesc> pes(
      8, maps::PeDesc{sim::PeClass::kRisc, mhz(400)});
  const auto comm = maps::simple_comm_cost(nanoseconds(200), 0.004);
  for (auto _ : state) {
    auto r = maps::heft_map(part.graph, pes, comm);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HeftMapping);

void BM_MiniCParse(benchmark::State& state) {
  std::string src;
  for (int i = 0; i < 50; ++i)
    src += "int f" + std::to_string(i) +
           "(int x) { int s = 0; for (int i = 0; i < 10; i = i + 1) "
           "{ s = s + x * i; } return s; }\n";
  for (auto _ : state) {
    auto r = recoder::parse_program(src);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_MiniCParse);

void BM_MiniCInterpret(benchmark::State& state) {
  auto p = recoder::parse_program(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(15); })");
  for (auto _ : state) {
    auto r = recoder::interpret(p.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MiniCInterpret);

}  // namespace

BENCHMARK_MAIN();
