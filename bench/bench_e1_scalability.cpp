// E1 — Sec. II-A: "The requirement of (near) linear performance increase
// with the addition of new processing cores can only be achieved by being
// able to treat the cores as uniform resources" ... "the design shall
// avoid any centralized constructs".
//
// Shape to reproduce: with a distributed allocator, throughput of a
// many-job parallel workload scales near-linearly in core count; with one
// centralized arbiter, the curve flattens as arbitration serializes.
#include <cstdio>

#include "common/table.hpp"
#include "sched/spacealloc.hpp"

int main() {
  using namespace rw;
  using namespace rw::sched;

  std::printf("E1: space-shared scalability, centralized vs distributed "
              "arbitration\n");
  Table t({"cores", "central makespan", "central speedup",
           "distrib makespan", "distrib speedup", "central arb wait"});

  auto run_cfg = [](std::size_t cores, ArbitrationStrategy strat) {
    GangConfig cfg;
    cfg.total_cores = cores;
    cfg.strategy = strat;
    cfg.arbiters = std::max<std::size_t>(1, cores / 4);
    cfg.arbitration_latency = microseconds(4);
    std::vector<GangRequest> reqs;
    for (int i = 0; i < 1024; ++i) {
      ParallelApp app;
      app.name = "job" + std::to_string(i);
      app.total_work = 60'000;  // 150 us at 400 MHz: fine-grained jobs
      app.serial_fraction = 0.0;
      app.min_cores = app.max_cores = 1;
      reqs.push_back({app, 0});
    }
    return run_gang_schedule(cfg, std::move(reqs));
  };

  const auto base_c = run_cfg(1, ArbitrationStrategy::kCentralized);
  const auto base_d = run_cfg(1, ArbitrationStrategy::kDistributed);
  for (const std::size_t cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto rc = run_cfg(cores, ArbitrationStrategy::kCentralized);
    const auto rd = run_cfg(cores, ArbitrationStrategy::kDistributed);
    t.add_row({Table::num(static_cast<std::uint64_t>(cores)),
               format_time(rc.makespan),
               Table::num(static_cast<double>(base_c.makespan) /
                          static_cast<double>(rc.makespan)),
               format_time(rd.makespan),
               Table::num(static_cast<double>(base_d.makespan) /
                          static_cast<double>(rd.makespan)),
               format_time(rc.arbitration_wait)});
  }
  t.print("1024 fine-grained jobs through the pool");
  std::printf("expected shape: distributed speedup tracks core count; "
              "centralized saturates\nonce the arbiter is the "
              "bottleneck (its waiting time keeps growing).\n");
  return 0;
}
