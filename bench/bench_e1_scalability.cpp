// E1 — Sec. II-A: "The requirement of (near) linear performance increase
// with the addition of new processing cores can only be achieved by being
// able to treat the cores as uniform resources" ... "the design shall
// avoid any centralized constructs".
//
// Shape to reproduce: with a distributed allocator, throughput of a
// many-job parallel workload scales near-linearly in core count; with one
// centralized arbiter, the curve flattens as arbitration serializes.
// Each (cores, strategy) configuration is an independent rw::harness run.
#include <cstdio>

#include "common/table.hpp"
#include "harness/harness.hpp"
#include "sched/spacealloc.hpp"

namespace {

using namespace rw;
using namespace rw::sched;

RunMetrics run_cfg(std::size_t cores, ArbitrationStrategy strat) {
  GangConfig cfg;
  cfg.total_cores = cores;
  cfg.strategy = strat;
  cfg.arbiters = std::max<std::size_t>(1, cores / 4);
  cfg.arbitration_latency = microseconds(4);
  std::vector<GangRequest> reqs;
  for (int i = 0; i < 1024; ++i) {
    ParallelApp app;
    app.name = "job" + std::to_string(i);
    app.total_work = 60'000;  // 150 us at 400 MHz: fine-grained jobs
    app.serial_fraction = 0.0;
    app.min_cores = app.max_cores = 1;
    reqs.push_back({app, 0});
  }
  return run_gang_schedule(cfg, std::move(reqs)).to_metrics();
}

std::string label(std::size_t cores, ArbitrationStrategy strat) {
  return std::string(arbitration_name(strat)) + std::to_string(cores);
}

}  // namespace

int main() {
  const std::size_t core_counts[] = {1, 2, 4, 8, 16, 32, 64};
  const ArbitrationStrategy strategies[] = {
      ArbitrationStrategy::kCentralized, ArbitrationStrategy::kDistributed};

  harness::Scenario scenario("e1_scalability");
  for (const std::size_t cores : core_counts)
    for (const auto strat : strategies)
      scenario.add_run(label(cores, strat),
                       [cores, strat](const harness::RunContext&) {
                         return run_cfg(cores, strat);
                       });
  const auto result = harness::Runner().run(scenario);

  const auto metric = [&](std::size_t cores, ArbitrationStrategy strat) {
    return result.find(label(cores, strat))->metrics;
  };
  const auto base_c = metric(1, ArbitrationStrategy::kCentralized);
  const auto base_d = metric(1, ArbitrationStrategy::kDistributed);

  std::printf("E1: space-shared scalability, centralized vs distributed "
              "arbitration\n");
  Table t({"cores", "central makespan", "central speedup",
           "distrib makespan", "distrib speedup", "central arb wait"});
  for (const std::size_t cores : core_counts) {
    const auto rc = metric(cores, ArbitrationStrategy::kCentralized);
    const auto rd = metric(cores, ArbitrationStrategy::kDistributed);
    t.add_row({Table::num(static_cast<std::uint64_t>(cores)),
               format_time(rc.makespan),
               Table::num(static_cast<double>(base_c.makespan) /
                          static_cast<double>(rc.makespan)),
               format_time(rd.makespan),
               Table::num(static_cast<double>(base_d.makespan) /
                          static_cast<double>(rd.makespan)),
               format_time(static_cast<TimePs>(
                   rc.extra_or("arbitration_wait_ps")))});
  }
  t.print("1024 fine-grained jobs through the pool");
  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s =
          harness::write_json("BENCH_e1_scalability.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: distributed speedup tracks core count; "
              "centralized saturates\nonce the arbiter is the "
              "bottleneck (its waiting time keeps growing).\n");
  return 0;
}
