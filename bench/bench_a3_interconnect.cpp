// Ablation A3 — interconnect choice under scaling traffic.
//
// Sec. II-A demands a "scalable, fast and low-latency chip interconnect";
// the shared bus is the canonical centralized construct, the mesh the
// distributed one. All-to-neighbour traffic at growing core counts shows
// where the bus stops scaling. Each (cores, interconnect) point is one
// rw::harness run — independent kernels, so the sweep fans out freely.
#include <cstdio>

#include "common/table.hpp"
#include "harness/harness.hpp"
#include "sim/interconnect.hpp"

namespace {

using namespace rw;
using namespace rw::sim;

/// Every core sends 1 KiB to its +1 neighbour, all at t=0; the metrics
/// carry the completion time and total contention.
template <typename Icn>
RunMetrics neighbour_traffic(Icn& icn, std::uint32_t n) {
  TimePs done = 0;
  for (std::uint32_t c = 0; c < n; ++c)
    done = std::max(done, icn.reserve_transfer(CoreId{c}, CoreId{(c + 1) % n},
                                               1024, 0)
                              .second);
  RunMetrics m;
  m.makespan = done;
  m.set_extra("contention_ps", static_cast<double>(icn.total_contention()));
  return m;
}

}  // namespace

int main() {
  const std::uint32_t core_counts[] = {4, 16, 64};

  harness::Scenario scenario("a3_interconnect");
  for (const std::uint32_t n : core_counts) {
    const std::uint32_t side = n == 4 ? 2 : (n == 16 ? 4 : 8);
    scenario.add_run("bus" + std::to_string(n),
                     [n](const harness::RunContext&) {
                       Kernel k;
                       SharedBus bus(k, SharedBus::Config{mhz(200), 8, 4});
                       return neighbour_traffic(bus, n);
                     });
    scenario.add_run(
        "mesh" + std::to_string(n), [n, side](const harness::RunContext&) {
          Kernel k;
          MeshNoc mesh(k, MeshNoc::Config{side, side, nanoseconds(5),
                                          mhz(500), 4});
          return neighbour_traffic(mesh, n);
        });
  }
  const auto result = harness::Runner().run(scenario);

  std::printf("A3: shared bus vs 2-D mesh under neighbour traffic\n");
  Table t({"cores", "bus: total time", "bus contention", "mesh: total time",
           "mesh contention"});
  for (const std::uint32_t n : core_counts) {
    const auto& bus = result.find("bus" + std::to_string(n))->metrics;
    const auto& mesh = result.find("mesh" + std::to_string(n))->metrics;
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               format_time(bus.makespan),
               format_time(static_cast<TimePs>(bus.extra_or("contention_ps"))),
               format_time(mesh.makespan),
               format_time(
                   static_cast<TimePs>(mesh.extra_or("contention_ps")))});
  }
  t.print("1 KiB per core to its neighbour, all simultaneously");
  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s =
          harness::write_json("BENCH_a3_interconnect.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: bus completion time grows linearly with core "
              "count (every\ntransfer serializes); the mesh's stays nearly "
              "flat — neighbour links are\ndisjoint. This is Sec. II-A's "
              "scalability argument in one table.\n");
  return 0;
}
