// Ablation A3 — interconnect choice under scaling traffic.
//
// Sec. II-A demands a "scalable, fast and low-latency chip interconnect";
// the shared bus is the canonical centralized construct, the mesh the
// distributed one. All-to-neighbour traffic at growing core counts shows
// where the bus stops scaling.
#include <cstdio>

#include "common/table.hpp"
#include "sim/interconnect.hpp"

int main() {
  using namespace rw;
  using namespace rw::sim;

  std::printf("A3: shared bus vs 2-D mesh under neighbour traffic\n");
  Table t({"cores", "bus: total time", "bus contention", "mesh: total time",
           "mesh contention"});

  for (const std::uint32_t n : {4u, 16u, 64u}) {
    const std::uint32_t side = n == 4 ? 2 : (n == 16 ? 4 : 8);

    Kernel kb;
    SharedBus bus(kb, SharedBus::Config{mhz(200), 8, 4});
    Kernel km;
    MeshNoc mesh(km,
                 MeshNoc::Config{side, side, nanoseconds(5), mhz(500), 4});

    // Every core sends 1 KiB to its +1 neighbour, all at t=0.
    TimePs bus_done = 0, mesh_done = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
      const CoreId src{c};
      const CoreId dst{(c + 1) % n};
      bus_done = std::max(bus_done,
                          bus.reserve_transfer(src, dst, 1024, 0).second);
      mesh_done = std::max(mesh_done,
                           mesh.reserve_transfer(src, dst, 1024, 0).second);
    }
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               format_time(bus_done), format_time(bus.total_contention()),
               format_time(mesh_done),
               format_time(mesh.total_contention())});
  }
  t.print("1 KiB per core to its neighbour, all simultaneously");
  std::printf("expected shape: bus completion time grows linearly with core "
              "count (every\ntransfer serializes); the mesh's stays nearly "
              "flat — neighbour links are\ndisjoint. This is Sec. II-A's "
              "scalability argument in one table.\n");
  return 0;
}
