// Ablation A4 — the multi-application scenario (the MVP evaluation role,
// Sec. IV): a hard-RT radio stack plus a growing population of soft and
// best-effort apps competing for one terminal. Static reservation for the
// hard app must hold its deadlines at any load; the best-effort tier
// absorbs the overload.
//
// Since rw::ert, every app is described once as an ert::JobSpec (built
// from the shared maps::pipeline_taskgraph template — the bench-local
// pipeline builder is gone) and converted to a multiapp descriptor with
// taskgraph_from_jobspec, exercising the one-API round trip the adapters
// guarantee.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "ert/adapters.hpp"
#include "maps/multiapp.hpp"
#include "maps/workloads.hpp"

namespace {

using namespace rw;
using namespace rw::maps;

ert::JobSpec pipeline_jobspec(const std::string& name, Cycles stage,
                              DurationPs period, sched::Criticality crit) {
  return ert::jobspec_from_taskgraph(
      pipeline_taskgraph(name, stage, period, crit));
}

}  // namespace

int main() {
  MultiAppConfig cfg;
  cfg.pes = {PeDesc{sim::PeClass::kRisc, mhz(400)},
             PeDesc{sim::PeClass::kRisc, mhz(400)},
             PeDesc{sim::PeClass::kDsp, mhz(300)},
             PeDesc{sim::PeClass::kDsp, mhz(300)}};
  cfg.comm = simple_comm_cost(nanoseconds(150), 0.004);
  cfg.horizon = milliseconds(64);

  std::printf("A4: multi-application load sweep on a 4-PE terminal\n");
  Table t({"soft+BE apps", "hard misses", "hard worst latency",
           "soft worst latency", "BE worst latency", "PE util"});

  for (const int extra : {0, 1, 2, 4, 6, 8}) {
    std::vector<ert::JobSpec> specs;
    specs.push_back(pipeline_jobspec("radio", 160'000, milliseconds(1),
                                     sched::Criticality::kHard));
    for (int i = 0; i < extra; ++i) {
      specs.push_back(pipeline_jobspec(
          rw::strformat("app%d", i), 400'000, milliseconds(4),
          i % 2 == 0 ? sched::Criticality::kSoft
                     : sched::Criticality::kBestEffort));
    }
    std::vector<TaskGraph> apps;
    apps.reserve(specs.size());
    for (const ert::JobSpec& spec : specs)
      apps.push_back(ert::taskgraph_from_jobspec(spec));
    const auto r = simulate_multiapp(apps, cfg);

    DurationPs soft_worst = 0, be_worst = 0;
    for (const auto& a : r.apps) {
      if (a.criticality == sched::Criticality::kSoft)
        soft_worst = std::max(soft_worst, a.worst_latency);
      if (a.criticality == sched::Criticality::kBestEffort)
        be_worst = std::max(be_worst, a.worst_latency);
    }
    t.add_row({Table::num(static_cast<std::uint64_t>(extra)),
               Table::num(r.hard_misses()),
               format_time(r.apps[0].worst_latency),
               extra > 0 ? format_time(soft_worst) : "-",
               extra > 1 ? format_time(be_worst) : "-",
               Table::percent(r.pe_utilization)});
  }
  t.print("hard radio stack + growing soft/best-effort population");
  std::printf("expected shape: hard misses stay 0 and its latency nearly "
              "flat at every load\n(static reservation); soft latencies "
              "grow moderately, best-effort absorbs the\nrest — Sec. IV's "
              "static-for-hard / dynamic-best-effort split.\n");
  return 0;
}
