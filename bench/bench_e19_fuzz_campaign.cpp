// E19: fuzz-campaign determinism and coverage.
//
// Runs the same rwfuzz campaign twice in one process and gates on three
// properties the DESIGN.md contract promises:
//
//  * determinism — the campaign report (schema rw-fuzz-campaign-1) and
//    the wall-scrubbed per-batch harness records are byte-identical
//    across the two executions;
//  * green — the stock invariants hold on every generated case, so the
//    campaign reports zero failures;
//  * coverage — the sweep plus directed fill reaches >=80% of the
//    reachable (family x fault-kind x policy x exec) matrix.
//
// Results land in BENCH_fuzz.json with wall-clock fields scrubbed
// (byte-identical across reruns, like BENCH_kernel.json); the measured
// wall time stays on stdout.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fuzz/campaign.hpp"
#include "harness/harness.hpp"

namespace {

using namespace rw;

struct CampaignRun {
  fuzz::CampaignReport report;
  std::string report_json;
  std::string batches_json;  // wall-scrubbed harness records
  double wall_ms = 0.0;
};

CampaignRun execute(const fuzz::CampaignConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignRun run;
  run.report = fuzz::run_campaign(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      1e6;
  run.report_json = run.report.to_json();
  std::vector<harness::ScenarioResult> scrubbed;
  scrubbed.reserve(run.report.batches.size());
  for (const harness::ScenarioResult& b : run.report.batches)
    scrubbed.push_back(bench::scrub_wall_clock(b));
  run.batches_json = harness::to_json(scrubbed);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::CampaignConfig cfg;
  cfg.seeds = 400;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tiny") == 0) {
      cfg.seeds = 120;
      cfg.tiny = true;
    }

  std::printf("== E19: fuzz campaign (%llu seeds%s), run twice\n\n",
              static_cast<unsigned long long>(cfg.seeds),
              cfg.tiny ? ", tiny" : "");
  const CampaignRun a = execute(cfg);
  const CampaignRun b = execute(cfg);

  a.report.summary_table().print("campaign totals (first execution)");
  a.report.coverage.to_table().print(
      "coverage: family x fault kind, each cell hit/reachable "
      "(policy x exec collapsed)");

  const bool report_identical = a.report_json == b.report_json;
  const bool batches_identical = a.batches_json == b.batches_json;
  const bool green = a.report.green() && b.report.green();
  const double coverage = a.report.coverage.fraction();
  const bool coverage_ok = coverage >= 0.8;

  std::printf("wall: first %.0fms, second %.0fms\n", a.wall_ms, b.wall_ms);
  std::printf("gates: report %s; scrubbed batches %s; failures %zu "
              "(green %s); coverage %.1f%% (>=80%% gate %s)\n",
              report_identical ? "identical" : "DIVERGENT",
              batches_identical ? "identical" : "DIVERGENT",
              a.report.failures.size(), green ? "pass" : "FAIL",
              coverage * 100.0, coverage_ok ? "pass" : "FAIL");

  std::vector<harness::ScenarioResult> scrubbed;
  for (const harness::ScenarioResult& batch : a.report.batches)
    scrubbed.push_back(bench::scrub_wall_clock(batch));
  if (const auto s = harness::write_json("BENCH_fuzz.json", scrubbed);
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: both executions byte-identical, zero "
              "failures, full-matrix coverage from the directed fill.\n");
  return report_identical && batches_identical && green && coverage_ok ? 0
                                                                       : 1;
}
