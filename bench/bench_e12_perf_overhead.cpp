// E12 — Sec. VII: virtual platforms make software observable without
// perturbing it ("the simulation can be non-intrusively instrumented"),
// whereas target-resident instrumentation steals cycles from the
// application. rw::perf models both.
//
// Shape to reproduce: sweeping the sampling period, the virtual-platform
// (non-intrusive) profiler's overhead is identically zero — the makespan
// equals the unobserved baseline bit for bit — while a modelled on-target
// sampling agent (cost_cycles > 0) slows the run roughly in proportion to
// the sampling rate. Attribution accuracy degrades as the period grows:
// the cost of observing less often. At the default 10 us period the
// intrusive overhead stays under 5% of the simulated makespan.
//
// One rw::harness run per (period, mode) cell plus the baseline;
// results land in BENCH_perf.json.
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "perf/profiler.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"

namespace {

using namespace rw;

constexpr std::size_t kCores = 4;
constexpr Cycles kIntrusiveCost = 100;  // cycles stolen per sample per core
constexpr std::uint64_t kSeed = 7;

struct BenchConfig {
  std::uint64_t scale = 8;
  std::vector<std::uint64_t> periods_us = {2, 5, 10, 20, 50};
};

std::unique_ptr<sim::Platform> make_platform() {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(kCores);
  cfg.trace_enabled = true;  // exact per-label busy time, for accuracy
  return std::make_unique<sim::Platform>(std::move(cfg));
}

RunMetrics run_baseline(std::uint64_t scale) {
  auto plat = make_platform();
  perf::spawn_workload("forkjoin", *plat, kSeed, scale);
  plat->kernel().run();
  RunMetrics m;
  m.makespan = plat->kernel().now();
  return m;
}

RunMetrics run_profiled(std::uint64_t scale, DurationPs period,
                        bool intrusive) {
  auto plat = make_platform();
  perf::PerfConfig pcfg;
  pcfg.profiler.period = period;
  pcfg.profiler.cost_cycles = intrusive ? kIntrusiveCost : 0;
  pcfg.collect_epochs = false;
  perf::PerfSession session(*plat, pcfg);
  perf::spawn_workload("forkjoin", *plat, kSeed, scale);
  plat->kernel().run();

  const perf::PerfReport report = session.report();
  RunMetrics m;
  m.makespan = report.makespan;
  m.mean_core_utilization = report.mean_utilization();
  report.to_extras(m);
  m.set_extra("period_us", static_cast<double>(period) / 1e6);
  m.set_extra("intrusive", intrusive ? 1.0 : 0.0);
  m.set_extra("attribution_accuracy",
              perf::attribution_accuracy(report.profile,
                                         plat->tracer().events(), kCores));
  return m;
}

std::string label(std::uint64_t period_us, bool intrusive) {
  return strformat("p%03llu_%s",
                   static_cast<unsigned long long>(period_us),
                   intrusive ? "intrusive" : "nonintrusive");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      // CI smoke configuration: small workload, two periods.
      cfg.scale = 1;
      cfg.periods_us = {5, 20};
    }
  }

  harness::Scenario scenario("e12_perf_overhead");
  scenario.add_run("baseline", [&cfg](const harness::RunContext&) {
    return run_baseline(cfg.scale);
  });
  for (const std::uint64_t p : cfg.periods_us)
    for (const bool intrusive : {false, true})
      scenario.add_run(label(p, intrusive),
                       [&cfg, p, intrusive](const harness::RunContext&) {
                         return run_profiled(cfg.scale, microseconds(p),
                                             intrusive);
                       });
  const auto result = harness::Runner().run(scenario);

  const TimePs base = result.find("baseline")->metrics.makespan;
  std::printf("E12: sampling-profiler overhead and attribution accuracy "
              "(forkjoin, %zu cores, baseline %s)\n",
              kCores, format_time(base).c_str());

  Table t({"period", "mode", "samples", "makespan", "overhead", "accuracy"});
  bool default_period_ok = true;
  for (const std::uint64_t p : cfg.periods_us) {
    for (const bool intrusive : {false, true}) {
      const auto& m = result.find(label(p, intrusive))->metrics;
      const double overhead =
          (static_cast<double>(m.makespan) - static_cast<double>(base)) /
          static_cast<double>(base);
      if (p == 10 && intrusive && overhead >= 0.05) default_period_ok = false;
      t.add_row({strformat("%llu us", static_cast<unsigned long long>(p)),
                 intrusive ? "on-target" : "virtual-platform",
                 Table::num(static_cast<std::uint64_t>(
                     m.extra_or("pmu.samples"))),
                 format_time(m.makespan), Table::percent(overhead),
                 Table::num(m.extra_or("attribution_accuracy"))});
    }
  }
  t.print("virtual-platform sampling is free; on-target sampling pays "
          "~cost/period");

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  if (const auto s = harness::write_json("BENCH_perf.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: virtual-platform rows show exactly 0%% "
              "overhead at every\nperiod; on-target overhead shrinks with "
              "the period (<5%% at the 10 us default);\naccuracy falls as "
              "samples get sparser.\n");
  return default_period_ok ? 0 : 1;
}
