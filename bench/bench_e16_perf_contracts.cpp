// E16 — static performance contracts vs the platform (ISSUE 7).
//
// The three lint performance passes promise conservative bounds: a
// makespan upper bound, a throughput lower bound (guaranteed period) and
// deadlock-free buffer capacities. This bench is the promise's audit:
// every corpus program, plus a seeded sweep of random mapped DAGs, is
// measured on the real executors and the ratio static/measured (the
// tightness) is reported per program. Two gates ride along:
//   * conservativeness — the simulated makespan never exceeds the static
//     bound, the measured minimal period never exceeds the guaranteed
//     period, and the static capacities run deadlock-free dynamically,
//     on every cell;
//   * tightness — the worst static/measured ratio stays within the
//     documented bound (EXPERIMENTS.md E16: <= 16x; the bound serializes
//     all work, so it loosens with the parallelism it foregoes).
//
// Results land in BENCH_contracts.json with wall-clock fields scrubbed:
// a fixed seed gives a byte-identical document.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/throughput.hpp"
#include "harness/harness.hpp"
#include "lint/corpus.hpp"
#include "lint/perf_contract.hpp"
#include "maps/mapping.hpp"
#include "maps/perf_bounds.hpp"

namespace {

using namespace rw;

constexpr std::uint64_t kSeed = 1;
/// Documented tightness bound (EXPERIMENTS.md, E16): no static bound may
/// exceed its measured twin by more than this factor on the corpus.
constexpr double kTightnessBound = 16.0;

std::uint64_t iteration_firings(const dataflow::Graph& g) {
  const auto rv = g.repetition_vector();
  if (!rv.ok()) return 0;
  std::uint64_t total = 0;
  for (const std::uint64_t f : rv.value().firings) total += f;
  return total;
}

/// Audit one corpus program: every contract part it carries is checked
/// against the corresponding measurement. `contract.conservative` is the
/// AND of every check; `contract.*_tightness` the static/measured ratios.
RunMetrics audit_program(const lint::CorpusProgram& p) {
  RunMetrics m;
  const lint::PerfContract c = lint::compute_perf_contract(p.target());
  double conservative = 1.0;
  double parts = 0.0;

  if (c.has_makespan) {
    parts += 1.0;
    sim::PlatformConfig pc = p.platform;
    sim::Platform platform(std::move(pc));
    const TimePs simulated =
        maps::execute_on_platform(p.tasks, p.task_to_pe, platform);
    m.makespan = simulated;
    const DurationPs bound = c.makespan.bound.bound;
    if (simulated > bound) conservative = 0.0;
    m.set_extra("contract.makespan_bound_us",
                static_cast<double>(bound) * 1e-6);
    m.set_extra("contract.makespan_simulated_us",
                static_cast<double>(simulated) * 1e-6);
    m.set_extra("contract.makespan_tightness",
                simulated == 0 ? 1.0
                               : static_cast<double>(bound) /
                                     static_cast<double>(simulated));
  }

  if (c.has_throughput) {
    parts += 1.0;
    const DurationPs measured =
        dataflow::min_sustainable_period(p.graph, p.graph_cfg);
    if (measured > 0 && measured > c.period_bound) conservative = 0.0;
    m.set_extra("contract.period_bound_us",
                static_cast<double>(c.period_bound) * 1e-6);
    m.set_extra("contract.period_measured_us",
                static_cast<double>(measured) * 1e-6);
    m.set_extra("contract.period_tightness",
                measured == 0 ? 1.0
                              : static_cast<double>(c.period_bound) /
                                    static_cast<double>(measured));
  }

  if (c.has_buffers) {
    parts += 1.0;
    dataflow::ExecConfig cfg = p.graph_cfg;
    lint::apply_buffer_contract(c, cfg);
    cfg.source_period = std::max(c.period_bound, cfg.source_period);
    cfg.iterations = 8;
    const auto r = dataflow::run_data_driven(p.graph, cfg);
    const bool ok = r.firings >= iteration_firings(p.graph) &&
                    r.internal_corruptions() == 0;
    if (!ok) conservative = 0.0;
    double tokens = 0;
    for (const std::size_t cap : c.buffer_capacities)
      tokens += static_cast<double>(cap);
    m.set_extra("contract.buffers_ok", ok ? 1.0 : 0.0);
    m.set_extra("contract.buffer_tokens", tokens);
  }

  m.set_extra("contract.parts", parts);
  m.set_extra("contract.conservative", conservative);
  return m;
}

/// Audit one random mapped DAG on a random platform (bus or mesh): the
/// makespan contract under machine shapes the corpus does not cover.
RunMetrics audit_random(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  maps::TaskGraph g;
  g.name = strformat("rand%llu", static_cast<unsigned long long>(seed));
  const std::size_t n = 4 + rng.next_below(5);
  std::vector<maps::TaskNodeId> ids;
  for (std::size_t i = 0; i < n; ++i)
    ids.push_back(g.add_task(strformat("t%zu", i),
                             500 + rng.next_below(19'500)));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (j == i + 1 || rng.next_bool(0.35))
        g.add_edge(ids[i], ids[j], 64 + rng.next_below(4'032));

  const std::size_t cores = 2 + rng.next_below(3);
  sim::PlatformConfig pc = sim::PlatformConfig::homogeneous(cores);
  if (rng.next_bool(0.5)) {
    pc.interconnect = sim::PlatformConfig::Icn::kMesh;
    pc.mesh.width = 2;
    pc.mesh.height = 2;
  }
  std::vector<std::size_t> task_to_pe(n);
  for (auto& pe : task_to_pe) pe = rng.next_below(cores);

  const auto b = maps::static_makespan_bound(
      g, maps::pes_from_platform(pc), maps::comm_cost_from_platform(pc),
      task_to_pe);
  sim::Platform platform(std::move(pc));
  const TimePs simulated = maps::execute_on_platform(g, task_to_pe, platform);

  RunMetrics m;
  m.makespan = simulated;
  m.set_extra("contract.parts", 1.0);
  m.set_extra("contract.makespan_bound_us",
              static_cast<double>(b.bound) * 1e-6);
  m.set_extra("contract.makespan_simulated_us",
              static_cast<double>(simulated) * 1e-6);
  m.set_extra("contract.makespan_tightness",
              simulated == 0 ? 1.0
                             : static_cast<double>(b.bound) /
                                   static_cast<double>(simulated));
  m.set_extra("contract.conservative",
              simulated <= b.bound ? 1.0 : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t random_cells = 10;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tiny") == 0) random_cells = 3;

  // Keep the corpus alive across the (parallel) harness runs: Target
  // views are non-owning.
  const auto corpus = lint::build_corpus();

  harness::Scenario scenario("e16_perf_contracts", kSeed);
  std::vector<std::string> cells;
  for (const auto& p : corpus) {
    const auto c = lint::compute_perf_contract(p.target());
    if (!c.has_makespan && !c.has_throughput && !c.has_buffers)
      continue;  // starved_csdf: deadlocked, no bound exists by design
    cells.push_back("corpus_" + p.name);
    scenario.add_run(cells.back(), [&p](const harness::RunContext&) {
      return audit_program(p);
    });
  }
  for (std::uint64_t s = 0; s < random_cells; ++s) {
    cells.push_back(strformat("random_%llu",
                              static_cast<unsigned long long>(s)));
    scenario.add_run(cells.back(), [s](const harness::RunContext&) {
      return audit_random(s);
    });
  }
  harness::ScenarioResult result = harness::Runner().run(scenario);

  std::printf("E16: static performance contracts vs measurement "
              "(seed %llu)\n",
              static_cast<unsigned long long>(kSeed));
  bool all_conservative = true;
  double worst_tightness = 1.0;
  Table t({"program", "bound_us", "simulated_us", "tightness", "W_us",
           "measured_us", "buffers"});
  for (const std::string& cell : cells) {
    const auto& m = result.find(cell)->metrics;
    if (m.extra_or("contract.conservative") != 1.0)
      all_conservative = false;
    worst_tightness = std::max(
        {worst_tightness, m.extra_or("contract.makespan_tightness", 1.0),
         m.extra_or("contract.period_tightness", 1.0)});
    t.add_row(
        {cell, strformat("%.2f", m.extra_or("contract.makespan_bound_us")),
         strformat("%.2f", m.extra_or("contract.makespan_simulated_us")),
         strformat("%.2f", m.extra_or("contract.makespan_tightness", 1.0)),
         strformat("%.2f", m.extra_or("contract.period_bound_us")),
         strformat("%.2f", m.extra_or("contract.period_measured_us")),
         m.extra_or("contract.parts") >= 3.0
             ? (m.extra_or("contract.buffers_ok") == 1.0 ? "ok" : "WEDGED")
             : "-"});
  }
  t.print("static bound vs measured twin; tightness = bound / measured");

  const bool tight_ok = worst_tightness <= kTightnessBound;
  std::printf("conservativeness gate: %s on %zu cells\n",
              all_conservative ? "OK" : "VIOLATED", cells.size());
  std::printf("tightness gate: worst %.2fx (documented bound %.1fx) %s\n",
              worst_tightness, kTightnessBound,
              tight_ok ? "OK" : "VIOLATED");

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  // Scrub the nondeterministic wall-clock fields so the exported document
  // is byte-identical for a fixed seed.
  result.threads_used = 1;
  result.wall_ns = 0;
  for (harness::RunRecord& r : result.runs) r.metrics.wall_ns = 0;
  if (const auto s = harness::write_json("BENCH_contracts.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: every cell conservative (the contract is a "
              "proof, not a heuristic);\ntightness largest where the "
              "serialized bound foregoes the most parallelism.\n");
  return all_conservative && tight_ok ? 0 : 1;
}
