// E4 — Sec. III: "it is sufficient to show at design time that a valid
// schedule exists such that the periodic source and sink task can execute
// wait-free" (back-pressure buffer sizing, Wiggers et al. [5]); and
// "data-driven systems can execute tasks aperiodically, while satisfying
// timing constraints".
//
// Shape to reproduce: (a) tightening the source period raises the buffer
// capacities the analysis needs until the period becomes unsustainable;
// (b) with the computed capacities, sources and sinks run wait-free even
// under heavy (bounded) execution-time jitter.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"

int main() {
  using namespace rw;
  using namespace rw::dataflow;

  // Imbalanced chain with *shared* PEs: the decoder and postfilter
  // time-share core 1, so at tight periods the chain needs decoupling
  // buffers to ride out the core's busy bursts (this is exactly where the
  // back-pressure analysis earns its keep).
  Graph g;
  const auto src = g.add_actor("src", 500, 0);
  const auto dec = g.add_actor("slow_dec", 30'000, 1);
  const auto post = g.add_actor("post", 6'000, 1);  // shares core 1!
  const auto snk = g.add_actor("snk", 0, 0);
  g.connect(src, dec, 1, 1);
  g.connect(dec, post, 1, 1);
  g.connect(post, snk, 1, 1);

  std::printf("E4: back-pressure buffer capacities vs source period\n");
  Table t({"period", "wait-free?", "cap(src->dec)", "cap(dec->post)",
           "cap(post->snk)", "total tokens"});
  for (const std::uint64_t period_us : {200u, 150u, 120u, 105u, 95u, 92u,
                                        89u}) {
    ExecConfig cfg;
    cfg.frequency = mhz(400);
    cfg.num_cores = 2;
    cfg.source_period = microseconds(period_us);
    const auto sizing = compute_buffer_capacities(g, cfg);
    t.add_row({format_time(cfg.source_period),
               sizing.wait_free ? "yes" : "NO",
               Table::num(static_cast<std::uint64_t>(sizing.capacities[0])),
               Table::num(static_cast<std::uint64_t>(sizing.capacities[1])),
               Table::num(static_cast<std::uint64_t>(sizing.capacities[2])),
               Table::num(static_cast<std::uint64_t>(sizing.total_tokens))});
  }
  t.print("design-time analysis");

  // Aperiodic execution under the computed bounds.
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 2;
  cfg.source_period = microseconds(95);
  cfg.iterations = 500;
  const auto sizing = compute_buffer_capacities(g, cfg);
  cfg.buffer_capacities = sizing.capacities;
  auto rng = std::make_shared<Rng>(7);
  cfg.acet = [rng](const Actor& a, std::uint64_t, Cycles wcet) {
    if (a.name == "src" || a.name == "snk") return wcet;
    // Anywhere from 20% to 100% of WCET: aggressively aperiodic.
    return std::max<Cycles>(1, wcet / 5 + rng->next_below(wcet * 4 / 5));
  };
  const auto r = run_data_driven(g, cfg);

  Table v({"metric", "value"});
  v.add_row({"iterations", Table::num(cfg.iterations)});
  v.add_row({"source drops", Table::num(r.source_drops)});
  v.add_row({"sink underruns", Table::num(r.sink_underruns)});
  v.add_row({"internal corruptions", Table::num(r.internal_corruptions())});
  v.add_row({"sink throughput", Table::num(r.sink_throughput_hz(), 0) +
                                   " Hz"});
  v.print("validation: aperiodic run under the computed capacities");
  std::printf("expected shape: while the period is sustainable the minimal "
              "capacities sit at the\nstructural bound (back-pressure keeps "
              "them from growing); at the utilization\ncliff the analysis "
              "reports the period unsustainable — 'showing at design time\n"
              "that a valid schedule exists' — and the validated aperiodic "
              "run is wait-free\n(0 drops, 0 underruns) despite heavy "
              "execution-time variation.\n");
  return 0;
}
