// E7 — Sec. V: "we have designed a CIC translator for the Cell processor
// with an H.264 encoding algorithm as an example. From the same CIC
// specification, we also generated a parallel program for an MPCore
// processor that is a symmetric multi-processor, which confirms the
// retargetability of the CIC model."
//
// Shape to reproduce: one CIC spec, multiple architecture files; outputs
// are bit-identical everywhere while generated code, timing, utilization
// and message counts differ per target. Also: scaling the Cell-like
// target's SPE count improves throughput without touching the program.
#include <cstdio>

#include "cic/archfile.hpp"
#include "cic/model.hpp"
#include "cic/translator.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

rw::cic::CicProgram h264_like(std::uint32_t slices) {
  using namespace rw;
  cic::CicProgram p("h264enc");
  const auto cam = p.add_task("camera", 4'000, {}, [&] {
    std::vector<std::string> outs;
    for (std::uint32_t s = 0; s < slices; ++s)
      outs.push_back("y" + std::to_string(s));
    return outs;
  }());
  p.set_period(cam, microseconds(900));
  std::vector<std::string> cabac_ins;
  for (std::uint32_t s = 0; s < slices; ++s)
    cabac_ins.push_back("c" + std::to_string(s));
  const auto cabac =
      p.add_task("cabac", 110'000, cabac_ins, {});
  for (std::uint32_t s = 0; s < slices; ++s) {
    const auto me = p.add_task("me" + std::to_string(s), 140'000, {"in"},
                               {"mv"});
    const auto tq = p.add_task("tq" + std::to_string(s), 70'000, {"mv"},
                               {"coef"});
    p.set_preferred_pe(me, rw::sim::PeClass::kDsp);
    p.connect(cam, "y" + std::to_string(s), me, "in", 16 * 1024);
    p.connect(me, "mv", tq, "mv", 4 * 1024);
    p.connect(tq, "coef", cabac, "c" + std::to_string(s), 8 * 1024);
  }
  return p;
}

}  // namespace

int main() {
  using namespace rw;
  using namespace rw::cic;

  const CicProgram app = h264_like(3);
  std::printf("E7: CIC retargetability — one spec (%zu tasks), many "
              "targets\n", app.tasks().size());

  Table t({"target", "style", "PEs", "makespan", "core util", "messages",
           "outputs match ref?"});
  std::string reference;
  for (const auto& arch :
       {ArchInfo::cell_like(2), ArchInfo::cell_like(4),
        ArchInfo::cell_like(6), ArchInfo::smp_like(2),
        ArchInfo::smp_like(4), ArchInfo::smp_like(8)}) {
    const auto mapping = CicMapping::automatic(app, arch);
    if (!mapping.ok()) continue;
    auto target = TargetProgram::translate(app, arch, mapping.value());
    if (!target.ok()) continue;
    const auto r = target.value().run(40);

    std::string digest;
    for (const auto& [task, tokens] : r.sink_outputs)
      for (const auto v : tokens) digest += std::to_string(v) + ";";
    if (reference.empty()) reference = digest;

    t.add_row({strformat("%s/%zu", arch.name.c_str(),
                         arch.platform.cores.size()),
               memory_style_name(arch.style),
               Table::num(static_cast<std::uint64_t>(
                   arch.platform.cores.size())),
               format_time(r.makespan),
               Table::percent(r.mean_core_utilization),
               Table::num(r.messages),
               digest == reference ? "yes" : "NO"});
  }
  t.print("same CicProgram across six targets");

  // The code actually differs per back end:
  const auto cell = ArchInfo::cell_like(4);
  const auto smp = ArchInfo::smp_like(4);
  auto tc = TargetProgram::translate(app, cell,
                                     CicMapping::automatic(app, cell).value());
  auto ts = TargetProgram::translate(app, smp,
                                     CicMapping::automatic(app, smp).value());
  const std::string cc = tc.value().generated_code();
  const std::string cs = ts.value().generated_code();
  std::printf("generated primitives: cell-like uses dma_send/msgq_recv "
              "(%s), smp uses\nshm_ring+lock (%s)\n",
              cc.find("dma_send") != std::string::npos ? "yes" : "no",
              cs.find("shm_ring_push") != std::string::npos ? "yes" : "no");
  std::printf("expected shape: every row says outputs match; timing and "
              "message counts differ;\nmore SPEs shorten the cell-like "
              "makespan without touching the program.\n");
  return 0;
}
