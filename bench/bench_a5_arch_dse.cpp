// Ablation A5 — architecture design-space exploration (the Sec. V
// future-work item, "exploration of optimal target architecture", made
// concrete): sweep SMP and Cell-like candidates for the H.264-like CIC
// program and print the area/performance Pareto front.
#include <cstdio>

#include "cic/dse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

rw::cic::CicProgram h264_like() {
  using namespace rw;
  cic::CicProgram p("h264enc");
  const auto cam = p.add_task("camera", 4'000, {}, {"y0", "y1", "y2"});
  p.set_period(cam, microseconds(900));
  const auto cabac = p.add_task("cabac", 110'000, {"c0", "c1", "c2"}, {});
  for (int s = 0; s < 3; ++s) {
    const auto me = p.add_task("me" + std::to_string(s), 140'000, {"in"},
                               {"mv"});
    const auto tq = p.add_task("tq" + std::to_string(s), 70'000, {"mv"},
                               {"coef"});
    p.set_preferred_pe(me, sim::PeClass::kDsp);
    p.connect(cam, "y" + std::to_string(s), me, "in", 16 * 1024);
    p.connect(me, "mv", tq, "mv", 4 * 1024);
    p.connect(tq, "coef", cabac, "c" + std::to_string(s), 8 * 1024);
  }
  return p;
}

}  // namespace

int main() {
  using namespace rw;
  using namespace rw::cic;

  const auto prog = h264_like();
  const auto points =
      explore_architectures(prog, default_candidates(8), {30, false});

  std::printf("A5: architecture DSE for the H.264-like CIC program "
              "(30 frames per run)\n");
  Table t({"candidate", "style", "area", "makespan", "util", "Pareto?"});
  for (const auto& p : points) {
    t.add_row({p.arch.name, memory_style_name(p.arch.style),
               Table::num(p.area_cost, 1),
               p.feasible ? format_time(p.makespan) : "-",
               p.feasible ? Table::percent(p.mean_core_utilization) : "-",
               p.pareto ? "YES" : ""});
  }
  t.print("16 candidates, area vs performance");

  std::printf("Pareto front (pick by your area budget):\n");
  for (const auto& p : points)
    if (p.pareto)
      std::printf("  %-8s area %.1f -> %s\n", p.arch.name.c_str(),
                  p.area_cost, format_time(p.makespan).c_str());
  std::printf("\nexpected shape: small SMPs anchor the cheap end; DSP-rich "
              "cell-likes win the\nfast end (motion estimation prefers "
              "DSPs); mid-size dominated points drop out.\n");
  return 0;
}
