// Ablation A5 — architecture design-space exploration (the Sec. V
// future-work item, "exploration of optimal target architecture", made
// concrete): sweep SMP and Cell-like candidates for the H.264-like CIC
// program and print the area/performance Pareto front.
//
// Since the rw::harness port, the sweep runs twice — serial and fanned out
// over every hardware thread — to demonstrate the harness determinism
// contract (identical Pareto front) and measure the wall-clock speedup.
// Machine-readable results land in BENCH_harness.json.
#include <chrono>
#include <cstdio>
#include <thread>

#include "cic/dse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"

namespace {

rw::cic::CicProgram h264_like() {
  using namespace rw;
  cic::CicProgram p("h264enc");
  const auto cam = p.add_task("camera", 4'000, {}, {"y0", "y1", "y2"});
  p.set_period(cam, microseconds(900));
  const auto cabac = p.add_task("cabac", 110'000, {"c0", "c1", "c2"}, {});
  for (int s = 0; s < 3; ++s) {
    const auto me = p.add_task("me" + std::to_string(s), 140'000, {"in"},
                               {"mv"});
    const auto tq = p.add_task("tq" + std::to_string(s), 70'000, {"mv"},
                               {"coef"});
    p.set_preferred_pe(me, sim::PeClass::kDsp);
    p.connect(cam, "y" + std::to_string(s), me, "in", 16 * 1024);
    p.connect(me, "mv", tq, "mv", 4 * 1024);
    p.connect(tq, "coef", cabac, "c" + std::to_string(s), 8 * 1024);
  }
  return p;
}

/// Deterministic one-line fingerprint of a DSE sweep (everything except
/// wall clocks) for the byte-identical serial-vs-parallel comparison.
std::string sweep_fingerprint(const std::vector<rw::cic::DsePoint>& pts) {
  std::string s;
  for (const auto& p : pts)
    s += rw::strformat("%s a=%.3f m=%llu u=%.6f d=%llu f=%d p=%d\n",
                       p.arch.name.c_str(), p.area_cost,
                       static_cast<unsigned long long>(p.metrics.makespan),
                       p.metrics.mean_core_utilization,
                       static_cast<unsigned long long>(
                           p.metrics.deadline_misses),
                       p.feasible, p.pareto);
  return s;
}

}  // namespace

int main() {
  using namespace rw;
  using namespace rw::cic;

  const auto prog = h264_like();
  const auto candidates = default_candidates(8);
  // Annealing makes each candidate evaluation heavy enough that the
  // fan-out's thread-pool overhead is noise against the per-run work.
  DseConfig cfg{60, true, 1};

  const auto wall_ms = [](auto fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<DsePoint> serial_pts, parallel_pts;
  harness::ScenarioResult serial_fanout, parallel_fanout;
  const double serial_ms = wall_ms([&] {
    serial_pts = explore_architectures(prog, candidates, cfg, &serial_fanout);
  });
  cfg.threads = 0;  // one worker per hardware thread
  const double parallel_ms = wall_ms([&] {
    parallel_pts =
        explore_architectures(prog, candidates, cfg, &parallel_fanout);
  });

  std::printf("A5: architecture DSE for the H.264-like CIC program "
              "(60 frames per run, annealed mapping)\n");
  Table t({"candidate", "style", "area", "makespan", "util", "Pareto?"});
  for (const auto& p : parallel_pts) {
    t.add_row({p.arch.name, memory_style_name(p.arch.style),
               Table::num(p.area_cost, 1),
               p.feasible ? format_time(p.metrics.makespan) : "-",
               p.feasible ? Table::percent(p.metrics.mean_core_utilization)
                          : "-",
               p.pareto ? "YES" : ""});
  }
  t.print("16 candidates, area vs performance");

  std::printf("Pareto front (pick by your area budget):\n");
  for (const auto& p : parallel_pts)
    if (p.pareto)
      std::printf("  %-8s area %.1f -> %s\n", p.arch.name.c_str(),
                  p.area_cost, format_time(p.metrics.makespan).c_str());

  const bool identical =
      sweep_fingerprint(serial_pts) == sweep_fingerprint(parallel_pts);
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  std::printf("\nharness fan-out: %zu candidates, serial %.0fms vs %zu "
              "threads %.0fms -> %.2fx speedup; results %s\n",
              candidates.size(), serial_ms, parallel_fanout.threads_used,
              parallel_ms, speedup,
              identical ? "byte-identical" : "DIVERGED (BUG)");

  serial_fanout.scenario = "a5_arch_dse_serial";
  parallel_fanout.scenario = "a5_arch_dse_parallel";
  if (const auto s = harness::write_json(
          "BENCH_harness.json", {serial_fanout, parallel_fanout});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  else
    std::printf("wrote BENCH_harness.json\n");

  std::printf("\nexpected shape: small SMPs anchor the cheap end; DSP-rich "
              "cell-likes win the\nfast end (motion estimation prefers "
              "DSPs); mid-size dominated points drop out;\nspeedup tracks "
              "hardware threads (runs are independent simulations).\n");
  return identical ? 0 : 1;
}
