// Ablation A6 — partitioned RT scheduling heuristics.
//
// Sec. II's locality argument implies partitioned (never-migrate)
// scheduling for sequential RT tasks; the open choice is the packing
// heuristic and the per-core test. This sweep measures cores needed by
// each combination over randomized task sets — the provisioning answer a
// platform architect actually needs.
#include <cstdio>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sched/partitioned.hpp"

int main() {
  using namespace rw;
  using namespace rw::sched;

  std::printf("A6: partitioned-scheduling heuristics, 40 random task sets "
              "each\n");
  Table t({"total U", "FF cores", "FFD cores", "BF cores", "WF cores",
           "FFD+RTA cores"});

  Rng rng(2026);
  for (const double target_u : {2.0, 3.0, 4.0, 6.0}) {
    double ff = 0, ffd = 0, bf = 0, wf = 0, ffd_rta = 0;
    int runs = 0;
    for (int trial = 0; trial < 40; ++trial) {
      // Random set summing to ~target_u.
      std::vector<RtTask> tasks;
      double u = 0;
      int i = 0;
      while (u < target_u) {
        const double ui = 0.05 + rng.next_double() * 0.5;
        const DurationPs period =
            milliseconds(static_cast<std::uint64_t>(rng.next_int(2, 50)));
        RtTask task;
        task.name = "t" + std::to_string(i++);
        task.period = period;
        task.wcet = static_cast<Cycles>(ui * static_cast<double>(period) /
                                        1e12 * mhz(100));
        tasks.push_back(task);
        u += ui;
      }
      auto count = [&](PackingHeuristic h, PerCoreTest test) {
        const auto n = min_cores_needed(tasks, mhz(100), h, 64, test);
        return n ? static_cast<double>(*n) : 64.0;
      };
      ff += count(PackingHeuristic::kFirstFit, PerCoreTest::kEdfDensity);
      ffd += count(PackingHeuristic::kFirstFitDecreasing,
                   PerCoreTest::kEdfDensity);
      bf += count(PackingHeuristic::kBestFit, PerCoreTest::kEdfDensity);
      wf += count(PackingHeuristic::kWorstFit, PerCoreTest::kEdfDensity);
      ffd_rta += count(PackingHeuristic::kFirstFitDecreasing,
                       PerCoreTest::kResponseTime);
      ++runs;
    }
    t.add_row({Table::num(target_u, 1), Table::num(ff / runs),
               Table::num(ffd / runs), Table::num(bf / runs),
               Table::num(wf / runs), Table::num(ffd_rta / runs)});
  }
  t.print("mean cores needed (EDF per-core test unless noted)");
  std::printf("expected shape: FFD <= FF <= WF under EDF (decreasing order "
              "defuses the\nbin-packing traps); the exact-but-fixed-priority "
              "RTA column needs slightly more\ncores than EDF — the price "
              "of fixed priorities.\n");
  return 0;
}
