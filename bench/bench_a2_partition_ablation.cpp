// Ablation A2 — partitioner communication weight.
//
// The MAPS-style clusterer trades load balance against cut bytes via
// `comm_weight` (cycles charged per byte crossing a cut). This sweep
// justifies the library default: too low and pipeline stages smear across
// clusters (serializing chains appear); too high and load balance decays.
#include <cstdio>

#include "common/table.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"

int main() {
  using namespace rw;
  using namespace rw::maps;

  const auto prog = jpeg_encoder_program(16);
  const auto comm = simple_comm_cost(nanoseconds(200), 0.004);
  const std::vector<PeDesc> pes(8, PeDesc{sim::PeClass::kRisc, mhz(400)});

  std::printf("A2: partitioner comm-weight sweep (JPEG-like, 8 tasks, "
              "8 PEs)\n");
  Table t({"comm weight", "tasks", "cut bytes", "max/min task load",
           "HEFT speedup"});
  for (const double w : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    const auto part = partition_program(prog, {8, w});
    Cycles max_t = 0, min_t = UINT64_MAX;
    for (const auto& task : part.graph.tasks()) {
      max_t = std::max(max_t, task.ref_cycles);
      min_t = std::min(min_t, task.ref_cycles);
    }
    const auto m = heft_map(part.graph, pes, comm);
    const TimePs seq = best_sequential_time(part.graph, pes);
    t.add_row({Table::num(w, 1),
               Table::num(static_cast<std::uint64_t>(
                   part.graph.tasks().size())),
               Table::num(part.cut_bytes),
               Table::num(static_cast<double>(max_t) /
                          static_cast<double>(std::max<Cycles>(min_t, 1))),
               Table::num(m.speedup_vs(seq))});
  }
  t.print("effect of pricing communication");
  std::printf("expected shape: cut bytes fall as the weight rises; speedup "
              "peaks in the\nmid-range (the library default, 8) where "
              "pipelines stay intact but load still\nbalances — the ends "
              "of the sweep lose to smeared stages or to imbalance.\n");
  return 0;
}
