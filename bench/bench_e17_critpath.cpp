// E17 — the what-if engine vs re-simulated reality (ISSUE 8).
//
// rw::critpath promises that a trace is enough: re-timing the dependence
// DAG predicts the makespan of a hypothetical edit without re-simulating,
// and the adviser's verified remap never loses to the baseline. This
// bench audits both promises over the corpus on both fabrics. Per cell
// (workload x bus/mesh) it runs the CLI's standard single-edit sweep and
// checks prediction against the re-simulated truth, re-times the
// unedited DAG (which must reproduce the observed makespan exactly), and
// runs advise_remap with its final re-simulation. Four gates ride along:
//   * accuracy — every what-if prediction within 10% of re-simulated
//     truth (EXPERIMENTS.md E17; with these reservation-order executors
//     it is in fact exact);
//   * identity — the unedited replay equals the observed makespan;
//   * never-slower — the adviser's verified mapping beats or matches the
//     baseline on every cell;
//   * scaling — deterministic replay work per DAG node stays under a
//     fixed constant, pinning the O(trace events) claim.
//
// Results land in BENCH_critpath.json with wall-clock fields scrubbed:
// a fixed seed gives a byte-identical document.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "critpath/driver.hpp"
#include "critpath/whatif.hpp"
#include "harness/harness.hpp"

namespace {

using namespace rw;

constexpr std::uint64_t kSeed = 1;
/// Documented accuracy bound (EXPERIMENTS.md, E17): no what-if prediction
/// may miss its re-simulated twin by more than this relative error.
constexpr double kErrorBound = 0.10;
/// O(trace events) gate: deterministic replay operations per DAG node.
/// One retiming touches each node, dependence edge and mesh route hop
/// once, so the ratio is a small constant independent of trace length.
constexpr double kOpsPerNodeBound = 64.0;

/// Audit one corpus workload on one fabric: sweep accuracy, replay
/// identity, adviser outcome and replay-cost scaling, as extras.
RunMetrics audit_workload(const std::string& name,
                          const critpath::CritOptions& opts) {
  RunMetrics m;
  const auto cc = critpath::build_corpus_case(name, opts);
  if (!cc.ok()) {
    m.set_extra("cp.valid", 0.0);
    return m;
  }
  const auto& c = cc.value();
  const critpath::DepGraph dep =
      critpath::trace_mapping(c.graph, c.cfg, c.task_to_pe);
  const critpath::Retimed base = critpath::retime(dep);
  const critpath::Attribution attr = critpath::attribute(dep, base);

  m.makespan = dep.observed_makespan();
  m.set_extra("cp.valid", 1.0);
  m.set_extra("cp.identity",
              base.makespan == dep.observed_makespan() ? 1.0 : 0.0);
  m.set_extra("cp.nodes", static_cast<double>(dep.nodes().size()));
  m.set_extra("cp.dep_edges",
              static_cast<double>(dep.dependence_edge_count()));
  m.set_extra("cp.ops_per_node",
              dep.nodes().empty()
                  ? 0.0
                  : static_cast<double>(base.ops) /
                        static_cast<double>(dep.nodes().size()));

  double worst = 0.0;
  double pred_us = 0.0, resim_us = 0.0;
  std::size_t sweeps = 0;
  for (const critpath::Edit& e : critpath::sweep_edits(dep, attr)) {
    const std::vector<critpath::Edit> one{e};
    const critpath::Validation v =
        critpath::validate(c.graph, c.cfg, c.task_to_pe, one);
    worst = std::max(worst, v.rel_error);
    pred_us += static_cast<double>(v.pred.predicted) * 1e-6;
    resim_us += static_cast<double>(v.truth.edited) * 1e-6;
    ++sweeps;
  }
  m.set_extra("cp.whatifs", static_cast<double>(sweeps));
  m.set_extra("cp.worst_rel_err", worst);
  m.set_extra("cp.predicted_us", pred_us);
  m.set_extra("cp.resim_us", resim_us);

  const critpath::RemapAdvice adv =
      critpath::advise_remap(c.graph, c.cfg, c.task_to_pe, opts.rounds);
  m.set_extra("cp.advise_never_slower",
              adv.resim_makespan <= adv.baseline_makespan ? 1.0 : 0.0);
  m.set_extra("cp.advise_moves", static_cast<double>(adv.moves));
  m.set_extra("cp.advise_speedup", adv.speedup());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;

  critpath::CritOptions opts;
  opts.rounds = tiny ? 2 : 4;
  opts.blocks = tiny ? 4 : 8;
  opts.slices = tiny ? 2 : 4;
  const std::vector<std::string> names =
      tiny ? std::vector<std::string>{"pipeline3", "jpeg"}
           : critpath::corpus_names();

  harness::Scenario scenario("e17_critpath", kSeed);
  std::vector<std::string> cells;
  for (const bool mesh : {false, true}) {
    critpath::CritOptions o = opts;
    o.mesh = mesh;
    for (const std::string& name : names) {
      cells.push_back(std::string(mesh ? "mesh_" : "bus_") + name);
      scenario.add_run(cells.back(), [name, o](const harness::RunContext&) {
        return audit_workload(name, o);
      });
    }
  }
  harness::ScenarioResult result = harness::Runner().run(scenario);

  std::printf("E17: what-if predictions vs re-simulated truth (seed %llu)\n",
              static_cast<unsigned long long>(kSeed));
  bool all_valid = true, all_identity = true, never_slower = true;
  double worst_err = 0.0, worst_ops = 0.0;
  Table t({"cell", "observed_us", "whatifs", "worst_rel_err", "moves",
           "advise_speedup", "ops_per_node"});
  for (const std::string& cell : cells) {
    const auto& m = result.find(cell)->metrics;
    if (m.extra_or("cp.valid") != 1.0) all_valid = false;
    if (m.extra_or("cp.identity") != 1.0) all_identity = false;
    if (m.extra_or("cp.advise_never_slower") != 1.0) never_slower = false;
    worst_err = std::max(worst_err, m.extra_or("cp.worst_rel_err"));
    worst_ops = std::max(worst_ops, m.extra_or("cp.ops_per_node"));
    t.add_row({cell,
               strformat("%.2f", static_cast<double>(m.makespan) * 1e-6),
               strformat("%.0f", m.extra_or("cp.whatifs")),
               strformat("%.4f", m.extra_or("cp.worst_rel_err")),
               strformat("%.0f", m.extra_or("cp.advise_moves")),
               strformat("%.3f", m.extra_or("cp.advise_speedup")),
               strformat("%.1f", m.extra_or("cp.ops_per_node"))});
  }
  t.print("per workload x fabric: sweep accuracy and adviser outcome");

  const bool err_ok = worst_err <= kErrorBound;
  const bool ops_ok = worst_ops <= kOpsPerNodeBound;
  std::printf("accuracy gate: worst rel err %.4f (bound %.2f) %s\n",
              worst_err, kErrorBound, err_ok ? "OK" : "VIOLATED");
  std::printf("identity gate: unedited replay == observed %s\n",
              all_identity ? "OK" : "VIOLATED");
  std::printf("never-slower gate: %s on %zu cells\n",
              never_slower ? "OK" : "VIOLATED", cells.size());
  std::printf("scaling gate: worst %.1f ops/node (bound %.0f) %s\n",
              worst_ops, kOpsPerNodeBound, ops_ok ? "OK" : "VIOLATED");

  std::printf("harness: %zu runs on %zu threads in %.0fms\n",
              result.runs.size(), result.threads_used,
              static_cast<double>(result.wall_ns) / 1e6);
  // Scrub the nondeterministic wall-clock fields so the exported document
  // is byte-identical for a fixed seed.
  result.threads_used = 1;
  result.wall_ns = 0;
  for (harness::RunRecord& r : result.runs) r.metrics.wall_ns = 0;
  if (const auto s = harness::write_json("BENCH_critpath.json", {result});
      !s.ok())
    std::printf("warning: %s\n", s.error().to_string().c_str());
  std::printf("expected shape: rel err 0.0000 everywhere (the replay is "
              "exact for reservation-order executors);\nadviser finds "
              "moves where the baseline overloads a PE and never "
              "regresses.\n");
  return all_valid && all_identity && never_slower && err_ok && ops_ok ? 0
                                                                       : 1;
}
