// Adapters: the pre-existing one-off report structs, re-spoken as
// Diagnostics.
//
// vpdebug::RaceReport (dynamic, Sec. VII), dataflow::DeadlockReport
// (design-time, Sec. III/VII) and recoder's shared-access ArrayReport
// (Sec. VI) predate the lint framework and each carried its own shape.
// These converters let every producer emit the one Diagnostic format, so
// the static-vs-dynamic cross-check is a set comparison over keys rather
// than bespoke glue per subsystem.
#pragma once

#include <string>
#include <vector>

#include "dataflow/deadlock.hpp"
#include "lint/diagnostic.hpp"
#include "recoder/shared_report.hpp"
#include "vpdebug/race.hpp"

namespace rw::lint {

/// A dynamic race observation. `entity` is the shared variable the raced
/// address resolves to (the caller owns the address map).
Diagnostic from_race_report(const vpdebug::RaceReport& r, std::string unit,
                            std::string entity);

/// One diagnostic per blocked actor; empty when not deadlocked.
std::vector<Diagnostic> from_deadlock_report(
    const dataflow::DeadlockReport& rep, std::string unit,
    std::string pass = "static-deadlock");

/// The recoder's shared-data access report: keep-shared verdicts become
/// warnings (real synchronization needed), everything else notes.
std::vector<Diagnostic> from_shared_report(
    const std::vector<recoder::ArrayReport>& reports, std::string unit,
    const std::string& function);

}  // namespace rw::lint
