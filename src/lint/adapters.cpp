#include "lint/adapters.hpp"

#include "common/strings.hpp"

namespace rw::lint {

Diagnostic from_race_report(const vpdebug::RaceReport& r, std::string unit,
                            std::string entity) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.subsystem = "vpdebug";
  d.pass = "dynamic";
  d.kind = "race";
  d.location = {std::move(unit), std::move(entity)};
  d.message = r.to_string();
  d.with_evidence("addr", strformat("0x%llx",
                                    static_cast<unsigned long long>(r.addr)))
      .with_evidence("first_core",
                     strformat("%u", r.first_core.value()))
      .with_evidence("second_core",
                     strformat("%u", r.second_core.value()))
      .with_evidence("first_access", r.first_is_write ? "write" : "read")
      .with_evidence("second_access", r.second_is_write ? "write" : "read");
  return d;
}

std::vector<Diagnostic> from_deadlock_report(
    const dataflow::DeadlockReport& rep, std::string unit,
    std::string pass) {
  std::vector<Diagnostic> out;
  if (!rep.deadlocked) return out;
  for (const auto& b : rep.blocked) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.subsystem = "dataflow";
    d.pass = pass;
    d.kind = "deadlock";
    d.location = {unit, b.actor_name};
    d.message = strformat(
        "actor '%s' never completes its repetition quota: starved on "
        "'%s' (%llu of %llu tokens)",
        b.actor_name.c_str(), b.edge_name.c_str(),
        static_cast<unsigned long long>(b.tokens_present),
        static_cast<unsigned long long>(b.tokens_needed));
    d.with_evidence("starved_edge", b.edge_name)
        .with_evidence("tokens_present",
                       strformat("%llu", static_cast<unsigned long long>(
                                             b.tokens_present)))
        .with_evidence("tokens_needed",
                       strformat("%llu", static_cast<unsigned long long>(
                                             b.tokens_needed)));
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Diagnostic> from_shared_report(
    const std::vector<recoder::ArrayReport>& reports, std::string unit,
    const std::string& function) {
  std::vector<Diagnostic> out;
  for (const auto& r : reports) {
    Diagnostic d;
    d.severity = r.recommendation == recoder::Recommendation::kKeepShared
                     ? Severity::kWarning
                     : Severity::kNote;
    d.subsystem = "recoder";
    d.pass = "shared-access";
    d.kind = "shared-access";
    d.location = {unit, r.array};
    d.message = strformat(
        "array '%s[%lld]' in '%s': %s (%zu access site%s)",
        r.array.c_str(), static_cast<long long>(r.size), function.c_str(),
        recoder::recommendation_name(r.recommendation), r.sites.size(),
        r.sites.size() == 1 ? "" : "s");
    d.with_evidence("recommendation",
                    recoder::recommendation_name(r.recommendation))
        .with_evidence("function", function)
        .with_evidence("sites", strformat("%zu", r.sites.size()));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace rw::lint
