// The blocking-communication order graph of a mapped task graph.
//
// Node = task. Edge A -> B when B cannot start before A completes: either
// a synchronizing channel edge A -> B (B blocks on A's data) or A running
// immediately before B in the run-to-completion order of a shared PE.
// Race detection asks "is there any path between these two tasks?";
// deadlock detection asks "is any task on a cycle, or downstream of one?".
// Both are answered from the same transitive closure.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/pass.hpp"

namespace rw::lint {

/// Direct edges of the order graph, as adjacency lists (deterministic:
/// channel edges in declaration order, then PE-order edges).
std::vector<std::vector<std::size_t>> order_edges(const Target& t);

/// Transitive closure: reach[i][j] == true when a nonempty path i -> j
/// exists. reach[i][i] == true exactly when i lies on a cycle.
std::vector<std::vector<bool>> order_reachability(const Target& t);

}  // namespace rw::lint
