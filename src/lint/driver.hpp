// The rwlint driver, as a library so tests exercise exactly what the CLI
// does: load corpus programs, run a configurable pass set, print a table,
// write LINT_<name>.json, and report an exit code that is nonzero exactly
// when an error-severity finding exists.
#pragma once

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "lint/corpus.hpp"
#include "lint/pass.hpp"
#include "tools/cli_common.hpp"

namespace rw::lint {

/// Shared flags (--list/--json/--legacy-json/--no-files/--seed/--out-dir)
/// come from cli::CommonOptions; only the tool-specific ones live here.
struct DriverOptions : cli::CommonOptions {
  std::vector<std::string> programs;  // empty = the whole corpus
  std::set<std::string> passes;       // empty = all default passes
};

/// Parse rwlint's argv (without argv[0]).
Result<DriverOptions> parse_driver_args(
    const std::vector<std::string>& args);

struct ProgramOutcome {
  std::string program;
  LintResult result;
  std::string json_path;  // empty when not written
};

struct DriverReport {
  std::vector<ProgramOutcome> outcomes;
  int exit_code = 0;
};

/// Combined deterministic JSON document over all outcomes
/// (schema rw-lint-run-1: {schema, programs: [rw-lint-1 docs]}).
std::string driver_json(const std::vector<ProgramOutcome>& outcomes);

/// Run per options, writing human output (or the JSON doc) to `out`.
DriverReport run_driver(const DriverOptions& opts, std::ostream& out);

}  // namespace rw::lint
