// The shipped analysis passes.
//
//   static-race      W/W or W/R on a shared variable from two partitions
//                    with no ordering path in the mapped task graph
//                    (static twin of vpdebug::RaceDetector).
//   static-deadlock  cycles in the blocking-communication order graph of
//                    a mapped task graph (channel waits + per-PE run-to-
//                    completion order), plus token-aware CSDF abstract
//                    execution via dataflow::detect_deadlock.
//   uninit-dataflow  forward reaching-definitions on the recoder AST:
//                    reads of never-assigned locals, dead stores.
//   buffer-bounds    dataflow::compute_buffer_capacities as a pass:
//                    errors when no wait-free capacity assignment exists
//                    or provided capacities are under the sufficient ones.
//
// Performance-contract passes (ISSUE 7) — conservative static bounds:
//   static-throughput   repetition-vector workload analysis yielding a
//                       guaranteed-sustainable steady-state period (a
//                       throughput lower bound) for a consistent,
//                       deadlock-free CSDF graph.
//   static-buffer-size  minimal deadlock-free channel capacities by
//                       untimed abstract execution — the O(IR) static
//                       twin of the executor-backed buffer-bounds pass.
//   static-makespan     serialized cost bound (maps::perf_bounds) of a
//                       mapped task graph on the target platform; errors
//                       when a deadline cannot be statically proven.
#pragma once

#include <memory>

#include "lint/pass.hpp"

namespace rw::lint {

std::unique_ptr<Pass> make_race_pass();
std::unique_ptr<Pass> make_deadlock_pass();
std::unique_ptr<Pass> make_uninit_pass();
std::unique_ptr<Pass> make_buffer_pass();
/// Bonus fifth pass: recoder shared-array access classification
/// (Sec. VI), re-emitted through the Diagnostic adapter.
std::unique_ptr<Pass> make_shared_access_pass();

std::unique_ptr<Pass> make_throughput_pass();
std::unique_ptr<Pass> make_buffer_size_pass();
std::unique_ptr<Pass> make_makespan_pass();

}  // namespace rw::lint
