#include "lint/perf_contract.hpp"

#include <algorithm>

#include "dataflow/buffers.hpp"
#include "dataflow/deadlock.hpp"

namespace rw::lint {

DurationPs guaranteed_period(const dataflow::Graph& g, HertzT frequency) {
  const auto rv = g.repetition_vector();
  if (!rv.ok()) return 0;
  if (dataflow::detect_deadlock(g).deadlocked) return 0;
  // Per-actor rounding makes W an upper bound of any per-core workload
  // share (cycles_to_ps rounds up, so it is subadditive the safe way).
  DurationPs w = 0;
  for (std::size_t a = 0; a < g.actors().size(); ++a)
    w += cycles_to_ps(rv.value().cycles[a] * g.actors()[a].wcet_sum(),
                      frequency);
  return w;
}

std::vector<std::size_t> deadlock_free_capacities(const dataflow::Graph& g) {
  const auto rvr = g.repetition_vector();
  if (!rvr.ok()) return {};
  if (dataflow::detect_deadlock(g).deadlocked) return {};
  const auto& rv = rvr.value();

  auto caps = dataflow::capacity_lower_bounds(g);
  std::uint64_t quota_total = 0;
  for (const auto f : rv.firings) quota_total += f;

  // Grow-the-blocker loop: abstractly run one iteration with
  // back-pressure; whenever a data-ready producer is gated by a full
  // edge, raise exactly that edge's capacity and retry. Each round
  // strictly grows one capacity and capacities are bounded by initial
  // tokens plus one iteration's production, so this terminates; the
  // unbounded-buffer deadlock check above guarantees the wedge is
  // always a space wedge, never a data one.
  const int max_rounds = 1 + static_cast<int>(g.edges().size()) * 64;
  for (int round = 0; round < max_rounds; ++round) {
    std::vector<std::uint64_t> tokens(g.edges().size());
    for (std::size_t e = 0; e < g.edges().size(); ++e)
      tokens[e] = g.edges()[e].initial_tokens;
    std::vector<std::uint64_t> fired(g.actors().size(), 0);
    std::uint64_t done = 0;

    const auto can_fire = [&](std::size_t a, bool& space_blocked,
                              std::size_t& full_edge) {
      const auto& actor = g.actors()[a];
      const std::size_t p = fired[a] % actor.phases();
      for (const auto ei : g.in_edges(actor.id)) {
        const auto& e = g.edge(ei);
        if (tokens[ei.index()] < e.cons_rates[p]) return false;
      }
      for (const auto ei : g.out_edges(actor.id)) {
        const auto& e = g.edge(ei);
        if (tokens[ei.index()] + e.prod_rates[p] > caps[ei.index()]) {
          space_blocked = true;
          full_edge = ei.index();
          return false;
        }
      }
      return true;
    };

    bool progress = true;
    while (done < quota_total && progress) {
      progress = false;
      for (std::size_t a = 0; a < g.actors().size(); ++a) {
        if (fired[a] >= rv.firings[a]) continue;
        bool space_blocked = false;
        std::size_t full_edge = 0;
        if (!can_fire(a, space_blocked, full_edge)) continue;
        const auto& actor = g.actors()[a];
        const std::size_t p = fired[a] % actor.phases();
        for (const auto ei : g.in_edges(actor.id))
          tokens[ei.index()] -= g.edge(ei).cons_rates[p];
        for (const auto ei : g.out_edges(actor.id))
          tokens[ei.index()] += g.edge(ei).prod_rates[p];
        ++fired[a];
        ++done;
        progress = true;
      }
    }
    if (done >= quota_total) return caps;

    bool grew = false;
    for (std::size_t a = 0; a < g.actors().size() && !grew; ++a) {
      if (fired[a] >= rv.firings[a]) continue;
      bool space_blocked = false;
      std::size_t full_edge = 0;
      (void)can_fire(a, space_blocked, full_edge);
      if (!space_blocked) continue;
      const auto& e = g.edges()[full_edge];
      const std::size_t p = fired[a] % g.actors()[a].phases();
      caps[full_edge] =
          static_cast<std::size_t>(tokens[full_edge] + e.prod_rates[p]);
      grew = true;
    }
    if (!grew) return {};  // unreachable for unbounded-deadlock-free graphs
  }
  return {};
}

PerfContract compute_perf_contract(const Target& t) {
  PerfContract c;
  if (t.dataflow != nullptr) {
    const auto w = guaranteed_period(*t.dataflow, t.dataflow_cfg.frequency);
    if (w > 0) {
      c.has_throughput = true;
      c.period_bound = w;
      c.min_throughput_hz = 1e12 / static_cast<double>(w);
    }
    auto caps = deadlock_free_capacities(*t.dataflow);
    if (!caps.empty()) {
      c.has_buffers = true;
      c.buffer_capacities = std::move(caps);
    }
  }
  if (t.task_graph != nullptr && t.platform != nullptr &&
      t.task_graph->is_acyclic()) {
    c.has_makespan = true;
    c.makespan = maps::verify_mapping(*t.task_graph, *t.platform,
                                      t.task_to_pe);
  }
  return c;
}

void apply_buffer_contract(const PerfContract& c,
                           dataflow::ExecConfig& cfg) {
  if (!c.has_buffers) return;
  if (cfg.buffer_capacities.size() < c.buffer_capacities.size())
    cfg.buffer_capacities.resize(c.buffer_capacities.size(), 0);
  for (std::size_t e = 0; e < c.buffer_capacities.size(); ++e)
    cfg.buffer_capacities[e] =
        std::max(cfg.buffer_capacities[e], c.buffer_capacities[e]);
}

}  // namespace rw::lint
