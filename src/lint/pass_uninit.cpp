// Uninitialized-read and dead-store dataflow on the recoder AST.
//
// A forward reaching-definitions walk over the mini-C statement tree
// (Sec. VI's "analysis tools" the designer concurs with or overrules).
// Tracked state per scalar local: definitely-assigned (on all paths),
// maybe-assigned (on some path), and the last straight-line store not yet
// read. Reads of a never-assigned local are errors; reads that are only
// assigned on some path are warnings; stores overwritten or falling off
// the function end unread are dead-store warnings. Arrays, pointers,
// globals and parameters are deliberately untracked — conservative in the
// direction that avoids false alarms the designer would overrule.
#include <map>
#include <set>

#include "common/strings.hpp"
#include "lint/passes.hpp"

namespace rw::lint {
namespace {

using recoder::Expr;
using recoder::ExprKind;
using recoder::Function;
using recoder::Stmt;
using recoder::StmtKind;
using recoder::StmtPtr;

struct FlowState {
  std::set<std::string> tracked;     // scalar locals of this function
  std::set<std::string> definitely;  // assigned on every path so far
  std::set<std::string> maybe;       // assigned on at least one path
  /// Variable -> description of the pending (not-yet-read) store.
  std::map<std::string, std::string> pending;
};

/// Names assigned anywhere inside `body` (for the loop pre-pass: a value
/// assigned in a loop body is maybe-assigned at every read in the body,
/// because iteration k sees iteration k-1's stores).
void collect_assigned(const std::vector<StmtPtr>& body,
                      std::set<std::string>& out) {
  for (const auto& sp : body) {
    const Stmt& s = *sp;
    if (s.kind == StmtKind::kDecl && s.expr) out.insert(s.name);
    if (s.kind == StmtKind::kAssign && s.lhs &&
        s.lhs->kind == ExprKind::kIdent)
      out.insert(s.lhs->name);
    if (s.kind == StmtKind::kFor && s.init &&
        s.init->kind == StmtKind::kAssign && s.init->lhs &&
        s.init->lhs->kind == ExprKind::kIdent)
      out.insert(s.init->lhs->name);
    if (s.kind == StmtKind::kFor && s.init &&
        s.init->kind == StmtKind::kDecl)
      out.insert(s.init->name);
    collect_assigned(s.body, out);
    collect_assigned(s.orelse, out);
  }
}

class UninitPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "uninit-dataflow";
  }
  [[nodiscard]] std::string_view description() const override {
    return "reaching-definitions: uninitialized reads and dead stores";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.program != nullptr;
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    for (const auto& f : t.program->functions) {
      FlowState st;
      Walker w{t, f, out};
      w.walk(f.body, st);
      // Stores still pending at function end never reach a read: the
      // local dies with the frame.
      for (const auto& [var, desc] : st.pending)
        w.report(Severity::kWarning, "dead-store", var,
                 strformat("store to '%s' (%s) is never read before the "
                           "end of '%s'",
                           var.c_str(), desc.c_str(), f.name.c_str()));
    }
  }

 private:
  struct Walker {
    const Target& target;
    const Function& fn;
    std::vector<Diagnostic>& out;
    int assign_counter = 0;

    void report(Severity sev, const char* kind, const std::string& var,
                std::string message) const {
      Diagnostic d;
      d.severity = sev;
      d.subsystem = "recoder";
      d.pass = "uninit-dataflow";
      d.kind = kind;
      d.location = {target.name, var};
      d.message = std::move(message);
      d.with_evidence("function", fn.name);
      out.push_back(std::move(d));
    }

    void read_var(const std::string& name, FlowState& st) const {
      st.pending.erase(name);
      if (!st.tracked.count(name)) return;
      if (st.definitely.count(name)) return;
      if (!st.maybe.count(name)) {
        report(Severity::kError, "uninitialized-read", name,
               strformat("'%s' is read in '%s' but never assigned on any "
                         "path",
                         name.c_str(), fn.name.c_str()));
        // Report once: treat as assigned from here on.
        st.definitely.insert(name);
        st.maybe.insert(name);
      } else {
        report(Severity::kWarning, "possibly-uninitialized", name,
               strformat("'%s' is read in '%s' but only assigned on some "
                         "paths",
                         name.c_str(), fn.name.c_str()));
        st.definitely.insert(name);
      }
    }

    void assign_var(const std::string& name, FlowState& st) {
      ++assign_counter;
      if (st.tracked.count(name)) {
        const auto it = st.pending.find(name);
        if (it != st.pending.end())
          report(Severity::kWarning, "dead-store", name,
                 strformat("store to '%s' (%s) is overwritten in '%s' "
                           "before any read",
                           name.c_str(), it->second.c_str(),
                           fn.name.c_str()));
        st.pending[name] = strformat("assignment #%d", assign_counter);
      }
      st.definitely.insert(name);
      st.maybe.insert(name);
    }

    /// Escape: the address is taken; any aliased read/write is possible,
    /// so the variable leaves tracking (assigned + no pending store).
    void escape_var(const std::string& name, FlowState& st) const {
      st.definitely.insert(name);
      st.maybe.insert(name);
      st.pending.erase(name);
      st.tracked.erase(name);
    }

    void check_expr(const Expr& e, FlowState& st) const {
      switch (e.kind) {
        case ExprKind::kIdent:
          read_var(e.name, st);
          return;
        case ExprKind::kAddrOf:
          if (!e.kids.empty() && e.kids[0]->kind == ExprKind::kIdent) {
            escape_var(e.kids[0]->name, st);
            return;
          }
          break;
        default:
          break;
      }
      for (const auto& k : e.kids) check_expr(*k, st);
    }

    void walk(const std::vector<StmtPtr>& body, FlowState& st) {
      for (const auto& sp : body) walk_stmt(*sp, st);
    }

    void walk_stmt(const Stmt& s, FlowState& st) {
      switch (s.kind) {
        case StmtKind::kDecl:
          if (s.is_array || s.is_pointer) {
            // Untracked: arrays/pointers are the shared-report passes'
            // territory; treat as initialized.
            if (s.expr) check_expr(*s.expr, st);
            st.definitely.insert(s.name);
            st.maybe.insert(s.name);
            return;
          }
          if (s.expr) {
            check_expr(*s.expr, st);
            st.tracked.insert(s.name);
            assign_var(s.name, st);
          } else {
            st.tracked.insert(s.name);
            st.definitely.erase(s.name);
            st.maybe.erase(s.name);
          }
          return;
        case StmtKind::kAssign:
          if (s.expr) check_expr(*s.expr, st);
          if (s.lhs) {
            if (s.lhs->kind == ExprKind::kIdent) {
              assign_var(s.lhs->name, st);
            } else {
              // a[i] = .. reads i (and the pointer for *p = ..).
              for (const auto& k : s.lhs->kids) check_expr(*k, st);
              if (s.lhs->kind == ExprKind::kIndex && !s.lhs->kids.empty() &&
                  s.lhs->kids[0]->kind == ExprKind::kIdent) {
                // Writing one element doesn't define the array; nothing
                // to track, but drop a pending store through the name.
                st.pending.erase(s.lhs->kids[0]->name);
              }
            }
          }
          return;
        case StmtKind::kExprStmt:
        case StmtKind::kReturn:
          if (s.expr) check_expr(*s.expr, st);
          return;
        case StmtKind::kIf: {
          if (s.expr) check_expr(*s.expr, st);
          FlowState then_st = st;
          FlowState else_st = st;
          walk(s.body, then_st);
          walk(s.orelse, else_st);
          st = join(then_st, else_st);
          return;
        }
        case StmtKind::kFor:
        case StmtKind::kWhile: {
          if (s.init) walk_stmt(*s.init, st);
          // Values stored by the body are maybe-assigned at every read
          // inside it (later iterations), but not definitely-assigned
          // after the loop (zero-trip).
          std::set<std::string> body_assigns;
          collect_assigned(s.body, body_assigns);
          if (s.kind == StmtKind::kFor && s.step &&
              s.step->kind == StmtKind::kAssign && s.step->lhs &&
              s.step->lhs->kind == ExprKind::kIdent)
            body_assigns.insert(s.step->lhs->name);
          if (s.expr) check_expr(*s.expr, st);
          FlowState body_st = st;
          body_st.maybe.insert(body_assigns.begin(), body_assigns.end());
          body_st.pending.clear();
          walk(s.body, body_st);
          if (s.step) walk_stmt(*s.step, body_st);
          if (s.expr) check_expr(*s.expr, body_st);
          // Join loop-taken with zero-trip.
          st = join(st, body_st);
          return;
        }
        case StmtKind::kBlock:
          walk(s.body, st);
          return;
      }
    }

    static FlowState join(const FlowState& a, const FlowState& b) {
      FlowState j;
      j.tracked = a.tracked;  // decls in branches are branch-scoped; the
      for (const auto& v : b.tracked) j.tracked.insert(v);
      for (const auto& v : a.definitely)
        if (b.definitely.count(v)) j.definitely.insert(v);
      j.maybe = a.maybe;
      for (const auto& v : b.maybe) j.maybe.insert(v);
      // Pending stores across a join would need path-sensitive reporting;
      // drop them (conservative: fewer dead-store findings, never wrong).
      return j;
    }
  };
};

}  // namespace

std::unique_ptr<Pass> make_uninit_pass() {
  return std::make_unique<UninitPass>();
}

}  // namespace rw::lint
