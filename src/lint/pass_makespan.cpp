// Static makespan contract: serialized cost bound of a mapped task graph.
//
// Sec. IV maps task graphs "taking into account real-time requirements";
// this pass states what the mapping provably achieves before any
// simulation. maps::static_makespan_bound charges every task's execution
// on its assigned PE plus every cross-PE edge's uncontended fabric
// occupancy — an upper bound on both the list-scheduler estimates and
// the contended virtual-platform replay (see maps/perf_bounds.hpp for
// the induction). The bound is emitted as a note with its tightness
// evidence (work / comm / contention-free critical path); when the
// graph carries a deadline the bound cannot cover, that is an error —
// the mapping's feasibility is unprovable and needs either a better
// mapping or a dynamic argument.
#include "common/strings.hpp"
#include "lint/passes.hpp"
#include "maps/perf_bounds.hpp"

namespace rw::lint {
namespace {

class MakespanPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "static-makespan";
  }
  [[nodiscard]] std::string_view description() const override {
    return "conservative makespan upper bound of the mapped task graph on "
           "the target platform";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.task_graph != nullptr && t.platform != nullptr &&
           !t.platform->cores.empty();
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    const auto& g = *t.task_graph;
    if (!g.is_acyclic()) return;  // the deadlock pass owns cyclic graphs

    const auto v = maps::verify_mapping(g, *t.platform, t.task_to_pe);

    Diagnostic d;
    d.severity = Severity::kNote;
    d.subsystem = "maps";
    d.pass = "static-makespan";
    d.kind = "makespan-bound";
    d.location = {t.name, g.name};
    d.message = strformat(
        "static makespan bound %llu ps on %zu PEs (work %llu ps + comm "
        "%llu ps over %zu cross-PE edges)",
        static_cast<unsigned long long>(v.bound.bound),
        t.platform->cores.size(),
        static_cast<unsigned long long>(v.bound.work),
        static_cast<unsigned long long>(v.bound.comm),
        v.bound.cross_edges);
    d.with_evidence("bound_ps", strformat("%llu",
                                          static_cast<unsigned long long>(
                                              v.bound.bound)))
        .with_evidence("work_ps",
                       strformat("%llu", static_cast<unsigned long long>(
                                             v.bound.work)))
        .with_evidence("comm_ps",
                       strformat("%llu", static_cast<unsigned long long>(
                                             v.bound.comm)))
        .with_evidence("critical_path_ps",
                       strformat("%llu", static_cast<unsigned long long>(
                                             v.bound.critical_path)))
        .with_evidence("cross_edges",
                       strformat("%zu", v.bound.cross_edges));
    out.push_back(std::move(d));

    if (v.has_deadline && !v.provable) {
      Diagnostic e;
      e.severity = Severity::kError;
      e.subsystem = "maps";
      e.pass = "static-makespan";
      e.kind = "deadline-unprovable";
      e.location = {t.name, g.name};
      e.message = strformat(
          "deadline %llu ps cannot be statically guaranteed: the makespan "
          "bound is %llu ps",
          static_cast<unsigned long long>(v.deadline),
          static_cast<unsigned long long>(v.bound.bound));
      e.with_evidence("deadline_ps",
                      strformat("%llu", static_cast<unsigned long long>(
                                            v.deadline)))
          .with_evidence("bound_ps",
                         strformat("%llu", static_cast<unsigned long long>(
                                               v.bound.bound)));
      out.push_back(std::move(e));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_makespan_pass() {
  return std::make_unique<MakespanPass>();
}

}  // namespace rw::lint
