// Static-analysis pass framework.
//
// A Pass runs one analysis over a Target — a bundle of the three program
// representations this repo owns: the recoder's mini-C AST (Sec. VI), the
// MAPS sequential program + partition/mapping (Sec. IV), and the (C)SDF
// dataflow graph (Sec. III). A Target rarely has all three; passes declare
// applicability and the PassManager runs whatever fits, collecting
// Diagnostics in a deterministic order. This is the multiplier ROADMAP
// asks for: new analyses drop in as passes and every subsystem's findings
// come out in one machine-readable format.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"
#include "lint/diagnostic.hpp"
#include "maps/ir.hpp"
#include "maps/taskgraph.hpp"
#include "recoder/ast.hpp"
#include "sim/platform.hpp"

namespace rw::lint {

/// Everything a pass may look at. Non-owning: the caller (corpus, tests,
/// the rwlint driver) keeps the underlying models alive. Views are
/// optional; Pass::applicable() gates on what is present.
struct Target {
  std::string name;

  // ---- recoder view (mini-C AST) ----
  const recoder::Program* program = nullptr;

  // ---- MAPS view: sequential statements + partition + mapping ----
  // `task_graph` nodes are the partitions; edges are synchronizing
  // channels (the consumer blocks until the producer's data arrives).
  const maps::SeqProgram* seq = nullptr;
  const maps::TaskGraph* task_graph = nullptr;
  /// Statement index -> task index (the partition). Empty when no seq.
  std::vector<std::size_t> stmt_to_task;
  /// Task index -> processing element. Empty = every task on its own PE.
  std::vector<std::size_t> task_to_pe;
  /// Per-PE static execution order of the tasks mapped there (run-to-
  /// completion). Empty = derived: tasks on one PE run in index order.
  std::vector<std::vector<std::size_t>> core_order;
  /// Shared variables protected by a hardware semaphore around every
  /// access (the designer's annotation the recoder would surface).
  std::set<std::string> locked_vars;

  // ---- dataflow view ----
  const dataflow::Graph* dataflow = nullptr;
  /// Drive configuration for executor-backed analyses (buffer bounds).
  dataflow::ExecConfig dataflow_cfg;

  // ---- platform view (static performance contracts) ----
  /// Target platform the mapping is judged against. Needed by the
  /// static-makespan pass; the other passes ignore it.
  const sim::PlatformConfig* platform = nullptr;

  [[nodiscard]] bool has_mapped() const {
    return seq != nullptr && task_graph != nullptr &&
           stmt_to_task.size() == seq->stmts().size();
  }

  /// PE of a task under the mapping (identity when unmapped).
  [[nodiscard]] std::size_t pe_of(std::size_t task) const {
    return task < task_to_pe.size() ? task_to_pe[task] : task;
  }

  /// Execution order on each PE: `core_order` when given, else tasks in
  /// index order. Only meaningful with has_mapped().
  [[nodiscard]] std::vector<std::vector<std::size_t>> pe_orders() const;
};

class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Does the target carry the representation this pass analyzes?
  [[nodiscard]] virtual bool applicable(const Target& t) const = 0;
  /// Append findings. Must be deterministic in the target alone.
  virtual void run(const Target& t, std::vector<Diagnostic>& out) const = 0;
};

/// Per-pass execution record.
struct PassStats {
  std::string pass;
  bool ran = false;  // false = not applicable to the target
  std::size_t findings = 0;
  std::uint64_t wall_ns = 0;  // host timing; excluded from JSON output
};

struct LintResult {
  std::string target;
  std::vector<Diagnostic> diagnostics;  // sorted by diagnostic_less
  std::vector<PassStats> stats;         // in pass registration order

  [[nodiscard]] std::size_t errors() const {
    return count_severity(diagnostics, Severity::kError);
  }
  [[nodiscard]] std::size_t warnings() const {
    return count_severity(diagnostics, Severity::kWarning);
  }
  [[nodiscard]] bool clean() const { return errors() == 0; }

  /// The documented deterministic JSON document (rw-lint-1).
  [[nodiscard]] std::string to_json() const {
    return diagnostics_to_json(target, diagnostics);
  }
};

/// Owns an ordered set of passes and runs the applicable ones.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// All shipped passes (see passes.hpp), in their canonical order:
  /// the five correctness passes, then the three performance-contract
  /// passes of ISSUE 7.
  static PassManager with_default_passes();

  /// Restrict to a comma-separated subset by name; unknown names are
  /// ignored (the driver reports them). Empty = keep all.
  void enable_only(const std::set<std::string>& names);

  [[nodiscard]] const std::vector<std::unique_ptr<Pass>>& passes() const {
    return passes_;
  }
  [[nodiscard]] const Pass* find(std::string_view name) const;

  [[nodiscard]] LintResult run(const Target& t) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace rw::lint
