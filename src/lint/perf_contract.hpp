// Static performance contracts (ISSUE 7).
//
// The three performance passes each compute one conservative bound; a
// PerfContract bundles them into the result type downstream subsystems
// consume without re-running analysis: maps sizes channels from the
// deadlock-free capacities and prechecks deadlines via
// maps::verify_mapping, sched/ert admission compares the makespan bound
// against a realtime deadline. Every bound errs on the safe side:
//
//   * guaranteed_period: a source period W the graph provably sustains
//     (W >= maximum cycle ratio — any cycle with k >= 1 initial tokens
//     must complete rv/k amortized firings per iteration, costing at
//     most the full iteration workload W; and the static scheduler's
//     per-core load gate passes at W by subadditivity of cycles_to_ps).
//     Static throughput lower bound = 1/W <= measured throughput.
//   * deadlock_free_capacities: smallest per-edge capacities under
//     which untimed abstract execution completes one full iteration;
//     monotone growth from structural lower bounds, so dynamic
//     data-driven execution with these capacities never wedges.
//   * verify_mapping (maps/perf_bounds.hpp): serialized cost bound,
//     static makespan >= any simulated makespan.
#pragma once

#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"
#include "lint/pass.hpp"
#include "maps/perf_bounds.hpp"

namespace rw::lint {

/// The bundle of static performance bounds for one Target. Each part is
/// present only when the corresponding representation was analyzable.
struct PerfContract {
  bool has_throughput = false;
  DurationPs period_bound = 0;   // guaranteed-sustainable source period
  double min_throughput_hz = 0;  // graph iterations/sec, lower bound

  bool has_buffers = false;
  std::vector<std::size_t> buffer_capacities;  // per edge, deadlock-free

  bool has_makespan = false;
  maps::MappingVerdict makespan;
};

/// One-iteration workload bound W (ps): the guaranteed-sustainable
/// source period for a consistent, deadlock-free graph. 0 when the
/// graph is inconsistent or inherently deadlocked (no bound exists).
[[nodiscard]] DurationPs guaranteed_period(const dataflow::Graph& g,
                                           HertzT frequency);

/// Minimal deadlock-free per-edge capacities by untimed abstract
/// execution with back-pressure, grown from capacity_lower_bounds.
/// Empty when the graph is inconsistent or inherently deadlocked.
[[nodiscard]] std::vector<std::size_t> deadlock_free_capacities(
    const dataflow::Graph& g);

/// Compute every applicable bound for `t` (dataflow parts need
/// t.dataflow; the makespan part needs t.task_graph and t.platform).
[[nodiscard]] PerfContract compute_perf_contract(const Target& t);

/// Channel sizing: raise cfg.buffer_capacities to at least the
/// contract's deadlock-free capacities (never shrinks a provided
/// capacity). No-op when the contract has no buffer part.
void apply_buffer_contract(const PerfContract& c, dataflow::ExecConfig& cfg);

}  // namespace rw::lint
