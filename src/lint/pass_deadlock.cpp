// Static deadlock / lock-order analysis.
//
// Sec. VII lists "system deadlocks" first among the failure modes a
// virtual platform must expose; finding them *before* simulation is the
// lint's job. Two representations, one pass:
//
//   * Mapped task graphs: a cycle in the blocking-communication order
//     graph (channel waits + run-to-completion order on shared PEs) can
//     never make progress — that covers classic wait cycles AND the
//     subtler mapping-induced inversion where an acyclic graph deadlocks
//     because a consumer is scheduled before its producer on one PE.
//     Tasks downstream of a cycle starve too and are reported, which is
//     what makes the static set a superset of any dynamic observation.
//
//   * CSDF graphs: dataflow::detect_deadlock's token-aware abstract
//     execution, rewrapped so the findings speak Diagnostic.
#include "common/strings.hpp"
#include "dataflow/deadlock.hpp"
#include "lint/adapters.hpp"
#include "lint/order_graph.hpp"
#include "lint/passes.hpp"

namespace rw::lint {
namespace {

class DeadlockPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "static-deadlock";
  }
  [[nodiscard]] std::string_view description() const override {
    return "cycles in the blocking-communication order graph; CSDF "
           "token-starvation";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.task_graph != nullptr || t.dataflow != nullptr;
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    if (t.task_graph != nullptr) run_task_graph(t, out);
    if (t.dataflow != nullptr) run_dataflow(t, out);
  }

 private:
  static void run_task_graph(const Target& t,
                             std::vector<Diagnostic>& out) {
    const auto reach = order_reachability(t);
    const std::size_t n = reach.size();

    std::vector<bool> on_cycle(n, false);
    for (std::size_t i = 0; i < n; ++i) on_cycle[i] = reach[i][i];

    std::string cycle_members;
    for (std::size_t i = 0; i < n; ++i) {
      if (!on_cycle[i]) continue;
      if (!cycle_members.empty()) cycle_members += ",";
      cycle_members += t.task_graph->tasks()[i].name;
    }

    for (std::size_t i = 0; i < n; ++i) {
      const bool starved = [&] {
        if (on_cycle[i]) return true;
        for (std::size_t c = 0; c < n; ++c)
          if (on_cycle[c] && reach[c][i]) return true;
        return false;
      }();
      if (!starved) continue;
      const auto& task = t.task_graph->tasks()[i];
      Diagnostic d;
      d.severity = Severity::kError;
      d.subsystem = "maps";
      d.pass = "static-deadlock";
      d.kind = "deadlock";
      d.location = {t.name, task.name};
      d.message =
          on_cycle[i]
              ? strformat("task '%s' is on a blocking-communication "
                          "cycle and can never start",
                          task.name.c_str())
              : strformat("task '%s' waits (transitively) on a deadlocked "
                          "cycle and starves",
                          task.name.c_str());
      d.with_evidence("cycle", cycle_members)
          .with_evidence("role", on_cycle[i] ? "cycle-member" : "starved")
          .with_evidence("pe", strformat("%zu", t.pe_of(i)));
      out.push_back(std::move(d));
    }
  }

  static void run_dataflow(const Target& t, std::vector<Diagnostic>& out) {
    auto diags = from_deadlock_report(dataflow::detect_deadlock(*t.dataflow),
                                      t.name, "static-deadlock");
    for (auto& d : diags) out.push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Pass> make_deadlock_pass() {
  return std::make_unique<DeadlockPass>();
}

}  // namespace rw::lint
