// The seeded-defect corpus and its dynamic (virtual-platform) twin.
//
// The headline experiment of the lint framework: every program here
// exists in two forms — a static Target the passes analyze, and (for the
// mapped ones) a deterministic execution on rw::sim with the
// vpdebug::RaceDetector armed and bounded blocking waits so wedges are
// observable facts. The contract under test: the static findings are a
// conservative superset of whatever any dynamic run observes. Defects are
// seeded per program: two racy, two deadlocking (one a pure wait cycle,
// one a mapping-induced order inversion), one uninitialized read, one
// clean, plus a token-starved CSDF graph for the dataflow side.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/graph.hpp"
#include "lint/diagnostic.hpp"
#include "lint/pass.hpp"
#include "maps/ir.hpp"
#include "maps/taskgraph.hpp"
#include "recoder/ast.hpp"
#include "sim/platform.hpp"
#include "vpdebug/race.hpp"

namespace rw::lint {

/// One corpus entry. Owns its models; target() exposes non-owning views,
/// so keep the CorpusProgram alive while linting.
struct CorpusProgram {
  std::string name;
  std::string summary;
  /// Diagnostic kinds the seeded defect must statically produce (empty
  /// for the clean program).
  std::set<std::string> expected_kinds;

  // --- owned models, presence-flagged ---
  recoder::Program program;
  bool has_program = false;

  maps::SeqProgram seq;
  maps::TaskGraph tasks;
  std::vector<std::size_t> stmt_to_task;
  std::vector<std::size_t> task_to_pe;
  std::vector<std::vector<std::size_t>> core_order;
  std::set<std::string> locked_vars;
  bool has_mapped = false;

  dataflow::Graph graph;
  bool has_graph = false;
  dataflow::ExecConfig graph_cfg;

  /// Platform the mapping targets — the same shape run_dynamic builds,
  /// so the static makespan contract and the dynamic twin agree on the
  /// machine. Set for every mapped program.
  sim::PlatformConfig platform;
  bool has_platform = false;

  [[nodiscard]] Target target() const;
  /// Mapped programs can be executed on the virtual platform.
  [[nodiscard]] bool runnable() const { return has_mapped; }
};

/// Build the full corpus (deterministic; no global state).
std::vector<CorpusProgram> build_corpus();

/// Names in corpus order, for the driver's --list.
std::vector<std::string> corpus_names();

/// What one dynamic run observed.
struct DynamicObservations {
  std::vector<vpdebug::RaceReport> races;
  std::vector<std::string> race_vars;   // parallel to races: resolved name
  std::set<std::string> raced_vars;     // race addresses -> variable names
  std::set<std::string> blocked_tasks;  // wedged at the horizon
  std::uint64_t accesses_observed = 0;

  [[nodiscard]] bool any() const {
    return !raced_vars.empty() || !blocked_tasks.empty();
  }

  /// The observations as Diagnostics (pass = "dynamic"), keyed exactly
  /// like the static ones so the superset check is set containment.
  [[nodiscard]] std::vector<Diagnostic> to_diagnostics(
      const std::string& unit) const;
};

struct DynamicRunConfig {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 24;  // task-body repetitions (race exposure)
  DurationPs horizon = milliseconds(4);  // wedge-detection deadline
  DurationPs race_window = microseconds(2);
};

/// Execute a mapped corpus program: one coroutine per PE running its
/// tasks to completion in order, channel waits as bounded spins on token
/// flags, shared variables as real shared-memory words watched by the
/// race detector. Deterministic in (program, cfg).
DynamicObservations run_dynamic(const CorpusProgram& p,
                                const DynamicRunConfig& cfg = {});

}  // namespace rw::lint
