#include "lint/corpus.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "lint/adapters.hpp"
#include "recoder/parser.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"
#include "vpdebug/race.hpp"

namespace rw::lint {

Target CorpusProgram::target() const {
  Target t;
  t.name = name;
  if (has_program) t.program = &program;
  if (has_mapped) {
    t.seq = &seq;
    t.task_graph = &tasks;
    t.stmt_to_task = stmt_to_task;
    t.task_to_pe = task_to_pe;
    t.core_order = core_order;
    t.locked_vars = locked_vars;
  }
  if (has_graph) {
    t.dataflow = &graph;
    t.dataflow_cfg = graph_cfg;
  }
  if (has_platform) t.platform = &platform;
  return t;
}

namespace {

// ------------------------------------------------------- corpus programs

/// Two partitions increment one shared counter with nothing ordering
/// them: the canonical lost-update race (vpdebug's RacyCounter victim,
/// expressed as a mapped program).
CorpusProgram make_racy_counter() {
  CorpusProgram p;
  p.name = "racy_counter";
  p.summary = "two unsynchronized partitions RMW one shared counter";
  p.expected_kinds = {"race"};
  const auto counter = p.seq.add_var("counter", 8);
  p.seq.add_stmt("inc0_rmw", 150, {counter}, {counter});
  p.seq.add_stmt("inc1_rmw", 150, {counter}, {counter});
  p.tasks.name = p.name;
  p.tasks.add_task("inc0", 150);
  p.tasks.add_task("inc1", 150);
  p.stmt_to_task = {0, 1};
  p.task_to_pe = {0, 1};
  p.has_mapped = true;
  return p;
}

/// A producer feeds an encoder through a proper channel, but the display
/// partition reads the frame with no channel at all — the forgotten-edge
/// defect the Source Recoder's report exists to surface.
CorpusProgram make_racy_frame() {
  CorpusProgram p;
  p.name = "racy_frame";
  p.summary = "display reads the frame produce writes, with no channel";
  p.expected_kinds = {"race"};
  const auto frame = p.seq.add_var("frame", 64);
  const auto coeff = p.seq.add_var("coeff", 8);
  const auto out = p.seq.add_var("out", 64);
  p.seq.add_stmt("produce_frame", 220, {coeff}, {frame});
  p.seq.add_stmt("encode_frame", 260, {frame, coeff}, {out});
  p.seq.add_stmt("display_frame", 180, {frame}, {});
  p.tasks.name = p.name;
  const auto produce = p.tasks.add_task("produce", 220);
  const auto encode = p.tasks.add_task("encode", 260);
  p.tasks.add_task("display", 180);
  p.tasks.add_edge(produce, encode, 64);  // the one channel that exists
  p.stmt_to_task = {0, 1, 2};
  p.task_to_pe = {0, 1, 2};
  p.has_mapped = true;
  return p;
}

/// Classic wait cycle: ping blocks on pong's token and vice versa. No
/// initial data anywhere on the cycle, so neither can ever start.
CorpusProgram make_token_cycle() {
  CorpusProgram p;
  p.name = "token_cycle";
  p.summary = "two tasks each block on the other's channel first";
  p.expected_kinds = {"deadlock"};
  const auto a = p.seq.add_var("a", 8);
  const auto b = p.seq.add_var("b", 8);
  p.seq.add_stmt("ping_work", 200, {a}, {a});
  p.seq.add_stmt("pong_work", 200, {b}, {b});
  p.tasks.name = p.name;
  const auto ping = p.tasks.add_task("ping", 200);
  const auto pong = p.tasks.add_task("pong", 200);
  p.tasks.add_edge(ping, pong, 8);
  p.tasks.add_edge(pong, ping, 8);
  p.stmt_to_task = {0, 1};
  p.task_to_pe = {0, 1};
  p.has_mapped = true;
  return p;
}

/// The mapping-induced deadlock: the task graph is acyclic, but the
/// chosen PE order runs the consumer before its producer on the same
/// core. The blocking wait for the token then starves the producer of
/// the core forever — invisible to a graph-only check, caught by the
/// order-graph analysis.
CorpusProgram make_order_inversion() {
  CorpusProgram p;
  p.name = "order_inversion";
  p.summary = "consumer scheduled before its producer on one PE";
  p.expected_kinds = {"deadlock"};
  const auto buf = p.seq.add_var("buf", 16);
  p.seq.add_stmt("prod_fill", 180, {}, {buf});
  p.seq.add_stmt("cons_drain", 180, {buf}, {});
  p.tasks.name = p.name;
  const auto prod = p.tasks.add_task("prod", 180);
  const auto cons = p.tasks.add_task("cons", 180);
  p.tasks.add_edge(prod, cons, 16);
  p.stmt_to_task = {0, 1};
  p.task_to_pe = {0, 0};
  p.core_order = {{cons.index(), prod.index()}};  // the inversion
  p.has_mapped = true;
  return p;
}

/// Mini-C with a read of a never-assigned local, a store that is
/// overwritten before any read, and a branch-dependent initialization.
CorpusProgram make_uninit_filter() {
  CorpusProgram p;
  p.name = "uninit_filter";
  p.summary = "uninitialized read, dead store, maybe-uninitialized read";
  p.expected_kinds = {"uninitialized-read", "dead-store",
                      "possibly-uninitialized"};
  static const char* kSource = R"(
    int filter(int x) {
      int acc;
      int scale = 3;
      int tmp = acc + x;
      tmp = x * scale;
      return tmp;
    }
    int risky(int flag) {
      int v;
      if (flag > 0) { v = 1; }
      return v;
    }
  )";
  p.program = recoder::parse_program(kSource).take();
  p.has_program = true;
  return p;
}

/// Everything done right: channels order the pipeline, the genuinely
/// concurrent counter is semaphore-protected, the mini-C is initialized,
/// and the dataflow graph is consistent with a sustainable period. rwlint
/// must exit 0 here.
CorpusProgram make_clean_pipeline() {
  CorpusProgram p;
  p.name = "clean_pipeline";
  p.summary = "channel-ordered pipeline + lock-protected stats counter";
  const auto buf = p.seq.add_var("buf", 32);
  const auto res = p.seq.add_var("res", 32);
  const auto stats = p.seq.add_var("stats", 8);
  p.seq.add_stmt("stage1_fill", 200, {}, {buf});
  p.seq.add_stmt("stage1_count", 80, {stats}, {stats});
  p.seq.add_stmt("stage2_use", 200, {buf}, {res});
  p.seq.add_stmt("audit_count", 80, {stats}, {stats});
  p.tasks.name = p.name;
  const auto stage1 = p.tasks.add_task("stage1", 280);
  const auto stage2 = p.tasks.add_task("stage2", 200);
  p.tasks.add_task("audit", 80);
  p.tasks.add_edge(stage1, stage2, 32);
  p.stmt_to_task = {0, 0, 1, 2};
  p.task_to_pe = {0, 1, 2};
  p.locked_vars = {"stats"};
  p.has_mapped = true;

  static const char* kSource = R"(
    int smooth(int x) {
      int acc = 0;
      int i;
      for (i = 0; i < 4; i = i + 1) {
        acc = acc + x;
      }
      return acc;
    }
  )";
  p.program = recoder::parse_program(kSource).take();
  p.has_program = true;

  const auto src = p.graph.add_actor("src", 100);
  const auto mid = p.graph.add_actor("mid", 120);
  const auto snk = p.graph.add_actor("snk", 100);
  p.graph.connect(src, mid, 1, 1);
  p.graph.connect(mid, snk, 1, 1);
  p.has_graph = true;
  return p;
}

/// CSDF cycle with too few circulating tokens (the dataflow-side seeded
/// deadlock): decidable at design time by abstract execution.
CorpusProgram make_starved_csdf() {
  CorpusProgram p;
  p.name = "starved_csdf";
  p.summary = "multirate CSDF cycle short of tokens";
  p.expected_kinds = {"deadlock"};
  const auto src = p.graph.add_actor("src", 100);
  const auto a = p.graph.add_actor("stage_a", 120);
  const auto b = p.graph.add_actor("stage_b", 120);
  p.graph.connect(src, a, 1, 1);
  p.graph.connect(a, b, std::vector<std::uint32_t>{3},
                  std::vector<std::uint32_t>{3}, 0, "fwd");
  // Needs 3 tokens to fire, only 2 circulate.
  p.graph.connect(b, a, std::vector<std::uint32_t>{3},
                  std::vector<std::uint32_t>{3}, 2, "back");
  p.has_graph = true;
  return p;
}

/// A correctly channel-ordered two-stage chain whose annotated deadline
/// undercuts the static makespan bound: no defect a dynamic run could
/// observe, but feasibility is statically unprovable — exactly the
/// finding the makespan contract exists to surface before simulation.
CorpusProgram make_tight_deadline() {
  CorpusProgram p;
  p.name = "tight_deadline";
  p.summary = "clean two-stage chain with a statically unprovable deadline";
  p.expected_kinds = {"deadline-unprovable"};
  const auto in = p.seq.add_var("in", 32);
  const auto out = p.seq.add_var("out", 32);
  p.seq.add_stmt("grab_fill", 6000, {}, {in});
  p.seq.add_stmt("proc_use", 6000, {in}, {out});
  p.tasks.name = p.name;
  const auto grab = p.tasks.add_task("grab", 6000);
  const auto proc = p.tasks.add_task("proc", 6000);
  p.tasks.add_edge(grab, proc, 256);
  p.stmt_to_task = {0, 1};
  p.task_to_pe = {0, 1};
  // Work alone is 2 x 6000 cycles @ 400 MHz = 30 ns; the cross-PE bus
  // transfer adds ~180 ns more. 100 ns cannot be statically guaranteed.
  p.tasks.annotation.deadline = nanoseconds(100);
  p.tasks.annotation.criticality = sched::Criticality::kHard;
  p.has_mapped = true;
  return p;
}

/// The dynamic twin runs mapped programs on homogeneous(max(pes, 2));
/// give the static makespan contract the same machine to bound.
void attach_platform(CorpusProgram& p) {
  if (!p.has_mapped) return;
  std::size_t pes = 0;
  for (const auto pe : p.task_to_pe) pes = std::max(pes, pe + 1);
  pes = std::max(pes, p.core_order.size());
  p.platform = sim::PlatformConfig::homogeneous(std::max<std::size_t>(
      pes, 2));
  p.has_platform = true;
}

}  // namespace

std::vector<CorpusProgram> build_corpus() {
  std::vector<CorpusProgram> c;
  c.push_back(make_racy_counter());
  c.push_back(make_racy_frame());
  c.push_back(make_token_cycle());
  c.push_back(make_order_inversion());
  c.push_back(make_uninit_filter());
  c.push_back(make_clean_pipeline());
  c.push_back(make_starved_csdf());
  c.push_back(make_tight_deadline());
  for (auto& p : c) attach_platform(p);
  return c;
}

std::vector<std::string> corpus_names() {
  std::vector<std::string> names;
  for (const auto& p : build_corpus()) names.push_back(p.name);
  return names;
}

// --------------------------------------------------------- dynamic twin

namespace {

/// Shared-memory layout of a dynamic run: one 8-byte word per variable
/// at the base (watched by the race detector), channel token flags far
/// above (never watched — the synchronization itself is not a race).
struct RunLayout {
  sim::Addr var_base = 0;
  sim::Addr flag_base = 0;

  [[nodiscard]] sim::Addr var_addr(std::size_t v) const {
    return var_base + 8 * v;
  }
  [[nodiscard]] sim::Addr flag_addr(std::size_t e) const {
    return flag_base + 8 * e;
  }
};

struct RunState {
  const CorpusProgram& p;
  const DynamicRunConfig& cfg;
  sim::Platform& plat;
  RunLayout layout;
  TimePs horizon = 0;
  std::vector<char> done;  // per task
};

sim::Process pe_runner(RunState& st, std::size_t pe,
                       std::vector<std::size_t> order,
                       std::uint64_t seed) {
  auto& core = st.plat.core(pe);
  auto& mem = st.plat.memory();
  auto& sem = st.plat.hwsem();
  auto& kernel = st.plat.kernel();
  const auto cid = sim::CoreId{static_cast<std::uint32_t>(pe)};
  Rng rng(seed);

  const auto& edges = st.p.tasks.edges();
  for (const std::size_t t : order) {
    // Block on every input channel: bounded spin so a wedge is a fact
    // the run can report instead of a hang.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].dst.index() != t) continue;
      while (mem.read_u64(cid, st.layout.flag_addr(e)) == 0) {
        if (kernel.now() >= st.horizon) co_return;  // wedged
        co_await core.compute(400, "wait-token");
      }
    }
    // Channel drain: data that arrived through a synchronizing channel
    // is outside the detector's conflict window by construction.
    co_await sim::delay(kernel, st.cfg.race_window + nanoseconds(100));

    for (std::uint64_t it = 0; it < st.cfg.iterations; ++it) {
      for (std::size_t s = 0; s < st.p.seq.stmts().size(); ++s) {
        if (st.p.stmt_to_task[s] != t) continue;
        const auto& stmt = st.p.seq.stmts()[s];
        const bool locked = [&] {
          for (const auto v : stmt.reads)
            if (st.p.locked_vars.count(st.p.seq.vars()[v.index()].name))
              return true;
          for (const auto v : stmt.writes)
            if (st.p.locked_vars.count(st.p.seq.vars()[v.index()].name))
              return true;
          return false;
        }();
        if (locked) {
          while (!sem.try_acquire(0, cid))
            co_await core.compute(20, "spin-sem");
        }
        for (const auto v : stmt.reads)
          (void)mem.read_u64(cid, st.layout.var_addr(v.index()));
        co_await core.compute(stmt.cycles + rng.next_below(64), stmt.name);
        for (const auto v : stmt.writes)
          mem.write_u64(cid, st.layout.var_addr(v.index()), it + 1);
        if (locked) sem.release(0, cid);
      }
    }

    for (std::size_t e = 0; e < edges.size(); ++e)
      if (edges[e].src.index() == t)
        mem.write_u64(cid, st.layout.flag_addr(e), 1);
    st.done[t] = 1;
  }
}

}  // namespace

DynamicObservations run_dynamic(const CorpusProgram& p,
                                const DynamicRunConfig& cfg) {
  DynamicObservations obs;
  if (!p.runnable()) return obs;

  const Target tgt = p.target();
  const auto orders = tgt.pe_orders();
  const std::size_t pes = orders.size();

  sim::Platform plat(sim::PlatformConfig::homogeneous(std::max<std::size_t>(
      pes, 2)));

  RunState st{p, cfg, plat, RunLayout{}, 0, {}};
  st.layout.var_base = plat.shared_base();
  st.layout.flag_base = plat.shared_base() + 0x8000;
  st.horizon = cfg.horizon;
  st.done.assign(p.tasks.tasks().size(), 0);

  const std::uint64_t nvars = p.seq.vars().size();
  vpdebug::RaceDetector detector(plat, st.layout.var_base, 8 * nvars,
                                 cfg.race_window);

  for (std::size_t pe = 0; pe < orders.size(); ++pe) {
    if (orders[pe].empty()) continue;
    sim::spawn(plat.kernel(),
               pe_runner(st, pe, orders[pe], cfg.seed * 1000 + pe));
  }
  plat.kernel().run();

  obs.races = detector.races();
  obs.accesses_observed = detector.accesses_observed();
  for (const auto& r : obs.races) {
    const std::size_t v =
        static_cast<std::size_t>((r.addr - st.layout.var_base) / 8);
    const std::string name = v < nvars ? p.seq.vars()[v].name : "";
    obs.race_vars.push_back(name);
    if (!name.empty()) obs.raced_vars.insert(name);
  }
  for (std::size_t t = 0; t < st.done.size(); ++t)
    if (!st.done[t]) obs.blocked_tasks.insert(p.tasks.tasks()[t].name);
  return obs;
}

std::vector<Diagnostic> DynamicObservations::to_diagnostics(
    const std::string& unit) const {
  std::vector<Diagnostic> out;
  for (const auto& var : raced_vars) {
    // Representative report: the first race resolving to this variable.
    for (std::size_t i = 0; i < races.size(); ++i) {
      if (i < race_vars.size() && race_vars[i] == var) {
        out.push_back(from_race_report(races[i], unit, var));
        break;
      }
    }
  }
  for (const auto& task : blocked_tasks) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.subsystem = "vpdebug";
    d.pass = "dynamic";
    d.kind = "deadlock";
    d.location = {unit, task};
    d.message = "task '" + task + "' did not complete by the horizon";
    out.push_back(std::move(d));
  }
  sort_diagnostics(out);
  return out;
}

}  // namespace rw::lint
