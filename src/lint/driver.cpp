#include "lint/driver.hpp"

#include <fstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace rw::lint {
namespace {

// Pass lists accept commas or whitespace as separators, so both
// `--passes a,b` and the shell-friendly `--passes "a b"` work.
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Result<DriverOptions> parse_driver_args(
    const std::vector<std::string>& args) {
  DriverOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a.rfind("--passes=", 0) == 0) {
      for (auto& p : split_list(a.substr(9))) opts.passes.insert(p);
    } else if (a == "--passes") {
      if (i + 1 >= args.size())
        return make_error(
            "--passes needs a comma- or space-separated pass list");
      for (auto& p : split_list(args[++i])) opts.passes.insert(p);
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwlint ") + cli::common_usage() +
                        " [--passes a,b] [program...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      opts.programs.push_back(a);
    }
  }
  return opts;
}

std::string driver_json(const std::vector<ProgramOutcome>& outcomes) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-lint-run-1");
  // The pass registry, in canonical order, so envelope consumers can
  // tell "pass did not run" from "pass does not exist".
  const PassManager registry = PassManager::with_default_passes();
  w.key("passes").begin_array();
  for (const auto& p : registry.passes()) w.value(std::string(p->name()));
  w.end_array();
  std::size_t errors = 0;
  for (const auto& o : outcomes) errors += o.result.errors();
  w.key("errors").value(static_cast<std::uint64_t>(errors));
  w.key("programs").begin_array();
  for (const auto& o : outcomes)
    diagnostics_to_json(w, o.program, o.result.diagnostics);
  w.end_array();
  w.end_object();
  return w.str();
}

DriverReport run_driver(const DriverOptions& opts, std::ostream& out) {
  DriverReport report;
  const auto corpus = build_corpus();

  if (opts.list) {
    Table t({"program", "runnable", "expected", "summary"});
    for (const auto& p : corpus) {
      std::string kinds;
      for (const auto& k : p.expected_kinds) {
        if (!kinds.empty()) kinds += ",";
        kinds += k;
      }
      if (kinds.empty()) kinds = "-";
      t.add_row({p.name, p.runnable() ? "yes" : "no", kinds, p.summary});
    }
    out << t.to_string();
    Table passes({"pass", "description"});
    const PassManager registry = PassManager::with_default_passes();
    for (const auto& p : registry.passes())
      passes.add_row({std::string(p->name()), std::string(p->description())});
    out << passes.to_string();
    return report;
  }

  // Resolve the program selection against the corpus.
  std::vector<const CorpusProgram*> selected;
  if (opts.programs.empty()) {
    for (const auto& p : corpus) selected.push_back(&p);
  } else {
    for (const auto& name : opts.programs) {
      const CorpusProgram* found = nullptr;
      for (const auto& p : corpus)
        if (p.name == name) found = &p;
      if (found == nullptr) {
        out << "rwlint: unknown program: " << name << "\n";
        report.exit_code = 2;
        return report;
      }
      selected.push_back(found);
    }
  }

  PassManager pm = PassManager::with_default_passes();
  if (!opts.passes.empty()) {
    for (const auto& name : opts.passes) {
      if (pm.find(name) == nullptr) {
        out << "rwlint: unknown pass: " << name << "\n";
        report.exit_code = 2;
        return report;
      }
    }
    pm.enable_only(opts.passes);
  }

  for (const CorpusProgram* p : selected) {
    ProgramOutcome outcome;
    outcome.program = p->name;
    outcome.result = pm.run(p->target());

    if (opts.write_files) {
      outcome.json_path = opts.out_dir + "/LINT_" + p->name + ".json";
      std::ofstream f(outcome.json_path);
      f << outcome.result.to_json() << "\n";
    }

    if (!opts.json_stdout) {
      Table t({"severity", "pass", "kind", "entity", "message"});
      for (const auto& d : outcome.result.diagnostics)
        t.add_row({severity_name(d.severity), d.pass, d.kind,
                   d.location.entity, d.message});
      out << "== " << p->name << " ==\n";
      if (t.row_count() > 0) out << t.to_string();
      out << strformat("%zu error(s), %zu warning(s)",
                       outcome.result.errors(), outcome.result.warnings());
      // Per-pass wall time is host timing: table output only, never in
      // any JSON document (those are byte-identical across runs).
      std::string ran;
      for (const auto& s : outcome.result.stats)
        if (s.ran)
          ran += (ran.empty() ? "" : ", ") + s.pass +
                 strformat(" %.2fms",
                           static_cast<double>(s.wall_ns) / 1e6);
      out << "  [passes: " << (ran.empty() ? "none" : ran) << "]\n";
      if (!outcome.json_path.empty())
        out << "wrote " << outcome.json_path << "\n";
      out << "\n";
    }

    if (outcome.result.errors() > 0) report.exit_code = 1;
    report.outcomes.push_back(std::move(outcome));
  }

  if (opts.json_stdout) {
    const std::string legacy = driver_json(report.outcomes);
    if (opts.legacy_json)
      out << legacy << "\n";
    else
      out << cli::envelope("rwlint", opts.seed, legacy) << "\n";
  }
  return report;
}

}  // namespace rw::lint
