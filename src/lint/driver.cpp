#include "lint/driver.hpp"

#include <fstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace rw::lint {
namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Result<DriverOptions> parse_driver_args(
    const std::vector<std::string>& args) {
  DriverOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a.rfind("--passes=", 0) == 0) {
      for (auto& p : split_csv(a.substr(9))) opts.passes.insert(p);
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwlint ") + cli::common_usage() +
                        " [--passes=a,b] [program...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      opts.programs.push_back(a);
    }
  }
  return opts;
}

std::string driver_json(const std::vector<ProgramOutcome>& outcomes) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-lint-run-1");
  std::size_t errors = 0;
  for (const auto& o : outcomes) errors += o.result.errors();
  w.key("errors").value(static_cast<std::uint64_t>(errors));
  w.key("programs").begin_array();
  for (const auto& o : outcomes)
    diagnostics_to_json(w, o.program, o.result.diagnostics);
  w.end_array();
  w.end_object();
  return w.str();
}

DriverReport run_driver(const DriverOptions& opts, std::ostream& out) {
  DriverReport report;
  const auto corpus = build_corpus();

  if (opts.list) {
    Table t({"program", "runnable", "expected", "summary"});
    for (const auto& p : corpus) {
      std::string kinds;
      for (const auto& k : p.expected_kinds) {
        if (!kinds.empty()) kinds += ",";
        kinds += k;
      }
      if (kinds.empty()) kinds = "-";
      t.add_row({p.name, p.runnable() ? "yes" : "no", kinds, p.summary});
    }
    out << t.to_string();
    return report;
  }

  // Resolve the program selection against the corpus.
  std::vector<const CorpusProgram*> selected;
  if (opts.programs.empty()) {
    for (const auto& p : corpus) selected.push_back(&p);
  } else {
    for (const auto& name : opts.programs) {
      const CorpusProgram* found = nullptr;
      for (const auto& p : corpus)
        if (p.name == name) found = &p;
      if (found == nullptr) {
        out << "rwlint: unknown program: " << name << "\n";
        report.exit_code = 2;
        return report;
      }
      selected.push_back(found);
    }
  }

  PassManager pm = PassManager::with_default_passes();
  if (!opts.passes.empty()) {
    for (const auto& name : opts.passes) {
      if (pm.find(name) == nullptr) {
        out << "rwlint: unknown pass: " << name << "\n";
        report.exit_code = 2;
        return report;
      }
    }
    pm.enable_only(opts.passes);
  }

  for (const CorpusProgram* p : selected) {
    ProgramOutcome outcome;
    outcome.program = p->name;
    outcome.result = pm.run(p->target());

    if (opts.write_files) {
      outcome.json_path = opts.out_dir + "/LINT_" + p->name + ".json";
      std::ofstream f(outcome.json_path);
      f << outcome.result.to_json() << "\n";
    }

    if (!opts.json_stdout) {
      Table t({"severity", "pass", "kind", "entity", "message"});
      for (const auto& d : outcome.result.diagnostics)
        t.add_row({severity_name(d.severity), d.pass, d.kind,
                   d.location.entity, d.message});
      out << "== " << p->name << " ==\n";
      if (t.row_count() > 0) out << t.to_string();
      out << strformat("%zu error(s), %zu warning(s)",
                       outcome.result.errors(), outcome.result.warnings());
      std::string ran;
      for (const auto& s : outcome.result.stats)
        if (s.ran) ran += (ran.empty() ? "" : ",") + s.pass;
      out << "  [passes: " << (ran.empty() ? "none" : ran) << "]\n";
      if (!outcome.json_path.empty())
        out << "wrote " << outcome.json_path << "\n";
      out << "\n";
    }

    if (outcome.result.errors() > 0) report.exit_code = 1;
    report.outcomes.push_back(std::move(outcome));
  }

  if (opts.json_stdout) {
    const std::string legacy = driver_json(report.outcomes);
    if (opts.legacy_json)
      out << legacy << "\n";
    else
      out << cli::envelope("rwlint", opts.seed, legacy) << "\n";
  }
  return report;
}

}  // namespace rw::lint
