// Shared-data access report as a pass (Sec. VI's middle step).
//
// recoder::analyze_shared_accesses already classifies every global array
// a function touches (splittable / channelizable / keep-shared / not
// analyzable); this pass runs it over every function and re-emits the
// verdicts through the adapter so the recoder speaks Diagnostic like
// everyone else. keep-shared verdicts surface as warnings: they are the
// arrays that need real synchronization before partitioning.
#include "lint/adapters.hpp"
#include "lint/passes.hpp"

namespace rw::lint {
namespace {

class SharedAccessPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "shared-access";
  }
  [[nodiscard]] std::string_view description() const override {
    return "recoder shared-array access classification per function";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.program != nullptr && !t.program->functions.empty();
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    for (const auto& f : t.program->functions) {
      auto diags = from_shared_report(
          recoder::analyze_shared_accesses(*t.program, f), t.name, f.name);
      for (auto& d : diags) out.push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_shared_access_pass() {
  return std::make_unique<SharedAccessPass>();
}

}  // namespace rw::lint
