// Buffer-bound lint: dataflow::compute_buffer_capacities as a pass.
//
// Sec. III: "it is sufficient to show at design time that a valid
// schedule exists such that the periodic source and sink task can execute
// wait-free". The pass reruns that design-time argument for the target's
// dataflow graph: if no wait-free capacity assignment exists within the
// round budget the period is unsustainable (error); if the target
// supplies capacities that undercut the sufficient ones, the executor
// will block producers (error per edge); otherwise the computed
// capacities are attached as notes so the designer can size memories.
#include "common/strings.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/deadlock.hpp"
#include "lint/passes.hpp"

namespace rw::lint {
namespace {

class BufferPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "buffer-bounds";
  }
  [[nodiscard]] std::string_view description() const override {
    return "wait-free buffer capacity sufficiency for the dataflow graph";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.dataflow != nullptr;
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    const auto& g = *t.dataflow;
    // An inconsistent or deadlocked graph has no meaningful sizing; the
    // deadlock pass already reports it.
    if (!g.repetition_vector().ok()) return;
    if (dataflow::detect_deadlock(g).deadlocked) return;

    const auto sizing = dataflow::compute_buffer_capacities(
        g, t.dataflow_cfg);
    if (!sizing.wait_free) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.subsystem = "dataflow";
      d.pass = "buffer-bounds";
      d.kind = "unsustainable-period";
      d.location = {t.name, ""};
      d.message = strformat(
          "no wait-free buffer assignment found within %d growth rounds: "
          "the source period is unsustainable under WCETs",
          sizing.rounds);
      d.with_evidence("rounds", strformat("%d", sizing.rounds));
      out.push_back(std::move(d));
      return;
    }

    for (std::size_t e = 0; e < g.edges().size(); ++e) {
      const auto& edge = g.edges()[e];
      const auto name =
          edge.name.empty() ? strformat("edge%zu", e) : edge.name;
      if (e < t.dataflow_cfg.buffer_capacities.size() &&
          t.dataflow_cfg.buffer_capacities[e] < sizing.capacities[e]) {
        Diagnostic d;
        d.severity = Severity::kError;
        d.subsystem = "dataflow";
        d.pass = "buffer-bounds";
        d.kind = "buffer-underprovisioned";
        d.location = {t.name, name};
        d.message = strformat(
            "edge '%s' capacity %zu is below the sufficient wait-free "
            "capacity %zu",
            name.c_str(), t.dataflow_cfg.buffer_capacities[e],
            sizing.capacities[e]);
        d.with_evidence("provided",
                        strformat("%zu",
                                  t.dataflow_cfg.buffer_capacities[e]))
            .with_evidence("sufficient",
                           strformat("%zu", sizing.capacities[e]));
        out.push_back(std::move(d));
      } else {
        Diagnostic d;
        d.severity = Severity::kNote;
        d.subsystem = "dataflow";
        d.pass = "buffer-bounds";
        d.kind = "buffer-capacity";
        d.location = {t.name, name};
        d.message = strformat("edge '%s' needs capacity %zu for wait-free "
                              "execution",
                              name.c_str(), sizing.capacities[e]);
        d.with_evidence("sufficient",
                        strformat("%zu", sizing.capacities[e]));
        out.push_back(std::move(d));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_buffer_pass() {
  return std::make_unique<BufferPass>();
}

}  // namespace rw::lint
