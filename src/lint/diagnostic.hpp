// Unified static-analysis diagnostics.
//
// Secs. IV, VI and VII all hinge on *design-time* findings a designer can
// act on: MAPS dataflow analysis, the Source Recoder's shared-access
// reports, and the virtual platform's race/deadlock observations. Before
// this module each of those spoke its own ad-hoc report struct. A
// Diagnostic is the one shape they all translate into: severity, the
// subsystem that produced it, a stable machine-readable kind, a location
// (which unit, which entity), prose, and structured evidence. The JSON
// export (rw::json::Writer) is deterministic so static and dynamic
// findings diff cleanly.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace rw::lint {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

const char* severity_name(Severity s);

/// Where a finding points. `unit` is the enclosing program / graph /
/// function; `entity` the variable, task, actor or edge concerned.
struct Location {
  std::string unit;
  std::string entity;
};

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string subsystem;  // "maps", "dataflow", "recoder", "vpdebug"
  std::string pass;       // producing pass, or "dynamic" for sim findings
  std::string kind;       // stable key: "race", "deadlock", ...
  Location location;
  std::string message;
  /// Ordered key/value pairs; insertion order is rendering order.
  std::vector<std::pair<std::string, std::string>> evidence;

  Diagnostic& with_evidence(std::string k, std::string v) {
    evidence.emplace_back(std::move(k), std::move(v));
    return *this;
  }

  /// Identity at the granularity the static-vs-dynamic cross-check uses:
  /// kind + unit + entity. Two detectors that find "a race on counter in
  /// racy_counter" agree on this key whatever else they disagree on.
  [[nodiscard]] std::string key() const;

  [[nodiscard]] std::string to_string() const;
  void to_json(json::Writer& w) const;
};

/// Deterministic presentation order: errors first, then lexicographic on
/// (subsystem, kind, unit, entity, message, pass). Stable across runs by
/// construction — no pointers, times or hashes involved.
bool diagnostic_less(const Diagnostic& a, const Diagnostic& b);
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Counts by severity.
std::size_t count_severity(const std::vector<Diagnostic>& diags, Severity s);

/// Drop diagnostics that restate a finding another pass already made:
/// two entries are duplicates when (kind, unit, entity, evidence) agree
/// — the producing pass and prose may differ. Input must be sorted
/// (sort_diagnostics); the first entry in sorted order survives, so the
/// output never depends on pass registration order.
void dedupe_diagnostics(std::vector<Diagnostic>& diags);

/// Serialize a diagnostic set as the documented "rw-lint-1" schema:
/// {schema, program, errors, warnings, notes, diagnostics: [...]}. Output
/// is byte-identical across runs for the same findings.
std::string diagnostics_to_json(const std::string& program,
                                const std::vector<Diagnostic>& diags);

/// Same document, emitted into an existing writer (for the driver's
/// combined multi-program output).
void diagnostics_to_json(json::Writer& w, const std::string& program,
                         const std::vector<Diagnostic>& diags);

}  // namespace rw::lint
