#include "lint/diagnostic.hpp"

#include <algorithm>
#include <tuple>

#include "common/strings.hpp"

namespace rw::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::key() const {
  return kind + ":" + location.unit + ":" + location.entity;
}

std::string Diagnostic::to_string() const {
  std::string s = strformat("[%s] %s/%s %s", severity_name(severity),
                            subsystem.c_str(), kind.c_str(),
                            location.unit.c_str());
  if (!location.entity.empty()) s += ":" + location.entity;
  s += ": " + message;
  for (const auto& [k, v] : evidence) s += " {" + k + "=" + v + "}";
  return s;
}

void Diagnostic::to_json(json::Writer& w) const {
  w.begin_object();
  w.key("severity").value(severity_name(severity));
  w.key("subsystem").value(subsystem);
  w.key("pass").value(pass);
  w.key("kind").value(kind);
  w.key("unit").value(location.unit);
  w.key("entity").value(location.entity);
  w.key("message").value(message);
  w.key("evidence").begin_object();
  for (const auto& [k, v] : evidence) w.key(k).value(v);
  w.end_object();
  w.end_object();
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  // Errors sort first; within a severity the order is purely lexical.
  if (a.severity != b.severity)
    return static_cast<int>(a.severity) > static_cast<int>(b.severity);
  return std::tie(a.subsystem, a.kind, a.location.unit, a.location.entity,
                  a.message, a.pass) <
         std::tie(b.subsystem, b.kind, b.location.unit, b.location.entity,
                  b.message, b.pass);
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(), diagnostic_less);
}

std::size_t count_severity(const std::vector<Diagnostic>& diags,
                           Severity s) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

void dedupe_diagnostics(std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> out;
  out.reserve(diags.size());
  for (auto& d : diags) {
    const bool dup = std::any_of(
        out.begin(), out.end(), [&](const Diagnostic& kept) {
          return kept.kind == d.kind &&
                 kept.location.unit == d.location.unit &&
                 kept.location.entity == d.location.entity &&
                 kept.evidence == d.evidence;
        });
    if (!dup) out.push_back(std::move(d));
  }
  diags = std::move(out);
}

void diagnostics_to_json(json::Writer& w, const std::string& program,
                         const std::vector<Diagnostic>& diags) {
  w.begin_object();
  w.key("schema").value("rw-lint-1");
  w.key("program").value(program);
  w.key("errors").value(
      static_cast<std::uint64_t>(count_severity(diags, Severity::kError)));
  w.key("warnings").value(
      static_cast<std::uint64_t>(count_severity(diags, Severity::kWarning)));
  w.key("notes").value(
      static_cast<std::uint64_t>(count_severity(diags, Severity::kNote)));
  w.key("diagnostics").begin_array();
  for (const auto& d : diags) d.to_json(w);
  w.end_array();
  w.end_object();
}

std::string diagnostics_to_json(const std::string& program,
                                const std::vector<Diagnostic>& diags) {
  json::Writer w;
  diagnostics_to_json(w, program, diags);
  return w.str();
}

}  // namespace rw::lint
