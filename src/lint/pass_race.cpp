// Static race detection on a MAPS partition/mapping.
//
// Dynamic detection (vpdebug::RaceDetector) flags conflicting accesses it
// happens to observe close together in one run. The static twin is the
// conservative closure: a shared variable written by one partition and
// accessed by another is a race whenever no ordering path — synchronizing
// channel edges plus run-to-completion order on a shared PE — connects
// the two partitions. Everything the detector can observe dynamically is
// in this set (the conservative-superset contract the cross-check test
// holds us to); the designer prunes false alarms, exactly the "concur,
// augment or overrule" loop of Sec. VI.
#include <algorithm>
#include <map>

#include "common/strings.hpp"
#include "lint/order_graph.hpp"
#include "lint/passes.hpp"

namespace rw::lint {
namespace {

struct TaskAccess {
  bool reads = false;
  bool writes = false;
  std::string first_stmt;  // representative statement, for evidence
};

class RacePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "static-race";
  }
  [[nodiscard]] std::string_view description() const override {
    return "unordered conflicting shared-variable accesses across "
           "partitions";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.has_mapped();
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    const auto reach = order_reachability(t);

    // Per variable: which tasks read / write it.
    // map keeps variable iteration order deterministic by VarId.
    std::map<std::size_t, std::map<std::size_t, TaskAccess>> access;
    const auto& stmts = t.seq->stmts();
    for (std::size_t s = 0; s < stmts.size(); ++s) {
      const std::size_t task = t.stmt_to_task[s];
      for (const auto v : stmts[s].reads) {
        auto& a = access[v.index()][task];
        a.reads = true;
        if (a.first_stmt.empty()) a.first_stmt = stmts[s].name;
      }
      for (const auto v : stmts[s].writes) {
        auto& a = access[v.index()][task];
        a.writes = true;
        if (a.first_stmt.empty()) a.first_stmt = stmts[s].name;
      }
    }

    for (const auto& [var_idx, by_task] : access) {
      const auto& var = t.seq->vars()[var_idx];
      if (by_task.size() < 2) continue;
      if (t.locked_vars.count(var.name)) {
        Diagnostic d;
        d.severity = Severity::kNote;
        d.subsystem = "maps";
        d.pass = std::string(name());
        d.kind = "lock-protected";
        d.location = {t.name, var.name};
        d.message = strformat(
            "shared variable '%s' accessed by %zu partitions under a "
            "hardware semaphore",
            var.name.c_str(), by_task.size());
        out.push_back(std::move(d));
        continue;
      }
      for (auto ia = by_task.begin(); ia != by_task.end(); ++ia) {
        for (auto ib = std::next(ia); ib != by_task.end(); ++ib) {
          const auto& [ta, aa] = *ia;
          const auto& [tb, ab] = *ib;
          const bool conflict =
              (aa.writes && (ab.reads || ab.writes)) ||
              (ab.writes && (aa.reads || aa.writes));
          if (!conflict) continue;
          if (reach[ta][tb] || reach[tb][ta]) continue;  // ordered: safe
          Diagnostic d;
          d.severity = Severity::kError;
          d.subsystem = "maps";
          d.pass = std::string(name());
          d.kind = "race";
          d.location = {t.name, var.name};
          d.message = strformat(
              "shared variable '%s': %s by task '%s' and %s by task '%s' "
              "with no synchronizing path between them",
              var.name.c_str(), aa.writes ? "written" : "read",
              t.task_graph->tasks()[ta].name.c_str(),
              ab.writes ? "written" : "read",
              t.task_graph->tasks()[tb].name.c_str());
          d.with_evidence("task_a", t.task_graph->tasks()[ta].name)
              .with_evidence("task_b", t.task_graph->tasks()[tb].name)
              .with_evidence("access_a", aa.writes ? "write" : "read")
              .with_evidence("access_b", ab.writes ? "write" : "read")
              .with_evidence("stmt_a", aa.first_stmt)
              .with_evidence("stmt_b", ab.first_stmt);
          out.push_back(std::move(d));
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_race_pass() {
  return std::make_unique<RacePass>();
}

}  // namespace rw::lint
