#include "lint/pass.hpp"

#include <algorithm>
#include <chrono>

#include "lint/passes.hpp"

namespace rw::lint {

std::vector<std::vector<std::size_t>> Target::pe_orders() const {
  if (!core_order.empty()) return core_order;
  std::vector<std::vector<std::size_t>> orders;
  if (task_graph == nullptr) return orders;
  const std::size_t n = task_graph->tasks().size();
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t pe = pe_of(t);
    if (pe >= orders.size()) orders.resize(pe + 1);
    orders[pe].push_back(t);
  }
  return orders;
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager PassManager::with_default_passes() {
  PassManager pm;
  pm.add(make_race_pass());
  pm.add(make_deadlock_pass());
  pm.add(make_uninit_pass());
  pm.add(make_buffer_pass());
  pm.add(make_shared_access_pass());
  pm.add(make_throughput_pass());
  pm.add(make_buffer_size_pass());
  pm.add(make_makespan_pass());
  return pm;
}

void PassManager::enable_only(const std::set<std::string>& names) {
  if (names.empty()) return;
  std::erase_if(passes_, [&](const std::unique_ptr<Pass>& p) {
    return names.count(std::string(p->name())) == 0;
  });
}

const Pass* PassManager::find(std::string_view name) const {
  for (const auto& p : passes_)
    if (p->name() == name) return p.get();
  return nullptr;
}

LintResult PassManager::run(const Target& t) const {
  LintResult res;
  res.target = t.name;
  for (const auto& p : passes_) {
    PassStats st;
    st.pass = std::string(p->name());
    if (p->applicable(t)) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t before = res.diagnostics.size();
      p->run(t, res.diagnostics);
      st.ran = true;
      st.findings = res.diagnostics.size() - before;
      st.wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    res.stats.push_back(std::move(st));
  }
  sort_diagnostics(res.diagnostics);
  // Overlapping passes may restate one finding (static-deadlock and
  // static-buffer-size both report an inherently deadlocked channel);
  // dedupe after sorting so the survivor never depends on registration
  // order.
  dedupe_diagnostics(res.diagnostics);
  return res;
}

}  // namespace rw::lint
