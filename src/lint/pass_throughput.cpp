// Static throughput contract: repetition-vector workload analysis.
//
// Sec. III's design flow sizes buffers against a declared source period;
// this pass answers the prior question — which periods are provably
// sustainable at all? The one-iteration workload W (every actor's
// repetition count times its WCET, converted per actor so rounding errs
// upward) upper-bounds the maximum cycle ratio: any dependency cycle
// carries >= 1 initial token, so its amortized per-iteration cost is at
// most the whole-graph workload. A source period of W therefore always
// admits a static schedule, and 1/W is a guaranteed steady-state
// throughput lower bound — the executor can only do better.
#include "common/strings.hpp"
#include "lint/passes.hpp"
#include "lint/perf_contract.hpp"

namespace rw::lint {
namespace {

class ThroughputPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "static-throughput";
  }
  [[nodiscard]] std::string_view description() const override {
    return "guaranteed-sustainable period / steady-state throughput lower "
           "bound for the dataflow graph";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.dataflow != nullptr;
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    const auto& g = *t.dataflow;
    // Inconsistent or inherently deadlocked graphs have no sustainable
    // period; the deadlock pass reports those.
    const auto w = guaranteed_period(g, t.dataflow_cfg.frequency);
    if (w == 0) return;

    Diagnostic d;
    d.severity = Severity::kNote;
    d.subsystem = "dataflow";
    d.pass = "static-throughput";
    d.kind = "throughput-bound";
    d.location = {t.name, ""};
    d.message = strformat(
        "a source period of %llu ps is statically sustainable: guaranteed "
        "steady-state throughput >= %.3f iterations/s",
        static_cast<unsigned long long>(w),
        1e12 / static_cast<double>(w));
    d.with_evidence("period_bound_ps",
                    strformat("%llu", static_cast<unsigned long long>(w)))
        .with_evidence("min_iterations_per_sec",
                       strformat("%.3f", 1e12 / static_cast<double>(w)));

    // Flag a declared period the bound cannot prove sustainable — not an
    // error (the bound is conservative), but worth a designer's look when
    // the executor-backed sizing also struggles.
    if (t.dataflow_cfg.source_period > 0 &&
        t.dataflow_cfg.source_period < w) {
      d.with_evidence("declared_period_ps",
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    t.dataflow_cfg.source_period)));
    }
    out.push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Pass> make_throughput_pass() {
  return std::make_unique<ThroughputPass>();
}

}  // namespace rw::lint
