#include "lint/order_graph.hpp"

namespace rw::lint {

std::vector<std::vector<std::size_t>> order_edges(const Target& t) {
  const std::size_t n = t.task_graph->tasks().size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& e : t.task_graph->edges())
    adj[e.src.index()].push_back(e.dst.index());
  for (const auto& order : t.pe_orders())
    for (std::size_t i = 1; i < order.size(); ++i)
      adj[order[i - 1]].push_back(order[i]);
  return adj;
}

std::vector<std::vector<bool>> order_reachability(const Target& t) {
  const auto adj = order_edges(t);
  const std::size_t n = adj.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i)
    for (const std::size_t j : adj[i]) reach[i][j] = true;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j)
        if (reach[k][j]) reach[i][j] = true;
    }
  return reach;
}

}  // namespace rw::lint
