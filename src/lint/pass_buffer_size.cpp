// Static buffer-size contract: minimal deadlock-free channel capacities.
//
// The executor-backed buffer-bounds pass answers "which capacities make
// the declared period wait-free?" by simulating — O(sim). This pass
// answers the weaker but timing-free question "which capacities keep the
// graph deadlock-free at all?" by untimed abstract execution with
// back-pressure — O(IR), the static twin of bench_e4's dynamic sweep.
// The per-channel capacities are emitted as evidence for maps to size
// channels from (lint::apply_buffer_contract). On an inherently
// deadlocked graph the capacities do not exist; the deadlock report is
// re-emitted under this pass's name — deliberately duplicating the
// static-deadlock pass so the post-sort dedupe keeps exactly one copy
// regardless of registration order.
#include "common/strings.hpp"
#include "dataflow/deadlock.hpp"
#include "lint/adapters.hpp"
#include "lint/passes.hpp"
#include "lint/perf_contract.hpp"

namespace rw::lint {
namespace {

class BufferSizePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "static-buffer-size";
  }
  [[nodiscard]] std::string_view description() const override {
    return "minimal deadlock-free channel capacities by untimed abstract "
           "execution";
  }
  [[nodiscard]] bool applicable(const Target& t) const override {
    return t.dataflow != nullptr;
  }

  void run(const Target& t, std::vector<Diagnostic>& out) const override {
    const auto& g = *t.dataflow;
    if (!g.repetition_vector().ok()) return;
    if (const auto rep = dataflow::detect_deadlock(g); rep.deadlocked) {
      auto dup = from_deadlock_report(rep, t.name, "static-buffer-size");
      for (auto& d : dup) out.push_back(std::move(d));
      return;
    }

    const auto caps = deadlock_free_capacities(g);
    for (std::size_t e = 0; e < caps.size(); ++e) {
      const auto& edge = g.edges()[e];
      const auto name =
          edge.name.empty() ? strformat("edge%zu", e) : edge.name;
      Diagnostic d;
      d.severity = Severity::kNote;
      d.subsystem = "dataflow";
      d.pass = "static-buffer-size";
      d.kind = "deadlock-free-capacity";
      d.location = {t.name, name};
      d.message = strformat(
          "edge '%s' needs capacity %zu to stay deadlock-free",
          name.c_str(), caps[e]);
      d.with_evidence("capacity", strformat("%zu", caps[e]));
      out.push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_buffer_size_pass() {
  return std::make_unique<BufferSizePass>();
}

}  // namespace rw::lint
