// Demo workloads for the profiler tooling.
//
// Small, deterministic multi-core programs with distinct performance
// signatures, used by the rwprof CLI and bench_e12 as measurement
// subjects: a software pipeline (communication-bound), a fork-join loop
// (Amdahl-shaped with a serial phase), and a shared-memory hammer
// (contention-bound). Every workload is a pure function of (platform
// config, seed, scale) so profiles and exports are byte-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/platform.hpp"

namespace rw::perf {

struct WorkloadInfo {
  std::string name;
  std::string description;
};

/// All registered workloads, in stable display order.
const std::vector<WorkloadInfo>& workload_registry();

[[nodiscard]] bool is_workload(std::string_view name);

/// Whether `name` partitions into tile-local state (processes touch only
/// their own core's scratchpad and communicate over TileLinks), i.e.
/// whether sim::apply_tiling may spread its cores across tiles. The
/// legacy workloads share channels and memory on tile 0 and run under
/// --threads with idle sibling tiles instead.
[[nodiscard]] bool workload_tileable(std::string_view name);

/// Spawn workload `name` onto the platform (processes adopt into the
/// kernel; the caller then calls kernel.run()). `scale` multiplies the
/// iteration counts — CI uses small values. Returns false for an unknown
/// name.
bool spawn_workload(std::string_view name, sim::Platform& platform,
                    std::uint64_t seed, std::uint64_t scale = 8);

}  // namespace rw::perf
