#include "perf/pmu.hpp"

namespace rw::perf {

void Pmu::on_core_reserve(sim::CoreId core, Cycles cycles, TimePs start,
                          TimePs finish, HertzT /*freq*/) {
  CoreCounters& c = bucket(core);
  c.busy_cycles += cycles;
  c.busy_ps += finish - start;
  ++c.reservations;
}

void Pmu::on_compute_block(sim::CoreId core, const std::string& /*label*/,
                           Cycles /*cycles*/, TimePs /*start*/,
                           TimePs /*finish*/) {
  ++bucket(core).compute_blocks;
}

void Pmu::on_freq_change(sim::CoreId core, HertzT /*from*/, HertzT /*to*/) {
  ++bucket(core).freq_changes;
}

void Pmu::on_mem_access(sim::CoreId core, bool is_write, bool local,
                        std::uint32_t bytes, Cycles latency) {
  CoreCounters& c = bucket(core);
  if (is_write) {
    ++c.mem_writes;
    c.bytes_written += bytes;
  } else {
    ++c.mem_reads;
    c.bytes_read += bytes;
  }
  if (local) {
    ++c.local_accesses;
  } else {
    ++c.shared_accesses;
  }
  c.stall_cycles += latency;
}

void Pmu::on_transfer(sim::CoreId /*src*/, sim::CoreId /*dst*/,
                      std::uint64_t bytes, DurationPs wait,
                      DurationPs duration, std::uint32_t hops) {
  ++icn_.transfers;
  icn_.bytes += bytes;
  icn_.wait_ps += wait;
  icn_.busy_ps += duration;
  icn_.hops += hops;
}

void Pmu::on_link_busy(std::size_t link, DurationPs busy) {
  if (link >= icn_.link_busy_ps.size()) icn_.link_busy_ps.resize(link + 1, 0);
  icn_.link_busy_ps[link] += busy;
}

void Pmu::on_dma(std::uint64_t bytes, TimePs start, TimePs finish) {
  ++dma_.transfers;
  dma_.bytes += bytes;
  dma_.busy_ps += finish - start;
}

PmuSnapshot Pmu::snapshot(TimePs now) const {
  PmuSnapshot s;
  s.at = now;
  s.cores = cores_;
  s.unattributed = unattributed_;
  s.icn = icn_;
  s.dma = dma_;
  return s;
}

void Pmu::reset() {
  for (auto& c : cores_) c = CoreCounters{};
  unattributed_ = CoreCounters{};
  icn_ = IcnCounters{};
  dma_ = DmaCounters{};
}

}  // namespace rw::perf
