// Metrics pipeline: windowed counter time-series.
//
// The PMU accumulates totals; many questions (is the bus saturating *now*?
// which phase starves core 2?) need rates instead. The EpochCollector
// closes a fixed-width simulated-time window ("epoch") on a kernel tick,
// snapshots the PMU, and stores the counter *delta* against the previous
// boundary — a deterministic time-series the exporters turn into CSV and
// the DVFS governor reads as utilization-per-window.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "perf/pmu.hpp"
#include "sim/platform.hpp"

namespace rw::perf {

/// Field-wise counter deltas (b - a, saturating at zero for safety).
CoreCounters delta(const CoreCounters& a, const CoreCounters& b);
IcnCounters delta(const IcnCounters& a, const IcnCounters& b);
DmaCounters delta(const DmaCounters& a, const DmaCounters& b);

/// One closed window of counter activity.
struct Epoch {
  std::size_t index = 0;
  TimePs start = 0;
  TimePs end = 0;  // start + width, except a shorter final epoch
  std::vector<CoreCounters> cores;  // per-core deltas within the window
  CoreCounters unattributed;
  IcnCounters icn;
  DmaCounters dma;

  [[nodiscard]] DurationPs width() const { return end - start; }
  /// Mean busy fraction across cores within this window.
  [[nodiscard]] double mean_utilization() const;

  bool operator==(const Epoch&) const = default;
};

class EpochCollector {
 public:
  EpochCollector(sim::Platform& platform, const Pmu& pmu, DurationPs width);

  /// Schedule the first boundary tick (idempotent).
  void start();

  /// Close the trailing partial window (if any activity happened after the
  /// last boundary). Call after kernel.run() returns.
  void finish();

  [[nodiscard]] const std::vector<Epoch>& epochs() const { return epochs_; }
  [[nodiscard]] DurationPs width() const { return width_; }

 private:
  void tick();
  void close_epoch(TimePs end);

  sim::Platform& platform_;
  const Pmu& pmu_;
  DurationPs width_;
  bool started_ = false;
  bool finished_ = false;
  PmuSnapshot prev_;
  std::vector<Epoch> epochs_;
};

}  // namespace rw::perf
