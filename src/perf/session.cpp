#include "perf/session.hpp"

namespace rw::perf {

namespace {
void add(CoreCounters& t, const CoreCounters& c) {
  t.busy_cycles += c.busy_cycles;
  t.stall_cycles += c.stall_cycles;
  t.busy_ps += c.busy_ps;
  t.reservations += c.reservations;
  t.compute_blocks += c.compute_blocks;
  t.mem_reads += c.mem_reads;
  t.mem_writes += c.mem_writes;
  t.local_accesses += c.local_accesses;
  t.shared_accesses += c.shared_accesses;
  t.bytes_read += c.bytes_read;
  t.bytes_written += c.bytes_written;
  t.freq_changes += c.freq_changes;
}
}  // namespace

CoreCounters PerfReport::totals() const {
  CoreCounters t;
  for (const auto& c : pmu.cores) add(t, c);
  add(t, pmu.unattributed);
  return t;
}

double PerfReport::mean_utilization() const {
  if (num_cores == 0 || makespan == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < pmu.cores.size(); ++i)
    sum += pmu.cores[i].utilization(makespan);
  return sum / static_cast<double>(num_cores);
}

void PerfReport::to_extras(RunMetrics& m, const std::string& prefix) const {
  const CoreCounters t = totals();
  m.set_extra(prefix + "busy_cycles", static_cast<double>(t.busy_cycles));
  m.set_extra(prefix + "stall_cycles", static_cast<double>(t.stall_cycles));
  m.set_extra(prefix + "instructions",
              static_cast<double>(t.approx_instructions()));
  m.set_extra(prefix + "mem_reads", static_cast<double>(t.mem_reads));
  m.set_extra(prefix + "mem_writes", static_cast<double>(t.mem_writes));
  m.set_extra(prefix + "local_accesses",
              static_cast<double>(t.local_accesses));
  m.set_extra(prefix + "shared_accesses",
              static_cast<double>(t.shared_accesses));
  m.set_extra(prefix + "icn_transfers",
              static_cast<double>(pmu.icn.transfers));
  m.set_extra(prefix + "icn_bytes", static_cast<double>(pmu.icn.bytes));
  m.set_extra(prefix + "icn_wait_ps", static_cast<double>(pmu.icn.wait_ps));
  m.set_extra(prefix + "dma_bytes", static_cast<double>(pmu.dma.bytes));
  if (profiler_ticks > 0) {
    m.set_extra(prefix + "samples",
                static_cast<double>(profile.total_samples));
    m.set_extra(prefix + "idle_samples",
                static_cast<double>(profile.idle_samples));
  }
  m.set_extra(prefix + "epochs", static_cast<double>(epochs.size()));
}

PerfSession::PerfSession(sim::Platform& platform, PerfConfig cfg)
    : platform_(platform), cfg_(cfg), pmu_(platform.core_count()) {
  platform_.set_perf_sink(&pmu_);
  attached_ = true;
  if (cfg_.profile) {
    profiler_ = std::make_unique<SamplingProfiler>(platform_, cfg_.profiler);
    profiler_->start();
  }
  // The epoch collector snapshots *global* PMU state from a tile-0 daemon,
  // which would read other tiles' counters mid-window under parallel
  // execution; on a tiled platform it stays off (the headline report is
  // unaffected — only the per-epoch timeline is skipped).
  if (cfg_.collect_epochs && platform_.tile_count() == 1) {
    epochs_ =
        std::make_unique<EpochCollector>(platform_, pmu_, cfg_.epoch_width);
    epochs_->start();
  }
}

PerfSession::~PerfSession() { detach(); }

void PerfSession::detach() {
  if (!attached_) return;
  platform_.set_perf_sink(nullptr);
  attached_ = false;
}

PerfReport PerfSession::report() {
  PerfReport r;
  r.makespan = platform_.now();  // max tile clock on a tiled platform
  r.num_cores = platform_.core_count();
  r.pmu = pmu_.snapshot(r.makespan);
  if (profiler_) {
    r.profile = profiler_->profile();
    r.profiler_ticks = profiler_->ticks();
    r.profiler_period = profiler_->config().period;
  }
  if (epochs_) {
    epochs_->finish();
    r.epochs = epochs_->epochs();
  }
  return r;
}

}  // namespace rw::perf
