#include "perf/workload.hpp"

#include <memory>

#include "common/strings.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/tilelink.hpp"

namespace rw::perf {

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------- pipeline

struct PipelineState {
  std::vector<std::unique_ptr<sim::Channel<std::uint64_t>>> chans;
};

sim::Process pipeline_source(sim::Platform& plat,
                             std::shared_ptr<PipelineState> st,
                             std::uint64_t items) {
  for (std::uint64_t i = 0; i < items; ++i) {
    co_await sim::delay(plat.kernel(), nanoseconds(500));
    co_await st->chans.front()->send(i);
  }
}

sim::Process pipeline_stage(sim::Platform& plat,
                            std::shared_ptr<PipelineState> st,
                            std::size_t stage, std::size_t core_idx,
                            std::uint64_t items, std::uint64_t seed) {
  sim::Core& core = plat.core(core_idx);
  std::uint64_t rng = seed ^ (0x51a9e * (stage + 1));
  for (std::uint64_t i = 0; i < items; ++i) {
    const std::uint64_t v = co_await st->chans[stage]->recv();
    co_await core.compute(2000 + splitmix(rng) % 3000,
                          strformat("stage%zu", stage));
    // One shared-memory round trip per item: the stage's "state" load.
    const sim::Addr a = plat.shared_base() + (v % 1024) * 8;
    plat.memory().write_u64(core.id(), a, v);
    (void)plat.memory().read_u64(core.id(), a);
    co_await st->chans[stage + 1]->send(v);
  }
}

sim::Process pipeline_sink(sim::Platform& /*plat*/,
                           std::shared_ptr<PipelineState> st,
                           std::uint64_t items) {
  for (std::uint64_t i = 0; i < items; ++i)
    (void)co_await st->chans.back()->recv();
}

void spawn_pipeline(sim::Platform& plat, std::uint64_t seed,
                    std::uint64_t scale) {
  const std::size_t stages = std::min<std::size_t>(plat.core_count(), 4);
  const std::uint64_t items = 16 * scale;
  auto st = std::make_shared<PipelineState>();
  for (std::size_t i = 0; i <= stages; ++i)
    st->chans.push_back(std::make_unique<sim::Channel<std::uint64_t>>(
        plat.kernel(), 2, strformat("pipe%zu", i)));
  sim::spawn(plat.kernel(), pipeline_source(plat, st, items));
  for (std::size_t s = 0; s < stages; ++s)
    sim::spawn(plat.kernel(),
               pipeline_stage(plat, st, s, s % plat.core_count(), items,
                              seed));
  sim::spawn(plat.kernel(), pipeline_sink(plat, st, items));
}

// ---------------------------------------------------------------- forkjoin

struct ForkJoinState {
  std::vector<std::unique_ptr<sim::Channel<std::uint64_t>>> work;
  std::unique_ptr<sim::Channel<std::uint64_t>> done;
};

sim::Process forkjoin_worker(sim::Platform& plat,
                             std::shared_ptr<ForkJoinState> st,
                             std::size_t worker, std::uint64_t rounds,
                             std::uint64_t seed) {
  sim::Core& core = plat.core(worker);
  std::uint64_t rng = seed ^ (0xf02c * (worker + 1));
  for (std::uint64_t r = 0; r < rounds; ++r) {
    (void)co_await st->work[worker]->recv();
    co_await core.compute(8000 + splitmix(rng) % 4000, "parallel");
    // Publish the partial result to shared memory for the join.
    plat.memory().write_u64(core.id(),
                            plat.shared_base() + 8 * worker, r);
    co_await st->done->send(worker);
  }
}

sim::Process forkjoin_master(sim::Platform& plat,
                             std::shared_ptr<ForkJoinState> st,
                             std::uint64_t rounds, std::uint64_t seed) {
  sim::Core& core = plat.core(0);
  std::uint64_t rng = seed ^ 0xabcd;
  const std::size_t workers = st->work.size();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await core.compute(12000 + splitmix(rng) % 2000, "serial");
    for (std::size_t w = 0; w < workers; ++w)
      co_await st->work[w]->send(r);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::uint64_t who = co_await st->done->recv();
      (void)plat.memory().read_u64(core.id(),
                                   plat.shared_base() + 8 * who);
    }
  }
}

void spawn_forkjoin(sim::Platform& plat, std::uint64_t seed,
                    std::uint64_t scale) {
  const std::size_t workers = plat.core_count();
  const std::uint64_t rounds = 4 * scale;
  auto st = std::make_shared<ForkJoinState>();
  for (std::size_t w = 0; w < workers; ++w)
    st->work.push_back(std::make_unique<sim::Channel<std::uint64_t>>(
        plat.kernel(), 1, strformat("fork%zu", w)));
  st->done = std::make_unique<sim::Channel<std::uint64_t>>(
      plat.kernel(), workers, "join");
  for (std::size_t w = 0; w < workers; ++w)
    sim::spawn(plat.kernel(),
               forkjoin_worker(plat, st, w, rounds, seed));
  sim::spawn(plat.kernel(), forkjoin_master(plat, st, rounds, seed));
}

// ----------------------------------------------------------- shared_hammer

sim::Process hammer_core(sim::Platform& plat, std::size_t idx,
                         std::uint64_t rounds, std::uint64_t seed) {
  sim::Core& core = plat.core(idx);
  std::uint64_t rng = seed ^ (0x4a11 * (idx + 1));
  const std::size_t n = plat.core_count();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await core.compute(500 + splitmix(rng) % 500, "hammer");
    // A burst of shared-memory traffic: the centralized-construct stressor.
    for (int k = 0; k < 16; ++k) {
      const sim::Addr a = plat.shared_base() + (splitmix(rng) % 4096) * 8;
      plat.memory().write_u64(core.id(), a, r);
      (void)plat.memory().read_u64(core.id(), a);
    }
    if (n > 1 && r % 4 == 3) {
      // Push a message across the fabric to the neighbour.
      const auto [start, finish] = plat.interconnect().reserve_transfer(
          core.id(), plat.core((idx + 1) % n).id(), 256,
          plat.kernel().now());
      co_await sim::delay(plat.kernel(), finish - plat.kernel().now());
    }
  }
}

sim::Process hammer_dma_kick(sim::Platform& plat, std::uint64_t scale) {
  // One background DMA sweep inside the shared region per scale unit.
  for (std::uint64_t i = 0; i < scale; ++i) {
    co_await sim::delay(plat.kernel(), microseconds(5));
    if (!plat.dma().busy())
      plat.dma().start(plat.shared_base(),
                       plat.shared_base() + 128 * 1024, 4096);
  }
}

void spawn_hammer(sim::Platform& plat, std::uint64_t seed,
                  std::uint64_t scale) {
  const std::uint64_t rounds = 8 * scale;
  for (std::size_t c = 0; c < plat.core_count(); ++c)
    sim::spawn(plat.kernel(), hammer_core(plat, c, rounds, seed));
  sim::spawn(plat.kernel(), hammer_dma_kick(plat, scale));
}

// ------------------------------------------------------------ tiled_pipeline

struct TiledPipeState {
  std::vector<std::unique_ptr<sim::TileLink<std::uint64_t>>> links;
};

// One pipeline stage per core. Unlike `pipeline`, the stages communicate
// over TileLinks (fabric-timed, tile-safe) and keep their state in their
// own scratchpad — the strict-locality shape that partitions cleanly into
// tiles. On an untiled platform the links collapse to plain kernel events
// with the same timing, so the workload runs (and means the same thing)
// for every num_tiles.
sim::Process tiled_stage(sim::Platform& plat,
                         std::shared_ptr<TiledPipeState> st, std::size_t idx,
                         std::uint64_t items, std::uint64_t seed) {
  sim::Core& core = plat.core(idx);
  sim::Kernel& k = plat.tile_kernel(plat.tile_of_core(idx));
  const std::size_t last = plat.core_count() - 1;
  const bool has_spm = plat.config().cores[idx].scratchpad_bytes >= 4096;
  const sim::Addr spm = plat.scratchpad_base(core.id());
  std::uint64_t rng = seed ^ (0x7e11ull * (idx + 1));
  for (std::uint64_t i = 0; i < items; ++i) {
    std::uint64_t v = i;
    if (idx > 0) {
      v = co_await st->links[idx - 1]->recv();
    } else {
      co_await sim::delay(k, nanoseconds(400));
    }
    co_await core.compute(1500 + splitmix(rng) % 2500,
                          strformat("tstage%zu", idx));
    if (has_spm) {
      // Local state round trip: a stage touches only its own scratchpad —
      // the locality the tiled memory guard turns into a hard rule.
      plat.memory().write_u64(core.id(), spm + (v % 512) * 8, v);
      v += plat.memory().read_u64(core.id(), spm + (v % 512) * 8);
    }
    if (idx < last) co_await st->links[idx]->send(v);
  }
}

void spawn_tiled_pipeline(sim::Platform& plat, std::uint64_t seed,
                          std::uint64_t scale) {
  const std::size_t n = plat.core_count();
  const std::uint64_t items = 16 * scale;
  auto st = std::make_shared<TiledPipeState>();
  for (std::size_t i = 0; i + 1 < n; ++i)
    st->links.push_back(std::make_unique<sim::TileLink<std::uint64_t>>(
        plat, plat.core(i).id(), plat.core(i + 1).id(), /*capacity=*/2,
        /*bytes_per_msg=*/256, strformat("tlink%zu", i)));
  for (std::size_t i = 0; i < n; ++i)
    sim::spawn(plat.tile_kernel(plat.tile_of_core(i)),
               tiled_stage(plat, st, i, items, seed));
}

}  // namespace

const std::vector<WorkloadInfo>& workload_registry() {
  static const std::vector<WorkloadInfo> kRegistry = {
      {"pipeline",
       "software pipeline across cores; communication-bound stages"},
      {"forkjoin",
       "serial master + parallel workers; Amdahl-shaped utilization"},
      {"shared_hammer",
       "all cores burst shared memory and fabric; contention-bound"},
      {"tiled_pipeline",
       "per-core stages over fabric-timed tile links; partitions into "
       "tiles with no shared state"},
  };
  return kRegistry;
}

bool is_workload(std::string_view name) {
  for (const auto& w : workload_registry())
    if (w.name == name) return true;
  return false;
}

bool workload_tileable(std::string_view name) {
  return name == "tiled_pipeline";
}

bool spawn_workload(std::string_view name, sim::Platform& platform,
                    std::uint64_t seed, std::uint64_t scale) {
  if (scale == 0) scale = 1;
  if (name == "pipeline") {
    spawn_pipeline(platform, seed, scale);
  } else if (name == "forkjoin") {
    spawn_forkjoin(platform, seed, scale);
  } else if (name == "shared_hammer") {
    spawn_hammer(platform, seed, scale);
  } else if (name == "tiled_pipeline") {
    spawn_tiled_pipeline(platform, seed, scale);
  } else {
    return false;
  }
  return true;
}

}  // namespace rw::perf
