// PMU-driven DVFS: the first in-simulation consumer of the metrics
// pipeline.
//
// Each core gets a sched::ReactiveGovernor fed from PMU busy-time deltas
// over fixed windows — the software-stack shape Sec. II-A implies, where
// the run-time reads performance counters and adjusts per-core frequency
// "according to the needs of the executing application(s)". Because the
// decisions come from the Pmu (not from core internals), this is also the
// proof that the counter pipeline is live: detach the PMU and the governor
// has nothing to act on.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "perf/pmu.hpp"
#include "sched/dvfs.hpp"
#include "sim/platform.hpp"

namespace rw::perf {

struct GovernorConfig {
  DurationPs window = microseconds(20);
  sched::FrequencyLadder ladder = sched::FrequencyLadder::typical();
  double up_threshold = 0.85;
  double down_threshold = 0.30;
};

class PmuGovernor {
 public:
  PmuGovernor(sim::Platform& platform, const Pmu& pmu, GovernorConfig cfg);

  /// Schedule the first decision tick (idempotent).
  void start();

  /// Frequency transitions applied across all cores.
  [[nodiscard]] std::uint64_t transitions() const;
  [[nodiscard]] std::uint64_t windows_observed() const { return windows_; }
  [[nodiscard]] const GovernorConfig& config() const { return cfg_; }

 private:
  void tick();

  sim::Platform& platform_;
  const Pmu& pmu_;
  GovernorConfig cfg_;
  bool started_ = false;
  std::uint64_t windows_ = 0;
  std::vector<sched::ReactiveGovernor> per_core_;
  std::vector<DurationPs> prev_busy_ps_;
};

}  // namespace rw::perf
