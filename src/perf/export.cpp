#include "perf/export.hpp"

#include <fstream>
#include <vector>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "perf/session.hpp"

namespace rw::perf {

std::string to_chrome_trace(const std::vector<sim::TraceEvent>& trace) {
  json::Writer w(/*pretty=*/false);
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  // Pair ComputeStart/ComputeEnd per core into "X" complete events. One
  // block at a time per core, so a single open slot per core suffices.
  struct Open {
    TimePs start = 0;
    std::string label;
    bool live = false;
  };
  std::vector<Open> open;
  for (const auto& ev : trace) {
    if (!ev.core.is_valid()) continue;
    const std::size_t c = ev.core.index();
    if (c >= open.size()) open.resize(c + 1);
    if (ev.kind == sim::TraceKind::kComputeStart) {
      open[c] = Open{ev.time, ev.label, true};
    } else if (ev.kind == sim::TraceKind::kComputeEnd && open[c].live &&
               ev.label == open[c].label) {
      w.begin_object();
      w.key("name").value(ev.label);
      w.key("cat").value("compute");
      w.key("ph").value("X");
      // Chrome trace timestamps are microseconds; 1 ps = 1e-6 us.
      w.key("ts").value(static_cast<double>(open[c].start) * 1e-6);
      w.key("dur").value(static_cast<double>(ev.time - open[c].start) * 1e-6);
      w.key("pid").value(std::uint64_t{0});
      w.key("tid").value(static_cast<std::uint64_t>(c));
      w.end_object();
      open[c].live = false;
    }
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string to_folded_stacks(const SamplingProfiler::Profile& profile) {
  std::string out;
  for (const auto& e : profile.entries)
    out += strformat("core%zu;%s %llu\n", e.core, e.label.c_str(),
                     static_cast<unsigned long long>(e.samples));
  return out;
}

std::string to_csv(const std::vector<Epoch>& epochs, std::size_t num_cores) {
  std::string out =
      "epoch,start_ps,end_ps,mean_util,busy_cycles,stall_cycles,mem_reads,"
      "mem_writes,local_accesses,shared_accesses,icn_transfers,icn_bytes,"
      "icn_wait_ps,icn_busy_ps,dma_bytes";
  for (std::size_t c = 0; c < num_cores; ++c)
    out += strformat(",core%zu_util", c);
  out += "\n";
  for (const auto& ep : epochs) {
    CoreCounters t;
    for (const auto& c : ep.cores) {
      t.busy_cycles += c.busy_cycles;
      t.stall_cycles += c.stall_cycles;
      t.mem_reads += c.mem_reads;
      t.mem_writes += c.mem_writes;
      t.local_accesses += c.local_accesses;
      t.shared_accesses += c.shared_accesses;
    }
    t.mem_reads += ep.unattributed.mem_reads;
    t.mem_writes += ep.unattributed.mem_writes;
    out += strformat(
        "%zu,%llu,%llu,%.6f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu",
        ep.index, static_cast<unsigned long long>(ep.start),
        static_cast<unsigned long long>(ep.end), ep.mean_utilization(),
        static_cast<unsigned long long>(t.busy_cycles),
        static_cast<unsigned long long>(t.stall_cycles),
        static_cast<unsigned long long>(t.mem_reads),
        static_cast<unsigned long long>(t.mem_writes),
        static_cast<unsigned long long>(t.local_accesses),
        static_cast<unsigned long long>(t.shared_accesses),
        static_cast<unsigned long long>(ep.icn.transfers),
        static_cast<unsigned long long>(ep.icn.bytes),
        static_cast<unsigned long long>(ep.icn.wait_ps),
        static_cast<unsigned long long>(ep.icn.busy_ps),
        static_cast<unsigned long long>(ep.dma.bytes));
    for (std::size_t c = 0; c < num_cores; ++c) {
      const double u =
          c < ep.cores.size() && ep.width() > 0
              ? static_cast<double>(ep.cores[c].busy_ps) /
                    static_cast<double>(ep.width())
              : 0.0;
      out += strformat(",%.6f", u);
    }
    out += "\n";
  }
  return out;
}

namespace {
void write_core_counters(json::Writer& w, const CoreCounters& c) {
  w.begin_object();
  w.key("busy_cycles").value(c.busy_cycles);
  w.key("stall_cycles").value(c.stall_cycles);
  w.key("instructions").value(c.approx_instructions());
  w.key("busy_ps").value(c.busy_ps);
  w.key("reservations").value(c.reservations);
  w.key("compute_blocks").value(c.compute_blocks);
  w.key("mem_reads").value(c.mem_reads);
  w.key("mem_writes").value(c.mem_writes);
  w.key("local_accesses").value(c.local_accesses);
  w.key("shared_accesses").value(c.shared_accesses);
  w.key("bytes_read").value(c.bytes_read);
  w.key("bytes_written").value(c.bytes_written);
  w.key("freq_changes").value(c.freq_changes);
  w.end_object();
}
}  // namespace

void write_report(json::Writer& w, const PerfReport& r) {
  w.begin_object();
  w.key("makespan_ps").value(r.makespan);
  w.key("num_cores").value(static_cast<std::uint64_t>(r.num_cores));
  w.key("mean_utilization").value(r.mean_utilization());

  w.key("cores").begin_array();
  for (const auto& c : r.pmu.cores) write_core_counters(w, c);
  w.end_array();
  w.key("unattributed");
  write_core_counters(w, r.pmu.unattributed);

  w.key("icn").begin_object();
  w.key("transfers").value(r.pmu.icn.transfers);
  w.key("bytes").value(r.pmu.icn.bytes);
  w.key("wait_ps").value(r.pmu.icn.wait_ps);
  w.key("busy_ps").value(r.pmu.icn.busy_ps);
  w.key("hops").value(r.pmu.icn.hops);
  w.key("link_busy_ps").begin_array();
  for (const auto b : r.pmu.icn.link_busy_ps) w.value(b);
  w.end_array();
  w.end_object();

  w.key("dma").begin_object();
  w.key("transfers").value(r.pmu.dma.transfers);
  w.key("bytes").value(r.pmu.dma.bytes);
  w.key("busy_ps").value(r.pmu.dma.busy_ps);
  w.end_object();

  w.key("profile").begin_object();
  w.key("period_ps").value(r.profiler_period);
  w.key("ticks").value(r.profiler_ticks);
  w.key("total_samples").value(r.profile.total_samples);
  w.key("busy_samples").value(r.profile.busy_samples);
  w.key("idle_samples").value(r.profile.idle_samples);
  w.key("entries").begin_array();
  for (const auto& e : r.profile.entries) {
    w.begin_object();
    w.key("core").value(static_cast<std::uint64_t>(e.core));
    w.key("label").value(e.label);
    w.key("samples").value(e.samples);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("epochs").begin_array();
  for (const auto& ep : r.epochs) {
    w.begin_object();
    w.key("start_ps").value(ep.start);
    w.key("end_ps").value(ep.end);
    w.key("mean_util").value(ep.mean_utilization());
    w.key("icn_bytes").value(ep.icn.bytes);
    w.key("dma_bytes").value(ep.dma.bytes);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

std::string to_json(const PerfReport& r) {
  json::Writer w;
  write_report(w, r);
  return w.str() + "\n";
}

bool write_text(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace rw::perf
