#include "perf/governor.hpp"

namespace rw::perf {

PmuGovernor::PmuGovernor(sim::Platform& platform, const Pmu& pmu,
                         GovernorConfig cfg)
    : platform_(platform), pmu_(pmu), cfg_(std::move(cfg)) {
  if (cfg_.window == 0) cfg_.window = microseconds(20);
  per_core_.reserve(platform_.core_count());
  prev_busy_ps_.assign(platform_.core_count(), 0);
  for (std::size_t i = 0; i < platform_.core_count(); ++i)
    per_core_.emplace_back(cfg_.ladder, cfg_.up_threshold,
                           cfg_.down_threshold);
}

void PmuGovernor::start() {
  if (started_) return;
  started_ = true;
  // Priority 120: decide after the profiler (100) and epoch collector
  // (110) have observed the same instant.
  platform_.kernel().schedule_daemon_in(
      cfg_.window, [this] { tick(); }, /*priority=*/120);
}

void PmuGovernor::tick() {
  auto& kernel = platform_.kernel();
  ++windows_;
  for (std::size_t i = 0; i < per_core_.size(); ++i) {
    const DurationPs busy = pmu_.core(i).busy_ps;
    const DurationPs busy_in_window = busy - prev_busy_ps_[i];
    prev_busy_ps_[i] = busy;
    const HertzT f =
        per_core_[i].observe_window(busy_in_window, cfg_.window);
    platform_.core(i).set_frequency(f);
  }
  kernel.schedule_daemon_in(cfg_.window, [this] { tick(); },
                            /*priority=*/120);
}

std::uint64_t PmuGovernor::transitions() const {
  std::uint64_t n = 0;
  for (const auto& g : per_core_) n += g.transitions();
  return n;
}

}  // namespace rw::perf
