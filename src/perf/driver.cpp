#include "perf/driver.hpp"

#include <cmath>
#include <memory>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "perf/export.hpp"
#include "perf/governor.hpp"
#include "perf/workload.hpp"

namespace rw::perf {

Result<ProfOptions> parse_prof_args(const std::vector<std::string>& args) {
  ProfOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a == "--governor") {
      opts.governor = true;
    } else if (a == "--mesh") {
      opts.mesh = true;
    } else if (a == "--cores") {
      opts.cores = static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.cores == 0) return make_error("--cores must be >= 1");
    } else if (a == "--scale") {
      opts.scale = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.scale == 0) return make_error("--scale must be >= 1");
    } else if (a == "--period-us") {
      opts.period = microseconds(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.period == 0) return make_error("--period-us must be >= 1");
    } else if (a == "--epoch-us") {
      opts.epoch = microseconds(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.epoch == 0) return make_error("--epoch-us must be >= 1");
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwprof ") + cli::common_usage() +
                        " [--governor] [--mesh] [--cores N] [--scale K]"
                        " [--period-us U] [--epoch-us U] [workload...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      if (!is_workload(a)) return make_error("unknown workload: " + a);
      opts.workloads.push_back(a);
    }
  }
  return opts;
}

namespace {

std::unique_ptr<sim::Platform> build_platform(const ProfOptions& opts,
                                              std::string_view workload) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(opts.cores);
  cfg.trace_enabled = true;
  if (opts.mesh) {
    cfg.interconnect = sim::PlatformConfig::Icn::kMesh;
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(opts.cores))));
    cfg.mesh.width = side;
    cfg.mesh.height =
        (static_cast<std::uint32_t>(opts.cores) + side - 1) / side;
  }
  if (opts.threads > 1)
    sim::apply_tiling(cfg, opts.threads,
                      /*partition_cores=*/workload_tileable(workload));
  return std::make_unique<sim::Platform>(std::move(cfg));
}

void print_outcome(const ProfOptions& opts, const WorkloadOutcome& oc,
                   std::ostream& out) {
  const PerfReport& r = oc.report;
  out << strformat("== %s: makespan %.3f us, mean utilization %.1f%%",
                   oc.workload.c_str(),
                   static_cast<double>(r.makespan) * 1e-6,
                   r.mean_utilization() * 100.0);
  if (opts.governor)
    out << strformat(", %llu DVFS transitions",
                     static_cast<unsigned long long>(
                         oc.governor_transitions));
  out << "\n\n";

  Table t({"core", "busy_cyc", "stall_cyc", "instr", "mem_rd", "mem_wr",
           "local", "shared", "util"});
  for (std::size_t i = 0; i < r.pmu.cores.size(); ++i) {
    const CoreCounters& c = r.pmu.cores[i];
    t.add_row({strformat("%zu", i), Table::num(c.busy_cycles),
               Table::num(c.stall_cycles),
               Table::num(c.approx_instructions()), Table::num(c.mem_reads),
               Table::num(c.mem_writes), Table::num(c.local_accesses),
               Table::num(c.shared_accesses),
               Table::percent(c.utilization(r.makespan))});
  }
  out << t.to_string() << "\n";
  out << strformat(
      "icn: %llu transfers, %llu bytes, wait %.3f us | dma: %llu "
      "transfers, %llu bytes\n",
      static_cast<unsigned long long>(r.pmu.icn.transfers),
      static_cast<unsigned long long>(r.pmu.icn.bytes),
      static_cast<double>(r.pmu.icn.wait_ps) * 1e-6,
      static_cast<unsigned long long>(r.pmu.dma.transfers),
      static_cast<unsigned long long>(r.pmu.dma.bytes));
  if (r.profiler_ticks > 0) {
    Table p({"core", "label", "samples", "share"});
    for (const auto& e : r.profile.entries)
      p.add_row({strformat("%zu", e.core), e.label, Table::num(e.samples),
                 Table::percent(r.profile.busy_samples == 0
                                    ? 0.0
                                    : static_cast<double>(e.samples) /
                                          static_cast<double>(
                                              r.profile.busy_samples))});
    out << "\nprofile (" << r.profile.total_samples << " samples, "
        << r.profile.idle_samples << " idle):\n"
        << p.to_string();
  }
  if (!oc.json_path.empty()) out << "\nwrote " << oc.json_path << "\n";
  out << "\n";
}

}  // namespace

std::string prof_json(const std::vector<WorkloadOutcome>& outcomes) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-perf-run-1");
  w.key("workloads").begin_array();
  for (const auto& oc : outcomes) {
    w.begin_object();
    w.key("workload").value(oc.workload);
    w.key("governor_transitions").value(oc.governor_transitions);
    w.key("report");
    write_report(w, oc.report);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

ProfReport run_prof(const ProfOptions& opts, std::ostream& out) {
  ProfReport rep;
  if (opts.list) {
    for (const auto& wl : workload_registry())
      out << wl.name << "  " << wl.description << "\n";
    return rep;
  }

  std::vector<std::string> names = opts.workloads;
  if (names.empty())
    for (const auto& wl : workload_registry()) names.push_back(wl.name);

  for (const auto& name : names) {
    auto platform = build_platform(opts, name);
    PerfConfig pcfg;
    pcfg.profiler.period = opts.period;
    pcfg.epoch_width = opts.epoch;
    PerfSession session(*platform, pcfg);
    std::unique_ptr<PmuGovernor> gov;
    if (opts.governor) {
      gov = std::make_unique<PmuGovernor>(*platform, session.pmu(),
                                          GovernorConfig{});
      gov->start();
    }
    spawn_workload(name, *platform, opts.seed, opts.scale);
    platform->run();

    WorkloadOutcome oc;
    oc.workload = name;
    oc.report = session.report();
    if (gov) oc.governor_transitions = gov->transitions();

    if (opts.write_files) {
      const std::string base = opts.out_dir + "/PERF_" + name;
      oc.json_path = base + ".json";
      bool ok = write_text(oc.json_path, to_json(oc.report));
      ok = write_text(base + ".trace.json",
                      to_chrome_trace(platform->tracer().events())) &&
           ok;
      ok = write_text(base + ".folded",
                      to_folded_stacks(oc.report.profile)) &&
           ok;
      ok = write_text(base + ".csv",
                      to_csv(oc.report.epochs, oc.report.num_cores)) &&
           ok;
      if (!ok) {
        out << "error: failed writing exports for " << name << "\n";
        rep.exit_code = 1;
      }
    }
    rep.outcomes.push_back(std::move(oc));
  }

  if (opts.json_stdout) {
    const std::string legacy = prof_json(rep.outcomes);
    if (opts.legacy_json)
      out << legacy;
    else
      out << cli::envelope("rwprof", opts.seed, legacy) << "\n";
  } else {
    for (const auto& oc : rep.outcomes) print_outcome(opts, oc, out);
  }
  return rep;
}

}  // namespace rw::perf
