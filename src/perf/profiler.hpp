// Simulated-time sampling profiler.
//
// A periodic sampler that rides the event kernel: every `period` of
// simulated time it inspects each core and attributes one sample to the
// compute-block label the core is executing (the same labels the vpdebug
// trace carries), or to <idle>/<reserved>. Because sampling happens at
// simulated timestamps, the profile is a pure function of the workload —
// byte-identical across runs and across harness thread counts.
//
// Two operating modes mirror the paper's intrusive-vs-non-intrusive
// debugging argument (Sec. VII):
//   * cost_cycles == 0 — the virtual-platform profiler: observation is
//     free, the workload's timing is untouched (the non-intrusive claim);
//   * cost_cycles > 0 — a model of a target-resident sampling agent that
//     steals `cost_cycles` per sample on every core, so benches can
//     measure what on-silicon profiling would have cost (bench_e12).
//
// Ticks are kernel daemon events, so the sampler never keeps the kernel
// alive on its own and simulations still terminate with kernel.run().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/platform.hpp"

namespace rw::perf {

struct ProfilerConfig {
  DurationPs period = microseconds(10);
  /// Cycles stolen from every core per sample (0 = non-intrusive).
  Cycles cost_cycles = 0;
  /// Tick event priority. Positive = after model events at the same
  /// instant, so a block ending exactly on a tick is seen as finished —
  /// the deterministic analogue of real sampling skew.
  int tick_priority = 100;
};

/// Label buckets for samples that hit no labelled compute block.
inline constexpr const char* kIdleLabel = "<idle>";
inline constexpr const char* kReservedLabel = "<reserved>";

class SamplingProfiler {
 public:
  SamplingProfiler(sim::Platform& platform, ProfilerConfig cfg);

  /// Schedule the first tick (idempotent). On a tiled platform one daemon
  /// rides each tile's kernel and samples only that tile's cores — a
  /// tile's profile cells are written exclusively from its own worker, so
  /// sampling stays race-free and bit-identical under parallel execution.
  void start();

  /// Ticks taken so far (each tick samples every core once; on a tiled
  /// platform this counts tile 0's daemon, the reference clock).
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] const ProfilerConfig& config() const { return cfg_; }

  struct Entry {
    std::size_t core = 0;
    std::string label;
    std::uint64_t samples = 0;

    bool operator==(const Entry&) const = default;
  };

  /// The accumulated profile: entries ordered by (core, label) with idle
  /// samples split out, so exports and equality checks are deterministic.
  struct Profile {
    std::vector<Entry> entries;    // busy samples only, (core,label) sorted
    std::uint64_t total_samples = 0;  // ticks * cores
    std::uint64_t busy_samples = 0;
    std::uint64_t idle_samples = 0;

    /// Busy samples attributed to `label` on any core.
    [[nodiscard]] std::uint64_t samples_for(std::string_view label) const;

    bool operator==(const Profile&) const = default;
  };

  [[nodiscard]] Profile profile() const;

 private:
  void tick(std::uint32_t tile);

  sim::Platform& platform_;
  ProfilerConfig cfg_;
  bool started_ = false;
  std::uint64_t ticks_ = 0;
  // Dense per-core accumulation; label -> count kept sorted at export.
  struct Cell {
    std::string label;
    std::uint64_t count = 0;
  };
  std::vector<std::vector<Cell>> per_core_;  // [core] -> cells
  std::vector<std::uint64_t> idle_per_core_;
};

/// How well a sampled profile matches the exact per-(core,label) busy-time
/// distribution recoverable from the execution trace: the overlap
/// coefficient sum(min(sampled_share, exact_share)) over all (core,label)
/// pairs, in [0,1], 1 = perfect attribution. Requires the platform to have
/// run with trace_enabled.
double attribution_accuracy(const SamplingProfiler::Profile& profile,
                            const std::vector<sim::TraceEvent>& trace,
                            std::size_t num_cores);

}  // namespace rw::perf
