// The rwprof driver, as a library so tests exercise exactly what the CLI
// does: build a platform, run demo workloads under a PerfSession, print
// the counter and profile tables, and write the deterministic export
// files (PERF_<name>.json + Chrome trace + folded stacks + CSV).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "perf/session.hpp"
#include "tools/cli_common.hpp"

namespace rw::perf {

/// Shared flags (--list/--json/--legacy-json/--no-files/--seed/--out-dir)
/// come from cli::CommonOptions; only the tool-specific ones live here.
struct ProfOptions : cli::CommonOptions {
  std::vector<std::string> workloads;  // empty = every registered workload
  bool governor = false;      // --governor: run the PMU-fed DVFS governor
  std::size_t cores = 4;      // --cores N
  bool mesh = false;          // --mesh: 2-D NoC instead of the shared bus
  std::uint64_t scale = 8;    // --scale K (iteration multiplier)
  DurationPs period = microseconds(10);  // --period-us U (sampler)
  DurationPs epoch = microseconds(50);   // --epoch-us U (window width)
};

/// Parse rwprof's argv (without argv[0]).
Result<ProfOptions> parse_prof_args(const std::vector<std::string>& args);

struct WorkloadOutcome {
  std::string workload;
  PerfReport report;
  std::uint64_t governor_transitions = 0;
  std::string json_path;  // empty when not written
};

struct ProfReport {
  std::vector<WorkloadOutcome> outcomes;
  int exit_code = 0;
};

/// Combined deterministic JSON document over all outcomes
/// (schema rw-perf-run-1: {schema, workloads: [rw-perf-1 docs]}).
std::string prof_json(const std::vector<WorkloadOutcome>& outcomes);

/// Run per options, writing human output (or the JSON doc) to `out`.
ProfReport run_prof(const ProfOptions& opts, std::ostream& out);

}  // namespace rw::perf
