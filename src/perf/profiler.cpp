#include "perf/profiler.hpp"

#include <algorithm>
#include <map>

namespace rw::perf {

SamplingProfiler::SamplingProfiler(sim::Platform& platform, ProfilerConfig cfg)
    : platform_(platform),
      cfg_(cfg),
      per_core_(platform.core_count()),
      idle_per_core_(platform.core_count(), 0) {
  if (cfg_.period == 0) cfg_.period = microseconds(10);
}

void SamplingProfiler::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t t = 0; t < platform_.tile_count(); ++t) {
    platform_.tile_kernel(t).schedule_daemon_in(
        cfg_.period, [this, t] { tick(t); }, cfg_.tick_priority);
  }
}

void SamplingProfiler::tick(std::uint32_t tile) {
  auto& kernel = platform_.tile_kernel(tile);
  const TimePs now = kernel.now();
  if (tile == 0) ++ticks_;
  for (std::size_t i = 0; i < platform_.core_count(); ++i) {
    // Each daemon samples only its own tile's cores: a cell is written by
    // exactly one tile, and core state is read on the core's home kernel.
    if (platform_.tile_of_core(i) != tile) continue;
    sim::Core& core = platform_.core(i);
    if (core.idle_at(now)) {
      ++idle_per_core_[i];
    } else {
      // Busy but between labelled blocks means raw reserve() work (e.g. a
      // scheduler dispatch cost); bucket it so shares still sum to one.
      const std::string& lbl = core.current_label();
      const std::string& name = lbl == kIdleLabel ? kReservedLabel : lbl;
      auto& cells = per_core_[i];
      auto it = std::find_if(cells.begin(), cells.end(),
                             [&](const Cell& c) { return c.label == name; });
      if (it == cells.end()) {
        cells.push_back(Cell{name, 1});
      } else {
        ++it->count;
      }
    }
    if (cfg_.cost_cycles > 0) core.reserve(cfg_.cost_cycles);
  }
  // Daemon rescheduling: the kernel drops pending daemons once the model
  // drains, so the sampler never prevents kernel.run() from returning.
  kernel.schedule_daemon_in(cfg_.period, [this, tile] { tick(tile); },
                            cfg_.tick_priority);
}

std::uint64_t SamplingProfiler::Profile::samples_for(
    std::string_view label) const {
  std::uint64_t n = 0;
  for (const auto& e : entries)
    if (e.label == label) n += e.samples;
  return n;
}

SamplingProfiler::Profile SamplingProfiler::profile() const {
  Profile p;
  p.total_samples = ticks_ * per_core_.size();
  for (std::size_t i = 0; i < per_core_.size(); ++i) {
    p.idle_samples += idle_per_core_[i];
    for (const auto& cell : per_core_[i]) {
      p.entries.push_back(Entry{i, cell.label, cell.count});
      p.busy_samples += cell.count;
    }
  }
  std::sort(p.entries.begin(), p.entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.core != b.core) return a.core < b.core;
              return a.label < b.label;
            });
  return p;
}

double attribution_accuracy(const SamplingProfiler::Profile& profile,
                            const std::vector<sim::TraceEvent>& trace,
                            std::size_t num_cores) {
  // Exact busy time per (core,label): pair ComputeStart/ComputeEnd events.
  // A core runs one block at a time, so a per-core open-start slot suffices.
  std::map<std::pair<std::size_t, std::string>, double> exact;
  std::vector<TimePs> open_start(num_cores, 0);
  std::vector<std::string> open_label(num_cores);
  double exact_total = 0.0;
  for (const auto& ev : trace) {
    if (!ev.core.is_valid() || ev.core.index() >= num_cores) continue;
    const std::size_t c = ev.core.index();
    if (ev.kind == sim::TraceKind::kComputeStart) {
      open_start[c] = ev.time;
      open_label[c] = ev.label;
    } else if (ev.kind == sim::TraceKind::kComputeEnd &&
               ev.label == open_label[c]) {
      const double dur = static_cast<double>(ev.time - open_start[c]);
      exact[{c, ev.label}] += dur;
      exact_total += dur;
      open_label[c].clear();
    }
  }

  if (profile.busy_samples == 0 || exact_total == 0.0)
    return profile.busy_samples == 0 && exact_total == 0.0 ? 1.0 : 0.0;

  double overlap = 0.0;
  for (const auto& e : profile.entries) {
    const double sampled_share = static_cast<double>(e.samples) /
                                 static_cast<double>(profile.busy_samples);
    auto it = exact.find({e.core, e.label});
    if (it == exact.end()) continue;
    const double exact_share = it->second / exact_total;
    overlap += std::min(sampled_share, exact_share);
  }
  return overlap;
}

}  // namespace rw::perf
