#include "perf/traceview.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace rw::perf {

TraceView TraceView::from_events(const std::vector<sim::TraceEvent>& events) {
  TraceView v;
  v.total_events_ = events.size();

  // Open-span bookkeeping. Task spans key on the task index, message spans
  // FIFO-queue on the packed (src<<32)|dst key (an edge may transfer more
  // than once), compute blocks key on the core (one block at a time), and
  // the DMA engine serializes so one FIFO suffices.
  std::map<std::uint64_t, std::size_t> open_tasks;          // task -> index
  std::map<std::uint64_t, std::deque<std::size_t>> open_msgs;  // key -> FIFO
  std::map<std::size_t, std::size_t> open_blocks;           // core -> index
  std::deque<std::size_t> open_dmas;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& ev = events[i];
    switch (ev.kind) {
      case sim::TraceKind::kTaskStart: {
        ComputeSpan s;
        s.seq = i;
        s.core = ev.core;
        s.label = ev.label;
        s.task = ev.a;
        s.cycles = ev.b;
        s.start = ev.time;
        s.finish = ev.time;
        open_tasks[ev.a] = v.computes_.size();
        v.computes_.push_back(std::move(s));
        break;
      }
      case sim::TraceKind::kTaskEnd: {
        auto it = open_tasks.find(ev.a);
        if (it == open_tasks.end()) break;  // unmatched end: skip
        ComputeSpan& s = v.computes_[it->second];
        s.finish = ev.time;
        s.ref_cycles = ev.b;
        open_tasks.erase(it);
        break;
      }
      case sim::TraceKind::kComputeStart: {
        if (!ev.core.is_valid()) break;
        ComputeSpan s;
        s.seq = i;
        s.core = ev.core;
        s.label = ev.label;
        s.cycles = ev.a;
        s.start = ev.time;
        s.finish = ev.time;
        open_blocks[ev.core.index()] = v.computes_.size();
        v.computes_.push_back(std::move(s));
        break;
      }
      case sim::TraceKind::kComputeEnd: {
        if (!ev.core.is_valid()) break;
        auto it = open_blocks.find(ev.core.index());
        if (it == open_blocks.end()) break;
        ComputeSpan& s = v.computes_[it->second];
        if (s.label != ev.label) break;  // stale block (crash/migration)
        s.finish = ev.time;
        open_blocks.erase(it);
        break;
      }
      case sim::TraceKind::kMsgSend: {
        TransferSpan s;
        s.seq = i;
        s.src_core = ev.core;
        s.dst_core = ev.core;  // until the recv names the destination
        s.label = ev.label;
        s.src_task = ev.a >> 32;
        s.dst_task = ev.a & 0xffffffffULL;
        s.bytes = ev.b;
        s.start = ev.time;
        s.finish = ev.time;
        open_msgs[ev.a].push_back(v.transfers_.size());
        v.transfers_.push_back(std::move(s));
        break;
      }
      case sim::TraceKind::kMsgRecv: {
        auto it = open_msgs.find(ev.a);
        if (it == open_msgs.end() || it->second.empty()) break;
        TransferSpan& s = v.transfers_[it->second.front()];
        it->second.pop_front();
        s.dst_core = ev.core;
        s.finish = ev.time;
        break;
      }
      case sim::TraceKind::kDmaStart: {
        DmaSpan s;
        s.seq = i;
        s.bytes = ev.b;
        s.start = ev.time;
        s.finish = ev.time;
        open_dmas.push_back(v.dmas_.size());
        v.dmas_.push_back(s);
        break;
      }
      case sim::TraceKind::kDmaEnd: {
        if (open_dmas.empty()) break;
        DmaSpan& s = v.dmas_[open_dmas.front()];
        open_dmas.pop_front();
        s.finish = ev.time;
        break;
      }
      default:
        break;  // not a span event
    }
  }

  // Drop spans whose end never arrived: a half-open span has no duration
  // and would poison happens-before edges downstream. Erase back-to-front
  // so stored indices stay valid while scanning.
  auto drop_open = [](auto& spans, auto is_open) {
    spans.erase(std::remove_if(spans.begin(), spans.end(), is_open),
                spans.end());
  };
  if (!open_tasks.empty() || !open_blocks.empty()) {
    std::vector<bool> open(v.computes_.size(), false);
    for (const auto& [task, idx] : open_tasks) open[idx] = true;
    for (const auto& [core, idx] : open_blocks) open[idx] = true;
    std::size_t i = 0;
    drop_open(v.computes_, [&](const ComputeSpan&) { return open[i++]; });
  }
  if (std::any_of(open_msgs.begin(), open_msgs.end(),
                  [](const auto& kv) { return !kv.second.empty(); })) {
    std::vector<bool> open(v.transfers_.size(), false);
    for (const auto& [key, fifo] : open_msgs)
      for (const std::size_t idx : fifo) open[idx] = true;
    std::size_t i = 0;
    drop_open(v.transfers_, [&](const TransferSpan&) { return open[i++]; });
  }
  if (!open_dmas.empty()) {
    std::vector<bool> open(v.dmas_.size(), false);
    for (const std::size_t idx : open_dmas) open[idx] = true;
    std::size_t i = 0;
    drop_open(v.dmas_, [&](const DmaSpan&) { return open[i++]; });
  }

  for (const auto& s : v.computes_) v.makespan_ = std::max(v.makespan_, s.finish);
  for (const auto& s : v.transfers_)
    v.makespan_ = std::max(v.makespan_, s.finish);
  for (const auto& s : v.dmas_) v.makespan_ = std::max(v.makespan_, s.finish);
  return v;
}

}  // namespace rw::perf
