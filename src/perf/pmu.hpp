// PMU model: hardware-style performance counters for the virtual platform.
//
// Sec. VII argues that virtual platforms beat real silicon for software
// optimization because observability is non-intrusive and complete. The
// Pmu is that observability made concrete: it implements sim::PerfSink and
// accumulates, per core and per fabric, exactly the counters a hardware
// performance-monitoring unit would expose — busy/stall cycles, memory
// accesses split local vs shared, DMA bytes, bus contention, NoC hops and
// per-link occupancy. Counting never feeds back into the simulation (sinks
// observe decisions already taken), so attaching a Pmu leaves every
// simulated timestamp bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/perf_hooks.hpp"

namespace rw::perf {

/// Per-core counter block (one per PE, plus one unattributed block for
/// accesses issued without a core identity, e.g. DMA block copies).
struct CoreCounters {
  Cycles busy_cycles = 0;       // cycles reserved on the core
  Cycles stall_cycles = 0;      // memory access-latency cycles
  DurationPs busy_ps = 0;       // wall simulated time the core was reserved
  std::uint64_t reservations = 0;
  std::uint64_t compute_blocks = 0;  // labelled blocks retired
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t local_accesses = 0;   // own scratchpad
  std::uint64_t shared_accesses = 0;  // shared memory / remote scratchpad
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t freq_changes = 0;

  /// Cycles not accounted to memory stalls, at the model's IPC=1
  /// abstraction — the closest this TLM gets to an instruction count.
  [[nodiscard]] Cycles approx_instructions() const {
    return busy_cycles > stall_cycles ? busy_cycles - stall_cycles : 0;
  }
  /// Idle time within a horizon (busy time can exceed the horizon when
  /// work was reserved past the last event; clamp at zero).
  [[nodiscard]] DurationPs idle_ps(TimePs horizon) const {
    return horizon > busy_ps ? horizon - busy_ps : 0;
  }
  [[nodiscard]] double utilization(TimePs horizon) const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(busy_ps) /
                              static_cast<double>(horizon);
  }

  bool operator==(const CoreCounters&) const = default;
};

/// Interconnect counter block (one per platform).
struct IcnCounters {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  DurationPs wait_ps = 0;  // time queued behind busy fabric (contention)
  DurationPs busy_ps = 0;  // grant-to-delivery occupancy
  std::uint64_t hops = 0;  // NoC route hops (0 for shared-bus transfers)
  /// Per-directed-link occupancy; the shared bus is link 0, the mesh
  /// indexes node*4+direction. Grown on demand, so only links that ever
  /// carried traffic appear.
  std::vector<DurationPs> link_busy_ps;

  /// Utilization of link `i` over a horizon (0 when never used).
  [[nodiscard]] double link_utilization(std::size_t i, TimePs horizon) const {
    if (horizon == 0 || i >= link_busy_ps.size()) return 0.0;
    return static_cast<double>(link_busy_ps[i]) /
           static_cast<double>(horizon);
  }

  bool operator==(const IcnCounters&) const = default;
};

/// DMA counter block.
struct DmaCounters {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  DurationPs busy_ps = 0;

  bool operator==(const DmaCounters&) const = default;
};

/// A point-in-time copy of every counter, tagged with the simulated time it
/// was taken. Windowed metrics (epochs, governor utilization) are deltas
/// between snapshots.
struct PmuSnapshot {
  TimePs at = 0;
  std::vector<CoreCounters> cores;
  CoreCounters unattributed;
  IcnCounters icn;
  DmaCounters dma;

  bool operator==(const PmuSnapshot&) const = default;
};

/// The counting sink. Attach with sim::Platform::set_perf_sink(&pmu);
/// detach (or never attach) for a bit-identical unobserved run.
class Pmu final : public sim::PerfSink {
 public:
  explicit Pmu(std::size_t num_cores)
      : cores_(num_cores) {}

  // sim::PerfSink
  void on_core_reserve(sim::CoreId core, Cycles cycles, TimePs start,
                       TimePs finish, HertzT freq) override;
  void on_compute_block(sim::CoreId core, const std::string& label,
                        Cycles cycles, TimePs start, TimePs finish) override;
  void on_freq_change(sim::CoreId core, HertzT from, HertzT to) override;
  void on_mem_access(sim::CoreId core, bool is_write, bool local,
                     std::uint32_t bytes, Cycles latency) override;
  void on_transfer(sim::CoreId src, sim::CoreId dst, std::uint64_t bytes,
                   DurationPs wait, DurationPs duration,
                   std::uint32_t hops) override;
  void on_link_busy(std::size_t link, DurationPs busy) override;
  void on_dma(std::uint64_t bytes, TimePs start, TimePs finish) override;

  [[nodiscard]] std::size_t num_cores() const { return cores_.size(); }
  [[nodiscard]] const CoreCounters& core(std::size_t i) const {
    return cores_.at(i);
  }
  [[nodiscard]] const CoreCounters& unattributed() const {
    return unattributed_;
  }
  [[nodiscard]] const IcnCounters& icn() const { return icn_; }
  [[nodiscard]] const DmaCounters& dma() const { return dma_; }

  /// Copy every counter, stamped with `now`.
  [[nodiscard]] PmuSnapshot snapshot(TimePs now) const;

  /// Zero every counter (a new measurement interval on live hardware).
  void reset();

 private:
  CoreCounters& bucket(sim::CoreId core) {
    if (core.is_valid() && core.index() < cores_.size())
      return cores_[core.index()];
    return unattributed_;
  }

  std::vector<CoreCounters> cores_;
  CoreCounters unattributed_;
  IcnCounters icn_;
  DmaCounters dma_;
};

}  // namespace rw::perf
