// TraceView: a stable, typed view over a raw execution trace.
//
// Every consumer that walks sim::TraceEvent streams by hand re-derives the
// same pairing rules (start/end per core, send/recv per edge) with slightly
// different bugs; TraceView is the one blessed decoder. It turns the flat
// event vector into typed *spans* — compute, transfer and DMA segments with
// resolved start/finish times and identities — and is the input contract of
// rw::critpath's dependence-graph builder.
//
// Recognized encodings (everything else is skipped, never an error):
//   * kTaskStart/kTaskEnd   — one compute span per task; a = task index,
//     start.b = executed cycles, end.b = reference cycles. Emitted by
//     maps::execute_on_platform_traced.
//   * kComputeStart/kComputeEnd — one compute span per labelled block
//     (kernel-run workloads; a core runs one block at a time, paired per
//     core by label); task identity stays kNoTask, start.a = cycles.
//   * kMsgSend/kMsgRecv     — one transfer span per pair; a = packed
//     (src_task<<32)|dst_task, b = bytes, FIFO-paired per key.
//   * kDmaStart/kDmaEnd     — one DMA span per pair (engine serializes,
//     so FIFO pairing is exact); b = length in bytes.
//
// Spans preserve the *encounter order* of their opening events (`seq`).
// For traces produced by reservation-order executors this order is exactly
// the order every platform resource serialized its requests in, which is
// what the critpath replay leans on. The global stream need not be sorted
// by time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/trace.hpp"

namespace rw::perf {

/// Sentinel task identity for spans without one (plain compute blocks).
inline constexpr std::uint64_t kNoTask = ~0ULL;

struct ComputeSpan {
  std::size_t seq = 0;  // index of the opening trace event
  sim::CoreId core{};
  std::string label;
  std::uint64_t task = kNoTask;  // task index when known
  Cycles cycles = 0;             // cycles executed on `core`
  Cycles ref_cycles = 0;         // reference-RISC cycles (0 when unknown)
  TimePs start = 0;
  TimePs finish = 0;

  [[nodiscard]] DurationPs duration() const { return finish - start; }
};

struct TransferSpan {
  std::size_t seq = 0;
  sim::CoreId src_core{};
  sim::CoreId dst_core{};
  std::string label;
  std::uint64_t src_task = kNoTask;
  std::uint64_t dst_task = kNoTask;
  std::uint64_t bytes = 0;
  TimePs start = 0;
  TimePs finish = 0;

  /// Same-PE dependence record: never touched the fabric.
  [[nodiscard]] bool local() const { return src_core == dst_core; }
  [[nodiscard]] DurationPs duration() const { return finish - start; }
};

struct DmaSpan {
  std::size_t seq = 0;
  std::uint64_t bytes = 0;
  TimePs start = 0;
  TimePs finish = 0;

  [[nodiscard]] DurationPs duration() const { return finish - start; }
};

class TraceView {
 public:
  /// Decode `events` (tolerant: unmatched or foreign events are counted in
  /// total_events() but produce no span). A zero-event trace yields a
  /// valid empty view.
  static TraceView from_events(const std::vector<sim::TraceEvent>& events);

  [[nodiscard]] const std::vector<ComputeSpan>& computes() const {
    return computes_;
  }
  [[nodiscard]] const std::vector<TransferSpan>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<DmaSpan>& dmas() const { return dmas_; }

  [[nodiscard]] bool empty() const {
    return computes_.empty() && transfers_.empty() && dmas_.empty();
  }
  [[nodiscard]] std::size_t span_count() const {
    return computes_.size() + transfers_.size() + dmas_.size();
  }
  /// Events in the input stream, decoded or not.
  [[nodiscard]] std::size_t total_events() const { return total_events_; }
  /// Events consumed into spans (2 per span by construction).
  [[nodiscard]] std::size_t consumed_events() const {
    return 2 * span_count();
  }

  /// Latest finish over all spans (0 for an empty view).
  [[nodiscard]] TimePs makespan() const { return makespan_; }

 private:
  std::vector<ComputeSpan> computes_;
  std::vector<TransferSpan> transfers_;
  std::vector<DmaSpan> dmas_;
  std::size_t total_events_ = 0;
  TimePs makespan_ = 0;
};

}  // namespace rw::perf
