// Deterministic exporters for perf data.
//
// Three interchange formats, all pure functions of the report so repeated
// runs produce byte-identical files:
//   * Chrome trace-event JSON ("X" complete events) — load in a
//     chrome://tracing / Perfetto timeline;
//   * folded stacks ("core0;label count" lines) — pipe to flamegraph.pl;
//   * CSV — one row per epoch, the counter time-series for spreadsheets.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "perf/metrics.hpp"
#include "perf/profiler.hpp"
#include "sim/trace.hpp"

namespace rw::perf {

struct PerfReport;  // session.hpp

/// Chrome trace-event JSON built from ComputeStart/ComputeEnd trace pairs
/// (pid 0, tid = core index, timestamps in microseconds).
std::string to_chrome_trace(const std::vector<sim::TraceEvent>& trace);

/// Folded-stack lines "core<i>;<label> <samples>", (core,label) ordered.
std::string to_folded_stacks(const SamplingProfiler::Profile& profile);

/// Counter time-series CSV: one row per epoch, totals plus per-core
/// utilization columns.
std::string to_csv(const std::vector<Epoch>& epochs, std::size_t num_cores);

/// Full report as JSON (counter table + profile + epoch summaries).
std::string to_json(const PerfReport& report);

/// Emit the report object into an in-progress JSON document (the driver
/// embeds reports in its combined doc; to_json wraps this).
void write_report(json::Writer& w, const PerfReport& report);

/// Write `content` to `path` byte-exactly; returns false on I/O failure.
bool write_text(const std::string& path, const std::string& content);

}  // namespace rw::perf
