// PerfSession: one-object attach/measure/report lifecycle.
//
// RAII over the whole observation stack: constructing a session builds the
// PMU, attaches it to every instrumented component, and (optionally) arms
// the sampling profiler and epoch collector; destroying it detaches the
// sink so the platform reverts to the unobserved, bit-identical baseline.
// After kernel.run(), report() freezes everything into a PerfReport that
// the exporters and RunMetrics integration consume.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/run_metrics.hpp"
#include "common/units.hpp"
#include "perf/metrics.hpp"
#include "perf/pmu.hpp"
#include "perf/profiler.hpp"
#include "sim/platform.hpp"

namespace rw::perf {

struct PerfConfig {
  bool profile = true;
  ProfilerConfig profiler;
  bool collect_epochs = true;
  DurationPs epoch_width = microseconds(50);
};

/// Frozen measurement results for one run.
struct PerfReport {
  TimePs makespan = 0;
  std::size_t num_cores = 0;
  PmuSnapshot pmu;
  SamplingProfiler::Profile profile;
  std::uint64_t profiler_ticks = 0;
  DurationPs profiler_period = 0;
  std::vector<Epoch> epochs;

  /// Aggregates over all core counter blocks (incl. unattributed).
  [[nodiscard]] CoreCounters totals() const;
  [[nodiscard]] double mean_utilization() const;

  /// Fold the headline counters into RunMetrics::extra under
  /// `prefix` (default "pmu."), so harness JSON carries them.
  void to_extras(RunMetrics& m, const std::string& prefix = "pmu.") const;
};

class PerfSession {
 public:
  PerfSession(sim::Platform& platform, PerfConfig cfg = {});
  ~PerfSession();
  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

  [[nodiscard]] Pmu& pmu() { return pmu_; }
  [[nodiscard]] const Pmu& pmu() const { return pmu_; }
  [[nodiscard]] SamplingProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] EpochCollector* epochs() { return epochs_.get(); }

  /// Detach the sink early (before destruction); idempotent.
  void detach();

  /// Close trailing windows and freeze the report. Call after the
  /// simulation has run.
  [[nodiscard]] PerfReport report();

 private:
  sim::Platform& platform_;
  PerfConfig cfg_;
  Pmu pmu_;
  std::unique_ptr<SamplingProfiler> profiler_;
  std::unique_ptr<EpochCollector> epochs_;
  bool attached_ = false;
};

}  // namespace rw::perf
