#include "perf/metrics.hpp"

namespace rw::perf {

namespace {
std::uint64_t sub(std::uint64_t b, std::uint64_t a) { return b > a ? b - a : 0; }
}  // namespace

CoreCounters delta(const CoreCounters& a, const CoreCounters& b) {
  CoreCounters d;
  d.busy_cycles = sub(b.busy_cycles, a.busy_cycles);
  d.stall_cycles = sub(b.stall_cycles, a.stall_cycles);
  d.busy_ps = sub(b.busy_ps, a.busy_ps);
  d.reservations = sub(b.reservations, a.reservations);
  d.compute_blocks = sub(b.compute_blocks, a.compute_blocks);
  d.mem_reads = sub(b.mem_reads, a.mem_reads);
  d.mem_writes = sub(b.mem_writes, a.mem_writes);
  d.local_accesses = sub(b.local_accesses, a.local_accesses);
  d.shared_accesses = sub(b.shared_accesses, a.shared_accesses);
  d.bytes_read = sub(b.bytes_read, a.bytes_read);
  d.bytes_written = sub(b.bytes_written, a.bytes_written);
  d.freq_changes = sub(b.freq_changes, a.freq_changes);
  return d;
}

IcnCounters delta(const IcnCounters& a, const IcnCounters& b) {
  IcnCounters d;
  d.transfers = sub(b.transfers, a.transfers);
  d.bytes = sub(b.bytes, a.bytes);
  d.wait_ps = sub(b.wait_ps, a.wait_ps);
  d.busy_ps = sub(b.busy_ps, a.busy_ps);
  d.hops = sub(b.hops, a.hops);
  d.link_busy_ps.resize(b.link_busy_ps.size(), 0);
  for (std::size_t i = 0; i < b.link_busy_ps.size(); ++i) {
    const DurationPs prev = i < a.link_busy_ps.size() ? a.link_busy_ps[i] : 0;
    d.link_busy_ps[i] = sub(b.link_busy_ps[i], prev);
  }
  return d;
}

DmaCounters delta(const DmaCounters& a, const DmaCounters& b) {
  DmaCounters d;
  d.transfers = sub(b.transfers, a.transfers);
  d.bytes = sub(b.bytes, a.bytes);
  d.busy_ps = sub(b.busy_ps, a.busy_ps);
  return d;
}

double Epoch::mean_utilization() const {
  if (cores.empty() || width() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& c : cores)
    sum += static_cast<double>(c.busy_ps) / static_cast<double>(width());
  return sum / static_cast<double>(cores.size());
}

EpochCollector::EpochCollector(sim::Platform& platform, const Pmu& pmu,
                               DurationPs width)
    : platform_(platform), pmu_(pmu), width_(width) {
  if (width_ == 0) width_ = microseconds(50);
  prev_ = pmu_.snapshot(platform_.kernel().now());
}

void EpochCollector::start() {
  if (started_) return;
  started_ = true;
  platform_.kernel().schedule_daemon_in(
      width_, [this] { tick(); }, /*priority=*/110);
}

void EpochCollector::close_epoch(TimePs end) {
  const PmuSnapshot cur = pmu_.snapshot(end);
  Epoch ep;
  ep.index = epochs_.size();
  ep.start = prev_.at;
  ep.end = end;
  ep.cores.reserve(cur.cores.size());
  for (std::size_t i = 0; i < cur.cores.size(); ++i) {
    const CoreCounters prev_core =
        i < prev_.cores.size() ? prev_.cores[i] : CoreCounters{};
    ep.cores.push_back(delta(prev_core, cur.cores[i]));
  }
  ep.unattributed = delta(prev_.unattributed, cur.unattributed);
  ep.icn = delta(prev_.icn, cur.icn);
  ep.dma = delta(prev_.dma, cur.dma);
  epochs_.push_back(std::move(ep));
  prev_ = cur;
}

void EpochCollector::tick() {
  auto& kernel = platform_.kernel();
  close_epoch(kernel.now());
  kernel.schedule_daemon_in(width_, [this] { tick(); }, /*priority=*/110);
}

void EpochCollector::finish() {
  if (finished_) return;
  finished_ = true;
  const TimePs now = platform_.kernel().now();
  if (now > prev_.at) close_epoch(now);
}

}  // namespace rw::perf
