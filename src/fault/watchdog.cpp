#include "fault/watchdog.hpp"

#include <stdexcept>

namespace rw::fault {

WatchdogPeripheral::WatchdogPeripheral(sim::Kernel& kernel,
                                       sim::Tracer& tracer,
                                       sim::InterruptController& irqc,
                                       std::size_t irq_line, std::string name)
    : Peripheral(std::move(name)),
      kernel_(kernel),
      tracer_(tracer),
      irqc_(irqc),
      irq_line_(irq_line),
      expired_(Peripheral::name() + ".expired") {}

void WatchdogPeripheral::arm(DurationPs timeout) {
  if (timeout == 0)
    throw std::invalid_argument("watchdog timeout must be > 0");
  timeout_ = timeout;
  armed_ = true;
  ++generation_;
  tracer_.record(kernel_.now(), sim::TraceKind::kCustom, sim::CoreId{},
                 "wdt.arm", timeout, 0);
  schedule_expiry();
}

void WatchdogPeripheral::kick() {
  ++kick_count_;
  if (!armed_) return;
  ++generation_;  // the outstanding expiry becomes a no-op
  schedule_expiry();
}

void WatchdogPeripheral::disarm() {
  if (!armed_) return;
  armed_ = false;
  ++generation_;
  tracer_.record(kernel_.now(), sim::TraceKind::kCustom, sim::CoreId{},
                 "wdt.disarm", expired_count_, kick_count_);
}

void WatchdogPeripheral::schedule_expiry() {
  const std::uint64_t gen = generation_;
  // LIVE event on purpose: expiry must fire exactly when nothing else is
  // happening (see the header's liveness note).
  kernel_.schedule_in(timeout_, [this, gen] {
    if (gen != generation_ || !armed_) return;  // kicked or disarmed
    ++expired_count_;
    tracer_.record(kernel_.now(), sim::TraceKind::kCustom, sim::CoreId{},
                   "wdt.expire", expired_count_, 0);
    expired_.pulse();
    irqc_.raise(irq_line_);
    ++generation_;
    schedule_expiry();  // auto re-arm
  });
}

std::uint64_t WatchdogPeripheral::read_reg(std::size_t index) const {
  switch (index) {
    case kRegTimeoutPs: return timeout_;
    case kRegCtrl: return armed_ ? 1 : 0;
    case kRegKick: return 0;
    case kRegExpiredCount: return expired_count_;
    case kRegKickCount: return kick_count_;
    default: throw std::out_of_range("wdt register index");
  }
}

void WatchdogPeripheral::write_reg(std::size_t index, std::uint64_t value) {
  switch (index) {
    case kRegTimeoutPs:
      timeout_ = value;
      break;
    case kRegCtrl:
      if (value & 1ULL) {
        arm(timeout_);
      } else {
        disarm();
      }
      break;
    case kRegKick:
      kick();
      break;
    default:
      throw std::out_of_range("wdt register not writable");
  }
}

std::vector<sim::RegInfo> WatchdogPeripheral::registers() const {
  return {{"TIMEOUT_PS", kRegTimeoutPs},
          {"CTRL", kRegCtrl},
          {"KICK", kRegKick},
          {"EXPIRED_COUNT", kRegExpiredCount},
          {"KICK_COUNT", kRegKickCount}};
}

std::vector<sim::Signal*> WatchdogPeripheral::signals() {
  return {&expired_};
}

}  // namespace rw::fault
