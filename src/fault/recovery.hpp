// Recovery policies and the watchdog-driven supervisor (rw::fault).
//
// Detection is the watchdog's job; this module decides what to do next.
// Three policies, matching E14's sweep axes:
//   * kNone            — no watchdog, no action: crashes deadlock or
//                        starve the pipeline (the baseline the paper's
//                        predictability argument warns about),
//   * kWatchdogRestart — expire -> reset every crashed core in place
//                        (parked work re-executes where it was),
//   * kWatchdogRemap   — expire -> migrate the crashed core's parked work
//                        onto the least-loaded survivor and alias future
//                        submissions there (degradation-aware remapping;
//                        the static-schedule analogue lives in
//                        maps::remap_on_failure).
// Either way the supervisor force-releases hardware semaphores held by a
// dead core — the livelock breaker tests/test_sim_fault.cpp asserts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "sim/platform.hpp"

namespace rw::fault {

enum class RecoveryPolicy : std::uint8_t {
  kNone,
  kWatchdogRestart,
  kWatchdogRemap,
};

const char* recovery_policy_name(RecoveryPolicy p);

/// Bounded exponential backoff for retry loops (detection primitive used
/// alongside Channel::recv_for/send_for). delay_for(k) is deterministic.
struct RetryPolicy {
  int max_attempts = 5;
  DurationPs initial_delay = nanoseconds(500);
  std::uint32_t multiplier = 2;  // integral so delays stay exact

  [[nodiscard]] DurationPs delay_for(int attempt) const {
    DurationPs d = initial_delay;
    for (int i = 0; i < attempt; ++i) d *= multiplier;
    return d;
  }
  /// Sum over all attempts (how long a full retry cycle can take).
  [[nodiscard]] DurationPs total_budget() const {
    DurationPs sum = 0;
    for (int i = 0; i < max_attempts; ++i) sum += delay_for(i);
    return sum;
  }
};

struct SupervisorConfig {
  RecoveryPolicy policy = RecoveryPolicy::kWatchdogRestart;
  DurationPs watchdog_timeout = microseconds(20);
  /// Consecutive expiries with no progress and nothing recoverable before
  /// the supervisor disarms the watchdog and lets the run wind down (the
  /// termination guarantee for unrecoverable situations).
  std::uint64_t max_futile_expiries = 3;
};

/// Listens on the watchdog IRQ and applies the configured policy.
class RecoverySupervisor {
 public:
  RecoverySupervisor(sim::Platform& platform, WatchdogPeripheral& wdt,
                     SupervisorConfig cfg, FaultTimeline* timeline = nullptr);

  /// Install the IRQ handler and arm the watchdog (kNone: no-op).
  void start();
  /// Disarm (call on workload completion so the run can end).
  void finish();
  /// Application progress note: resets the futile-expiry counter.
  void note_progress() { ++progress_; }

  /// Where work bound for logical core `idx` should actually run after
  /// remaps (identity until a remap happens). Chases aliases, so double
  /// failures resolve to a live core.
  [[nodiscard]] std::size_t core_for(std::size_t idx) const;

  [[nodiscard]] std::uint64_t recoveries() const { return restarts_ + remaps_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  [[nodiscard]] std::uint64_t remaps() const { return remaps_; }
  [[nodiscard]] std::uint64_t sem_releases() const { return sem_releases_; }
  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] DurationPs max_recovery_latency() const {
    return max_latency_;
  }
  [[nodiscard]] DurationPs total_recovery_latency() const {
    return total_latency_;
  }

 private:
  void on_expiry();
  void release_sems_of(sim::CoreId dead);

  sim::Platform& platform_;
  WatchdogPeripheral& wdt_;
  SupervisorConfig cfg_;
  FaultTimeline* timeline_;
  std::vector<std::size_t> alias_;  // logical core -> live core
  std::uint64_t progress_ = 0;
  std::uint64_t progress_at_last_expiry_ = 0;
  std::uint64_t futile_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t remaps_ = 0;
  std::uint64_t sem_releases_ = 0;
  DurationPs max_latency_ = 0;
  DurationPs total_latency_ = 0;
  bool gave_up_ = false;
  bool started_ = false;
};

}  // namespace rw::fault
