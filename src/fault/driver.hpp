// The rwfault driver, as a library so tests exercise exactly what the CLI
// does: run the E14 fault/recovery scenario per policy, print the summary
// table, and write the deterministic FAULT_<policy>.json documents (config
// + plan parameters + outcome + full fault/recovery timeline).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "fault/scenario.hpp"
#include "tools/cli_common.hpp"

namespace rw::fault {

/// Shared flags (--list/--json/--legacy-json/--no-files/--seed/--out-dir)
/// come from cli::CommonOptions; only the tool-specific ones live here.
struct FaultOptions : cli::CommonOptions {
  std::vector<RecoveryPolicy> policies;  // empty = all three
  std::size_t cores = 4;                 // --cores N
  bool mesh = false;                     // --mesh
  std::uint64_t items = 48;              // --items K (pipeline length)
  std::uint64_t rate_per_ms = 50;        // --rate R (faults per sim ms)
  bool crashes_only = false;             // --crashes-only
  DurationPs watchdog_timeout = microseconds(50);  // --timeout-us U
  /// --plan FILE: replay an explicit rw-fault-plan-1 schedule (e.g. one
  /// exported by rwfuzz) instead of drawing the random plan.
  std::string plan_path;
};

/// Parse rwfault's argv (without argv[0]).
Result<FaultOptions> parse_fault_args(const std::vector<std::string>& args);

struct PolicyOutcome {
  RecoveryPolicy policy = RecoveryPolicy::kNone;
  ScenarioOutcome outcome;
  std::string json_path;  // empty when not written
};

struct FaultReport {
  std::vector<PolicyOutcome> outcomes;
  int exit_code = 0;
};

/// Combined deterministic JSON document over all policy runs
/// (schema rw-fault-run-1).
std::string fault_json(const FaultOptions& opts,
                       const std::vector<PolicyOutcome>& outcomes);

/// Run per options, writing human output (or the JSON doc) to `out`.
FaultReport run_fault(const FaultOptions& opts, std::ostream& out);

}  // namespace rw::fault
