#include "fault/driver.hpp"

#include <fstream>
#include <iterator>
#include <optional>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "fault/plan.hpp"

namespace rw::fault {

namespace {

bool write_text(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return f.good();
}

Result<RecoveryPolicy> parse_policy(const std::string& name) {
  for (RecoveryPolicy p :
       {RecoveryPolicy::kNone, RecoveryPolicy::kWatchdogRestart,
        RecoveryPolicy::kWatchdogRemap})
    if (name == recovery_policy_name(p)) return p;
  return make_error("unknown recovery policy: " + name);
}

void write_outcome(json::Writer& w, const ScenarioOutcome& oc) {
  w.begin_object();
  w.key("items_target").value(oc.items_target);
  w.key("items_done").value(oc.items_done);
  w.key("goodput").value(oc.goodput);
  w.key("healthy_makespan_ps").value(oc.healthy_makespan);
  w.key("finish_time_ps").value(oc.finish_time);
  w.key("makespan_ps").value(oc.makespan);
  w.key("deadlocked").value(oc.deadlocked);
  w.key("faults_injected").value(oc.faults_injected);
  w.key("crashes").value(oc.crashes);
  w.key("recoveries").value(oc.recoveries);
  w.key("restarts").value(oc.restarts);
  w.key("remaps").value(oc.remaps);
  w.key("sem_releases").value(oc.sem_releases);
  w.key("watchdog_expiries").value(oc.watchdog_expiries);
  w.key("sem_skips").value(oc.sem_skips);
  w.key("items_dropped").value(oc.items_dropped);
  w.key("gave_up").value(oc.gave_up);
  w.key("max_recovery_latency_ps").value(oc.max_recovery_latency);
  w.key("total_recovery_latency_ps").value(oc.total_recovery_latency);
  w.key("timeline").begin_array();
  for (const FaultRecord& r : oc.timeline.records()) {
    w.begin_object();
    w.key("time_ps").value(r.time);
    w.key("what").value(r.what);
    w.key("target").value(static_cast<std::uint64_t>(r.target));
    w.key("a").value(r.a);
    w.key("b").value(r.b);
    if (!r.note.empty()) w.key("note").value(r.note);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_config(json::Writer& w, const FaultOptions& opts) {
  w.begin_object();
  w.key("cores").value(static_cast<std::uint64_t>(opts.cores));
  w.key("mesh").value(opts.mesh);
  w.key("seed").value(opts.seed);
  w.key("items").value(opts.items);
  w.key("rate_per_ms").value(opts.rate_per_ms);
  w.key("crashes_only").value(opts.crashes_only);
  w.key("watchdog_timeout_ps").value(opts.watchdog_timeout);
  if (!opts.plan_path.empty()) w.key("plan_path").value(opts.plan_path);
  w.end_object();
}

std::string policy_json(const FaultOptions& opts, const PolicyOutcome& po) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-fault-policy-1");
  w.key("policy").value(recovery_policy_name(po.policy));
  w.key("config");
  write_config(w, opts);
  w.key("outcome");
  write_outcome(w, po.outcome);
  w.end_object();
  return w.str() + "\n";
}

ScenarioConfig scenario_config(const FaultOptions& opts,
                               RecoveryPolicy policy) {
  ScenarioConfig cfg;
  cfg.cores = opts.cores;
  cfg.mesh = opts.mesh;
  cfg.seed = opts.seed;
  cfg.items = opts.items;
  cfg.fault_rate_per_ms = static_cast<double>(opts.rate_per_ms);
  cfg.policy = policy;
  cfg.watchdog_timeout = opts.watchdog_timeout;
  cfg.crashes_only = opts.crashes_only;
  cfg.threads = opts.threads;
  return cfg;
}

}  // namespace

Result<FaultOptions> parse_fault_args(const std::vector<std::string>& args) {
  FaultOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a == "--mesh") {
      opts.mesh = true;
    } else if (a == "--crashes-only") {
      opts.crashes_only = true;
    } else if (a == "--cores") {
      opts.cores = static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.cores == 0) return make_error("--cores must be >= 1");
    } else if (a == "--items") {
      opts.items = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.items == 0) return make_error("--items must be >= 1");
    } else if (a == "--rate") {
      opts.rate_per_ms = RW_TRY(cli::arg_u64(args, i, a));
    } else if (a == "--timeout-us") {
      opts.watchdog_timeout = microseconds(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.watchdog_timeout == 0)
        return make_error("--timeout-us must be >= 1");
    } else if (a == "--plan") {
      if (i + 1 >= args.size()) return make_error("--plan requires a file");
      opts.plan_path = args[++i];
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwfault ") + cli::common_usage() +
                        " [--mesh] [--crashes-only] [--cores N] [--items K]"
                        " [--rate R] [--timeout-us U] [--plan FILE]"
                        " [policy...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      opts.policies.push_back(RW_TRY(parse_policy(a)));
    }
  }
  return opts;
}

std::string fault_json(const FaultOptions& opts,
                       const std::vector<PolicyOutcome>& outcomes) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-fault-run-1");
  w.key("config");
  write_config(w, opts);
  w.key("policies").begin_array();
  for (const PolicyOutcome& po : outcomes) {
    w.begin_object();
    w.key("policy").value(recovery_policy_name(po.policy));
    w.key("outcome");
    write_outcome(w, po.outcome);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

FaultReport run_fault(const FaultOptions& opts, std::ostream& out) {
  FaultReport rep;
  if (opts.list) {
    out << "recovery policies:\n";
    for (RecoveryPolicy p :
         {RecoveryPolicy::kNone, RecoveryPolicy::kWatchdogRestart,
          RecoveryPolicy::kWatchdogRemap})
      out << "  " << recovery_policy_name(p) << "\n";
    out << "fault kinds:\n";
    for (FaultKind k :
         {FaultKind::kCoreCrash, FaultKind::kCoreStall, FaultKind::kLinkDegrade,
          FaultKind::kPacketDrop, FaultKind::kMemBitFlip, FaultKind::kDmaAbort,
          FaultKind::kIrqDrop, FaultKind::kIrqSpurious})
      out << "  " << fault_kind_name(k) << "\n";
    return rep;
  }

  std::optional<FaultPlan> explicit_plan;
  if (!opts.plan_path.empty()) {
    std::ifstream f(opts.plan_path, std::ios::binary);
    if (!f) {
      out << "error: cannot read " << opts.plan_path << "\n";
      rep.exit_code = 2;
      return rep;
    }
    const std::string text{std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>()};
    auto parsed = FaultPlan::from_json(text);
    if (!parsed.ok()) {
      out << "error: " << opts.plan_path << ": "
          << parsed.error().to_string() << "\n";
      rep.exit_code = 2;
      return rep;
    }
    explicit_plan = std::move(parsed.value());
  }

  std::vector<RecoveryPolicy> policies = opts.policies;
  if (policies.empty())
    policies = {RecoveryPolicy::kNone, RecoveryPolicy::kWatchdogRestart,
                RecoveryPolicy::kWatchdogRemap};

  for (RecoveryPolicy policy : policies) {
    PolicyOutcome po;
    po.policy = policy;
    ScenarioConfig cfg = scenario_config(opts, policy);
    if (explicit_plan) cfg.explicit_plan = &*explicit_plan;
    po.outcome = run_fault_scenario(cfg);
    if (opts.write_files) {
      po.json_path = opts.out_dir + "/FAULT_" +
                     std::string(recovery_policy_name(policy)) + ".json";
      if (!write_text(po.json_path, policy_json(opts, po))) {
        out << "error: failed writing " << po.json_path << "\n";
        rep.exit_code = 1;
      }
    }
    rep.outcomes.push_back(std::move(po));
  }

  if (opts.json_stdout) {
    const std::string legacy = fault_json(opts, rep.outcomes);
    if (opts.legacy_json)
      out << legacy;
    else
      out << cli::envelope("rwfault", opts.seed, legacy) << "\n";
    return rep;
  }

  out << strformat(
      "== e14 fault/recovery: %zu cores %s, %llu items, rate %llu/ms, "
      "seed %llu\n\n",
      opts.cores, opts.mesh ? "mesh" : "bus",
      static_cast<unsigned long long>(opts.items),
      static_cast<unsigned long long>(opts.rate_per_ms),
      static_cast<unsigned long long>(opts.seed));
  Table t({"policy", "goodput", "done", "deadlock", "faults", "crashes",
           "recov", "sem_rel", "wdt_exp", "max_rec_us", "makespan_us"});
  for (const PolicyOutcome& po : rep.outcomes) {
    const ScenarioOutcome& oc = po.outcome;
    t.add_row({recovery_policy_name(po.policy), Table::percent(oc.goodput),
               strformat("%llu/%llu",
                         static_cast<unsigned long long>(oc.items_done),
                         static_cast<unsigned long long>(oc.items_target)),
               oc.deadlocked ? "yes" : "no", Table::num(oc.faults_injected),
               Table::num(oc.crashes), Table::num(oc.recoveries),
               Table::num(oc.sem_releases), Table::num(oc.watchdog_expiries),
               strformat("%.3f",
                         static_cast<double>(oc.max_recovery_latency) * 1e-6),
               strformat("%.3f", static_cast<double>(oc.makespan) * 1e-6)});
  }
  out << t.to_string();
  for (const PolicyOutcome& po : rep.outcomes)
    if (!po.json_path.empty()) out << "\nwrote " << po.json_path;
  out << "\n";
  return rep;
}

}  // namespace rw::fault
