// Fault/recovery experiment scenario (rw::fault, experiment E14).
//
// One deterministic streaming pipeline — source -> one stage per core ->
// sink — run twice: once fault-free to learn the healthy makespan, then
// under a seed-derived FaultPlan with the chosen recovery policy. Stages
// guard a shared scratch area with a hardware semaphore (the livelock
// bait) and, when recovery is enabled, use Channel timeout/retry
// primitives instead of blocking forever; the sink kicks the watchdog on
// every item. The outcome is goodput (items delivered / items offered),
// recovery latency, and the full fault/recovery timeline — everything
// BENCH_fault.json and the rwfault CLI report.
#pragma once

#include <cstdint>
#include <string>

#include "common/run_metrics.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "sim/kernel.hpp"

namespace rw::fault {

struct ScenarioConfig {
  std::size_t cores = 4;
  bool mesh = false;
  std::uint64_t seed = 1;
  std::uint64_t items = 48;              // items offered to the pipeline
  std::uint64_t compute_cycles = 2000;   // per stage per item (plus jitter)
  double fault_rate_per_ms = 0.0;        // random-plan arrival rate
  RecoveryPolicy policy = RecoveryPolicy::kNone;
  DurationPs watchdog_timeout = microseconds(50);
  RetryPolicy retry;                     // channel timeout/retry behaviour
  bool crashes_only = false;             // restrict the random plan to
                                         // core crashes (policy ablations)
  /// Per-kind enable mask for the random plan (rw::fuzz targets
  /// individual coverage cells with single-kind masks). crashes_only
  /// above is the legacy spelling of only_kind(kCoreCrash) and wins
  /// when set.
  std::uint32_t kind_mask = kAllFaultKinds;
  /// Event-queue policy for the simulation kernel. Outcomes and
  /// timelines are bit-identical across policies — the fuzz oracle's
  /// determinism.policy invariant checks exactly that.
  sim::QueuePolicy queue = sim::QueuePolicy::kCalendar;
  /// When set, used instead of the random plan (rwfault --plan-* paths,
  /// directed tests). The random plan is windowed to twice the healthy
  /// makespan so faults land while work is actually in flight.
  const FaultPlan* explicit_plan = nullptr;

  /// Simulation-kernel tile partitions (rwfault --threads). 1 = the plain
  /// sequential kernel; >1 runs the conservative tiled engine in parallel
  /// mode. The scenario's own state stays on tile 0, so outcomes and
  /// timelines are bit-identical for every value — this knob exists to
  /// prove exactly that on the fault corpus.
  std::uint32_t threads = 1;
};

struct ScenarioOutcome {
  std::uint64_t items_target = 0;
  std::uint64_t items_done = 0;
  double goodput = 0.0;             // items_done / items_target
  TimePs healthy_makespan = 0;      // fault-free reference run
  TimePs finish_time = 0;           // sink completion (0 = never finished)
  TimePs makespan = 0;              // simulated time when the run ended
  bool deadlocked = false;          // ended with items missing
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t restarts = 0;
  std::uint64_t remaps = 0;
  std::uint64_t sem_releases = 0;
  std::uint64_t watchdog_expiries = 0;
  std::uint64_t sem_skips = 0;      // shared-section entries abandoned
  std::uint64_t items_dropped = 0;  // send/recv retry budgets exhausted
  bool gave_up = false;
  DurationPs max_recovery_latency = 0;
  DurationPs total_recovery_latency = 0;
  FaultTimeline timeline;

  // Conservation accounting (the fuzz oracle's item-conservation
  // invariant). The sink validates every delivered id against the offered
  // set: an id outside [0, items_target) is alien (fabricated by a bug),
  // a repeated id is a duplicate. Channel totals must satisfy
  // sent == received + buffered at end of run.
  std::uint64_t alien_items = 0;
  std::uint64_t duplicate_items = 0;
  std::uint64_t chan_sent = 0;      // sum over pipeline channels
  std::uint64_t chan_received = 0;
  std::uint64_t chan_buffered = 0;  // still enqueued at end of run

  /// Compute blocks whose retirement did not match their reservation
  /// (wrong finish time or wrong cycle count). Always 0 on a correct
  /// kernel: a block retires exactly when and as it was reserved, and a
  /// crash-invalidated block never retires at all. The fuzz oracle's
  /// compute-integrity invariant — and the seeded-defect selftest's
  /// detection signal.
  std::uint64_t compute_integrity_violations = 0;

  /// ExecutionRecorder digest of the faulted run's full trace stream —
  /// canonical across queue policies, thread counts, and reruns.
  std::uint64_t trace_fingerprint = 0;
  /// True when the kernel stopped on the event budget instead of
  /// draining (runaway/livelock guard tripped).
  bool hit_event_budget = false;

  /// Flatten into harness metrics (extra keys prefixed "fault.").
  [[nodiscard]] RunMetrics to_metrics() const;
};

/// Run the scenario. Deterministic: equal configs produce byte-identical
/// timelines and equal outcomes, every time.
ScenarioOutcome run_fault_scenario(const ScenarioConfig& cfg);

}  // namespace rw::fault
