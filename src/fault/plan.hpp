// Declarative, seed-reproducible fault plans (rw::fault).
//
// The paper's NXP section demands *predictable* behaviour under
// disturbance; the CoWare/Dömer sections argue the virtual platform is
// where disturbance should be provoked and observed. A FaultPlan is the
// provocation half: a schedule of platform-layer fault events — core
// crashes/stalls, interconnect degradation and packet drops, memory
// bit-flips, DMA aborts, dropped/spurious interrupt lines — fixed before
// the run starts and therefore perfectly reproducible. Plans are either
// hand-built (unit tests, directed experiments) or drawn from an Rng
// seed (E14's fault-rate sweeps); either way the same plan replays the
// same faults at the same picosecond, forever.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace rw::fault {

enum class FaultKind : std::uint8_t {
  kCoreCrash,    // target = core; permanent until recovery acts
  kCoreStall,    // target = core, a = stall duration (ps)
  kLinkDegrade,  // target = link (UINT32_MAX = whole fabric), a = factor
                 //   in milli-units (1500 = 1.5x occupancy)
  kPacketDrop,   // a = number of upcoming transfers that each lose a packet
  kMemBitFlip,   // a = address, b = bit index within that byte (0..7)
  kDmaAbort,     // abort the in-flight DMA transfer, if any
  kIrqDrop,      // target = line, a = number of raises to lose
  kIrqSpurious,  // target = line, raised out of nowhere
};

const char* fault_kind_name(FaultKind k);

/// Number of FaultKind enumerators (the enum is dense from 0).
inline constexpr std::size_t kNumFaultKinds = 8;

/// Inverse of fault_kind_name(); false when `name` matches no kind.
bool fault_kind_from_name(std::string_view name, FaultKind& out);

/// Bit for kind `k` in a per-kind enable mask.
inline constexpr std::uint32_t fault_kind_bit(FaultKind k) {
  return 1u << static_cast<std::uint32_t>(k);
}

/// Mask with every fault kind enabled.
inline constexpr std::uint32_t kAllFaultKinds =
    (1u << kNumFaultKinds) - 1;

/// Whole-fabric target marker for kLinkDegrade.
inline constexpr std::uint32_t kFabricWide = UINT32_MAX;

struct FaultEvent {
  TimePs time = 0;
  FaultKind kind = FaultKind::kCoreCrash;
  std::uint32_t target = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Parameters for FaultPlan::random(). Rates are per simulated
/// millisecond; kind weights are relative (0 disables a kind).
struct RandomSpec {
  double rate_per_ms = 1.0;       // mean fault arrivals per ms
  TimePs window_start = 0;        // faults land in [start, end)
  TimePs window_end = 0;          // must be > start for any fault to land
  std::size_t num_cores = 4;
  std::size_t num_links = 0;      // 0 = fabric-wide degrades only
  std::uint64_t mem_base = 0;     // bit-flip address range
  std::uint64_t mem_size = 0;     // 0 disables bit-flips

  // Relative weights, indexed by FaultKind. Crashes dominate by default
  // because they are what the recovery policies exist for.
  std::uint32_t weight_crash = 4;
  std::uint32_t weight_stall = 2;
  std::uint32_t weight_degrade = 2;
  std::uint32_t weight_drop = 2;
  std::uint32_t weight_bitflip = 1;
  std::uint32_t weight_dma_abort = 1;
  std::uint32_t weight_irq_drop = 1;
  std::uint32_t weight_irq_spurious = 1;

  /// Per-kind enable mask (bit = fault_kind_bit(kind)), ANDed over the
  /// weights above. Lets a caller keep the weight profile but restrict a
  /// plan to chosen kinds — the fuzz coverage matrix uses single-kind
  /// masks to target never-hit cells deterministically.
  std::uint32_t kind_mask = kAllFaultKinds;

  [[nodiscard]] bool kind_enabled(FaultKind k) const {
    return (kind_mask & fault_kind_bit(k)) != 0;
  }
  /// Restrict the plan to exactly one kind (weights still apply).
  RandomSpec& only_kind(FaultKind k) {
    kind_mask = fault_kind_bit(k);
    return *this;
  }
};

/// Ordered fault schedule. Builder calls append; events() returns them
/// sorted by (time, insertion order) so arming is deterministic.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& crash_core(TimePs t, std::uint32_t core);
  FaultPlan& stall_core(TimePs t, std::uint32_t core, DurationPs d);
  /// factor >= 1.0; stored in milli-units for byte-stable JSON.
  FaultPlan& degrade_link(TimePs t, std::uint32_t link, double factor);
  FaultPlan& degrade_fabric(TimePs t, double factor);
  FaultPlan& drop_packets(TimePs t, std::uint64_t count);
  FaultPlan& flip_bit(TimePs t, std::uint64_t addr, std::uint32_t bit);
  FaultPlan& abort_dma(TimePs t);
  FaultPlan& drop_irqs(TimePs t, std::uint32_t line, std::uint64_t count);
  FaultPlan& spurious_irq(TimePs t, std::uint32_t line);
  FaultPlan& add(FaultEvent e);

  /// Events sorted by time (stable: equal-time events keep insertion
  /// order), which is the order the injector arms them in.
  [[nodiscard]] std::vector<FaultEvent> events() const;

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Seed-reproducible plan: exponential inter-arrivals at
  /// `spec.rate_per_ms` inside the window, kinds by weight, targets
  /// uniform. Same (seed, spec) -> identical plan, always.
  static FaultPlan random(std::uint64_t seed, const RandomSpec& spec);

  /// Deterministic JSON (schema rw-fault-plan-1).
  [[nodiscard]] std::string to_json() const;
  /// Emit the rw-fault-plan-1 object into an open writer, for documents
  /// that nest a plan (rw-fuzz-case-1). to_json() is this plus nothing.
  void write_json(json::Writer& w) const;

  /// Inverse of to_json(). Accepts any rw-fault-plan-1 document; the
  /// round trip plan -> to_json -> from_json -> to_json is byte-stable
  /// (events re-sort identically because to_json already emits them in
  /// armed order). Unknown kinds or malformed fields are errors — a
  /// committed repro must not silently lose events.
  static Result<FaultPlan> from_json(std::string_view text);
  /// As from_json(), over an already-parsed rw-fault-plan-1 object.
  static Result<FaultPlan> from_json_value(const json::Value& doc);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace rw::fault
