// Declarative, seed-reproducible fault plans (rw::fault).
//
// The paper's NXP section demands *predictable* behaviour under
// disturbance; the CoWare/Dömer sections argue the virtual platform is
// where disturbance should be provoked and observed. A FaultPlan is the
// provocation half: a schedule of platform-layer fault events — core
// crashes/stalls, interconnect degradation and packet drops, memory
// bit-flips, DMA aborts, dropped/spurious interrupt lines — fixed before
// the run starts and therefore perfectly reproducible. Plans are either
// hand-built (unit tests, directed experiments) or drawn from an Rng
// seed (E14's fault-rate sweeps); either way the same plan replays the
// same faults at the same picosecond, forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rw::fault {

enum class FaultKind : std::uint8_t {
  kCoreCrash,    // target = core; permanent until recovery acts
  kCoreStall,    // target = core, a = stall duration (ps)
  kLinkDegrade,  // target = link (UINT32_MAX = whole fabric), a = factor
                 //   in milli-units (1500 = 1.5x occupancy)
  kPacketDrop,   // a = number of upcoming transfers that each lose a packet
  kMemBitFlip,   // a = address, b = bit index within that byte (0..7)
  kDmaAbort,     // abort the in-flight DMA transfer, if any
  kIrqDrop,      // target = line, a = number of raises to lose
  kIrqSpurious,  // target = line, raised out of nowhere
};

const char* fault_kind_name(FaultKind k);

/// Whole-fabric target marker for kLinkDegrade.
inline constexpr std::uint32_t kFabricWide = UINT32_MAX;

struct FaultEvent {
  TimePs time = 0;
  FaultKind kind = FaultKind::kCoreCrash;
  std::uint32_t target = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Parameters for FaultPlan::random(). Rates are per simulated
/// millisecond; kind weights are relative (0 disables a kind).
struct RandomSpec {
  double rate_per_ms = 1.0;       // mean fault arrivals per ms
  TimePs window_start = 0;        // faults land in [start, end)
  TimePs window_end = 0;          // must be > start for any fault to land
  std::size_t num_cores = 4;
  std::size_t num_links = 0;      // 0 = fabric-wide degrades only
  std::uint64_t mem_base = 0;     // bit-flip address range
  std::uint64_t mem_size = 0;     // 0 disables bit-flips

  // Relative weights, indexed by FaultKind. Crashes dominate by default
  // because they are what the recovery policies exist for.
  std::uint32_t weight_crash = 4;
  std::uint32_t weight_stall = 2;
  std::uint32_t weight_degrade = 2;
  std::uint32_t weight_drop = 2;
  std::uint32_t weight_bitflip = 1;
  std::uint32_t weight_dma_abort = 1;
  std::uint32_t weight_irq_drop = 1;
  std::uint32_t weight_irq_spurious = 1;
};

/// Ordered fault schedule. Builder calls append; events() returns them
/// sorted by (time, insertion order) so arming is deterministic.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& crash_core(TimePs t, std::uint32_t core);
  FaultPlan& stall_core(TimePs t, std::uint32_t core, DurationPs d);
  /// factor >= 1.0; stored in milli-units for byte-stable JSON.
  FaultPlan& degrade_link(TimePs t, std::uint32_t link, double factor);
  FaultPlan& degrade_fabric(TimePs t, double factor);
  FaultPlan& drop_packets(TimePs t, std::uint64_t count);
  FaultPlan& flip_bit(TimePs t, std::uint64_t addr, std::uint32_t bit);
  FaultPlan& abort_dma(TimePs t);
  FaultPlan& drop_irqs(TimePs t, std::uint32_t line, std::uint64_t count);
  FaultPlan& spurious_irq(TimePs t, std::uint32_t line);
  FaultPlan& add(FaultEvent e);

  /// Events sorted by time (stable: equal-time events keep insertion
  /// order), which is the order the injector arms them in.
  [[nodiscard]] std::vector<FaultEvent> events() const;

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Seed-reproducible plan: exponential inter-arrivals at
  /// `spec.rate_per_ms` inside the window, kinds by weight, targets
  /// uniform. Same (seed, spec) -> identical plan, always.
  static FaultPlan random(std::uint64_t seed, const RandomSpec& spec);

  /// Deterministic JSON (schema rw-fault-plan-1).
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace rw::fault
