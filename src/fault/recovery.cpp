#include "fault/recovery.hpp"

#include <limits>

namespace rw::fault {

const char* recovery_policy_name(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kNone: return "none";
    case RecoveryPolicy::kWatchdogRestart: return "watchdog_restart";
    case RecoveryPolicy::kWatchdogRemap: return "watchdog_remap";
  }
  return "?";
}

RecoverySupervisor::RecoverySupervisor(sim::Platform& platform,
                                       WatchdogPeripheral& wdt,
                                       SupervisorConfig cfg,
                                       FaultTimeline* timeline)
    : platform_(platform), wdt_(wdt), cfg_(cfg), timeline_(timeline) {
  alias_.resize(platform_.core_count());
  for (std::size_t i = 0; i < alias_.size(); ++i) alias_[i] = i;
}

void RecoverySupervisor::start() {
  if (cfg_.policy == RecoveryPolicy::kNone || started_) return;
  started_ = true;
  platform_.irqc().set_handler(wdt_.irq_line(), [this](std::size_t line) {
    platform_.irqc().ack(line);
    on_expiry();
  });
  wdt_.arm(cfg_.watchdog_timeout);
}

void RecoverySupervisor::finish() {
  if (!started_) return;
  wdt_.disarm();
}

std::size_t RecoverySupervisor::core_for(std::size_t idx) const {
  std::size_t cur = idx % alias_.size();
  // Chase aliases (double failures); bounded by the core count.
  for (std::size_t hops = 0; hops < alias_.size(); ++hops) {
    const std::size_t next = alias_[cur];
    if (next == cur) break;
    cur = next;
  }
  return cur;
}

void RecoverySupervisor::release_sems_of(sim::CoreId dead) {
  auto& sems = platform_.hwsem();
  for (std::size_t cell = 0; cell < sems.num_cells(); ++cell) {
    if (sems.held(cell) && sems.holder(cell) == dead) {
      sems.force_release(cell);
      ++sem_releases_;
      if (timeline_)
        timeline_->record(platform_.kernel().now(), "recovery.sem_release",
                          dead.value(), cell, 0);
    }
  }
}

void RecoverySupervisor::on_expiry() {
  if (gave_up_) return;
  const TimePs now = platform_.kernel().now();

  // Find crashed cores with something left to recover. Under kWatchdogRemap
  // a dead core STAYS dead after handling (alias redirected), so it only
  // reappears here when new work parked on it since — otherwise every
  // expiry would look recoverable and the watchdog could never conclude
  // the system is beyond help.
  std::vector<std::size_t> dead;
  for (std::size_t c = 0; c < platform_.core_count(); ++c) {
    auto& core = platform_.core(c);
    if (!core.failed()) continue;
    if (cfg_.policy == RecoveryPolicy::kWatchdogRemap && alias_[c] != c &&
        core.parked_count() == 0)
      continue;  // already remapped, nothing new parked
    dead.push_back(c);
  }

  const bool progressed = progress_ != progress_at_last_expiry_;
  progress_at_last_expiry_ = progress_;
  if (dead.empty()) {
    futile_ = progressed ? 0 : futile_ + 1;
    if (futile_ >= cfg_.max_futile_expiries) {
      gave_up_ = true;
      wdt_.disarm();
      if (timeline_) timeline_->record(now, "recovery.gave_up", 0, futile_, 0);
    }
    return;
  }
  futile_ = 0;

  for (const std::size_t c : dead) {
    auto& core = platform_.core(c);
    const DurationPs latency = now - core.last_fail_time();
    max_latency_ = std::max(max_latency_, latency);
    total_latency_ += latency;
    // Break semaphore livelocks before anything resumes: whatever the
    // dead core held, nobody can release it but us.
    release_sems_of(core.id());

    if (cfg_.policy == RecoveryPolicy::kWatchdogRestart) {
      core.recover();
      ++restarts_;
      if (timeline_)
        timeline_->record(now, "recovery.restart",
                          static_cast<std::uint32_t>(c), latency, 0);
    } else {  // kWatchdogRemap
      // Least-loaded healthy survivor; ties broken by index. The dead
      // core stays dead — future core_for(c) submissions land on the
      // survivor, and its parked work migrates there right now.
      std::size_t best = SIZE_MAX;
      TimePs best_busy = std::numeric_limits<TimePs>::max();
      for (std::size_t s = 0; s < platform_.core_count(); ++s) {
        if (platform_.core(s).failed()) continue;
        if (platform_.core(s).busy_until() < best_busy) {
          best_busy = platform_.core(s).busy_until();
          best = s;
        }
      }
      if (best == SIZE_MAX) {
        // Everyone is dead; nothing to migrate onto. Give up now.
        gave_up_ = true;
        wdt_.disarm();
        if (timeline_)
          timeline_->record(now, "recovery.gave_up", 0, futile_, 0,
                            "all_cores_dead");
        return;
      }
      alias_[c] = best;
      const std::size_t migrated =
          core.migrate_parked(platform_.core(best));
      ++remaps_;
      if (timeline_)
        timeline_->record(now, "recovery.remap", static_cast<std::uint32_t>(c),
                          latency, migrated);
    }
  }
}

}  // namespace rw::fault
