#include "fault/injector.hpp"

#include <algorithm>
#include <span>

#include "common/json.hpp"

namespace rw::fault {

void FaultTimeline::record(TimePs time, std::string what,
                           std::uint32_t target, std::uint64_t a,
                           std::uint64_t b, std::string note) {
  records_.push_back(
      FaultRecord{time, std::move(what), target, a, b, std::move(note)});
}

std::size_t FaultTimeline::count_prefix(std::string_view prefix) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const FaultRecord& r) {
                      return r.what.compare(0, prefix.size(), prefix) == 0;
                    }));
}

std::string FaultTimeline::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-fault-timeline-1");
  w.key("records").begin_array();
  for (const auto& r : records_) {
    w.begin_object();
    w.key("time_ps").value(static_cast<std::uint64_t>(r.time));
    w.key("what").value(r.what);
    w.key("target").value(static_cast<std::uint64_t>(r.target));
    w.key("a").value(r.a);
    w.key("b").value(r.b);
    if (!r.note.empty()) w.key("note").value(r.note);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FaultInjector::FaultInjector(sim::Platform& platform, FaultPlan plan)
    : platform_(platform), events_(plan.events()) {
  if (platform_.tile_count() > 1)
    tile_streams_.resize(platform_.tile_count() - 1);
}

FaultTimeline FaultInjector::merged_timeline() const {
  FaultTimeline merged = timeline_;
  if (tile_streams_.empty()) return merged;
  std::vector<FaultRecord> all = merged.records();
  for (const FaultTimeline& tl : tile_streams_)
    all.insert(all.end(), tl.records().begin(), tl.records().end());
  std::stable_sort(all.begin(), all.end(),
                   [](const FaultRecord& a, const FaultRecord& b) {
                     return a.time < b.time;
                   });
  FaultTimeline out;
  for (FaultRecord& r : all)
    out.record(r.time, std::move(r.what), r.target, r.a, r.b,
               std::move(r.note));
  return out;
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    // Route the fault to the tile that owns its target state.
    std::uint32_t tile = 0;
    switch (e.kind) {
      case FaultKind::kCoreCrash:
      case FaultKind::kCoreStall:
        tile = platform_.tile_of_core(e.target % platform_.core_count());
        break;
      case FaultKind::kMemBitFlip:
        if (const sim::Region* r = platform_.memory().find_region(e.a))
          tile = r->tile;
        break;
      default:
        break;  // fabric / DMA / IRQ state lives on tile 0
    }
    auto& kernel = platform_.tile_kernel(tile);
    const TimePs when = std::max(e.time, kernel.now());
    kernel.schedule_daemon_at(when, [this, i, tile] { apply(i, tile); });
  }
}

void FaultInjector::apply(std::size_t i, std::uint32_t tile) {
  const FaultEvent& e = events_[i];
  auto& plat = platform_;
  const TimePs now = plat.tile_kernel(tile).now();
  applied_.fetch_add(1, std::memory_order_relaxed);
  std::string note;

  switch (e.kind) {
    case FaultKind::kCoreCrash: {
      auto& core = plat.core(e.target % plat.core_count());
      if (core.failed()) {
        note = "already_failed";
      } else {
        core.fail();
      }
      break;
    }
    case FaultKind::kCoreStall:
      plat.core(e.target % plat.core_count()).stall(e.a);
      break;
    case FaultKind::kLinkDegrade: {
      const double factor = static_cast<double>(e.a) / 1000.0;
      auto* mesh = dynamic_cast<sim::MeshNoc*>(&plat.interconnect());
      if (e.target != kFabricWide && mesh != nullptr) {
        mesh->set_link_degrade(e.target % mesh->num_links(), factor);
      } else {
        plat.interconnect().set_degrade(factor);
        if (e.target != kFabricWide) note = "fabric_wide_fallback";
      }
      break;
    }
    case FaultKind::kPacketDrop:
      plat.interconnect().inject_drops(e.a);
      break;
    case FaultKind::kMemBitFlip: {
      // Raw backdoor flip: unobserved by the latency model, visible to
      // every subsequent read — silent corruption, as in the real thing.
      std::uint8_t byte = 0;
      if (plat.memory().find_region(e.a) == nullptr) {
        note = "unmapped";
        break;
      }
      plat.memory().peek(e.a, std::span<std::uint8_t>(&byte, 1));
      byte = static_cast<std::uint8_t>(byte ^ (1U << (e.b % 8)));
      plat.memory().poke(e.a, std::span<const std::uint8_t>(&byte, 1));
      plat.tile_tracer(tile).record(now, sim::TraceKind::kCustom,
                                    sim::CoreId{}, "fault.bitflip", e.a, e.b);
      break;
    }
    case FaultKind::kDmaAbort:
      if (!plat.dma().abort()) note = "idle";
      break;
    case FaultKind::kIrqDrop:
      plat.irqc().inject_drops(
          e.target % sim::InterruptController::kNumLines, e.a);
      break;
    case FaultKind::kIrqSpurious:
      plat.irqc().raise(e.target % sim::InterruptController::kNumLines);
      break;
  }
  stream_for(tile).record(now, fault_kind_name(e.kind), e.target, e.a, e.b,
                          std::move(note));
}

}  // namespace rw::fault
