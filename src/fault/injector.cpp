#include "fault/injector.hpp"

#include <algorithm>
#include <span>

#include "common/json.hpp"

namespace rw::fault {

void FaultTimeline::record(TimePs time, std::string what,
                           std::uint32_t target, std::uint64_t a,
                           std::uint64_t b, std::string note) {
  records_.push_back(
      FaultRecord{time, std::move(what), target, a, b, std::move(note)});
}

std::size_t FaultTimeline::count_prefix(std::string_view prefix) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const FaultRecord& r) {
                      return r.what.compare(0, prefix.size(), prefix) == 0;
                    }));
}

std::string FaultTimeline::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-fault-timeline-1");
  w.key("records").begin_array();
  for (const auto& r : records_) {
    w.begin_object();
    w.key("time_ps").value(static_cast<std::uint64_t>(r.time));
    w.key("what").value(r.what);
    w.key("target").value(static_cast<std::uint64_t>(r.target));
    w.key("a").value(r.a);
    w.key("b").value(r.b);
    if (!r.note.empty()) w.key("note").value(r.note);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FaultInjector::FaultInjector(sim::Platform& platform, FaultPlan plan)
    : platform_(platform), events_(plan.events()) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  auto& kernel = platform_.kernel();
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TimePs when = std::max(events_[i].time, kernel.now());
    kernel.schedule_daemon_at(when, [this, i] { apply(i); });
  }
}

void FaultInjector::apply(std::size_t i) {
  const FaultEvent& e = events_[i];
  auto& plat = platform_;
  const TimePs now = plat.kernel().now();
  ++applied_;
  std::string note;

  switch (e.kind) {
    case FaultKind::kCoreCrash: {
      auto& core = plat.core(e.target % plat.core_count());
      if (core.failed()) {
        note = "already_failed";
      } else {
        core.fail();
      }
      break;
    }
    case FaultKind::kCoreStall:
      plat.core(e.target % plat.core_count()).stall(e.a);
      break;
    case FaultKind::kLinkDegrade: {
      const double factor = static_cast<double>(e.a) / 1000.0;
      auto* mesh = dynamic_cast<sim::MeshNoc*>(&plat.interconnect());
      if (e.target != kFabricWide && mesh != nullptr) {
        mesh->set_link_degrade(e.target % mesh->num_links(), factor);
      } else {
        plat.interconnect().set_degrade(factor);
        if (e.target != kFabricWide) note = "fabric_wide_fallback";
      }
      break;
    }
    case FaultKind::kPacketDrop:
      plat.interconnect().inject_drops(e.a);
      break;
    case FaultKind::kMemBitFlip: {
      // Raw backdoor flip: unobserved by the latency model, visible to
      // every subsequent read — silent corruption, as in the real thing.
      std::uint8_t byte = 0;
      if (plat.memory().find_region(e.a) == nullptr) {
        note = "unmapped";
        break;
      }
      plat.memory().peek(e.a, std::span<std::uint8_t>(&byte, 1));
      byte = static_cast<std::uint8_t>(byte ^ (1U << (e.b % 8)));
      plat.memory().poke(e.a, std::span<const std::uint8_t>(&byte, 1));
      plat.tracer().record(now, sim::TraceKind::kCustom, sim::CoreId{},
                           "fault.bitflip", e.a, e.b);
      break;
    }
    case FaultKind::kDmaAbort:
      if (!plat.dma().abort()) note = "idle";
      break;
    case FaultKind::kIrqDrop:
      plat.irqc().inject_drops(
          e.target % sim::InterruptController::kNumLines, e.a);
      break;
    case FaultKind::kIrqSpurious:
      plat.irqc().raise(e.target % sim::InterruptController::kNumLines);
      break;
  }
  timeline_.record(now, fault_kind_name(e.kind), e.target, e.a, e.b,
                   std::move(note));
}

}  // namespace rw::fault
