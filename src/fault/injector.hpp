// Fault injection onto a live virtual platform (rw::fault).
//
// The injector compiles a FaultPlan onto kernel *daemon* events, one per
// fault. Daemons never extend a simulation (run() stops when only daemons
// remain), so an armed-but-empty plan schedules zero events and the run
// is bit-identical to an uninstrumented one — the same contract rw::perf
// holds for its observers, fingerprint-tested the same way. Every applied
// fault (and every recovery action, appended by the RecoverySupervisor)
// lands in a FaultTimeline whose JSON is byte-stable for a fixed seed:
// the deterministic disturbance record the paper's virtual-platform
// argument calls for.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"
#include "sim/platform.hpp"

namespace rw::fault {

/// One applied fault or recovery action, at simulated time.
struct FaultRecord {
  TimePs time = 0;
  std::string what;  // fault kind name or "recovery.*" action
  std::uint32_t target = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string note;  // optional detail ("already_failed", "idle", ...)
};

/// Chronological record of faults applied and recoveries performed.
class FaultTimeline {
 public:
  void record(TimePs time, std::string what, std::uint32_t target = 0,
              std::uint64_t a = 0, std::uint64_t b = 0,
              std::string note = {});

  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Count of records whose `what` starts with `prefix`.
  [[nodiscard]] std::size_t count_prefix(std::string_view prefix) const;

  /// Deterministic JSON (schema rw-fault-timeline-1).
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<FaultRecord> records_;
};

/// Arms a plan against a platform. Lifetime: must outlive kernel.run().
class FaultInjector {
 public:
  FaultInjector(sim::Platform& platform, FaultPlan plan);

  /// Schedule one daemon event per plan event (empty plan: none at all).
  /// Events whose time already passed fire at the current time. On a tiled
  /// platform each fault is armed on the kernel of the tile that owns its
  /// target — core faults on the core's tile, bit-flips on the region's
  /// tile, fabric/DMA/IRQ faults on tile 0 — so applying it touches only
  /// state local to the executing worker.
  void arm();

  [[nodiscard]] std::size_t armed_events() const { return events_.size(); }
  [[nodiscard]] std::size_t applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  /// The tile-0 record stream. On an untiled platform this is the whole
  /// timeline (and recovery actions land here); use merged_timeline() for
  /// the cross-tile chronological view.
  [[nodiscard]] FaultTimeline& timeline() { return timeline_; }
  [[nodiscard]] const FaultTimeline& timeline() const { return timeline_; }

  /// All tiles' records merged into one chronological timeline (stable:
  /// ties keep tile order, tile 0 first). Deterministic across ExecMode.
  [[nodiscard]] FaultTimeline merged_timeline() const;

 private:
  void apply(std::size_t i, std::uint32_t tile);
  [[nodiscard]] FaultTimeline& stream_for(std::uint32_t tile) {
    return tile == 0 ? timeline_ : tile_streams_[tile - 1];
  }

  sim::Platform& platform_;
  std::vector<FaultEvent> events_;
  FaultTimeline timeline_;
  std::vector<FaultTimeline> tile_streams_;  // tiles 1..N-1
  // Atomic only because two tiles may fire faults in the same epoch; the
  // final count is deterministic regardless.
  std::atomic<std::size_t> applied_{0};
  bool armed_ = false;
};

}  // namespace rw::fault
