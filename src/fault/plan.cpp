#include "fault/plan.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace rw::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCoreCrash: return "core_crash";
    case FaultKind::kCoreStall: return "core_stall";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kPacketDrop: return "packet_drop";
    case FaultKind::kMemBitFlip: return "mem_bitflip";
    case FaultKind::kDmaAbort: return "dma_abort";
    case FaultKind::kIrqDrop: return "irq_drop";
    case FaultKind::kIrqSpurious: return "irq_spurious";
  }
  return "?";
}

bool fault_kind_from_name(std::string_view name, FaultKind& out) {
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (name == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

FaultPlan& FaultPlan::crash_core(TimePs t, std::uint32_t core) {
  return add({t, FaultKind::kCoreCrash, core, 0, 0});
}

FaultPlan& FaultPlan::stall_core(TimePs t, std::uint32_t core,
                                 DurationPs d) {
  return add({t, FaultKind::kCoreStall, core, d, 0});
}

FaultPlan& FaultPlan::degrade_link(TimePs t, std::uint32_t link,
                                   double factor) {
  const auto milli = static_cast<std::uint64_t>(
      (factor < 1.0 ? 1.0 : factor) * 1000.0 + 0.5);
  return add({t, FaultKind::kLinkDegrade, link, milli, 0});
}

FaultPlan& FaultPlan::degrade_fabric(TimePs t, double factor) {
  return degrade_link(t, kFabricWide, factor);
}

FaultPlan& FaultPlan::drop_packets(TimePs t, std::uint64_t count) {
  return add({t, FaultKind::kPacketDrop, 0, count, 0});
}

FaultPlan& FaultPlan::flip_bit(TimePs t, std::uint64_t addr,
                               std::uint32_t bit) {
  return add({t, FaultKind::kMemBitFlip, 0, addr, bit % 8});
}

FaultPlan& FaultPlan::abort_dma(TimePs t) {
  return add({t, FaultKind::kDmaAbort, 0, 0, 0});
}

FaultPlan& FaultPlan::drop_irqs(TimePs t, std::uint32_t line,
                                std::uint64_t count) {
  return add({t, FaultKind::kIrqDrop, line, count, 0});
}

FaultPlan& FaultPlan::spurious_irq(TimePs t, std::uint32_t line) {
  return add({t, FaultKind::kIrqSpurious, line, 0, 0});
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(e);
  return *this;
}

std::vector<FaultEvent> FaultPlan::events() const {
  auto out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomSpec& spec) {
  FaultPlan plan;
  if (spec.rate_per_ms <= 0.0 || spec.window_end <= spec.window_start)
    return plan;
  Rng rng(seed);
  const double mean_gap_ps = 1e9 / spec.rate_per_ms;  // 1 ms = 1e9 ps

  std::uint32_t weights[] = {
      spec.weight_crash,
      spec.weight_stall,
      spec.weight_degrade,
      spec.weight_drop,
      spec.weight_bitflip && spec.mem_size > 0 ? spec.weight_bitflip : 0,
      spec.weight_dma_abort,
      spec.weight_irq_drop,
      spec.weight_irq_spurious,
  };
  for (std::size_t i = 0; i < kNumFaultKinds; ++i)
    if (!spec.kind_enabled(static_cast<FaultKind>(i))) weights[i] = 0;
  std::uint64_t total = 0;
  for (const auto w : weights) total += w;
  if (total == 0 || spec.num_cores == 0) return plan;

  double t = static_cast<double>(spec.window_start);
  for (;;) {
    t += rng.next_exponential(mean_gap_ps);
    const auto when = static_cast<TimePs>(t);
    if (when >= spec.window_end) break;

    std::uint64_t pick = rng.next_below(total);
    std::size_t kind = 0;
    while (pick >= weights[kind]) pick -= weights[kind++];

    const auto core =
        static_cast<std::uint32_t>(rng.next_below(spec.num_cores));
    switch (static_cast<FaultKind>(kind)) {
      case FaultKind::kCoreCrash:
        plan.crash_core(when, core);
        break;
      case FaultKind::kCoreStall:
        // 0.5 us to ~4.5 us of lost availability.
        plan.stall_core(when, core,
                        nanoseconds(500 + rng.next_below(4000)));
        break;
      case FaultKind::kLinkDegrade: {
        const double factor = 1.5 + rng.next_double() * 2.5;  // 1.5x..4x
        if (spec.num_links > 0 && rng.next_bool(0.5)) {
          plan.degrade_link(
              when, static_cast<std::uint32_t>(rng.next_below(spec.num_links)),
              factor);
        } else {
          plan.degrade_fabric(when, factor);
        }
        break;
      }
      case FaultKind::kPacketDrop:
        plan.drop_packets(when, 1 + rng.next_below(8));
        break;
      case FaultKind::kMemBitFlip:
        plan.flip_bit(when, spec.mem_base + rng.next_below(spec.mem_size),
                      static_cast<std::uint32_t>(rng.next_below(8)));
        break;
      case FaultKind::kDmaAbort:
        plan.abort_dma(when);
        break;
      case FaultKind::kIrqDrop:
        plan.drop_irqs(when, core, 1 + rng.next_below(3));
        break;
      case FaultKind::kIrqSpurious:
        plan.spurious_irq(when, core);
        break;
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::from_json(std::string_view text) {
  const json::Value doc = RW_TRY(json::parse(text));
  return from_json_value(doc);
}

Result<FaultPlan> FaultPlan::from_json_value(const json::Value& doc) {
  if (!doc.is_object())
    return make_error("fault plan: document is not an object");
  if (const std::string schema = doc.get_string("schema");
      schema != "rw-fault-plan-1")
    return make_error("fault plan: unsupported schema '" + schema + "'");
  const json::Value* events = doc.get("events");
  if (events == nullptr || !events->is_array())
    return make_error("fault plan: missing events array");

  FaultPlan plan;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& ev = events->at(i);
    const std::string where = "fault plan: event " + std::to_string(i);
    if (!ev.is_object()) return make_error(where + " is not an object");
    FaultEvent e;
    const json::Value* kind = ev.get("kind");
    if (kind == nullptr || !kind->is_string() ||
        !fault_kind_from_name(kind->string(), e.kind))
      return make_error(where + ": unknown kind");
    for (const char* field : {"time_ps", "target", "a", "b"}) {
      const json::Value* v = ev.get(field);
      bool integral = false;
      if (v != nullptr && v->is_number()) v->u64(&integral);
      if (!integral)
        return make_error(where + ": field '" + field +
                          "' missing or not an integer");
    }
    e.time = static_cast<TimePs>(ev.get_u64("time_ps"));
    e.target = static_cast<std::uint32_t>(ev.get_u64("target"));
    e.a = ev.get_u64("a");
    e.b = ev.get_u64("b");
    plan.add(e);
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  json::Writer w;
  write_json(w);
  return w.str();
}

void FaultPlan::write_json(json::Writer& w) const {
  w.begin_object();
  w.key("schema").value("rw-fault-plan-1");
  w.key("events").begin_array();
  for (const auto& e : events()) {
    w.begin_object();
    w.key("time_ps").value(static_cast<std::uint64_t>(e.time));
    w.key("kind").value(fault_kind_name(e.kind));
    w.key("target").value(static_cast<std::uint64_t>(e.target));
    w.key("a").value(e.a);
    w.key("b").value(e.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace rw::fault
