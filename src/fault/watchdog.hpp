// Watchdog timer peripheral (rw::fault detection primitive).
//
// The classic lockup detector: software kicks the watchdog on every unit
// of progress; if no kick arrives within the timeout, the watchdog
// expires and raises its interrupt line — the RecoverySupervisor's cue
// that something stopped making progress. Memory-mapped like every other
// peripheral (kick is a register write), so on-target software and the
// debugger see it the same way.
//
// Liveness subtlety: expiry events are LIVE kernel events, not daemons.
// A hung system has no live events left — a daemon expiry would never
// fire, which is precisely backwards for a watchdog. The cost is that an
// armed watchdog keeps the simulation alive, so whoever arms it must
// disarm it (scenario completion or the supervisor giving up); both
// paths are guaranteed in rw::fault::run_fault_scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/peripherals.hpp"

namespace rw::fault {

class WatchdogPeripheral final : public sim::Peripheral {
 public:
  static constexpr std::size_t kRegTimeoutPs = 0;
  static constexpr std::size_t kRegCtrl = 1;  // bit0 armed; write to arm/disarm
  static constexpr std::size_t kRegKick = 2;  // write-any-value to kick
  static constexpr std::size_t kRegExpiredCount = 3;
  static constexpr std::size_t kRegKickCount = 4;

  WatchdogPeripheral(sim::Kernel& kernel, sim::Tracer& tracer,
                     sim::InterruptController& irqc, std::size_t irq_line,
                     std::string name = "wdt");

  /// Arm with `timeout`; expiry fires that long after the last kick (or
  /// after arming). Expiry auto-re-arms: a dead system keeps expiring
  /// every timeout until someone disarms or recovery restores kicks.
  void arm(DurationPs timeout);
  void kick();
  void disarm();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] DurationPs timeout() const { return timeout_; }
  [[nodiscard]] std::uint64_t expired_count() const { return expired_count_; }
  [[nodiscard]] std::uint64_t kick_count() const { return kick_count_; }
  [[nodiscard]] std::size_t irq_line() const { return irq_line_; }
  sim::Signal& expired_signal() { return expired_; }

  std::uint64_t read_reg(std::size_t index) const override;
  void write_reg(std::size_t index, std::uint64_t value) override;
  std::vector<sim::RegInfo> registers() const override;
  std::vector<sim::Signal*> signals() override;

 private:
  void schedule_expiry();

  sim::Kernel& kernel_;
  sim::Tracer& tracer_;
  sim::InterruptController& irqc_;
  std::size_t irq_line_;
  DurationPs timeout_ = 0;
  bool armed_ = false;
  std::uint64_t generation_ = 0;  // invalidates superseded expiry events
  std::uint64_t expired_count_ = 0;
  std::uint64_t kick_count_ = 0;
  sim::Signal expired_;
};

}  // namespace rw::fault
