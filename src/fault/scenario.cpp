#include "fault/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/watchdog.hpp"
#include "sim/channel.hpp"
#include "sim/interconnect.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"
#include "vpdebug/replay.hpp"

namespace rw::fault {
namespace {

using ItemChannel = sim::Channel<std::uint64_t>;

/// End-of-stream marker flowing through the pipeline after the last item.
constexpr std::uint64_t kEndOfStream = UINT64_MAX;
/// Hardware-semaphore cell guarding the shared scratch section.
constexpr std::size_t kSharedCell = 0;
/// Runaway safety net for kernel.run(); a healthy E14 run is far below.
constexpr std::uint64_t kMaxEvents = 50'000'000;

struct RunCtx {
  sim::Platform& plat;
  const ScenarioConfig& cfg;
  RecoverySupervisor* sup;  // nullptr under kNone
  WatchdogPeripheral* wdt;  // nullptr under kNone
  std::vector<std::unique_ptr<ItemChannel>> chans;  // cores + 1 of them
  std::uint64_t items_done = 0;
  std::uint64_t sem_skips = 0;
  std::uint64_t items_dropped = 0;
  TimePs finish_time = 0;
  bool finished = false;
  std::vector<bool> seen;           // delivered-id set, sized items
  std::uint64_t alien_items = 0;     // delivered id not in [0, items)
  std::uint64_t duplicate_items = 0;  // delivered id seen twice

  [[nodiscard]] bool timed() const {
    return cfg.policy != RecoveryPolicy::kNone;
  }
  /// Where stage `s` runs right now: the supervisor's alias map redirects
  /// remapped stages to their survivor.
  [[nodiscard]] sim::Core& stage_core(std::size_t s) {
    const std::size_t logical = s % plat.core_count();
    return plat.core(sup ? sup->core_for(logical) : logical);
  }
};

/// Feeds item ids into the first channel, then the end-of-stream marker.
/// With recovery enabled it uses send_for + backoff and drops items whose
/// retry budget runs out (a crashed consumer must not wedge the producer);
/// under kNone it blocks forever — the deadlock E14 measures.
sim::Process source_proc(RunCtx& ctx) {
  ItemChannel& out = *ctx.chans.front();
  for (std::uint64_t i = 0; i <= ctx.cfg.items; ++i) {
    const std::uint64_t item = (i == ctx.cfg.items) ? kEndOfStream : i;
    if (ctx.timed()) {
      bool sent = false;
      for (int a = 0; a < ctx.cfg.retry.max_attempts && !sent; ++a) {
        const DurationPs budget =
            ctx.cfg.watchdog_timeout + ctx.cfg.retry.delay_for(a);
        sent = (co_await out.send_for(item, budget)).ok();
      }
      if (!sent && item != kEndOfStream) ++ctx.items_dropped;
    } else {
      co_await out.send(item);
    }
  }
}

/// Pipeline stage s: recv -> compute on (possibly remapped) core s ->
/// semaphore-guarded shared section -> forward. The bounded semaphore spin
/// keeps kNone runs finite: a stage that cannot get the lock skips the
/// shared section instead of spinning events forever.
sim::Process stage_proc(RunCtx& ctx, std::size_t s) {
  ItemChannel& in = *ctx.chans[s];
  ItemChannel& out = *ctx.chans[s + 1];
  sim::Kernel& kernel = ctx.plat.kernel();
  sim::HwSemaphores& sems = ctx.plat.hwsem();
  Rng rng(ctx.cfg.seed * 0x9e3779b9ULL + 17 * s + 1);
  while (true) {
    std::uint64_t item = 0;
    if (ctx.timed()) {
      bool got = false;
      for (int a = 0; a < ctx.cfg.retry.max_attempts && !got; ++a) {
        const DurationPs budget =
            ctx.cfg.watchdog_timeout + ctx.cfg.retry.delay_for(a);
        auto r = co_await in.recv_for(budget);
        if (r.ok()) {
          item = r.value();
          got = true;
        }
      }
      if (!got) co_return;  // upstream presumed dead for good
    } else {
      item = co_await in.recv();
    }

    if (item != kEndOfStream) {
      const Cycles jitter = rng.next_below(ctx.cfg.compute_cycles / 4 + 1);
      co_await ctx.stage_core(s).compute(ctx.cfg.compute_cycles + jitter,
                                         "e14.s" + std::to_string(s));
      // Shared scratch section. Re-resolve the core: the compute above may
      // have migrated to a survivor after a crash.
      sim::Core& core = ctx.stage_core(s);
      const sim::CoreId self = core.id();
      bool locked = false;
      for (int a = 0; a < 4 && !locked; ++a) {
        locked = sems.try_acquire(kSharedCell, self);
        if (!locked) co_await sim::delay(kernel, nanoseconds(800));
      }
      if (locked) {
        co_await ctx.stage_core(s).compute(ctx.cfg.compute_cycles / 8 + 1,
                                           "e14.shared" + std::to_string(s));
        // Conditional release: if we crashed inside the section, watchdog
        // recovery already force-released (possibly to another acquirer).
        if (sems.held(kSharedCell) && sems.holder(kSharedCell) == self)
          sems.release(kSharedCell, self);
      } else {
        ++ctx.sem_skips;
      }
    }

    if (ctx.timed()) {
      bool sent = false;
      for (int a = 0; a < ctx.cfg.retry.max_attempts && !sent; ++a) {
        const DurationPs budget =
            ctx.cfg.watchdog_timeout + ctx.cfg.retry.delay_for(a);
        sent = (co_await out.send_for(item, budget)).ok();
      }
      if (!sent && item != kEndOfStream) ++ctx.items_dropped;
    } else {
      co_await out.send(item);
    }
    if (item == kEndOfStream) co_return;
  }
}

/// Counts delivered items; every delivery kicks the watchdog and notes
/// progress. On end-of-stream it disarms the watchdog so the run can wind
/// down; if its own retry budget runs dry the supervisor's futile-expiry
/// counter performs the disarm instead (and the run records gave_up).
sim::Process sink_proc(RunCtx& ctx) {
  ItemChannel& in = *ctx.chans.back();
  while (true) {
    std::uint64_t item = 0;
    if (ctx.timed()) {
      bool got = false;
      for (int a = 0; a < ctx.cfg.retry.max_attempts && !got; ++a) {
        const DurationPs budget =
            ctx.cfg.watchdog_timeout + ctx.cfg.retry.delay_for(a);
        auto r = co_await in.recv_for(budget);
        if (r.ok()) {
          item = r.value();
          got = true;
        }
      }
      if (!got) co_return;  // pipeline presumed dead; supervisor winds down
    } else {
      item = co_await in.recv();
    }
    if (item == kEndOfStream) break;
    ++ctx.items_done;
    // Conservation bookkeeping: every delivered id must be one we offered,
    // exactly once. Anything else means a bug fabricated or replayed data.
    if (item >= ctx.cfg.items) {
      ++ctx.alien_items;
    } else if (ctx.seen[item]) {
      ++ctx.duplicate_items;
    } else {
      ctx.seen[item] = true;
    }
    if (ctx.wdt) ctx.wdt->kick();
    if (ctx.sup) ctx.sup->note_progress();
  }
  ctx.finished = true;
  ctx.finish_time = ctx.plat.kernel().now();
  if (ctx.sup) ctx.sup->finish();
}

/// Passive observation sink pairing every compute-block retirement with
/// the reservation that issued it. Two checks:
///
///  * exact pairing — a correct kernel retires each block at exactly its
///    reserved finish with its reserved cycle count;
///  * no overtaken retirement — a valid (tag-checked) end event implies
///    the core never crashed between its reservation's issue and its
///    retirement, and since only Core::fail() rewinds busy_until_, every
///    reservation issued *after* it on that core must start at or after
///    the retired finish. A stale end event revalidated against a
///    re-issued block (the PR 5 bug class) breaks exactly this: it
///    retires the pre-crash reservation while the post-restart re-issue
///    — issued later, starting inside the abandoned window — is still
///    outstanding. Issue order matters: a crash can also abandon a
///    not-yet-started reservation whose stall-inflated start lies inside
///    the window of the restart's legitimately-retired re-issue, but
///    that abandoned block was issued *before* the retired one, so it is
///    exempt.
class IntegritySink final : public sim::PerfSink {
 public:
  void on_core_reserve(sim::CoreId core, Cycles cycles, TimePs start,
                       TimePs finish, HertzT freq) override {
    (void)freq;
    reservations_.push_back({core.index(), start, finish, cycles, false});
  }
  void on_compute_block(sim::CoreId core, const std::string& label,
                        Cycles cycles, TimePs start,
                        TimePs finish) override {
    (void)label;
    std::size_t match = reservations_.size();
    for (std::size_t i = 0; i < reservations_.size(); ++i) {
      const Reservation& r = reservations_[i];
      if (!r.retired && r.core == core.index() && r.start == start) {
        match = i;
        break;
      }
    }
    if (match == reservations_.size()) {
      ++violations_;  // retired a block that was never reserved
      return;
    }
    reservations_[match].retired = true;
    if (reservations_[match].finish != finish ||
        reservations_[match].cycles != cycles) {
      ++violations_;
    }
    for (std::size_t i = match + 1; i < reservations_.size(); ++i) {
      const Reservation& j = reservations_[i];
      if (!j.retired && j.core == core.index() && j.start > start &&
          j.start < finish) {
        ++violations_;  // overtaken: a newer window opened mid-block
      }
    }
  }

  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  struct Reservation {
    std::size_t core;
    TimePs start;
    TimePs finish;
    Cycles cycles;
    bool retired;
  };
  std::vector<Reservation> reservations_;
  std::uint64_t violations_ = 0;
};

/// One full pipeline run under `plan`. `num_links_out`, when non-null,
/// receives the platform's NoC link count (0 on a bus) so the caller can
/// size per-link faults in the random plan.
ScenarioOutcome run_one(const ScenarioConfig& cfg, const FaultPlan& plan,
                        std::size_t* num_links_out) {
  sim::PlatformConfig pc = sim::PlatformConfig::homogeneous(cfg.cores);
  pc.kernel.policy = cfg.queue;
  if (cfg.threads > 1) {
    pc.kernel.num_tiles = static_cast<std::uint32_t>(
        std::min<std::size_t>(cfg.threads, cfg.cores));
    pc.kernel.exec = sim::ExecMode::kParallel;
  }
  if (cfg.mesh) {
    pc.interconnect = sim::PlatformConfig::Icn::kMesh;
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(cfg.cores))));
    pc.mesh.width = side < 1 ? 1 : side;
    pc.mesh.height = static_cast<std::uint32_t>(
        (cfg.cores + pc.mesh.width - 1) / pc.mesh.width);
  }
  sim::Platform plat(pc);
  if (num_links_out != nullptr) {
    auto* mesh = dynamic_cast<sim::MeshNoc*>(&plat.interconnect());
    *num_links_out = mesh ? mesh->num_links() : 0;
  }

  FaultInjector injector(plat, plan);
  injector.arm();

  std::unique_ptr<WatchdogPeripheral> wdt;
  std::unique_ptr<RecoverySupervisor> sup;
  if (cfg.policy != RecoveryPolicy::kNone) {
    wdt = std::make_unique<WatchdogPeripheral>(
        plat.kernel(), plat.tracer(), plat.irqc(),
        sim::InterruptController::kNumLines - 1);
    SupervisorConfig scfg;
    scfg.policy = cfg.policy;
    scfg.watchdog_timeout = cfg.watchdog_timeout;
    sup = std::make_unique<RecoverySupervisor>(plat, *wdt, scfg,
                                               &injector.timeline());
    sup->start();
  }

  RunCtx ctx{plat, cfg, sup.get(), wdt.get(), {}};
  ctx.seen.assign(cfg.items, false);
  for (std::size_t i = 0; i <= cfg.cores; ++i)
    ctx.chans.push_back(std::make_unique<ItemChannel>(
        plat.kernel(), 4, "e14.ch" + std::to_string(i)));

  vpdebug::ExecutionRecorder recorder(plat);
  IntegritySink integrity;
  plat.set_perf_sink(&integrity);
  spawn(plat.kernel(), source_proc(ctx));
  for (std::size_t s = 0; s < cfg.cores; ++s)
    spawn(plat.kernel(), stage_proc(ctx, s));
  spawn(plat.kernel(), sink_proc(ctx));
  plat.run(kMaxEvents);
  plat.set_perf_sink(nullptr);

  ScenarioOutcome out;
  out.items_target = cfg.items;
  out.items_done = ctx.items_done;
  out.alien_items = ctx.alien_items;
  out.duplicate_items = ctx.duplicate_items;
  for (const auto& ch : ctx.chans) {
    out.chan_sent += ch->total_sent();
    out.chan_received += ch->total_received();
    out.chan_buffered += ch->size();
  }
  // Tile-0 digest, not the canonical multi-tile combination: the scenario
  // keeps every actor on tile 0, so this digest is identical for every
  // `threads` value — the combined form folds the tile count itself and
  // would differ between threads=1 and threads>1 builds of the same run.
  out.trace_fingerprint = recorder.tile_fingerprint(0);
  out.compute_integrity_violations = integrity.violations();
  std::uint64_t executed = 0;
  for (std::size_t t = 0; t < plat.tile_count(); ++t)
    executed += plat.tile_kernel(static_cast<std::uint32_t>(t))
                    .events_executed();
  out.hit_event_budget = executed >= kMaxEvents;
  out.goodput = cfg.items == 0 ? 1.0
                               : static_cast<double>(ctx.items_done) /
                                     static_cast<double>(cfg.items);
  out.finish_time = ctx.finish_time;
  out.makespan = plat.now();
  out.deadlocked = !ctx.finished;
  out.faults_injected = injector.applied();
  for (std::size_t c = 0; c < plat.core_count(); ++c)
    out.crashes += plat.core(c).fail_count();
  if (sup) {
    out.recoveries = sup->recoveries();
    out.restarts = sup->restarts();
    out.remaps = sup->remaps();
    out.sem_releases = sup->sem_releases();
    out.gave_up = sup->gave_up();
    out.max_recovery_latency = sup->max_recovery_latency();
    out.total_recovery_latency = sup->total_recovery_latency();
  }
  if (wdt) out.watchdog_expiries = wdt->expired_count();
  out.sem_skips = ctx.sem_skips;
  out.items_dropped = ctx.items_dropped;
  out.timeline = injector.merged_timeline();
  return out;
}

}  // namespace

RunMetrics ScenarioOutcome::to_metrics() const {
  RunMetrics m;
  m.makespan = makespan;
  m.deadline_misses = items_target - items_done;  // undelivered items
  m.set_extra("fault.goodput", goodput);
  m.set_extra("fault.items_done", static_cast<double>(items_done));
  m.set_extra("fault.deadlocked", deadlocked ? 1.0 : 0.0);
  m.set_extra("fault.injected", static_cast<double>(faults_injected));
  m.set_extra("fault.crashes", static_cast<double>(crashes));
  m.set_extra("fault.recoveries", static_cast<double>(recoveries));
  m.set_extra("fault.restarts", static_cast<double>(restarts));
  m.set_extra("fault.remaps", static_cast<double>(remaps));
  m.set_extra("fault.sem_releases", static_cast<double>(sem_releases));
  m.set_extra("fault.wdt_expiries", static_cast<double>(watchdog_expiries));
  m.set_extra("fault.items_dropped", static_cast<double>(items_dropped));
  m.set_extra("fault.gave_up", gave_up ? 1.0 : 0.0);
  m.set_extra("fault.max_recovery_latency_ps",
              static_cast<double>(max_recovery_latency));
  m.set_extra("fault.healthy_makespan_ps",
              static_cast<double>(healthy_makespan));
  m.set_extra("fault.alien_items", static_cast<double>(alien_items));
  m.set_extra("fault.duplicate_items",
              static_cast<double>(duplicate_items));
  m.set_extra("fault.integrity_violations",
              static_cast<double>(compute_integrity_violations));
  return m;
}

ScenarioOutcome run_fault_scenario(const ScenarioConfig& cfg) {
  // Policy-independent reference run: the injection window must be the
  // same for every policy under test, or the policies would face
  // different fault counts and the sweep would compare nothing. kNone's
  // untimed communication makes it the natural anchor.
  std::size_t num_links = 0;
  ScenarioConfig ref_cfg = cfg;
  ref_cfg.policy = RecoveryPolicy::kNone;
  const ScenarioOutcome ref = run_one(ref_cfg, FaultPlan{}, &num_links);
  const TimePs t0_ref = ref.finish_time != 0 ? ref.finish_time : ref.makespan;

  // This policy's own fault-free baseline: the degradation denominator.
  ScenarioOutcome base = cfg.policy == RecoveryPolicy::kNone
                             ? ref
                             : run_one(cfg, FaultPlan{}, nullptr);
  const TimePs t0 = base.finish_time != 0 ? base.finish_time : base.makespan;

  const bool has_faults =
      cfg.explicit_plan != nullptr || cfg.fault_rate_per_ms > 0.0;
  if (!has_faults) {
    base.healthy_makespan = t0;
    return base;
  }

  FaultPlan plan;
  if (cfg.explicit_plan != nullptr) {
    plan = *cfg.explicit_plan;
  } else {
    RandomSpec spec;
    spec.rate_per_ms = cfg.fault_rate_per_ms;
    spec.window_start = 0;
    spec.window_end = 2 * t0_ref;  // faults land while work is in flight
    spec.num_cores = static_cast<std::uint32_t>(cfg.cores);
    spec.num_links = static_cast<std::uint32_t>(num_links);
    spec.mem_base = sim::kSharedBase;
    spec.mem_size = sim::PlatformConfig{}.shared_mem_bytes;
    spec.kind_mask = cfg.kind_mask;
    if (cfg.crashes_only) {
      // Legacy spelling of only_kind(kCoreCrash); also flattens the
      // weight so historical plans stay byte-identical.
      spec.weight_crash = 1;
      spec.only_kind(FaultKind::kCoreCrash);
    }
    plan = FaultPlan::random(cfg.seed, spec);
  }

  ScenarioOutcome out = run_one(cfg, plan, nullptr);
  out.healthy_makespan = t0;
  return out;
}

}  // namespace rw::fault
