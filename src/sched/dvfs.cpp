#include "sched/dvfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/analysis.hpp"

namespace rw::sched {

HertzT FrequencyLadder::ceil_level(HertzT f) const {
  for (const HertzT l : levels)
    if (l >= f) return l;
  return highest();
}

HertzT FrequencyLadder::step_up(HertzT f) const {
  for (const HertzT l : levels)
    if (l > f) return l;
  return highest();
}

HertzT FrequencyLadder::step_down(HertzT f) const {
  HertzT best = lowest();
  for (const HertzT l : levels) {
    if (l >= f) break;
    best = l;
  }
  return best;
}

FrequencyLadder FrequencyLadder::typical() {
  return FrequencyLadder{{mhz(200), mhz(400), mhz(600), mhz(800), mhz(1000),
                          mhz(1600), mhz(2000)}};
}

std::optional<HertzT> governor_pick_frequency(const TaskSet& ts,
                                              const FrequencyLadder& ladder,
                                              Cycles switch_overhead) {
  for (const HertzT f : ladder.levels) {
    TaskSet copy = ts;
    copy.frequency = f;
    if (response_time_analysis(copy, switch_overhead).all_schedulable(copy))
      return f;
  }
  return std::nullopt;
}

ReactiveGovernor::ReactiveGovernor(FrequencyLadder ladder,
                                   double up_threshold,
                                   double down_threshold)
    : ladder_(std::move(ladder)),
      up_threshold_(up_threshold),
      down_threshold_(down_threshold),
      current_(0) {
  if (ladder_.levels.empty())
    throw std::invalid_argument("frequency ladder must not be empty");
  if (!std::is_sorted(ladder_.levels.begin(), ladder_.levels.end()))
    throw std::invalid_argument("frequency ladder must ascend");
  if (down_threshold_ >= up_threshold_)
    throw std::invalid_argument("governor thresholds must be ordered");
  current_ = ladder_.lowest();
}

HertzT ReactiveGovernor::observe(double utilization) {
  HertzT next = current_;
  if (utilization > up_threshold_) {
    next = ladder_.step_up(current_);
  } else if (utilization < down_threshold_) {
    next = ladder_.step_down(current_);
  }
  if (next != current_) {
    current_ = next;
    ++transitions_;
  }
  return current_;
}

HertzT ReactiveGovernor::observe_window(DurationPs busy_ps,
                                        DurationPs window_ps) {
  if (window_ps == 0) return current_;
  return observe(static_cast<double>(busy_ps) /
                 static_cast<double>(window_ps));
}

double relative_energy_per_cycle(HertzT f, HertzT nominal) {
  if (nominal == 0) return 0.0;
  const double r = static_cast<double>(f) / static_cast<double>(nominal);
  return r * r;
}

}  // namespace rw::sched
