// Space-shared core allocation (gang scheduling).
//
// Sec. II-B: parallel software "shall be met with the allocation of
// multiple space-shared cores completely dedicated to executing a single
// application". The allocator here grants gangs from a core pool; its
// arbitration can be *centralized* (one arbiter — the construct Sec. II-A
// warns "inhibits scalability") or *distributed* (k independent arbiters).
// Experiment E1 sweeps core count under both and shows where the
// centralized curve flattens.
#pragma once

#include <cstddef>
#include <vector>

#include "common/run_metrics.hpp"
#include "common/units.hpp"
#include "sched/task.hpp"

namespace rw::sched {

/// Stateful free-list over a contiguous range of core indices
/// [base, base+capacity). run_gang_schedule drives one internally, and
/// rw::ert's admission controller owns one per resource pool — the
/// `available()` query is the public capacity probe the controller needs
/// (instead of poking at allocator internals).
///
/// Grants are deterministic: the lowest free indices first, so identical
/// request sequences reproduce identical core sets.
class SpaceAllocator {
 public:
  explicit SpaceAllocator(std::size_t capacity, std::size_t base = 0);

  [[nodiscard]] std::size_t capacity() const { return free_.size(); }
  /// Cores currently free (the admission-controller query).
  [[nodiscard]] std::size_t available() const { return free_count_; }
  [[nodiscard]] std::size_t in_use() const {
    return free_.size() - free_count_;
  }
  /// First index of the managed range (pools can be carved out of one
  /// global index space without colliding).
  [[nodiscard]] std::size_t base() const { return base_; }

  /// Grant between `min_cores` and `max_cores` cores (as many as are
  /// free, capped at max). Returns the granted indices in ascending
  /// order, or an empty vector when fewer than `min_cores` are free
  /// (or min_cores is 0 or exceeds max_cores).
  [[nodiscard]] std::vector<std::size_t> allocate(std::size_t min_cores,
                                                  std::size_t max_cores);

  /// As allocate(), but grants `preferred` global indices first (in the
  /// given order, skipping busy or foreign ones) before falling back to
  /// lowest-free-first for the remainder. With an empty preference list
  /// this is exactly allocate(). rw::critpath's advise_remap emits its
  /// critical-path-hot cores through here so the gang scheduler places
  /// work where the trace says the time goes; grants stay deterministic,
  /// and the result is sorted ascending like allocate()'s.
  [[nodiscard]] std::vector<std::size_t> allocate_preferred(
      std::size_t min_cores, std::size_t max_cores,
      const std::vector<std::size_t>& preferred);

  /// Return previously granted cores to the pool. Double-release or a
  /// foreign index is a programming error (asserted).
  void release(const std::vector<std::size_t>& cores);

 private:
  std::size_t base_ = 0;
  std::size_t free_count_ = 0;
  std::vector<bool> free_;  // free_[i] => core base_+i is free
};

enum class ArbitrationStrategy : std::uint8_t {
  kCentralized,  // one arbiter serializes every allocate/release
  kDistributed,  // one arbiter per cluster of cores
};

const char* arbitration_name(ArbitrationStrategy s);

struct GangRequest {
  ParallelApp app;
  TimePs arrival = 0;
  /// Static performance contract (ISSUE 7, optional): a deadline and a
  /// conservative makespan bound (e.g. maps::static_makespan_bound).
  /// When both are nonzero and the bound plus one arbitration pass
  /// exceeds the deadline, the request is rejected at admission — the
  /// app provably cannot meet its deadline even granted instantly, so
  /// it never occupies the FIFO. Zero means no contract (admit always).
  DurationPs deadline = 0;
  DurationPs makespan_bound = 0;
};

struct GangResult {
  struct PerApp {
    TimePs arrival = 0;
    TimePs start = 0;       // allocation granted (after arbitration)
    TimePs finish = 0;
    std::size_t cores = 0;  // gang size granted
    bool admitted = true;   // false = statically-infeasible, never ran
  };
  std::vector<PerApp> apps;
  std::uint64_t rejected_infeasible = 0;  // static-contract rejections
  /// Shared run-metrics shape (makespan, pool utilization); the gang
  /// counters below ride along as named extras when exported.
  RunMetrics metrics;
  DurationPs arbitration_wait = 0;  // total time requests waited on arbiters
  std::uint64_t operations = 0;     // allocate + release operations

  [[nodiscard]] TimePs makespan() const { return metrics.makespan; }
  [[nodiscard]] double mean_response_us() const;
  [[nodiscard]] double throughput_apps_per_ms() const;

  /// The metrics plus gang extras, ready for harness export.
  [[nodiscard]] RunMetrics to_metrics() const;
};

struct GangConfig {
  std::size_t total_cores = 16;
  HertzT core_frequency = mhz(400);
  ArbitrationStrategy strategy = ArbitrationStrategy::kDistributed;
  std::size_t arbiters = 4;             // used when distributed
  DurationPs arbitration_latency = microseconds(5);
  double serial_boost = 1.0;            // DVFS boost for serial phases
};

/// Run all requests to completion (FIFO admission, no backfill — both
/// strategies are handicapped identically, isolating arbitration cost).
/// Gangs are moldable: an app receives min(max_cores, free) cores at grant
/// time, but never fewer than min_cores.
GangResult run_gang_schedule(const GangConfig& cfg,
                             std::vector<GangRequest> requests);

}  // namespace rw::sched
