#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace rw::sched {

const char* criticality_name(Criticality c) {
  switch (c) {
    case Criticality::kHard: return "hard";
    case Criticality::kSoft: return "soft";
    case Criticality::kBestEffort: return "best-effort";
  }
  return "?";
}

double rm_utilization_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool rm_bound_test(const TaskSet& ts) {
  return ts.total_utilization() <= rm_utilization_bound(ts.tasks.size());
}

namespace {

void assign_priorities_by(TaskSet& ts,
                          DurationPs (*key)(const RtTask&)) {
  std::vector<std::size_t> order(ts.tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key(ts.tasks[a]) < key(ts.tasks[b]);
                   });
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    ts.tasks[order[rank]].fixed_priority = static_cast<int>(rank);
}

}  // namespace

void assign_rm_priorities(TaskSet& ts) {
  assign_priorities_by(ts, [](const RtTask& t) { return t.period; });
}

void assign_dm_priorities(TaskSet& ts) {
  assign_priorities_by(
      ts, [](const RtTask& t) { return t.effective_deadline(); });
}

bool ResponseTimes::all_schedulable(const TaskSet& ts) const {
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    if (!per_task[i].has_value()) return false;
    if (*per_task[i] > ts.tasks[i].effective_deadline()) return false;
  }
  return true;
}

ResponseTimes response_time_analysis(const TaskSet& ts,
                                     Cycles switch_overhead) {
  ResponseTimes out;
  out.per_task.resize(ts.tasks.size());

  const HertzT f = ts.frequency;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const RtTask& ti = ts.tasks[i];
    // Each job of a higher-priority task costs its WCET plus two context
    // switches (preempt in, switch back).
    const DurationPs ci =
        cycles_to_ps(ti.wcet + 2 * switch_overhead, f);
    DurationPs r = ci;
    bool converged = false;
    // Iterate R = C_i + sum_hp ceil(R/T_j) * C_j to fixpoint.
    for (int iter = 0; iter < 1000; ++iter) {
      DurationPs interference = 0;
      for (std::size_t j = 0; j < ts.tasks.size(); ++j) {
        if (j == i) continue;
        const RtTask& tj = ts.tasks[j];
        if (tj.fixed_priority >= ti.fixed_priority) continue;
        if (tj.period == 0) continue;
        const DurationPs cj =
            cycles_to_ps(tj.wcet + 2 * switch_overhead, f);
        const DurationPs releases = (r + tj.period - 1) / tj.period;
        interference += releases * cj;
      }
      const DurationPs next = ci + interference;
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > ti.effective_deadline()) break;  // already missed
    }
    if (converged && r <= ti.effective_deadline()) {
      out.per_task[i] = r;
    } else {
      out.per_task[i] = std::nullopt;
    }
  }
  return out;
}

bool edf_utilization_test(const TaskSet& ts) {
  for (const auto& t : ts.tasks)
    if (t.effective_deadline() < t.period) return false;  // not implicit
  return ts.total_utilization() <= 1.0 + 1e-12;
}

DurationPs hyperperiod(const TaskSet& ts) {
  DurationPs h = 1;
  for (const auto& t : ts.tasks) {
    if (t.period == 0) continue;
    const DurationPs g = std::gcd(h, t.period);
    const DurationPs mult = t.period / g;
    if (h > 1'000'000'000'000'000'000ULL / mult)
      return 1'000'000'000'000'000'000ULL;  // saturate
    h *= mult;
  }
  return h;
}

bool edf_demand_test(const TaskSet& ts) {
  const double u = ts.total_utilization();
  if (u > 1.0 + 1e-12) return false;

  const HertzT f = ts.frequency;
  // Testing interval: min(hyperperiod, busy-period bound L_a). For u < 1,
  // demand can only exceed supply before
  //   L = max_i(T_i - D_i) * U / (1 - U).
  DurationPs limit = hyperperiod(ts);
  if (u < 1.0 - 1e-9) {
    double la = 0;
    for (const auto& t : ts.tasks) {
      const double slack = static_cast<double>(t.period) -
                           static_cast<double>(t.effective_deadline());
      la = std::max(la, slack);
    }
    la = la * u / (1.0 - u);
    limit = std::min<DurationPs>(limit,
                                 static_cast<DurationPs>(la) + 1);
  }

  // Collect absolute deadlines up to the limit.
  std::set<DurationPs> checkpoints;
  for (const auto& t : ts.tasks) {
    if (t.period == 0) continue;
    for (DurationPs d = t.effective_deadline(); d <= limit; d += t.period) {
      checkpoints.insert(d);
      if (checkpoints.size() > 100000) break;  // guard pathological sets
    }
  }

  for (const DurationPs t : checkpoints) {
    // Demand bound function h(t) = sum_i max(0, floor((t - D_i)/T_i) + 1)*C_i.
    DurationPs demand = 0;
    for (const auto& task : ts.tasks) {
      if (task.period == 0) continue;
      const DurationPs d = task.effective_deadline();
      if (t < d) continue;
      const DurationPs jobs = (t - d) / task.period + 1;
      demand += jobs * cycles_to_ps(task.wcet, f);
    }
    if (demand > t) return false;
  }
  return true;
}

std::optional<HertzT> min_feasible_frequency(const TaskSet& ts, HertzT lo,
                                             HertzT hi,
                                             Cycles switch_overhead) {
  auto feasible_at = [&](HertzT f) {
    TaskSet copy = ts;
    copy.frequency = f;
    return response_time_analysis(copy, switch_overhead)
        .all_schedulable(copy);
  };
  if (!feasible_at(hi)) return std::nullopt;
  while (lo < hi) {
    const HertzT mid = lo + (hi - lo) / 2;
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace rw::sched
