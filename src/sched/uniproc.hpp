// Preemptive uniprocessor scheduler simulation.
//
// The executable counterpart of analysis.hpp: run a task set under a
// policy and observe response times, deadline misses and context-switch
// counts. Tests cross-validate the two (an analysis-accepted set must not
// miss in simulation — the soundness property), and the OSIP experiment
// (Sec. IV) sweeps the switch-overhead parameter that separates a RISC
// software scheduler from a dispatch ASIP.
#pragma once

#include <functional>
#include <vector>

#include "sched/task.hpp"

namespace rw::sched {

enum class Policy : std::uint8_t {
  kFixedPriority,      // use RtTask::fixed_priority as-is
  kRateMonotonic,      // assign RM priorities, then fixed-priority
  kDeadlineMonotonic,  // assign DM priorities, then fixed-priority
  kEdf,                // earliest absolute deadline first
  kRoundRobin,         // FIFO with quantum, no priorities
};

const char* policy_name(Policy p);

/// Per-job actual execution time hook: returns the cycles a given release
/// really needs (default: WCET). Used for jitter and overrun injection.
using AcetFn = std::function<Cycles(const RtTask&, std::uint64_t job_index)>;

struct UniprocResult {
  struct PerTask {
    std::uint64_t released = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_misses = 0;
    DurationPs worst_response = 0;
    double mean_response = 0;  // ps
  };
  std::vector<PerTask> tasks;
  std::uint64_t preemptions = 0;
  std::uint64_t context_switches = 0;
  DurationPs busy_time = 0;
  DurationPs horizon = 0;

  [[nodiscard]] std::uint64_t total_misses() const {
    std::uint64_t n = 0;
    for (const auto& t : tasks) n += t.deadline_misses;
    return n;
  }
  [[nodiscard]] double utilization() const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(busy_time) /
                              static_cast<double>(horizon);
  }
};

struct UniprocConfig {
  Policy policy = Policy::kRateMonotonic;
  Cycles switch_overhead = 0;        // cycles per context switch
  DurationPs rr_quantum = microseconds(100);
};

/// Simulate `ts` on one core at ts.frequency for `horizon` picoseconds.
/// `acet` overrides per-job execution demand (may exceed WCET to model
/// overruns). Deterministic.
UniprocResult simulate_uniproc(const TaskSet& ts, DurationPs horizon,
                               const UniprocConfig& cfg = {},
                               const AcetFn& acet = {});

}  // namespace rw::sched
