// Partitioned multiprocessor real-time scheduling.
//
// The complement to hybrid.hpp's space-sharing: when the workload is many
// *sequential* RT tasks (not malleable parallel apps), the classic answer
// is to partition tasks onto cores with bin packing and analyse each core
// with the uniprocessor tests. Sec. II's "strict core and process data
// locality" is exactly the property partitioned scheduling preserves —
// no task ever migrates, so every task's state stays in its core's local
// memory.
#pragma once

#include <optional>
#include <vector>

#include "sched/analysis.hpp"
#include "sched/task.hpp"

namespace rw::sched {

enum class PackingHeuristic : std::uint8_t {
  kFirstFit,            // first core that passes the test
  kBestFit,             // feasible core with highest resulting utilization
  kWorstFit,            // feasible core with lowest utilization (balance)
  kFirstFitDecreasing,  // sort by utilization first, then first-fit
};

const char* packing_name(PackingHeuristic h);

/// Admission test applied per core.
enum class PerCoreTest : std::uint8_t {
  kResponseTime,  // exact RTA under DM priorities
  kEdfDensity,    // EDF demand/utilization test
};

struct PartitionedResult {
  bool feasible = false;               // all tasks placed
  std::vector<int> task_to_core;       // -1 = unplaced
  std::vector<TaskSet> per_core;       // resulting task sets
  std::size_t cores_used = 0;
  double max_core_utilization = 0;
  std::vector<std::size_t> unplaced;   // indices of rejected tasks
};

/// Partition `tasks` (analysed at `frequency`) onto `cores` cores.
PartitionedResult partition_tasks(const std::vector<RtTask>& tasks,
                                  std::size_t cores, HertzT frequency,
                                  PackingHeuristic heuristic,
                                  PerCoreTest test = PerCoreTest::kEdfDensity,
                                  Cycles switch_overhead = 0);

/// Smallest core count for which partitioning succeeds (provisioning),
/// searching up to `max_cores`; nullopt when even that fails.
std::optional<std::size_t> min_cores_needed(
    const std::vector<RtTask>& tasks, HertzT frequency,
    PackingHeuristic heuristic, std::size_t max_cores = 128,
    PerCoreTest test = PerCoreTest::kEdfDensity);

/// Graceful degradation after a core death (rw::fault): re-home only the
/// dead core's tasks onto the survivors (worst-fit, to balance the added
/// load), leaving every surviving placement untouched — partitioned
/// scheduling's no-migration property for the tasks that didn't fault.
/// Each move is re-admitted with the same per-core test, so `feasible`
/// means the degraded system still meets every deadline guarantee.
struct RepartitionResult {
  bool feasible = false;             // every displaced task found a home
  std::size_t moved = 0;             // displaced tasks successfully re-homed
  std::vector<std::size_t> unplaced; // displaced tasks no survivor admits
  PartitionedResult after;           // dead core's set left empty
};

RepartitionResult repartition_on_failure(
    const std::vector<RtTask>& tasks, const PartitionedResult& before,
    std::size_t dead_core, HertzT frequency,
    PerCoreTest test = PerCoreTest::kEdfDensity, Cycles switch_overhead = 0);

}  // namespace rw::sched
