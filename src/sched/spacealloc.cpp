#include "sched/spacealloc.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <stdexcept>

namespace rw::sched {

SpaceAllocator::SpaceAllocator(std::size_t capacity, std::size_t base)
    : base_(base), free_count_(capacity), free_(capacity, true) {}

std::vector<std::size_t> SpaceAllocator::allocate(std::size_t min_cores,
                                                  std::size_t max_cores) {
  if (min_cores == 0 || min_cores > max_cores || min_cores > free_count_)
    return {};
  const std::size_t want = std::min(max_cores, free_count_);
  std::vector<std::size_t> granted;
  granted.reserve(want);
  for (std::size_t i = 0; i < free_.size() && granted.size() < want; ++i) {
    if (!free_[i]) continue;
    free_[i] = false;
    granted.push_back(base_ + i);
  }
  free_count_ -= granted.size();
  return granted;
}

std::vector<std::size_t> SpaceAllocator::allocate_preferred(
    std::size_t min_cores, std::size_t max_cores,
    const std::vector<std::size_t>& preferred) {
  if (min_cores == 0 || min_cores > max_cores || min_cores > free_count_)
    return {};
  const std::size_t want = std::min(max_cores, free_count_);
  std::vector<std::size_t> granted;
  granted.reserve(want);
  for (const std::size_t p : preferred) {
    if (granted.size() >= want) break;
    if (p < base_ || p - base_ >= free_.size()) continue;  // foreign: skip
    if (!free_[p - base_]) continue;
    free_[p - base_] = false;
    granted.push_back(p);
  }
  for (std::size_t i = 0; i < free_.size() && granted.size() < want; ++i) {
    if (!free_[i]) continue;
    free_[i] = false;
    granted.push_back(base_ + i);
  }
  free_count_ -= granted.size();
  std::sort(granted.begin(), granted.end());
  return granted;
}

void SpaceAllocator::release(const std::vector<std::size_t>& cores) {
  for (const std::size_t c : cores) {
    assert(c >= base_ && c - base_ < free_.size() && "foreign core index");
    assert(!free_[c - base_] && "double release");
    free_[c - base_] = true;
  }
  free_count_ += cores.size();
}

const char* arbitration_name(ArbitrationStrategy s) {
  switch (s) {
    case ArbitrationStrategy::kCentralized: return "centralized";
    case ArbitrationStrategy::kDistributed: return "distributed";
  }
  return "?";
}

double GangResult::mean_response_us() const {
  double sum = 0;
  std::size_t ran = 0;
  for (const auto& a : apps) {
    if (!a.admitted) continue;  // rejected apps never ran
    sum += static_cast<double>(a.finish - a.arrival);
    ++ran;
  }
  if (ran == 0) return 0.0;
  return sum / static_cast<double>(ran) / 1e6;
}

double GangResult::throughput_apps_per_ms() const {
  if (metrics.makespan == 0) return 0.0;
  std::size_t ran = 0;
  for (const auto& a : apps)
    if (a.admitted) ++ran;
  return static_cast<double>(ran) /
         (static_cast<double>(metrics.makespan) / 1e9);
}

RunMetrics GangResult::to_metrics() const {
  RunMetrics m = metrics;
  m.set_extra("arbitration_wait_ps", static_cast<double>(arbitration_wait));
  m.set_extra("operations", static_cast<double>(operations));
  m.set_extra("rejected_infeasible",
              static_cast<double>(rejected_infeasible));
  return m;
}

GangResult run_gang_schedule(const GangConfig& cfg,
                             std::vector<GangRequest> requests) {
  if (cfg.total_cores == 0)
    throw std::invalid_argument("gang pool needs cores");
  const std::size_t num_arbiters =
      cfg.strategy == ArbitrationStrategy::kCentralized
          ? 1
          : std::max<std::size_t>(1, cfg.arbiters);

  for (const auto& r : requests)
    if (r.app.min_cores > cfg.total_cores)
      throw std::invalid_argument("app '" + r.app.name +
                                  "' needs more cores than the pool has");

  GangResult res;
  res.apps.resize(requests.size());

  // Event queue over arrivals and completions.
  struct Event {
    TimePs time;
    bool is_completion;
    std::size_t idx;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      // Completions before arrivals at the same instant frees cores first.
      if (is_completion != o.is_completion) return !is_completion;
      return idx > o.idx;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    res.apps[i].arrival = requests[i].arrival;
    // Static admission: a request carrying a performance contract its
    // bound cannot satisfy is rejected outright — it would miss its
    // deadline even granted the whole pool instantly.
    if (requests[i].deadline > 0 && requests[i].makespan_bound > 0 &&
        requests[i].makespan_bound + cfg.arbitration_latency >
            requests[i].deadline) {
      res.apps[i].admitted = false;
      ++res.rejected_infeasible;
      continue;
    }
    events.push(Event{requests[i].arrival, false, i});
  }

  SpaceAllocator alloc(cfg.total_cores);
  std::vector<std::vector<std::size_t>> granted_cores(requests.size());
  std::deque<std::size_t> pending;  // FIFO admission
  std::vector<TimePs> arbiter_free(num_arbiters, 0);

  auto arbitrate = [&](std::size_t idx, TimePs now) -> TimePs {
    // Each allocate/release passes through the arbiter owning this app.
    const std::size_t a = idx % num_arbiters;
    const TimePs start = std::max(now, arbiter_free[a]);
    res.arbitration_wait += start - now;
    arbiter_free[a] = start + cfg.arbitration_latency;
    ++res.operations;
    return arbiter_free[a];
  };

  auto try_allocate = [&](TimePs now) {
    while (!pending.empty()) {
      const std::size_t idx = pending.front();
      const ParallelApp& app = requests[idx].app;
      const std::size_t want = std::min(app.max_cores, alloc.available());
      if (want < app.min_cores || want == 0) break;  // head-of-line waits
      pending.pop_front();
      granted_cores[idx] = alloc.allocate(app.min_cores, app.max_cores);

      const TimePs granted = arbitrate(idx, now);
      const double span = app.span_cycles(want, cfg.serial_boost);
      const DurationPs dur = cycles_to_ps(
          static_cast<Cycles>(span + 0.5), cfg.core_frequency);
      res.apps[idx].start = granted;
      res.apps[idx].cores = want;
      res.apps[idx].finish = granted + dur;
      events.push(Event{granted + dur, true, idx});
    }
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.is_completion) {
      // Release also passes through the arbiter; cores are free once the
      // release operation completes.
      const TimePs released = arbitrate(ev.idx, ev.time);
      alloc.release(granted_cores[ev.idx]);
      granted_cores[ev.idx].clear();
      res.metrics.makespan = std::max(res.metrics.makespan, ev.time);
      try_allocate(released);
    } else {
      pending.push_back(ev.idx);
      try_allocate(ev.time);
    }
  }

  // Pool utilization: granted core-time over pool capacity for the run.
  if (res.metrics.makespan > 0) {
    double busy = 0;
    for (const auto& a : res.apps)
      busy += static_cast<double>(a.cores) *
              static_cast<double>(a.finish - a.start);
    res.metrics.mean_core_utilization =
        busy / (static_cast<double>(cfg.total_cores) *
                static_cast<double>(res.metrics.makespan));
  }
  return res;
}

}  // namespace rw::sched
