// Schedulability analyses for time-shared cores.
//
// Sec. II demands a "predictable approach ... that can meet application
// dead-line requirements". Predictability means design-time tests; this
// header implements the standard ones so the hybrid scheduler can do
// admission control instead of hoping:
//   - Liu & Layland utilization bound for rate-monotonic scheduling,
//   - exact response-time analysis for fixed-priority preemptive
//     scheduling (Joseph & Pandya iteration), with context-switch overhead,
//   - EDF utilization test (implicit deadlines) and the processor-demand
//     criterion for constrained deadlines.
#pragma once

#include <optional>
#include <vector>

#include "sched/task.hpp"

namespace rw::sched {

/// Liu–Layland bound: n tasks are RM-schedulable if U <= n(2^(1/n) - 1).
/// Sufficient, not necessary.
double rm_utilization_bound(std::size_t n);

/// True when the task set passes the Liu–Layland test at its frequency.
bool rm_bound_test(const TaskSet& ts);

/// Assign rate-monotonic priorities in place (shorter period = higher
/// priority = smaller fixed_priority value). Ties broken by task order.
void assign_rm_priorities(TaskSet& ts);

/// Assign deadline-monotonic priorities in place.
void assign_dm_priorities(TaskSet& ts);

/// Exact worst-case response time of every task under fixed-priority
/// preemptive scheduling, including `switch_overhead` cycles charged twice
/// per preempting job (in and out). Returns nullopt for a task whose
/// iteration exceeds its deadline (unschedulable).
struct ResponseTimes {
  std::vector<std::optional<DurationPs>> per_task;  // indexed like ts.tasks
  [[nodiscard]] bool all_schedulable(const TaskSet& ts) const;
};
ResponseTimes response_time_analysis(const TaskSet& ts,
                                     Cycles switch_overhead = 0);

/// EDF schedulability for implicit deadlines: U <= 1.
bool edf_utilization_test(const TaskSet& ts);

/// Processor-demand criterion for EDF with constrained deadlines
/// (deadline <= period): checks h(t) <= t at every absolute deadline in
/// the testing interval (bounded by the hyperperiod or the busy-period
/// bound, whichever is smaller).
bool edf_demand_test(const TaskSet& ts);

/// Least common multiple of all task periods (saturates at ~1e18 ps).
DurationPs hyperperiod(const TaskSet& ts);

/// Minimum uniform frequency at which the set passes response-time
/// analysis, found by binary search over [lo, hi]; nullopt if even `hi`
/// fails. This is the knob the DVFS governor turns (Sec. II-B).
std::optional<HertzT> min_feasible_frequency(const TaskSet& ts, HertzT lo,
                                             HertzT hi,
                                             Cycles switch_overhead = 0);

}  // namespace rw::sched
