#include "sched/partitioned.hpp"

#include <algorithm>
#include <numeric>

namespace rw::sched {

const char* packing_name(PackingHeuristic h) {
  switch (h) {
    case PackingHeuristic::kFirstFit: return "first-fit";
    case PackingHeuristic::kBestFit: return "best-fit";
    case PackingHeuristic::kWorstFit: return "worst-fit";
    case PackingHeuristic::kFirstFitDecreasing: return "first-fit-decr";
  }
  return "?";
}

namespace {

bool core_feasible(TaskSet& ts, PerCoreTest test, Cycles overhead) {
  switch (test) {
    case PerCoreTest::kResponseTime: {
      assign_dm_priorities(ts);
      return response_time_analysis(ts, overhead).all_schedulable(ts);
    }
    case PerCoreTest::kEdfDensity: {
      // Constrained deadlines use the demand test, implicit the bound.
      bool implicit = true;
      for (const auto& t : ts.tasks)
        if (t.effective_deadline() < t.period) implicit = false;
      return implicit ? edf_utilization_test(ts) : edf_demand_test(ts);
    }
  }
  return false;
}

}  // namespace

PartitionedResult partition_tasks(const std::vector<RtTask>& tasks,
                                  std::size_t cores, HertzT frequency,
                                  PackingHeuristic heuristic,
                                  PerCoreTest test,
                                  Cycles switch_overhead) {
  PartitionedResult res;
  res.task_to_core.assign(tasks.size(), -1);
  res.per_core.assign(std::max<std::size_t>(cores, 1), TaskSet{});
  for (auto& ts : res.per_core) ts.frequency = frequency;

  // Placement order.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  if (heuristic == PackingHeuristic::kFirstFitDecreasing) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks[a].utilization(frequency) >
                              tasks[b].utilization(frequency);
                     });
  }

  auto try_place = [&](std::size_t task_idx, std::size_t core) {
    TaskSet trial = res.per_core[core];
    const RtTask& t = tasks[task_idx];
    trial.add(t.name, t.wcet, t.period, t.deadline, t.criticality);
    if (!core_feasible(trial, test, switch_overhead)) return false;
    res.per_core[core] = std::move(trial);
    res.task_to_core[task_idx] = static_cast<int>(core);
    return true;
  };

  for (const std::size_t idx : order) {
    std::optional<std::size_t> chosen;
    switch (heuristic) {
      case PackingHeuristic::kFirstFit:
      case PackingHeuristic::kFirstFitDecreasing: {
        for (std::size_t c = 0; c < cores; ++c) {
          TaskSet trial = res.per_core[c];
          const RtTask& t = tasks[idx];
          trial.add(t.name, t.wcet, t.period, t.deadline, t.criticality);
          if (core_feasible(trial, test, switch_overhead)) {
            chosen = c;
            break;
          }
        }
        break;
      }
      case PackingHeuristic::kBestFit:
      case PackingHeuristic::kWorstFit: {
        double best_u = heuristic == PackingHeuristic::kBestFit ? -1.0 : 2.0;
        for (std::size_t c = 0; c < cores; ++c) {
          TaskSet trial = res.per_core[c];
          const RtTask& t = tasks[idx];
          trial.add(t.name, t.wcet, t.period, t.deadline, t.criticality);
          if (!core_feasible(trial, test, switch_overhead)) continue;
          const double u = res.per_core[c].total_utilization();
          const bool better = heuristic == PackingHeuristic::kBestFit
                                  ? u > best_u
                                  : u < best_u;
          if (better) {
            best_u = u;
            chosen = c;
          }
        }
        break;
      }
    }
    if (chosen.has_value()) {
      try_place(idx, *chosen);
    } else {
      res.unplaced.push_back(idx);
    }
  }

  res.feasible = res.unplaced.empty();
  for (std::size_t c = 0; c < cores; ++c) {
    if (!res.per_core[c].tasks.empty()) res.cores_used = c + 1;
    res.max_core_utilization = std::max(
        res.max_core_utilization, res.per_core[c].total_utilization());
  }
  return res;
}

RepartitionResult repartition_on_failure(const std::vector<RtTask>& tasks,
                                         const PartitionedResult& before,
                                         std::size_t dead_core,
                                         HertzT frequency, PerCoreTest test,
                                         Cycles switch_overhead) {
  RepartitionResult res;
  res.after = before;
  if (dead_core >= res.after.per_core.size()) {
    res.feasible = before.feasible;
    return res;  // no such core: nothing displaced
  }

  // Displaced tasks, in their original declaration order (deterministic).
  std::vector<std::size_t> displaced;
  for (std::size_t i = 0; i < before.task_to_core.size(); ++i)
    if (before.task_to_core[i] == static_cast<int>(dead_core))
      displaced.push_back(i);
  res.after.per_core[dead_core] = TaskSet{};
  res.after.per_core[dead_core].frequency = frequency;

  for (const std::size_t idx : displaced) {
    res.after.task_to_core[idx] = -1;
    // Worst-fit over the survivors: lowest-utilization core that still
    // admits the task under the per-core test.
    std::optional<std::size_t> chosen;
    double chosen_u = 2.0;
    for (std::size_t c = 0; c < res.after.per_core.size(); ++c) {
      if (c == dead_core) continue;
      TaskSet trial = res.after.per_core[c];
      const RtTask& t = tasks[idx];
      trial.add(t.name, t.wcet, t.period, t.deadline, t.criticality);
      if (!core_feasible(trial, test, switch_overhead)) continue;
      const double u = res.after.per_core[c].total_utilization();
      if (u < chosen_u) {
        chosen_u = u;
        chosen = c;
      }
    }
    if (!chosen.has_value()) {
      res.unplaced.push_back(idx);
      continue;
    }
    const RtTask& t = tasks[idx];
    res.after.per_core[*chosen].add(t.name, t.wcet, t.period, t.deadline,
                                    t.criticality);
    res.after.task_to_core[idx] = static_cast<int>(*chosen);
    ++res.moved;
  }

  res.feasible = res.unplaced.empty();
  res.after.unplaced = res.unplaced;
  res.after.feasible = res.feasible && before.feasible;
  res.after.cores_used = 0;
  res.after.max_core_utilization = 0;
  for (std::size_t c = 0; c < res.after.per_core.size(); ++c) {
    if (!res.after.per_core[c].tasks.empty()) res.after.cores_used = c + 1;
    res.after.max_core_utilization =
        std::max(res.after.max_core_utilization,
                 res.after.per_core[c].total_utilization());
  }
  return res;
}

std::optional<std::size_t> min_cores_needed(
    const std::vector<RtTask>& tasks, HertzT frequency,
    PackingHeuristic heuristic, std::size_t max_cores, PerCoreTest test) {
  for (std::size_t n = 1; n <= max_cores; ++n) {
    if (partition_tasks(tasks, n, frequency, heuristic, test).feasible)
      return n;
  }
  return std::nullopt;
}

}  // namespace rw::sched
