// DVFS governor for time-shared cores.
//
// Sec. II-A: "the frequency at which each core executes shall be
// modifiable at a fine-grain level during program execution and according
// to the needs of the executing application(s)". Two policies are
// provided: an analysis-driven governor that picks the lowest frequency
// passing response-time analysis (predictable, for hard-RT cores), and a
// reactive step governor that boosts under load and relaxes when idle
// (for best-effort cores).
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "sched/task.hpp"

namespace rw::sched {

/// Discrete operating points, ascending.
struct FrequencyLadder {
  std::vector<HertzT> levels;

  [[nodiscard]] HertzT lowest() const { return levels.front(); }
  [[nodiscard]] HertzT highest() const { return levels.back(); }
  /// Smallest level >= f, or highest if none.
  [[nodiscard]] HertzT ceil_level(HertzT f) const;
  /// Next level up/down from f (clamped).
  [[nodiscard]] HertzT step_up(HertzT f) const;
  [[nodiscard]] HertzT step_down(HertzT f) const;

  static FrequencyLadder typical();  // 200/400/600/800/1000/1600/2000 MHz
};

/// Analysis-driven choice: the lowest ladder level at which `ts` passes
/// response-time analysis. Returns nullopt when even the highest fails
/// (the set must be rejected, not run hopefully).
std::optional<HertzT> governor_pick_frequency(const TaskSet& ts,
                                              const FrequencyLadder& ladder,
                                              Cycles switch_overhead = 0);

/// Reactive utilization governor: classic step-up/step-down hysteresis.
/// Feed it utilization observations; it answers with the level to run at.
class ReactiveGovernor {
 public:
  ReactiveGovernor(FrequencyLadder ladder, double up_threshold = 0.85,
                   double down_threshold = 0.30);

  /// Observe utilization over the last window; returns the new frequency.
  HertzT observe(double utilization);

  /// Observe a window measured in PMU terms — busy time within a window of
  /// simulated time (the shape a perf::Epoch delta provides). A zero-width
  /// window is a no-observation: the frequency is left unchanged.
  HertzT observe_window(DurationPs busy_ps, DurationPs window_ps);

  [[nodiscard]] HertzT current() const { return current_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  FrequencyLadder ladder_;
  double up_threshold_;
  double down_threshold_;
  HertzT current_;
  std::uint64_t transitions_ = 0;
};

/// Energy model: dynamic power ~ f * V^2 with V ~ f gives energy per cycle
/// ~ f^2 (normalized). Used by benches to report the boost/energy tradeoff.
double relative_energy_per_cycle(HertzT f, HertzT nominal);

}  // namespace rw::sched
