#include "sched/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rw::sched {

HybridScheduler::HybridScheduler(HybridConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.time_shared_cores == 0 && cfg_.pool_cores == 0)
    throw std::invalid_argument("hybrid scheduler needs cores");
  rt_cores_.resize(cfg_.time_shared_cores);
  rt_freqs_.assign(cfg_.time_shared_cores, cfg_.ladder.lowest());
  for (auto& ts : rt_cores_) ts.frequency = cfg_.ladder.lowest();
}

Admission HybridScheduler::admit_rt(const TaskSet& ts) {
  Admission adm;
  for (std::size_t c = 0; c < rt_cores_.size(); ++c) {
    // Tentatively merge onto core c and find the lowest feasible level.
    TaskSet merged = rt_cores_[c];
    for (const auto& t : ts.tasks) {
      merged.add(t.name, t.wcet, t.period, t.deadline, t.criticality);
    }
    // Deadline-monotonic is optimal among fixed-priority assignments for
    // constrained deadlines; analyse under it.
    assign_dm_priorities(merged);
    const auto freq =
        governor_pick_frequency(merged, cfg_.ladder, cfg_.switch_overhead);
    if (freq.has_value()) {
      merged.frequency = *freq;
      rt_cores_[c] = std::move(merged);
      rt_freqs_[c] = *freq;
      adm.admitted = true;
      adm.core = c;
      adm.frequency = *freq;
      return adm;
    }
  }
  adm.reason = "no time-shared core passes response-time analysis, even at " +
               format_hz(cfg_.ladder.highest());
  return adm;
}

HybridResult HybridScheduler::run_pool(
    std::vector<GangArrival> arrivals) const {
  // Process arrivals in time order; all bookkeeping below indexes the
  // sorted order.
  std::sort(arrivals.begin(), arrivals.end(),
            [](const GangArrival& a, const GangArrival& b) {
              return a.arrival < b.arrival;
            });

  HybridResult res;
  res.pool_apps.resize(arrivals.size());

  struct AppState {
    bool arrived = false;
    bool done = false;
    bool in_serial = true;
    double serial_left = 0;    // cycles
    double parallel_left = 0;  // cycles
    double share = 0;          // cores currently held
    double core_time = 0;      // integral of share over time (ps*cores)
  };
  std::vector<AppState> st(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& app = arrivals[i].app;
    st[i].serial_left =
        static_cast<double>(app.total_work) * app.serial_fraction;
    st[i].parallel_left =
        static_cast<double>(app.total_work) - st[i].serial_left;
    res.pool_apps[i].name = app.name;
    res.pool_apps[i].arrival = arrivals[i].arrival;
  }

  const double hz = static_cast<double>(cfg_.pool_frequency);
  const double pool = static_cast<double>(cfg_.pool_cores);
  if (pool <= 0) throw std::invalid_argument("pool has no cores");

  // Reactive equipartition: water-fill the pool among active apps.
  // Serial-phase apps are capped at one core (a serial region cannot use
  // more); parallel apps at their max_cores. When the pool is smaller than
  // the number of apps everyone gets an equal fractional share (processor
  // sharing), so no app ever starves.
  auto rebalance = [&](TimePs /*now*/) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < st.size(); ++i) {
      st[i].share = 0;
      if (st[i].arrived && !st[i].done) active.push_back(i);
    }
    if (active.empty()) return;
    auto cap_of = [&](std::size_t i) {
      if (st[i].in_serial) return 1.0;
      return static_cast<double>(
          std::min<std::size_t>(arrivals[i].app.max_cores, cfg_.pool_cores));
    };
    double left = pool;
    std::vector<std::size_t> unsat = active;
    while (!unsat.empty() && left > 1e-9) {
      const double fair = left / static_cast<double>(unsat.size());
      std::vector<std::size_t> still;
      double consumed = 0;
      for (const std::size_t i : unsat) {
        const double cap = cap_of(i);
        const double add = std::min(fair, cap - st[i].share);
        st[i].share += add;
        consumed += add;
        if (st[i].share < cap - 1e-9) still.push_back(i);
      }
      left -= consumed;
      if (still.size() == unsat.size()) break;  // nobody saturated: done
      unsat.swap(still);
    }
    ++res.reallocations;
  };

  // Event horizon walk: next event is an arrival or the earliest projected
  // phase completion under current shares.
  TimePs now = 0;
  std::size_t next_arrival = 0;
  std::size_t remaining_apps = arrivals.size();
  double used_core_time = 0;

  auto advance_to = [&](TimePs t) {
    const double dt_cycles =
        static_cast<double>(t - now) * hz / 1e12;  // cycles elapsed
    for (std::size_t i = 0; i < st.size(); ++i) {
      auto& s = st[i];
      if (!s.arrived || s.done || s.share <= 0) continue;
      const double dt_ps = static_cast<double>(t - now);
      s.core_time += s.share * dt_ps;
      used_core_time += s.share * dt_ps;
      if (s.in_serial) {
        s.serial_left -= dt_cycles * cfg_.serial_boost * s.share;
        if (s.serial_left <= 1e-6) {
          s.serial_left = 0;
          s.in_serial = false;
        }
      } else {
        s.parallel_left -= dt_cycles * s.share;
        if (s.parallel_left <= 1e-6) {
          s.parallel_left = 0;
          s.done = true;
          res.pool_apps[i].finish = t;
          res.pool_apps[i].mean_cores =
              s.core_time / std::max(1.0, static_cast<double>(
                                              t - res.pool_apps[i].arrival));
          --remaining_apps;
        }
      }
    }
    now = t;
  };

  auto next_phase_end = [&]() -> TimePs {
    double best = -1;
    for (const auto& s : st) {
      if (!s.arrived || s.done || s.share <= 0) continue;
      const double work = s.in_serial
                              ? s.serial_left / (cfg_.serial_boost * s.share)
                              : s.parallel_left / s.share;
      const double dt_ps = work / hz * 1e12;
      if (best < 0 || dt_ps < best) best = dt_ps;
    }
    if (best < 0) return 0;
    return now + static_cast<TimePs>(std::ceil(best)) + 1;
  };

  while (remaining_apps > 0) {
    // Admit any arrivals at the current time.
    bool admitted = false;
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival <= now) {
      // Map sorted arrival back to its original result slot by name-free
      // index: we resorted `arrivals`, so recompute the slot.
      st[next_arrival].arrived = true;  // indices follow the sorted order
      res.pool_apps[next_arrival].name = arrivals[next_arrival].app.name;
      res.pool_apps[next_arrival].arrival = arrivals[next_arrival].arrival;
      ++next_arrival;
      admitted = true;
    }
    if (admitted) rebalance(now);

    const bool any_active = [&] {
      for (const auto& s : st)
        if (s.arrived && !s.done) return true;
      return false;
    }();

    TimePs next_evt;
    if (!any_active) {
      if (next_arrival >= arrivals.size()) break;  // nothing left
      next_evt = arrivals[next_arrival].arrival;
    } else {
      next_evt = next_phase_end();
      if (next_arrival < arrivals.size())
        next_evt = std::min(next_evt, arrivals[next_arrival].arrival);
    }
    if (next_evt <= now) next_evt = now + 1;

    advance_to(next_evt);
    rebalance(now);
  }

  res.pool_makespan = now;
  if (now > 0)
    res.pool_utilization =
        used_core_time / (static_cast<double>(now) * pool);
  return res;
}

}  // namespace rw::sched
