// Real-time task model (Sec. II / Sec. III).
//
// Two kinds of computing demand, exactly as the paper frames them:
// sequential RT tasks that are time-shared on a core, and malleable
// parallel applications that want a gang of space-shared cores. The model
// carries everything the analyses need: WCET in cycles (frequency-
// independent, so DVFS experiments can rescale), period, relative deadline
// and criticality.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace rw::sched {

struct TaskTag {};
using TaskId = Id<TaskTag>;

/// Criticality classes: MAPS (Sec. IV) schedules hard-RT statically and
/// soft/best-effort dynamically; the hybrid scheduler uses the same split.
enum class Criticality : std::uint8_t { kHard, kSoft, kBestEffort };

const char* criticality_name(Criticality c);

/// Periodic (or sporadic, reading `period` as minimum inter-arrival)
/// sequential real-time task.
struct RtTask {
  TaskId id{};
  std::string name;
  Cycles wcet = 0;           // worst-case execution time, in cycles
  DurationPs period = 0;     // release period / min inter-arrival
  DurationPs deadline = 0;   // relative deadline; 0 means deadline==period
  int fixed_priority = 0;    // smaller value = higher priority
  Criticality criticality = Criticality::kHard;

  [[nodiscard]] DurationPs effective_deadline() const {
    return deadline == 0 ? period : deadline;
  }
  /// Utilization at frequency `f`.
  [[nodiscard]] double utilization(HertzT f) const {
    if (period == 0 || f == 0) return 0.0;
    return static_cast<double>(cycles_to_ps(wcet, f)) /
           static_cast<double>(period);
  }
};

/// One released instance of a task.
struct Job {
  TaskId task{};
  std::uint64_t index = 0;   // 0-based release count
  TimePs release = 0;
  TimePs abs_deadline = 0;
  Cycles remaining = 0;
  TimePs completion = 0;     // filled in when done
};

/// Malleable parallel application for the space-shared pool: it can run on
/// anything from `min_cores` to `max_cores`, with an Amdahl-style serial
/// fraction limiting its scaling (Sec. II-A).
struct ParallelApp {
  TaskId id{};
  std::string name;
  Cycles total_work = 0;      // cycles of the fully-parallel region + serial
  double serial_fraction = 0; // fraction of total_work that is sequential
  std::size_t min_cores = 1;
  std::size_t max_cores = SIZE_MAX;

  /// Execution time in cycles on `n` cores with per-core boost factor
  /// `boost` applied to the serial phase only (the Sec. II proposal:
  /// "boost the performance of individual cores ... for sequential code").
  [[nodiscard]] double span_cycles(std::size_t n, double serial_boost = 1.0) const {
    const double serial = static_cast<double>(total_work) * serial_fraction;
    const double parallel = static_cast<double>(total_work) - serial;
    const double nn = static_cast<double>(n == 0 ? 1 : n);
    return serial / serial_boost + parallel / nn;
  }

  /// Classic Amdahl speedup on `n` cores relative to 1 core, with optional
  /// serial-phase frequency boost.
  [[nodiscard]] double speedup(std::size_t n, double serial_boost = 1.0) const {
    return span_cycles(1, 1.0) / span_cycles(n, serial_boost);
  }
};

/// A task set plus the core frequency it is analysed against.
struct TaskSet {
  std::vector<RtTask> tasks;
  HertzT frequency = mhz(400);

  RtTask& add(std::string name, Cycles wcet, DurationPs period,
              DurationPs deadline = 0,
              Criticality crit = Criticality::kHard) {
    RtTask t;
    t.id = TaskId{static_cast<std::uint32_t>(tasks.size())};
    t.name = std::move(name);
    t.wcet = wcet;
    t.period = period;
    t.deadline = deadline;
    t.criticality = crit;
    tasks.push_back(t);
    return tasks.back();
  }

  [[nodiscard]] double total_utilization() const {
    double u = 0;
    for (const auto& t : tasks) u += t.utilization(frequency);
    return u;
  }
};

}  // namespace rw::sched
