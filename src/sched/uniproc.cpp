#include "sched/uniproc.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "sched/analysis.hpp"

namespace rw::sched {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFixedPriority: return "FP";
    case Policy::kRateMonotonic: return "RM";
    case Policy::kDeadlineMonotonic: return "DM";
    case Policy::kEdf: return "EDF";
    case Policy::kRoundRobin: return "RR";
  }
  return "?";
}

namespace {

constexpr TimePs kNever = std::numeric_limits<TimePs>::max();

struct ActiveJob {
  std::size_t task_index;
  std::uint64_t job_index;
  TimePs release;
  TimePs abs_deadline;
  DurationPs remaining;    // remaining execution, in ps at the core clock
  std::uint64_t fifo_seq;  // arrival order, for RR and tie-breaking
};

}  // namespace

UniprocResult simulate_uniproc(const TaskSet& ts, DurationPs horizon,
                               const UniprocConfig& cfg, const AcetFn& acet) {
  TaskSet set = ts;  // local copy so policy priority assignment is private
  switch (cfg.policy) {
    case Policy::kRateMonotonic: assign_rm_priorities(set); break;
    case Policy::kDeadlineMonotonic: assign_dm_priorities(set); break;
    default: break;
  }

  const HertzT f = set.frequency;
  const DurationPs overhead_ps = cycles_to_ps(cfg.switch_overhead, f);

  UniprocResult res;
  res.tasks.resize(set.tasks.size());
  res.horizon = horizon;

  std::vector<TimePs> next_release(set.tasks.size(), 0);
  std::vector<std::uint64_t> release_count(set.tasks.size(), 0);
  std::vector<double> response_sum(set.tasks.size(), 0.0);

  std::vector<ActiveJob> ready;
  std::uint64_t fifo_seq = 0;
  // Index of the job that last occupied the core; a dispatch of a
  // different job costs a context switch.
  std::int64_t last_on_core_task = -1;
  std::uint64_t last_on_core_job = UINT64_MAX;

  // Ordering predicate: true when a should run before b.
  auto higher = [&](const ActiveJob& a, const ActiveJob& b) {
    switch (cfg.policy) {
      case Policy::kEdf:
        if (a.abs_deadline != b.abs_deadline)
          return a.abs_deadline < b.abs_deadline;
        return a.fifo_seq < b.fifo_seq;
      case Policy::kRoundRobin:
        return a.fifo_seq < b.fifo_seq;
      default: {
        const int pa = set.tasks[a.task_index].fixed_priority;
        const int pb = set.tasks[b.task_index].fixed_priority;
        if (pa != pb) return pa < pb;
        return a.fifo_seq < b.fifo_seq;
      }
    }
  };

  auto release_due = [&](TimePs t) {
    for (std::size_t i = 0; i < set.tasks.size(); ++i) {
      const RtTask& task = set.tasks[i];
      if (task.period == 0) continue;
      while (next_release[i] <= t) {
        const TimePs rel = next_release[i];
        const std::uint64_t idx = release_count[i]++;
        const Cycles demand = acet ? acet(task, idx) : task.wcet;
        ready.push_back(ActiveJob{i, idx, rel,
                                  rel + task.effective_deadline(),
                                  cycles_to_ps(demand, f), fifo_seq++});
        ++res.tasks[i].released;
        next_release[i] = rel + task.period;
      }
    }
  };

  auto earliest_release = [&] {
    TimePs t = kNever;
    for (std::size_t i = 0; i < set.tasks.size(); ++i)
      if (set.tasks[i].period != 0) t = std::min(t, next_release[i]);
    return t;
  };

  auto complete = [&](const ActiveJob& job, TimePs t) {
    auto& pt = res.tasks[job.task_index];
    ++pt.completed;
    const DurationPs resp = t - job.release;
    pt.worst_response = std::max(pt.worst_response, resp);
    response_sum[job.task_index] += static_cast<double>(resp);
    if (t > job.abs_deadline) ++pt.deadline_misses;
  };

  TimePs t = 0;
  while (t < horizon) {
    release_due(t);

    if (ready.empty()) {
      const TimePs nr = earliest_release();
      if (nr == kNever || nr >= horizon) break;
      t = nr;
      continue;
    }

    // Dispatch the best ready job.
    auto best_it = std::min_element(ready.begin(), ready.end(), higher);
    ActiveJob job = *best_it;
    ready.erase(best_it);

    const bool switched = last_on_core_task !=
                              static_cast<std::int64_t>(job.task_index) ||
                          last_on_core_job != job.job_index;
    if (switched) {
      ++res.context_switches;
      if (overhead_ps > 0) {
        t += overhead_ps;
        res.busy_time += overhead_ps;
      }
      last_on_core_task = static_cast<std::int64_t>(job.task_index);
      last_on_core_job = job.job_index;
    }

    // The job runs until completion, the next release (which may preempt),
    // the RR quantum, or the horizon — whichever comes first.
    const TimePs completion = t + job.remaining;
    TimePs stop = std::min(completion, horizon);
    const TimePs nr = earliest_release();
    bool preemption_point = false;
    if (cfg.policy != Policy::kRoundRobin && nr < stop) {
      stop = nr;
      preemption_point = true;
    }
    bool quantum_expiry = false;
    if (cfg.policy == Policy::kRoundRobin &&
        t + cfg.rr_quantum < stop) {
      stop = t + cfg.rr_quantum;
      quantum_expiry = true;
    }

    const DurationPs ran = stop - t;
    res.busy_time += ran;
    job.remaining -= ran;
    t = stop;

    if (job.remaining == 0) {
      complete(job, t);
      continue;
    }
    if (t >= horizon) break;

    if (preemption_point) {
      // New arrivals land now; if one outranks the running job this is a
      // preemption, otherwise the job simply continues next iteration.
      release_due(t);
      bool outranked = false;
      for (const auto& other : ready)
        if (higher(other, job)) {
          outranked = true;
          break;
        }
      if (outranked) ++res.preemptions;
      ready.push_back(job);
      continue;
    }
    if (quantum_expiry) {
      job.fifo_seq = fifo_seq++;  // rotate to the back of the FIFO
      ready.push_back(job);
      continue;
    }
    ready.push_back(job);
  }

  // Jobs still unfinished whose deadline fell inside the horizon missed it.
  for (const auto& job : ready)
    if (job.abs_deadline <= horizon)
      ++res.tasks[job.task_index].deadline_misses;

  for (std::size_t i = 0; i < res.tasks.size(); ++i) {
    if (res.tasks[i].completed > 0)
      res.tasks[i].mean_response =
          response_sum[i] / static_cast<double>(res.tasks[i].completed);
  }
  return res;
}

}  // namespace rw::sched
