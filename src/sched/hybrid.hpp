// Hybrid time-shared / space-shared reactive scheduler.
//
// Sec. II-B: "there is a need for scheduling algorithms that can in a
// reactive way mitigate multiple requests for parallel computing resources
// as well [as] sequential computing resources ... In addition, especially
// for the purpose of real-time systems, a predictable approach shall be
// designed, that can meet application dead-line requirements. To the best
// of our knowledge, no such algorithm has been published yet."
//
// This is our candidate for that algorithm:
//   * The core set is split into time-shared cores (few, boostable) and a
//     space-shared pool (many, simple).
//   * Sequential hard-RT task sets are admitted onto time-shared cores by
//     first-fit over exact response-time analysis, with the analysis-driven
//     DVFS governor choosing the lowest feasible frequency — admission is
//     *predictable*: an accepted set provably meets deadlines.
//   * Parallel apps space-share the pool under reactive equipartition
//     (EQUI): on every arrival and completion the pool is re-divided
//     evenly among active apps (bounded by each app's min/max), so the
//     system reacts to demand without a clairvoyant schedule.
//   * Apps run their serial phase on one (boosted) core, then the parallel
//     phase at whatever share they currently hold (malleable).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/analysis.hpp"
#include "sched/dvfs.hpp"
#include "sched/task.hpp"

namespace rw::sched {

struct HybridConfig {
  std::size_t time_shared_cores = 2;
  std::size_t pool_cores = 14;
  FrequencyLadder ladder = FrequencyLadder::typical();
  HertzT pool_frequency = mhz(400);
  double serial_boost = 2.0;   // boost factor for serial phases in the pool
  Cycles switch_overhead = 200;
};

/// Result of hard-RT admission: which time-shared core, at what frequency.
struct Admission {
  bool admitted = false;
  std::size_t core = 0;
  HertzT frequency = 0;
  std::string reason;  // populated when rejected
};

struct PoolAppResult {
  std::string name;
  TimePs arrival = 0;
  TimePs finish = 0;
  double mean_cores = 0;  // time-averaged allocation
  [[nodiscard]] DurationPs response() const { return finish - arrival; }
};

struct HybridResult {
  std::vector<PoolAppResult> pool_apps;
  TimePs pool_makespan = 0;
  double pool_utilization = 0;  // core-time used / core-time available
  std::uint64_t reallocations = 0;  // reactive share changes
};

class HybridScheduler {
 public:
  explicit HybridScheduler(HybridConfig cfg);

  /// Predictable admission of a sequential hard-RT task set onto a
  /// time-shared core (first fit). On success the core's task set and
  /// frequency are updated; later admissions see the load.
  Admission admit_rt(const TaskSet& ts);

  /// Task sets currently admitted per time-shared core.
  [[nodiscard]] const std::vector<TaskSet>& rt_cores() const {
    return rt_cores_;
  }
  [[nodiscard]] const std::vector<HertzT>& rt_frequencies() const {
    return rt_freqs_;
  }

  struct GangArrival {
    ParallelApp app;
    TimePs arrival = 0;
  };

  /// Run a batch of parallel apps through the reactive EQUI pool.
  HybridResult run_pool(std::vector<GangArrival> arrivals) const;

  [[nodiscard]] const HybridConfig& config() const { return cfg_; }

 private:
  HybridConfig cfg_;
  std::vector<TaskSet> rt_cores_;   // one admitted set per TS core
  std::vector<HertzT> rt_freqs_;
};

}  // namespace rw::sched
