// Physical units used across the simulator.
//
// Simulation time is kept in integer picoseconds so that event ordering is
// exact and runs are bit-reproducible (a hard requirement for the vpdebug
// record/replay experiments, Sec. VII of the paper). Frequencies are kept in
// Hz; cycle counts are plain 64-bit integers.
#pragma once

#include <cstdint>
#include <string>

namespace rw {

/// Simulation time in picoseconds.
using TimePs = std::uint64_t;

/// Duration in picoseconds (same representation, separate alias for intent).
using DurationPs = std::uint64_t;

/// Processor cycles.
using Cycles = std::uint64_t;

/// Clock frequency in Hz.
using HertzT = std::uint64_t;

inline constexpr TimePs kPsPerSecond = 1'000'000'000'000ULL;

constexpr HertzT mhz(std::uint64_t v) { return v * 1'000'000ULL; }
constexpr HertzT ghz(std::uint64_t v) { return v * 1'000'000'000ULL; }
constexpr DurationPs microseconds(std::uint64_t v) { return v * 1'000'000ULL; }
constexpr DurationPs milliseconds(std::uint64_t v) {
  return v * 1'000'000'000ULL;
}
constexpr DurationPs nanoseconds(std::uint64_t v) { return v * 1'000ULL; }

/// Duration of `cycles` cycles at frequency `f`, rounded up so that work
/// never finishes earlier than physically possible.
constexpr DurationPs cycles_to_ps(Cycles cycles, HertzT f) {
  if (f == 0) return 0;
  // ceil(cycles * ps_per_second / f) without overflow for realistic values:
  // cycles < 2^40, kPsPerSecond = 1e12 < 2^40 would overflow, so split.
  const std::uint64_t period_ps = kPsPerSecond / f;        // whole ps per cycle
  const std::uint64_t remainder = kPsPerSecond % f;        // fractional part
  // cycles*period + ceil(cycles*remainder / f)
  const std::uint64_t frac = remainder == 0
                                 ? 0
                                 : (cycles * remainder + f - 1) / f;
  return cycles * period_ps + frac;
}

/// Number of whole cycles at frequency `f` that fit in `dur`.
constexpr Cycles ps_to_cycles(DurationPs dur, HertzT f) {
  if (f == 0) return 0;
  // floor(dur * f / 1e12) computed as dur / (1e12/f) is lossy; use 128-bit.
  return static_cast<Cycles>((static_cast<unsigned __int128>(dur) * f) /
                             kPsPerSecond);
}

/// Human-readable rendering of a picosecond timestamp, e.g. "1.250ms".
std::string format_time(TimePs t);

/// Human-readable rendering of a frequency, e.g. "1.2GHz".
std::string format_hz(HertzT f);

}  // namespace rw
