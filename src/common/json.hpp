// Minimal JSON emission for machine-readable experiment output.
//
// The benches and the harness export BENCH_*.json files that downstream
// tooling (plots, regression tracking) can parse without scraping ASCII
// tables. Emission only — this repo never needs to parse JSON, so there is
// no reader half. Output is deterministic: keys appear in insertion order
// and doubles render with enough digits to round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rw::json {

/// Streaming writer with structural validation by assertion. Typical use:
///
///   json::Writer w;
///   w.begin_object();
///   w.key("name").value("a5_arch_dse");
///   w.key("runs").begin_array();
///   ...
///   w.end_array().end_object();
///   write_file(path, w.str());
class Writer {
 public:
  explicit Writer(bool pretty = true) : pretty_(pretty) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or container.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Splice a pre-rendered JSON document in value position. The caller
  /// vouches that `json` is itself valid JSON; the writer only handles
  /// the surrounding comma/key bookkeeping. Used to embed a legacy tool
  /// document as the payload of an envelope without re-parsing it.
  Writer& raw(std::string_view json);

  /// The document so far. Call once nesting is back to depth zero.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  void prepare_value();  // comma/newline/indent bookkeeping before a value
  void indent();

  std::string out_;
  std::vector<bool> is_object_;   // nesting stack: true = object
  std::vector<bool> has_items_;   // whether current container needs a comma
  bool pretty_;
  bool after_key_ = false;
};

}  // namespace rw::json
