// Minimal JSON emission and parsing for machine-readable experiment I/O.
//
// The benches and the harness export BENCH_*.json files that downstream
// tooling (plots, regression tracking) can parse without scraping ASCII
// tables; the fuzz campaign closes the loop by reading shrunk cases and
// fault plans back in (rwfault --plan, rwfuzz --replay). Output is
// deterministic: keys appear in insertion order and doubles render with
// enough digits to round-trip. The reader keeps each number's raw token so
// 64-bit integers (picosecond timestamps, addresses) survive a
// parse/re-emit cycle byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace rw::json {

/// Streaming writer with structural validation by assertion. Typical use:
///
///   json::Writer w;
///   w.begin_object();
///   w.key("name").value("a5_arch_dse");
///   w.key("runs").begin_array();
///   ...
///   w.end_array().end_object();
///   write_file(path, w.str());
class Writer {
 public:
  explicit Writer(bool pretty = true) : pretty_(pretty) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or container.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Splice a pre-rendered JSON document in value position. The caller
  /// vouches that `json` is itself valid JSON; the writer only handles
  /// the surrounding comma/key bookkeeping. Used to embed a legacy tool
  /// document as the payload of an envelope without re-parsing it.
  Writer& raw(std::string_view json);

  /// The document so far. Call once nesting is back to depth zero.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  void prepare_value();  // comma/newline/indent bookkeeping before a value
  void indent();

  std::string out_;
  std::vector<bool> is_object_;   // nesting stack: true = object
  std::vector<bool> has_items_;   // whether current container needs a comma
  bool pretty_;
  bool after_key_ = false;
};

/// Parsed JSON value tree. Object members keep document order, so a
/// parse/re-emit round trip of a Writer document is byte-stable.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] double number() const { return number_; }
  /// The number's raw source token (e.g. "18446744073709551615"), exact
  /// where a double round trip would not be.
  [[nodiscard]] const std::string& raw_number() const { return text_; }
  /// Integer value parsed from the raw token; falls back to a double cast
  /// for tokens with a fraction or exponent. `ok` (optional) reports
  /// whether the token was a plain non-negative integer.
  [[nodiscard]] std::uint64_t u64(bool* ok = nullptr) const;
  [[nodiscard]] const std::string& string() const { return text_; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return items_[i]; }
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }

  using Member = std::pair<std::string, Value>;
  [[nodiscard]] const std::vector<Member>& members() const {
    return members_;
  }
  /// Object member by key, or nullptr when absent / not an object.
  [[nodiscard]] const Value* get(std::string_view key) const;

  // Typed member lookups with fallbacks — the shape every schema loader
  // in this repo needs: missing key or wrong type -> fallback.
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback = 0.0) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback = "") const;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool fallback = false) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;           // string value, or raw number token
  std::vector<Value> items_;   // array elements
  std::vector<Member> members_;  // object members, document order
};

/// Parse a complete JSON document. Errors carry 1-based line:column.
/// Strict: no comments, no trailing commas, no trailing garbage.
Result<Value> parse(std::string_view text);

}  // namespace rw::json
