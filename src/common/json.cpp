#include "common/json.hpp"

#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace rw::json {

std::string Writer::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

void Writer::indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * is_object_.size(), ' ');
}

void Writer::prepare_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  assert(is_object_.empty() || !is_object_.back());  // values in objects need key()
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    indent();
  }
}

Writer& Writer::begin_object() {
  prepare_value();
  out_ += '{';
  is_object_.push_back(true);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  assert(!is_object_.empty() && is_object_.back());
  const bool had = has_items_.back();
  is_object_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  prepare_value();
  out_ += '[';
  is_object_.push_back(false);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  assert(!is_object_.empty() && !is_object_.back());
  const bool had = has_items_.back();
  is_object_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  assert(!is_object_.empty() && is_object_.back());
  assert(!after_key_);
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
  out_ += '"' + escape(k) + "\":";
  if (pretty_) out_ += ' ';
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  prepare_value();
  out_ += '"' + escape(s) + '"';
  return *this;
}

Writer& Writer::value(double v) {
  prepare_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  // %.17g round-trips any double; trim when a shorter form is exact.
  std::string s = strformat("%.17g", v);
  if (const std::string shorter = strformat("%.15g", v);
      std::stod(shorter) == v)
    s = shorter;
  out_ += s;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  prepare_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  prepare_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view json) {
  prepare_value();
  out_ += json;
  return *this;
}

std::uint64_t Value::u64(bool* ok) const {
  std::uint64_t v = 0;
  if (kind_ == Kind::kNumber && parse_u64(text_, v)) {
    if (ok != nullptr) *ok = true;
    return v;
  }
  if (ok != nullptr) *ok = false;
  if (kind_ == Kind::kNumber && number_ > 0.0)
    return static_cast<std::uint64_t>(number_);
  return 0;
}

const Value* Value::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t Value::get_u64(std::string_view key,
                             std::uint64_t fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() ? v->u64() : fallback;
}

double Value::get_double(std::string_view key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_string() ? v->string()
                                        : std::string(fallback);
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_bool() ? v->boolean() : fallback;
}

/// Recursive-descent parser over a string_view; tracks line/column for
/// Error locations. Depth-capped so hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_ws();
    Value root;
    RW_TRY_STATUS(parse_value(root, 0));
    skip_ws();
    if (pos_ != text_.size()) return err("trailing garbage after document");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Error err(std::string msg) const {
    return make_error(std::move(msg), line_, column_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      advance();
  }

  Status expect(char c) {
    if (eof() || peek() != c)
      return err(std::string("expected '") + c + "'");
    advance();
    return {};
  }

  Status parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    if (eof()) return err("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.kind_ = Value::Kind::kString;
        return parse_string(out.text_);
      }
      case 't': return parse_literal("true", out, Value::Kind::kBool, true);
      case 'f': return parse_literal("false", out, Value::Kind::kBool, false);
      case 'n': return parse_literal("null", out, Value::Kind::kNull, false);
      default: return parse_number(out);
    }
  }

  Status parse_literal(std::string_view word, Value& out, Value::Kind kind,
                       bool b) {
    if (text_.substr(pos_, word.size()) != word)
      return err("invalid literal");
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    out.kind_ = kind;
    out.bool_ = b;
    return {};
  }

  Status parse_object(Value& out, int depth) {
    advance();  // '{'
    out.kind_ = Value::Kind::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      advance();
      return {};
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return err("expected member key");
      std::string key;
      RW_TRY_STATUS(parse_string(key));
      skip_ws();
      RW_TRY_STATUS(expect(':'));
      skip_ws();
      Value member;
      RW_TRY_STATUS(parse_value(member, depth + 1));
      out.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return err("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect('}');
    }
  }

  Status parse_array(Value& out, int depth) {
    advance();  // '['
    out.kind_ = Value::Kind::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      advance();
      return {};
    }
    for (;;) {
      skip_ws();
      Value item;
      RW_TRY_STATUS(parse_value(item, depth + 1));
      out.items_.push_back(std::move(item));
      skip_ws();
      if (eof()) return err("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect(']');
    }
  }

  Status parse_string(std::string& out) {
    advance();  // opening quote
    out.clear();
    while (!eof()) {
      const char c = advance();
      if (c == '"') return {};
      if (static_cast<unsigned char>(c) < 0x20)
        return err("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) break;
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return err("truncated \\u escape");
            const char h = advance();
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            else
              return err("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point; the writer only ever emits
          // \u00xx control escapes, so no surrogate-pair handling.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return err("invalid escape character");
      }
    }
    return err("unterminated string");
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') advance();
    while (!eof() && peek() >= '0' && peek() <= '9') advance();
    if (!eof() && peek() == '.') {
      advance();
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token(text_.substr(start, pos_ - start));
    double v = 0.0;
    if (token.empty() || !parse_double(token, v))
      return err("invalid number");
    out.kind_ = Value::Kind::kNumber;
    out.number_ = v;
    out.text_ = token;
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rw::json
