#include "common/json.hpp"

#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace rw::json {

std::string Writer::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

void Writer::indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * is_object_.size(), ' ');
}

void Writer::prepare_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  assert(is_object_.empty() || !is_object_.back());  // values in objects need key()
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    indent();
  }
}

Writer& Writer::begin_object() {
  prepare_value();
  out_ += '{';
  is_object_.push_back(true);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  assert(!is_object_.empty() && is_object_.back());
  const bool had = has_items_.back();
  is_object_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  prepare_value();
  out_ += '[';
  is_object_.push_back(false);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  assert(!is_object_.empty() && !is_object_.back());
  const bool had = has_items_.back();
  is_object_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  assert(!is_object_.empty() && is_object_.back());
  assert(!after_key_);
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
  out_ += '"' + escape(k) + "\":";
  if (pretty_) out_ += ' ';
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  prepare_value();
  out_ += '"' + escape(s) + '"';
  return *this;
}

Writer& Writer::value(double v) {
  prepare_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  // %.17g round-trips any double; trim when a shorter form is exact.
  std::string s = strformat("%.17g", v);
  if (const std::string shorter = strformat("%.15g", v);
      std::stod(shorter) == v)
    s = shorter;
  out_ += s;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  prepare_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  prepare_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view json) {
  prepare_value();
  out_ += json;
  return *this;
}

}  // namespace rw::json
