// Streaming statistics accumulator used by experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace rw {

/// Online mean/min/max/variance (Welford) plus optional sample retention
/// for percentiles. Cheap enough to sprinkle through simulation hot paths.
class Stats {
 public:
  explicit Stats(bool keep_samples = false) : keep_samples_(keep_samples) {}

  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (keep_samples_) samples_.push_back(x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// p in [0,1]; requires keep_samples. Nearest-rank method.
  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return 0.0;
    std::sort(samples_.begin(), samples_.end());
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

 private:
  bool keep_samples_;
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<double> samples_;
};

}  // namespace rw
