// ASCII table formatting for the experiment benches.
//
// Every bench binary in bench/ prints the rows the corresponding paper
// claim would be supported by; this renderer keeps that output aligned and
// diff-friendly so EXPERIMENTS.md can quote it verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rw {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; width must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string percent(double fraction, int precision = 1);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Render as a JSON array of objects, one per row, keyed by header.
  /// Cells stay strings — the table layer is presentation; benches that
  /// need typed numbers export RunMetrics through rw::harness instead.
  [[nodiscard]] std::string to_json() const;

  /// Render `title`, a rule, the table, and a blank line to stdout.
  void print(const std::string& title) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rw
