// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in roadworks (execution-time jitter, WCET
// overrun injection, workload generation) flows through this generator so
// that every experiment is reproducible from a seed — the foundation of the
// Sec. VII record/replay claims and of CI-stable tests.
#pragma once

#include <cstdint>

namespace rw {

/// xoshiro256** with splitmix64 seeding. Small, fast, and fully
/// deterministic across platforms (unlike std::default_random_engine, whose
/// distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean.
  double next_exponential(double mean);

  /// Normally distributed value (Box–Muller, deterministic).
  double next_normal(double mean, double stddev);

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace rw
