// Small-buffer-optimized callable: the kernel-owned replacement for
// std::function on the event hot path.
//
// Every simulation event is a one-shot closure; profiling showed the
// dominant kernel cost was std::function's heap allocation per capture
// plus its manager indirections during priority-queue sifts. An
// InplaceFunction stores the callable inline in a fixed buffer (48 bytes
// covers every capture the simulator's call sites create: coroutine
// handles, `this` pointers, a generation counter, a couple of integers)
// and only falls back to the heap above the buffer size. It is move-only
// — events are consumed exactly once — which also admits move-only
// captures (std::unique_ptr and friends) that std::function rejects.
#pragma once

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace rw::common {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  /// True when a callable of type F is stored in the inline buffer (no
  /// heap allocation). Exposed so tests and benches can assert that the
  /// captures they care about stay on the fast path.
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineHandler<D>::kVTable;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &HeapHandler<D>::kVTable;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) const {
    if (vt_ == nullptr) throw std::bad_function_call();
    return vt_->invoke(const_cast<std::byte*>(buf_),
                       std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void* obj, Args&&... args);
    // Move-construct *src into dst, then destroy *src (a "relocate": the
    // only move the event queue ever needs).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
  };

  template <typename F>
  struct InlineHandler {
    static R invoke(void* obj, Args&&... args) {
      return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* obj) noexcept { static_cast<F*>(obj)->~F(); }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapHandler {
    static F*& slot(void* obj) { return *static_cast<F**>(obj); }
    static R invoke(void* obj, Args&&... args) {
      return (*slot(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(slot(src));
    }
    static void destroy(void* obj) noexcept { delete slot(obj); }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy};
  };

  void move_from(InplaceFunction& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(buf_, other.buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace rw::common
