// Strong identifier types.
//
// Every subsystem in roadworks names its entities (cores, tasks, channels,
// AST nodes, ...) with small integer handles. Using raw integers invites
// cross-wiring a CoreId where a TaskId is expected; this header provides a
// zero-cost strongly typed wrapper so such mistakes fail to compile.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace rw {

/// Strongly typed integer identifier. `Tag` is any (possibly incomplete)
/// type used purely to distinguish id spaces at compile time. `Underlying`
/// defaults to 32 bits (plenty for consecutive container handles); id
/// spaces that pack structure into the value (e.g. ert::JobId's
/// tenant<<32|sequence) widen it to 64.
///
/// Invariants: a default-constructed Id is invalid(); valid ids are
/// consecutive small integers handed out by the owning container.
template <typename Tag, typename Underlying = std::uint32_t>
class Id {
 public:
  static_assert(std::is_unsigned_v<Underlying>,
                "Id requires an unsigned underlying type");
  using underlying_type = Underlying;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel for "no such entity".
  static constexpr Id invalid() { return Id{}; }

  [[nodiscard]] constexpr bool is_valid() const { return value_ != kInvalid; }
  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  /// Convenience for indexing vectors keyed by this id space.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

template <typename Tag, typename Underlying>
std::ostream& operator<<(std::ostream& os, Id<Tag, Underlying> id) {
  if (!id.is_valid()) return os << "<invalid>";
  return os << '#' << id.value();
}

}  // namespace rw

namespace std {
template <typename Tag, typename Underlying>
struct hash<rw::Id<Tag, Underlying>> {
  size_t operator()(rw::Id<Tag, Underlying> id) const noexcept {
    return std::hash<Underlying>{}(id.value());
  }
};
}  // namespace std
