#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace rw {

std::string format_time(TimePs t) {
  struct Scale {
    std::uint64_t div;
    const char* suffix;
  };
  static constexpr std::array<Scale, 4> scales{{
      {1'000'000'000'000ULL, "s"},
      {1'000'000'000ULL, "ms"},
      {1'000'000ULL, "us"},
      {1'000ULL, "ns"},
  }};
  for (const auto& s : scales) {
    if (t >= s.div) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f%s",
                    static_cast<double>(t) / static_cast<double>(s.div),
                    s.suffix);
      return buf;
    }
  }
  return std::to_string(t) + "ps";
}

std::string format_hz(HertzT f) {
  struct Scale {
    std::uint64_t div;
    const char* suffix;
  };
  static constexpr std::array<Scale, 3> scales{{
      {1'000'000'000ULL, "GHz"},
      {1'000'000ULL, "MHz"},
      {1'000ULL, "kHz"},
  }};
  for (const auto& s : scales) {
    if (f >= s.div) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3g%s",
                    static_cast<double>(f) / static_cast<double>(s.div),
                    s.suffix);
      return buf;
    }
  }
  return std::to_string(f) + "Hz";
}

}  // namespace rw
