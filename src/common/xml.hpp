// Minimal XML parser for CIC architecture-information files (Sec. V).
//
// The HOPES flow separates the platform description from the algorithm in
// an "xml-style file, called the architecture information file". This is a
// small, strict subset-of-XML parser: elements, attributes, text content,
// comments, and XML declarations. No namespaces, entities beyond the five
// predefined ones, CDATA, or DTDs — architecture files don't need them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace rw::xml {

/// An XML element node. Text content is accumulated across children into
/// `text` (mixed content order is not preserved; architecture files never
/// interleave text and elements).
struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;
  int line = 0;

  /// First attribute value with the given name, or empty view.
  [[nodiscard]] std::string_view attr(std::string_view name) const;

  /// Attribute value parsed as u64/double; `fallback` when absent/bad.
  [[nodiscard]] std::uint64_t attr_u64(std::string_view name,
                                       std::uint64_t fallback = 0) const;
  [[nodiscard]] double attr_double(std::string_view name,
                                   double fallback = 0.0) const;

  /// First child element with the given tag name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;

  /// All children with the given tag name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;
};

/// Parse a complete document; returns its root element.
Result<std::unique_ptr<Element>> parse(std::string_view input);

/// Serialize back to text (used by tests for round-tripping).
std::string serialize(const Element& root, int indent = 0);

}  // namespace rw::xml
