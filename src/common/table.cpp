#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace rw {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  return strformat("%.*f", precision, v);
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  return strformat("%.*f%%", precision, fraction * 100.0);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule = "|";
  for (const std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '|';
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_json() const {
  json::Writer w;
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t c = 0; c < row.size(); ++c)
      w.key(headers_[c]).value(row[c]);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s\n", title.c_str(), to_string().c_str());
  std::fflush(stdout);
}

}  // namespace rw
