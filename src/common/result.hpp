// Lightweight Result<T> error propagation.
//
// Recoverable, expected failures (parse errors in the mini-C front end,
// malformed architecture files, infeasible schedules) are returned as
// values; exceptions are reserved for programming errors and broken
// invariants. This keeps error paths explicit in the public API while C++23
// std::expected is unavailable under the C++20 toolchain.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace rw {

/// Error payload: a human-readable message plus an optional source location
/// (used by the recoder and the XML parser to point at the offending text).
struct Error {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    if (line <= 0) return message;
    return std::to_string(line) + ":" + std::to_string(column) + ": " +
           message;
  }
};

/// Result of an operation that can fail with an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " +
                                        error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " +
                                        error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " +
                                        error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Value if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  /// The stored error, or `fallback` when the result is ok. Lets callers
  /// that need an Error unconditionally (diagnostics, aggregation) avoid
  /// branching on ok() themselves.
  [[nodiscard]] Error error_or(Error fallback) const {
    return ok() ? std::move(fallback) : std::get<Error>(data_);
  }

  /// Apply `f` to the value, propagating the error: Result<T> -> Result<U>
  /// for f: T -> U.
  template <typename F>
  [[nodiscard]] auto map(F&& f) const& -> Result<decltype(f(
      std::declval<const T&>()))> {
    if (!ok()) return error();
    return f(std::get<T>(data_));
  }
  template <typename F>
  [[nodiscard]] auto map(F&& f) && -> Result<decltype(f(std::declval<T&&>()))> {
    if (!ok()) return error();
    return f(std::get<T>(std::move(data_)));
  }

  /// Chain a fallible step: Result<T> -> Result<U> for f: T -> Result<U>.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> decltype(f(
      std::declval<const T&>())) {
    if (!ok()) return error();
    return f(std::get<T>(data_));
  }
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) && -> decltype(f(std::declval<T&&>())) {
    if (!ok()) return error();
    return f(std::get<T>(std::move(data_)));
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)

  static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

  /// The stored error, or `fallback` when the status is ok.
  [[nodiscard]] Error error_or(Error fallback) const {
    return ok() ? std::move(fallback) : *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(std::string msg, int line = 0, int column = 0) {
  return Error{std::move(msg), line, column};
}

/// Unwrap a Result<T> expression, early-returning its Error from the
/// enclosing function (which must return Result<U> or Status) on failure:
///
///   const auto doc = RW_TRY(xml::parse(text));
///
/// Uses a GNU statement expression (supported by GCC and Clang, the two
/// toolchains this repo builds with) so the macro yields a value.
#define RW_TRY(expr)                                        \
  ({                                                        \
    auto rw_try_result_ = (expr);                           \
    if (!rw_try_result_.ok()) return rw_try_result_.error(); \
    std::move(rw_try_result_).take();                       \
  })

/// Same early-return for Status (or any Result whose value is discarded).
#define RW_TRY_STATUS(expr)                                    \
  do {                                                         \
    if (auto rw_try_status_ = (expr); !rw_try_status_.ok())    \
      return rw_try_status_.error();                           \
  } while (0)

}  // namespace rw
