// Shared per-run experiment metrics.
//
// Every experiment in this repo boils down to "run one deterministic
// simulation, report how it went". Before the harness existed, each caller
// kept its own copy of the same counters (cic::DsePoint, bench-local
// structs, sched gang results); RunMetrics is the one shared shape, and the
// split matters: the simulation fields are bit-reproducible from the seed,
// wall_ns is host measurement noise and is excluded from equality.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace rw {

struct RunMetrics {
  // Deterministic simulation outputs.
  TimePs makespan = 0;
  double mean_core_utilization = 0.0;
  std::uint64_t deadline_misses = 0;

  /// Named domain-specific counters (contention, arbitration wait,
  /// messages...). An ordered vector, not a map, so that rendering order is
  /// deterministic and matches insertion.
  std::vector<std::pair<std::string, double>> extra;

  // Host-side measurement: wall-clock nanoseconds for the run. NOT part of
  // sim_equal() — it varies between executions by construction.
  std::uint64_t wall_ns = 0;

  /// Set (or overwrite) a named counter.
  void set_extra(std::string name, double v) {
    for (auto& [k, old] : extra) {
      if (k == name) {
        old = v;
        return;
      }
    }
    extra.emplace_back(std::move(name), v);
  }

  /// Named counter value, or `fallback` when absent.
  [[nodiscard]] double extra_or(std::string_view name,
                                double fallback = 0.0) const {
    for (const auto& [k, v] : extra)
      if (k == name) return v;
    return fallback;
  }

  /// Equality over the deterministic simulation fields only (ignores
  /// wall_ns). This is the relation the harness's "parallel == serial"
  /// guarantee is stated in.
  [[nodiscard]] bool sim_equal(const RunMetrics& o) const {
    return makespan == o.makespan &&
           mean_core_utilization == o.mean_core_utilization &&
           deadline_misses == o.deadline_misses && extra == o.extra;
  }
};

}  // namespace rw
