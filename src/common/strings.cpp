#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rw {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

}  // namespace rw
