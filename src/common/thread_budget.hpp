// Process-wide worker-thread budget.
//
// Two layers of this codebase can spawn worker threads: the experiment
// harness (one jthread per sweep worker) and the tiled simulation kernel
// (one worker per tile, see sim/parallel.hpp). Nesting them — a harness
// sweep whose every run spins up a 4-tile parallel kernel — would
// oversubscribe the machine by threads x tiles. The budget is a single
// process-wide pool of "extra" threads (hardware_concurrency - 1, the
// calling thread is free); both layers acquire from it before spawning
// and release when their workers join. The tiled engine acquires
// all-or-nothing and falls back to its sequential mode on exhaustion —
// a safe degradation, because tiled execution is bit-identical across
// modes by construction.
#pragma once

#include <cstdint>

namespace rw::common {

/// Extra worker threads the process may run beyond the calling thread.
[[nodiscard]] std::uint32_t thread_budget_total();

/// Currently unclaimed permits.
[[nodiscard]] std::uint32_t thread_budget_available();

/// Claim exactly `n` permits; false (and no permits) when fewer remain.
[[nodiscard]] bool thread_budget_try_acquire(std::uint32_t n);

/// Claim up to `n` permits; returns how many were granted (possibly 0).
[[nodiscard]] std::uint32_t thread_budget_acquire_upto(std::uint32_t n);

/// Return previously claimed permits.
void thread_budget_release(std::uint32_t n);

/// Test hook: replace the pool with `total` unclaimed permits, so budget
/// exhaustion and fallback paths are reproducible on any machine. Returns
/// the previous total.
std::uint32_t thread_budget_set_total_for_test(std::uint32_t total);

}  // namespace rw::common
