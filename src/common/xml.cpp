#include "common/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace rw::xml {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<std::unique_ptr<Element>> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_ws_and_comments();
    if (pos_ != in_.size())
      return fail("trailing content after root element");
    return root;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : in_[pos_]; }

  char advance() {
    const char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool consume(std::string_view s) {
    if (in_.substr(pos_).substr(0, s.size()) != s) return false;
    for (std::size_t i = 0; i < s.size(); ++i) advance();
    return true;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  void skip_ws_and_comments() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        while (!eof() && !consume("-->")) advance();
        continue;
      }
      return;
    }
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?")) {
      while (!eof() && !consume("?>")) advance();
    }
    skip_ws_and_comments();
  }

  Error fail(std::string msg) const { return make_error(std::move(msg), line_, col_); }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string decode_entities(std::string_view raw) const {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto rest = raw.substr(i);
      if (starts_with(rest, "&lt;")) {
        out += '<';
        i += 3;
      } else if (starts_with(rest, "&gt;")) {
        out += '>';
        i += 3;
      } else if (starts_with(rest, "&amp;")) {
        out += '&';
        i += 4;
      } else if (starts_with(rest, "&quot;")) {
        out += '"';
        i += 5;
      } else if (starts_with(rest, "&apos;")) {
        out += '\'';
        i += 5;
      } else {
        out += '&';
      }
    }
    return out;
  }

  Result<std::unique_ptr<Element>> parse_element() {
    skip_ws_and_comments();
    if (!consume("<")) return fail("expected '<'");
    auto elem = std::make_unique<Element>();
    elem->line = line_;
    elem->name = parse_name();
    if (elem->name.empty()) return fail("expected element name");

    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return elem;  // self-closing
      if (consume(">")) break;
      std::string key = parse_name();
      if (key.empty()) return fail("expected attribute name");
      skip_ws();
      if (!consume("=")) return fail("expected '=' after attribute name");
      skip_ws();
      const char quote = peek();
      if (quote != '"' && quote != '\'') return fail("expected quoted value");
      advance();
      std::string raw;
      while (!eof() && peek() != quote) raw += advance();
      if (eof()) return fail("unterminated attribute value");
      advance();  // closing quote
      elem->attributes.emplace_back(std::move(key), decode_entities(raw));
    }

    // Content: children and text until matching close tag.
    for (;;) {
      if (eof()) return fail("unexpected end of input in <" + elem->name + ">");
      if (consume("<!--")) {
        while (!eof() && !consume("-->")) advance();
        continue;
      }
      if (in_.substr(pos_).substr(0, 2) == "</") {
        consume("</");
        const std::string close = parse_name();
        skip_ws();
        if (!consume(">")) return fail("expected '>' in closing tag");
        if (close != elem->name)
          return fail("mismatched closing tag </" + close + "> for <" +
                      elem->name + ">");
        elem->text = std::string(trim(elem->text));
        return elem;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        elem->children.push_back(std::move(child).take());
        continue;
      }
      std::string raw;
      while (!eof() && peek() != '<') raw += advance();
      elem->text += decode_entities(raw);
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

void encode_into(std::string& out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

void serialize_into(const Element& e, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += '<';
  out += e.name;
  for (const auto& [k, v] : e.attributes) {
    out += ' ';
    out += k;
    out += "=\"";
    encode_into(out, v);
    out += '"';
  }
  if (e.children.empty() && e.text.empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (!e.text.empty()) encode_into(out, e.text);
  if (!e.children.empty()) {
    out += '\n';
    for (const auto& c : e.children) serialize_into(*c, depth + 1, out);
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  }
  out += "</";
  out += e.name;
  out += ">\n";
}

}  // namespace

std::string_view Element::attr(std::string_view name) const {
  for (const auto& [k, v] : attributes)
    if (k == name) return v;
  return {};
}

std::uint64_t Element::attr_u64(std::string_view name,
                                std::uint64_t fallback) const {
  std::uint64_t v = 0;
  return parse_u64(attr(name), v) ? v : fallback;
}

double Element::attr_double(std::string_view name, double fallback) const {
  double v = 0;
  return parse_double(attr(name), v) ? v : fallback;
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children)
    if (c->name == name) return c.get();
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children)
    if (c->name == name) out.push_back(c.get());
  return out;
}

Result<std::unique_ptr<Element>> parse(std::string_view input) {
  return Parser(input).parse_document();
}

std::string serialize(const Element& root, int indent) {
  std::string out;
  serialize_into(root, indent, out);
  return out;
}

}  // namespace rw::xml
