#include "common/thread_budget.hpp"

#include <atomic>
#include <thread>

namespace rw::common {

namespace {

std::uint32_t default_total() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

std::atomic<std::uint32_t>& total_slot() {
  static std::atomic<std::uint32_t> total{default_total()};
  return total;
}

std::atomic<std::int64_t>& available_slot() {
  static std::atomic<std::int64_t> avail{
      static_cast<std::int64_t>(default_total())};
  return avail;
}

}  // namespace

std::uint32_t thread_budget_total() {
  return total_slot().load(std::memory_order_relaxed);
}

std::uint32_t thread_budget_available() {
  const std::int64_t a = available_slot().load(std::memory_order_relaxed);
  return a > 0 ? static_cast<std::uint32_t>(a) : 0;
}

bool thread_budget_try_acquire(std::uint32_t n) {
  if (n == 0) return true;
  auto& avail = available_slot();
  std::int64_t cur = avail.load(std::memory_order_relaxed);
  while (cur >= static_cast<std::int64_t>(n)) {
    if (avail.compare_exchange_weak(cur, cur - static_cast<std::int64_t>(n),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed))
      return true;
  }
  return false;
}

std::uint32_t thread_budget_acquire_upto(std::uint32_t n) {
  if (n == 0) return 0;
  auto& avail = available_slot();
  std::int64_t cur = avail.load(std::memory_order_relaxed);
  for (;;) {
    if (cur <= 0) return 0;
    const std::int64_t grant =
        cur < static_cast<std::int64_t>(n) ? cur : static_cast<std::int64_t>(n);
    if (avail.compare_exchange_weak(cur, cur - grant,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed))
      return static_cast<std::uint32_t>(grant);
  }
}

void thread_budget_release(std::uint32_t n) {
  if (n > 0)
    available_slot().fetch_add(static_cast<std::int64_t>(n),
                               std::memory_order_acq_rel);
}

std::uint32_t thread_budget_set_total_for_test(std::uint32_t total) {
  const std::uint32_t prev =
      total_slot().exchange(total, std::memory_order_acq_rel);
  available_slot().store(static_cast<std::int64_t>(total),
                         std::memory_order_release);
  return prev;
}

}  // namespace rw::common
