// Small string utilities shared by the parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rw {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Replace all occurrences of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parse a non-negative integer; returns false on any non-digit content.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parse a double; returns false on trailing garbage.
bool parse_double(std::string_view s, double& out);

}  // namespace rw
