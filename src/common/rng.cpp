#include "common/rng.hpp"

#include <cmath>

namespace rw {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 significant bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace rw
