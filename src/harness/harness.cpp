#include "harness/harness.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <thread>

#include "common/json.hpp"
#include "common/thread_budget.hpp"
#include "common/units.hpp"

namespace rw::harness {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

// ----------------------------------------------------------------- Scenario

Scenario& Scenario::add_run(std::string label, RunFn fn) {
  runs_.push_back({std::move(label), std::move(fn)});
  return *this;
}

std::uint64_t Scenario::derive_seed(std::uint64_t base_seed,
                                    std::string_view scenario,
                                    std::string_view label,
                                    std::size_t index) {
  // FNV-1a over the identity, with explicit separators so that
  // ("ab","c") and ("a","bc") hash differently, then splitmix64 to spread
  // low-entropy inputs (consecutive indices) over the whole 64-bit space.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ base_seed;
  h = fnv1a(h, scenario);
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, label);
  h = fnv1a(h, "\x1f");
  h ^= index;
  return splitmix64(splitmix64(h));
}

std::uint64_t Scenario::seed_for(std::size_t index) const {
  return derive_seed(base_seed_, name_, runs_[index].label, index);
}

// ------------------------------------------------------------------ Runner

std::size_t Runner::effective_threads(std::size_t runs) const {
  std::size_t t = cfg_.threads;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  return std::min(t, std::max<std::size_t>(1, runs));
}

ScenarioResult Runner::run(const Scenario& s) const {
  ScenarioResult out;
  out.scenario = s.name_;
  const std::size_t n = s.runs_.size();
  out.threads_used = effective_threads(n);
  out.runs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.runs[i].label = s.runs_[i].label;
    out.runs[i].index = i;
    out.runs[i].seed = s.seed_for(i);
  }

  const auto scenario_t0 = std::chrono::steady_clock::now();

  // Work-stealing-free task queue: one shared cursor, runs claimed in
  // index order. Each worker writes only its claimed slots, so collection
  // needs no locks and the result layout is independent of scheduling.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      RunRecord& rec = out.runs[i];
      const auto t0 = std::chrono::steady_clock::now();
      try {
        rec.metrics = s.runs_[i].fn(RunContext{i, rec.seed});
      } catch (const std::exception& e) {
        rec.ok = false;
        rec.error = e.what();
        rec.metrics = RunMetrics{};
      } catch (...) {
        rec.ok = false;
        rec.error = "unknown exception";
        rec.metrics = RunMetrics{};
      }
      rec.metrics.wall_ns = elapsed_ns(t0);
    }
  };

  if (out.threads_used <= 1) {
    worker();
  } else {
    // Claim thread-budget permits for the extra workers so nested tiled
    // engines (sim::TiledEngine) see an owned machine and fall back to
    // their bit-identical sequential mode instead of oversubscribing.
    // The sweep's own worker count is unchanged either way — results are
    // byte-identical across thread counts by the harness contract.
    const auto extra = static_cast<std::uint32_t>(out.threads_used - 1);
    const std::uint32_t permits = common::thread_budget_acquire_upto(extra);
    {
      std::vector<std::jthread> pool;
      pool.reserve(out.threads_used);
      for (std::size_t t = 0; t < out.threads_used; ++t)
        pool.emplace_back(worker);
    }  // jthread joins on scope exit
    common::thread_budget_release(permits);
  }

  out.wall_ns = elapsed_ns(scenario_t0);
  return out;
}

// ----------------------------------------------------------- ScenarioResult

const RunRecord* ScenarioResult::find(std::string_view label) const {
  for (const auto& r : runs)
    if (r.label == label) return &r;
  return nullptr;
}

bool ScenarioResult::sim_equal(const ScenarioResult& o) const {
  if (scenario != o.scenario || runs.size() != o.runs.size()) return false;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& a = runs[i];
    const RunRecord& b = o.runs[i];
    if (a.label != b.label || a.index != b.index || a.seed != b.seed ||
        a.ok != b.ok || a.error != b.error ||
        !a.metrics.sim_equal(b.metrics))
      return false;
  }
  return true;
}

Table ScenarioResult::to_table() const {
  Table t({"run", "makespan", "util", "misses", "wall"});
  for (const auto& r : runs) {
    if (!r.ok) {
      t.add_row({r.label, "ERROR", "-", "-", "-"});
      continue;
    }
    t.add_row({r.label, format_time(r.metrics.makespan),
               Table::percent(r.metrics.mean_core_utilization),
               Table::num(r.metrics.deadline_misses),
               Table::num(static_cast<double>(r.metrics.wall_ns) / 1e6, 2) +
                   "ms"});
  }
  return t;
}

// -------------------------------------------------------------------- JSON

std::string to_json(const std::vector<ScenarioResult>& results) {
  json::Writer w;
  w.begin_object();
  w.key("generator").value("roadworks rw::harness");
  w.key("scenarios").begin_array();
  for (const auto& sr : results) {
    w.begin_object();
    w.key("name").value(sr.scenario);
    w.key("threads").value(static_cast<std::uint64_t>(sr.threads_used));
    w.key("wall_ns").value(sr.wall_ns);
    w.key("runs").begin_array();
    for (const auto& r : sr.runs) {
      w.begin_object();
      w.key("label").value(r.label);
      w.key("index").value(static_cast<std::uint64_t>(r.index));
      w.key("seed").value(r.seed);
      w.key("ok").value(r.ok);
      if (!r.ok) w.key("error").value(r.error);
      w.key("metrics").begin_object();
      w.key("makespan_ps").value(r.metrics.makespan);
      w.key("mean_core_utilization").value(r.metrics.mean_core_utilization);
      w.key("deadline_misses").value(r.metrics.deadline_misses);
      w.key("wall_ns").value(r.metrics.wall_ns);
      for (const auto& [k, v] : r.metrics.extra) w.key(k).value(v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

Status write_json(const std::string& path,
                  const std::vector<ScenarioResult>& results) {
  std::ofstream out(path);
  if (!out) return make_error("cannot write '" + path + "'");
  out << to_json(results) << '\n';
  return out.good() ? Status::ok_status()
                    : Status(make_error("write failed for '" + path + "'"));
}

}  // namespace rw::harness
