// Unified experiment harness: Scenario + Runner.
//
// Every qualitative claim in the paper is reproduced by running N
// independent deterministic simulations and tabulating per-run metrics.
// Before this module each bench binary hand-rolled that loop and rw::cic
// DSE evaluated candidates strictly serially. A Scenario names the
// experiment and enumerates its runs (label + closure); a Runner fans the
// runs out over a std::jthread pool and collects RunMetrics.
//
// Determinism contract (the property everything downstream leans on):
//   * each run's seed is derived from (base_seed, scenario, label, index)
//     only — never from thread identity or timing;
//   * runs share no mutable state (each rw::sim::Kernel is single-threaded
//     by design, so independent simulations parallelize trivially);
//   * results are collected into submission-order slots.
// Therefore Runner output is byte-identical for any thread count, wall_ns
// aside, and tests/test_harness.cpp holds the API to that.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"

namespace rw::harness {

/// Everything a run may condition on. Runs needing randomness must draw it
/// from rng() (seeded deterministically), never from global sources.
struct RunContext {
  std::size_t index = 0;   // position within the scenario
  std::uint64_t seed = 0;  // derived per-run seed

  [[nodiscard]] Rng rng() const { return Rng(seed); }
};

using RunFn = std::function<RunMetrics(const RunContext&)>;

/// A named experiment: an ordered list of labelled runs.
class Scenario {
 public:
  static constexpr std::uint64_t kDefaultBaseSeed = 0x726f6164776f726bULL;

  explicit Scenario(std::string name,
                    std::uint64_t base_seed = kDefaultBaseSeed)
      : name_(std::move(name)), base_seed_(base_seed) {}

  /// Append a run. Returns *this for chaining.
  Scenario& add_run(std::string label, RunFn fn);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] const std::string& label(std::size_t i) const {
    return runs_[i].label;
  }

  /// The seed run `i` will receive: pure function of the scenario identity,
  /// never of execution order or thread count.
  [[nodiscard]] std::uint64_t seed_for(std::size_t index) const;

  /// Seed derivation, exposed for the collision test: splitmix64-finalized
  /// FNV-1a over (base_seed, scenario, label, index).
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   std::string_view scenario,
                                   std::string_view label, std::size_t index);

 private:
  friend class Runner;
  struct Entry {
    std::string label;
    RunFn fn;
  };
  std::string name_;
  std::uint64_t base_seed_;
  std::vector<Entry> runs_;
};

/// One completed run. `ok` is false when the run threw; the simulation
/// metrics are then default-valued and `error` holds the message.
struct RunRecord {
  std::string label;
  std::size_t index = 0;
  std::uint64_t seed = 0;
  RunMetrics metrics;
  bool ok = true;
  std::string error;
};

/// All runs of a scenario, in submission order regardless of the
/// interleaving the pool happened to execute.
struct ScenarioResult {
  std::string scenario;
  std::size_t threads_used = 1;
  std::uint64_t wall_ns = 0;  // whole-scenario wall clock

  std::vector<RunRecord> runs;

  /// The record with the given label (first match), or nullptr.
  [[nodiscard]] const RunRecord* find(std::string_view label) const;

  /// Deterministic-fields equality against another result (labels, seeds,
  /// order, sim metrics; wall clocks and thread counts ignored).
  [[nodiscard]] bool sim_equal(const ScenarioResult& o) const;

  /// Generic presentation: one row per run with the standard metric
  /// columns. Benches with pivoted layouts build their own Table from
  /// `runs` instead.
  [[nodiscard]] Table to_table() const;
};

struct RunnerConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The pool
  /// never exceeds the number of runs.
  std::size_t threads = 0;
};

/// Executes scenarios over a jthread pool fed by a shared atomic cursor (a
/// work-stealing-free task queue: runs are claimed in index order, results
/// land in index-addressed slots).
class Runner {
 public:
  explicit Runner(RunnerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] ScenarioResult run(const Scenario& s) const;

  /// The thread count a run() call will use for `runs` tasks.
  [[nodiscard]] std::size_t effective_threads(std::size_t runs) const;

 private:
  RunnerConfig cfg_;
};

/// Serialize results as a JSON document (schema: {generator, scenarios:
/// [{name, threads, wall_ns, runs: [{label, index, seed, ok, metrics}]}]}).
[[nodiscard]] std::string to_json(const std::vector<ScenarioResult>& results);

/// Write to_json() to `path` (the BENCH_*.json files the benches emit).
Status write_json(const std::string& path,
                  const std::vector<ScenarioResult>& results);

}  // namespace rw::harness
