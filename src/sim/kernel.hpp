// Discrete-event simulation kernel.
//
// The kernel is the time base for the whole toolkit: the MPSoC platform
// model (Sec. VII's "virtual platform"), the scheduling experiments
// (Sec. II), and the dataflow executors (Sec. III) all advance time by
// posting events here. Determinism is a design requirement — two runs with
// the same seed must produce identical event orders (the foundation of the
// non-intrusive-debugging claims) — so ties in time are broken by an
// explicit priority and then by insertion sequence, never by queue
// implementation details.
//
// Hot-path design (see DESIGN.md "Kernel internals"):
//   * EventFn is an SBO callable (InplaceFunction<void(), 48>): every
//     capture the simulator creates fits inline, so scheduling an event
//     allocates nothing.
//   * Callables live in a pooled, free-listed Entry array; the queues
//     order 24-byte trivially-copyable Node records (time, seq, priority,
//     pool index), so sifts never move a closure.
//   * QueuePolicy::kCalendar (the default) is a two-tier queue: a bucketed
//     near-term calendar wheel covering a configurable horizon plus a
//     spill heap for far-future events, giving O(1) amortized scheduling
//     on dense workloads. QueuePolicy::kBinaryHeap keeps the original
//     single binary heap (callable stored inside the heap entry) as the
//     baseline; both produce bit-identical execution orders.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/inplace_function.hpp"
#include "common/units.hpp"

namespace rw::sim {

using EventFn = common::InplaceFunction<void(), 48>;

/// Event-queue implementation selector. kCalendar is the production fast
/// path; kBinaryHeap is the original implementation, kept selectable so
/// tests and benches can prove the two orders and fingerprints identical.
enum class QueuePolicy { kCalendar, kBinaryHeap };

[[nodiscard]] const char* queue_policy_name(QueuePolicy p);

/// How Platform::run() drives a tile-partitioned platform (num_tiles > 1):
/// kSequential iterates the tiles' epoch windows on the calling thread,
/// kParallel runs one worker thread per tile. Both modes execute the
/// identical conservative-lookahead epoch algorithm (see parallel.hpp), so
/// the choice is never observable in simulation results — only in wall
/// clock. Sequential stays the default reference path.
enum class ExecMode { kSequential, kParallel };

[[nodiscard]] const char* exec_mode_name(ExecMode m);

struct KernelConfig {
  QueuePolicy policy = QueuePolicy::kCalendar;
  /// Calendar bucket width is 2^bucket_width_log2 picoseconds and the
  /// wheel spans 2^num_buckets_log2 buckets; events beyond
  /// `now + width * buckets` (the horizon) wait in the spill heap. The
  /// defaults (4 ns buckets, 1024 of them ≈ 4.2 us horizon) fit the
  /// platform model's event mix: same-delta resumes and ns-scale delays
  /// hit the wheel, multi-us compute blocks spill and migrate on rebase.
  std::uint32_t bucket_width_log2 = 12;
  std::uint32_t num_buckets_log2 = 10;
  /// Tile partitioning (see parallel.hpp). num_tiles == 1 keeps the single
  /// sequential kernel; > 1 makes the Platform build one kernel instance
  /// per tile and drive them through the conservative TiledEngine.
  /// validate_tiling() rejects num_tiles > core count and platforms whose
  /// fabric config yields a zero cross-tile lookahead.
  ExecMode exec = ExecMode::kSequential;
  std::uint32_t num_tiles = 1;
};

/// Central event queue and simulated clock.
class Kernel {
 public:
  Kernel() : Kernel(KernelConfig{}) {}
  explicit Kernel(QueuePolicy policy) : Kernel(KernelConfig{policy}) {}
  explicit Kernel(const KernelConfig& cfg);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] QueuePolicy policy() const { return cfg_.policy; }
  [[nodiscard]] const KernelConfig& config() const { return cfg_; }

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now). Lower `priority`
  /// runs first among events at the same timestamp.
  void schedule_at(TimePs t, EventFn fn, int priority = 0);

  /// Schedule `fn` after a relative delay.
  void schedule_in(DurationPs d, EventFn fn, int priority = 0);

  /// Daemon events: periodic observers (samplers, counter windows, DVFS
  /// governors) that must not keep the simulation alive on their own.
  /// run() returns once only daemon events remain, leaving them pending —
  /// so a self-rescheduling daemon still lets the queue drain, and two
  /// daemons cannot keep each other alive. Ordering among executed events
  /// is the same (time, priority, seq) relation as for normal events.
  void schedule_daemon_at(TimePs t, EventFn fn, int priority = 0);
  void schedule_daemon_in(DurationPs d, EventFn fn, int priority = 0);

  /// Execute the single next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains, `request_stop()` is called, or the event
  /// budget is exhausted (a safety net against runaway simulations).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`, then set now to `t`.
  void run_until(TimePs t);

  /// One epoch window of the tiled engine: execute events with timestamp
  /// <= `limit` in (time, priority, seq) order. With `live_only` the
  /// window additionally stops once no live events remain (run()'s
  /// termination rule); without it daemons keep executing up to the limit
  /// (run_until()'s rule). Honours request_stop() but — unlike run() —
  /// never clears it: the engine owns the stop flag across windows.
  /// Returns the number of events executed.
  std::uint64_t run_window(TimePs limit, bool live_only);

  /// Advance the clock to `t` without executing anything (the tiled
  /// engine's run_until() epilogue). Pre: no pending event earlier than t.
  void advance_to(TimePs t);

  /// Ask run()/run_until() to return after the current event.
  void request_stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }
  void clear_stop() { stop_requested_ = false; }

  /// Number of events executed so far (a cheap progress/determinism probe).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pending events (daemons included) and non-daemon events (run()'s
  /// liveness condition).
  [[nodiscard]] std::size_t pending_events() const { return size_; }
  [[nodiscard]] std::size_t live_events() const { return live_; }

  /// Timestamp of the next pending event; UINT64_MAX when empty.
  [[nodiscard]] TimePs next_event_time() const;

  /// Register a coroutine handle owned by the kernel; it is destroyed at
  /// kernel destruction if still suspended. See process.hpp.
  void adopt(std::coroutine_handle<> h) { adopted_.push_back(h); }

  ~Kernel();

 private:
  // Pooled storage for the callable + daemon flag; the pool index is the
  // only thing the queues carry. Free entries form an intrusive list.
  static constexpr std::uint32_t kNone = UINT32_MAX;
  struct Entry {
    EventFn fn;
    std::uint32_t next_free = kNone;
    bool daemon = false;
  };

  // Trivially-copyable queue record; the full deterministic order is
  // (time asc, priority asc, seq asc) — `seq` is a strict total-order
  // tie-break, so every queue implementation pops an identical sequence.
  struct Node {
    TimePs time;
    std::uint64_t seq;
    std::int32_t priority;
    std::uint32_t idx;
  };
  struct NodeAfter {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  // Original implementation, kept as the selectable baseline: one binary
  // heap whose entries carry the callable (so sifts move closures, as the
  // pre-calendar kernel did).
  struct LegacyEntry {
    TimePs time;
    int priority;
    std::uint64_t seq;
    EventFn fn;
    bool daemon = false;
  };
  struct LegacyAfter {
    bool operator()(const LegacyEntry& a, const LegacyEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void push(TimePs t, EventFn fn, int priority, bool daemon);
  std::uint32_t acquire_entry(EventFn fn, bool daemon);
  void release_entry(std::uint32_t idx);

  void wheel_insert(const Node& n);
  void rebase_from_spill();
  /// First non-empty bucket index >= from. Pre: wheel_count_ > 0.
  [[nodiscard]] std::size_t next_occupied_bucket(std::size_t from) const;
  /// Position cur_bucket_ on the bucket holding the global minimum
  /// (rebasing the wheel from the spill heap if needed). Pre: size_ > 0.
  void settle_min_bucket();
  /// Bucket index of `t` relative to wheel_base_, or >= num_buckets_ when
  /// `t` lies beyond the horizon. Pre: t >= wheel_base_.
  [[nodiscard]] std::uint64_t bucket_offset(TimePs t) const {
    return (t - wheel_base_) >> cfg_.bucket_width_log2;
  }

  bool step_calendar();
  bool step_legacy();

  KernelConfig cfg_;
  std::uint64_t num_buckets_ = 0;  // 2^num_buckets_log2, cached

  // Calendar-policy state.
  std::vector<Entry> pool_;
  std::uint32_t free_head_ = kNone;
  std::vector<std::vector<Node>> buckets_;  // each kept as a min-heap
  // One occupancy bit per bucket: settle_min_bucket() finds the next
  // non-empty bucket with a word scan + countr_zero instead of walking
  // empty buckets one by one (sparse workloads hop many buckets per event).
  std::vector<std::uint64_t> bucket_bits_;
  std::vector<Node> spill_;                 // min-heap beyond the horizon
  TimePs wheel_base_ = 0;
  std::size_t cur_bucket_ = 0;
  std::size_t wheel_count_ = 0;

  // Binary-heap-policy state.
  std::priority_queue<LegacyEntry, std::vector<LegacyEntry>, LegacyAfter>
      legacy_;

  TimePs now_ = 0;
  std::size_t size_ = 0;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::vector<std::coroutine_handle<>> adopted_;
};

}  // namespace rw::sim
