// Discrete-event simulation kernel.
//
// The kernel is the time base for the whole toolkit: the MPSoC platform
// model (Sec. VII's "virtual platform"), the scheduling experiments
// (Sec. II), and the dataflow executors (Sec. III) all advance time by
// posting events here. Determinism is a design requirement — two runs with
// the same seed must produce identical event orders (the foundation of the
// non-intrusive-debugging claims) — so ties in time are broken by an
// explicit priority and then by insertion sequence, never by heap
// implementation details.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace rw::sim {

using EventFn = std::function<void()>;

/// Central event queue and simulated clock.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now). Lower `priority`
  /// runs first among events at the same timestamp.
  void schedule_at(TimePs t, EventFn fn, int priority = 0);

  /// Schedule `fn` after a relative delay.
  void schedule_in(DurationPs d, EventFn fn, int priority = 0);

  /// Daemon events: periodic observers (samplers, counter windows, DVFS
  /// governors) that must not keep the simulation alive on their own.
  /// run() returns once only daemon events remain, leaving them pending —
  /// so a self-rescheduling daemon still lets the queue drain, and two
  /// daemons cannot keep each other alive. Ordering among executed events
  /// is the same (time, priority, seq) relation as for normal events.
  void schedule_daemon_at(TimePs t, EventFn fn, int priority = 0);
  void schedule_daemon_in(DurationPs d, EventFn fn, int priority = 0);

  /// Execute the single next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains, `request_stop()` is called, or the event
  /// budget is exhausted (a safety net against runaway simulations).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`, then set now to `t`.
  void run_until(TimePs t);

  /// Ask run()/run_until() to return after the current event.
  void request_stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }
  void clear_stop() { stop_requested_ = false; }

  /// Number of events executed so far (a cheap progress/determinism probe).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Pending non-daemon events (run()'s liveness condition).
  [[nodiscard]] std::size_t live_events() const { return live_; }

  /// Timestamp of the next pending event; UINT64_MAX when empty.
  [[nodiscard]] TimePs next_event_time() const {
    return queue_.empty() ? UINT64_MAX : queue_.top().time;
  }

  /// Register a coroutine handle owned by the kernel; it is destroyed at
  /// kernel destruction if still suspended. See process.hpp.
  void adopt(std::coroutine_handle<> h) { adopted_.push_back(h); }

  ~Kernel();

 private:
  struct Entry {
    TimePs time;
    int priority;
    std::uint64_t seq;
    EventFn fn;
    bool daemon = false;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void push(TimePs t, EventFn fn, int priority, bool daemon);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimePs now_ = 0;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::vector<std::coroutine_handle<>> adopted_;
};

}  // namespace rw::sim
