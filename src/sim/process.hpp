// Coroutine-based simulation processes.
//
// Software running on the virtual platform (CIC tasks, dataflow actors,
// debug victims) is written as ordinary C++20 coroutines that co_await
// simulated time and communication. This gives application code the
// sequential, run-to-completion shape Sec. II argues for while the kernel
// interleaves processes deterministically.
//
// Ownership: a Process created by calling a coroutine function must be
// handed to spawn(), which transfers the frame to the Kernel. The kernel
// destroys every adopted frame at teardown, so processes may be abandoned
// mid-execution (e.g. when a bench stops the simulation early).
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"

namespace rw::sim {

class Process {
 public:
  struct promise_type {
    Kernel* kernel = nullptr;
    bool finished = false;

    Process get_return_object() {
      return Process{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept {
      finished = true;
      return {};
    }
    void return_void() {}
    void unhandled_exception() {
      // A throwing process is a broken model, not a recoverable condition:
      // surface it immediately instead of deadlocking its communication
      // partners.
      std::rethrow_exception(std::current_exception());
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;

  ~Process() {
    // Only reached if the Process was never spawned.
    if (handle_) handle_.destroy();
  }

  /// Used by spawn(); releases frame ownership to the caller.
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  explicit Process(Handle h) : handle_(h) {}
  Handle handle_ = nullptr;
};

/// Start a process: the kernel adopts the frame and resumes it at the
/// current simulation time (priority 0).
inline void spawn(Kernel& kernel, Process p) {
  auto h = p.release();
  h.promise().kernel = &kernel;
  kernel.adopt(h);
  kernel.schedule_at(kernel.now(), [h] {
    if (!h.done()) h.resume();
  });
}

/// co_await delay(kernel, d): suspend for d picoseconds of simulated time.
struct DelayAwaitable {
  Kernel& kernel;
  DurationPs duration;
  int priority = 0;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    kernel.schedule_in(duration, [h] { h.resume(); }, priority);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaitable delay(Kernel& kernel, DurationPs d, int priority = 0) {
  return DelayAwaitable{kernel, d, priority};
}

/// Broadcast condition: all current waiters are resumed when fire() runs.
/// Later waiters wait for the next fire. Resumption happens as kernel
/// events at the fire time, preserving deterministic ordering.
class Trigger {
 public:
  explicit Trigger(Kernel& kernel) : kernel_(kernel) {}

  struct Awaitable {
    Trigger& trigger;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaitable wait() { return Awaitable{*this}; }

  /// Wake all present waiters at the current time.
  void fire() {
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken) {
      kernel_.schedule_at(kernel_.now(), [h] {
        if (!h.done()) h.resume();
      });
    }
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Kernel& kernel_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace rw::sim
