// Platform memory model.
//
// Sec. II argues for "strict enforcement of locality, at least for on-chip
// memory": per-core scratchpads plus an optional small shared region. The
// model backs every region with real bytes so that races, corruption and
// debugger inspection (Sec. VII: "illegal access to memories ... can be
// easily identified") are observable facts, not abstractions. Locality
// enforcement is optional and, when enabled, faults any access by a core to
// another core's local memory.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

using Addr = std::uint64_t;

struct RegionTag {};
using RegionId = Id<RegionTag>;

/// One mapped memory region.
struct Region {
  RegionId id{};
  std::string name;
  Addr base = 0;
  std::uint64_t size = 0;
  Cycles access_latency = 1;   // cycles per access at the accessing core
  CoreId owner{};              // valid => core-local scratchpad
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] bool contains(Addr a, std::uint64_t len) const {
    return a >= base && a + len <= base + size;
  }
  [[nodiscard]] bool is_local() const { return owner.is_valid(); }
};

/// A memory access, as seen by watchpoint observers and the race detector.
struct MemAccess {
  TimePs time = 0;
  CoreId core{};
  Addr addr = 0;
  std::uint32_t size = 0;
  bool is_write = false;
  std::uint64_t value = 0;  // value written / value read
};

/// Address-mapped collection of regions with access observers.
class MemorySystem {
 public:
  MemorySystem(Kernel& kernel, Tracer& tracer)
      : kernel_(kernel), tracer_(tracer) {}

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Map a new region; `base` must not overlap an existing region.
  RegionId add_region(std::string name, Addr base, std::uint64_t size,
                      Cycles access_latency, CoreId owner = CoreId{});

  [[nodiscard]] const Region* find_region(Addr a) const;
  [[nodiscard]] const Region& region(RegionId id) const {
    return regions_.at(id.index());
  }
  [[nodiscard]] const std::vector<Region>& regions() const {
    return regions_;
  }

  /// When enabled, a core touching another core's local region is a
  /// locality violation: the access is counted and (configurably) faulted.
  void set_enforce_locality(bool on) { enforce_locality_ = on; }
  [[nodiscard]] std::uint64_t locality_violations() const {
    return locality_violations_;
  }

  /// Typed accessors. Addresses must fall inside a mapped region; access
  /// outside any region throws (the "illegal access" of Sec. VII is
  /// reported through the trace before the throw).
  std::uint64_t read_u64(CoreId core, Addr a);
  void write_u64(CoreId core, Addr a, std::uint64_t v);
  std::uint32_t read_u32(CoreId core, Addr a);
  void write_u32(CoreId core, Addr a, std::uint32_t v);
  void read_block(CoreId core, Addr a, std::span<std::uint8_t> out);
  void write_block(CoreId core, Addr a, std::span<const std::uint8_t> in);

  /// Latency of one access to the region containing `a`, in cycles at the
  /// accessing core (the caller turns this into time at its frequency).
  [[nodiscard]] Cycles latency_for(Addr a) const;

  /// Observers run synchronously on every access (debugger watchpoints,
  /// race detector). Return value ignored; observers may stop the kernel.
  using Observer = std::function<void(const MemAccess&)>;
  std::size_t add_observer(Observer fn) {
    observers_.push_back(std::move(fn));
    return observers_.size() - 1;
  }
  void clear_observers() { observers_.clear(); }

  /// Raw (unobserved, zero-latency) access for loaders and checkers.
  void poke(Addr a, std::span<const std::uint8_t> in);
  void peek(Addr a, std::span<std::uint8_t> out) const;

  /// PMU observation point; nullptr (the default) disables all hooks.
  /// poke/peek are loader back-doors and are deliberately not counted.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }

 private:
  Region& region_for(Addr a, std::uint64_t len, CoreId core, bool is_write);
  void notify(const MemAccess& acc);
  void count_access(const Region& r, CoreId core, bool is_write,
                    std::uint32_t bytes) {
    if (perf_)
      perf_->on_mem_access(core, is_write, r.is_local() && r.owner == core,
                           bytes, r.access_latency);
  }

  Kernel& kernel_;
  Tracer& tracer_;
  PerfSink* perf_ = nullptr;
  std::vector<Region> regions_;
  std::vector<Observer> observers_;
  bool enforce_locality_ = false;
  std::uint64_t locality_violations_ = 0;
};

}  // namespace rw::sim
