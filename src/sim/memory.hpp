// Platform memory model.
//
// Sec. II argues for "strict enforcement of locality, at least for on-chip
// memory": per-core scratchpads plus an optional small shared region. The
// model backs every region with real bytes so that races, corruption and
// debugger inspection (Sec. VII: "illegal access to memories ... can be
// easily identified") are observable facts, not abstractions. Locality
// enforcement is optional and, when enabled, faults any access by a core to
// another core's local memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

using Addr = std::uint64_t;

struct RegionTag {};
using RegionId = Id<RegionTag>;

/// One mapped memory region.
struct Region {
  RegionId id{};
  std::string name;
  Addr base = 0;
  std::uint64_t size = 0;
  Cycles access_latency = 1;   // cycles per access at the accessing core
  CoreId owner{};              // valid => core-local scratchpad
  std::vector<std::uint8_t> bytes;

  /// Tile partition (parallel.hpp): the region's state belongs to one
  /// tile, and accesses are timestamped/traced on that tile's kernel and
  /// tracer. Null clock/trace means tile 0 — the MemorySystem's own
  /// kernel and tracer — which is every region on an untiled platform.
  std::uint32_t tile = 0;
  Kernel* clock = nullptr;
  Tracer* trace = nullptr;

  [[nodiscard]] bool contains(Addr a, std::uint64_t len) const {
    return a >= base && a + len <= base + size;
  }
  [[nodiscard]] bool is_local() const { return owner.is_valid(); }
};

/// A memory access, as seen by watchpoint observers and the race detector.
struct MemAccess {
  TimePs time = 0;
  CoreId core{};
  Addr addr = 0;
  std::uint32_t size = 0;
  bool is_write = false;
  std::uint64_t value = 0;  // value written / value read
};

/// Address-mapped collection of regions with access observers.
class MemorySystem {
 public:
  MemorySystem(Kernel& kernel, Tracer& tracer)
      : kernel_(kernel), tracer_(tracer) {}

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Map a new region; `base` must not overlap an existing region.
  RegionId add_region(std::string name, Addr base, std::uint64_t size,
                      Cycles access_latency, CoreId owner = CoreId{});

  [[nodiscard]] const Region* find_region(Addr a) const;
  [[nodiscard]] const Region& region(RegionId id) const {
    return regions_.at(id.index());
  }
  [[nodiscard]] const std::vector<Region>& regions() const {
    return regions_;
  }

  /// When enabled, a core touching another core's local region is a
  /// locality violation: the access is counted and (configurably) faulted.
  void set_enforce_locality(bool on) { enforce_locality_ = on; }
  [[nodiscard]] std::uint64_t locality_violations() const {
    return locality_violations_.load(std::memory_order_relaxed);
  }

  /// Typed accessors. Addresses must fall inside a mapped region; access
  /// outside any region throws (the "illegal access" of Sec. VII is
  /// reported through the trace before the throw).
  std::uint64_t read_u64(CoreId core, Addr a);
  void write_u64(CoreId core, Addr a, std::uint64_t v);
  std::uint32_t read_u32(CoreId core, Addr a);
  void write_u32(CoreId core, Addr a, std::uint32_t v);
  void read_block(CoreId core, Addr a, std::span<std::uint8_t> out);
  void write_block(CoreId core, Addr a, std::span<const std::uint8_t> in);

  /// Latency of one access to the region containing `a`, in cycles at the
  /// accessing core (the caller turns this into time at its frequency).
  [[nodiscard]] Cycles latency_for(Addr a) const;

  /// Observers run synchronously on every access (debugger watchpoints,
  /// race detector). Return value ignored; observers may stop the kernel.
  using Observer = std::function<void(const MemAccess&)>;
  std::size_t add_observer(Observer fn) {
    observers_.push_back(std::move(fn));
    return observers_.size() - 1;
  }
  void clear_observers() { observers_.clear(); }

  /// Raw (unobserved, zero-latency) access for loaders and checkers.
  void poke(Addr a, std::span<const std::uint8_t> in);
  void peek(Addr a, std::span<std::uint8_t> out) const;

  /// PMU observation point; nullptr (the default) disables all hooks.
  /// poke/peek are loader back-doors and are deliberately not counted.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }

  /// Tile partition plumbing (set by Platform when num_tiles > 1).
  /// set_region_context() rebinds a region to a tile's kernel/tracer;
  /// set_core_tiles() installs the core -> tile map that arms the
  /// cross-tile access guard: a core touching a region on another tile is
  /// a programming error under conservative sync (the tiles' clocks are
  /// not ordered inside an epoch), so the access throws. The shared
  /// region stays on tile 0 and is only reachable from tile-0 cores.
  void set_region_context(RegionId id, std::uint32_t tile, Kernel* clock,
                          Tracer* trace);
  void set_core_tiles(std::vector<std::uint32_t> tiles) {
    core_tiles_ = std::move(tiles);
  }

 private:
  Region& region_for(Addr a, std::uint64_t len, CoreId core, bool is_write);
  void notify(const MemAccess& acc);
  [[nodiscard]] Kernel& clock_of(const Region& r) const {
    return r.clock != nullptr ? *r.clock : kernel_;
  }
  [[nodiscard]] Tracer& tracer_of(const Region& r) const {
    return r.trace != nullptr ? *r.trace : tracer_;
  }
  void count_access(const Region& r, CoreId core, bool is_write,
                    std::uint32_t bytes) {
    if (perf_)
      perf_->on_mem_access(core, is_write, r.is_local() && r.owner == core,
                           bytes, r.access_latency);
  }

  Kernel& kernel_;
  Tracer& tracer_;
  PerfSink* perf_ = nullptr;
  std::vector<Region> regions_;
  std::vector<Observer> observers_;
  std::vector<std::uint32_t> core_tiles_;  // empty == untiled, no guard
  bool enforce_locality_ = false;
  // Atomic only because two tiles may fault locally at the same instant;
  // the count itself stays deterministic (each tile's faults are).
  std::atomic<std::uint64_t> locality_violations_{0};
};

}  // namespace rw::sim
