// On-chip interconnect models: shared bus and 2-D mesh NoC.
//
// Sec. II-A asks for a "scalable, fast and low-latency chip interconnect"
// and warns that centralized constructs inhibit scalability. Both claims
// need a contention model to be testable: the shared bus serializes all
// traffic (the centralized construct), the mesh distributes it. Transfers
// are modelled transactionally: a reservation returns start/finish times
// honouring prior traffic on each resource.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

/// Abstract transfer fabric between cores.
class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Reserve fabric resources for a `bytes`-sized transfer from core
  /// `src` to core `dst` starting no earlier than `earliest`.
  /// Returns {start, finish}.
  virtual std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                                     std::uint64_t bytes,
                                                     TimePs earliest) = 0;

  /// Pure latency (no contention) of such a transfer, for planners.
  [[nodiscard]] virtual DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;

  /// Aggregate time transfers spent waiting for busy fabric resources.
  [[nodiscard]] DurationPs total_contention() const { return contention_; }
  [[nodiscard]] std::uint64_t transfer_count() const { return transfers_; }

  /// PMU observation point; nullptr (the default) disables all hooks.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }

 protected:
  DurationPs contention_ = 0;
  std::uint64_t transfers_ = 0;
  PerfSink* perf_ = nullptr;
};

/// Single shared bus: every transfer serializes through one arbiter —
/// the archetypal "centralized construct".
class SharedBus final : public Interconnect {
 public:
  struct Config {
    HertzT frequency = mhz(200);
    std::uint32_t width_bytes = 8;     // bytes moved per bus cycle
    Cycles arbitration_cycles = 4;     // per-transfer arbitration overhead
  };

  SharedBus(Kernel& kernel, Config cfg) : kernel_(kernel), cfg_(cfg) {}

  std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                             std::uint64_t bytes,
                                             TimePs earliest) override;
  [[nodiscard]] DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  [[nodiscard]] DurationPs transfer_duration(std::uint64_t bytes) const;

  Kernel& kernel_;
  Config cfg_;
  TimePs busy_until_ = 0;
};

/// 2-D mesh NoC with dimension-ordered (XY) routing and per-link
/// serialization; distributed by construction.
class MeshNoc final : public Interconnect {
 public:
  struct Config {
    std::uint32_t width = 4;         // mesh columns
    std::uint32_t height = 4;        // mesh rows
    DurationPs hop_latency = nanoseconds(5);
    HertzT link_frequency = mhz(500);
    std::uint32_t link_width_bytes = 4;
  };

  MeshNoc(Kernel& kernel, Config cfg);

  std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                             std::uint64_t bytes,
                                             TimePs earliest) override;
  [[nodiscard]] DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const override;
  [[nodiscard]] std::string describe() const override;

  /// Number of mesh hops between two cores (XY route length).
  [[nodiscard]] std::uint32_t hop_count(CoreId src, CoreId dst) const;

 private:
  struct Coord {
    std::uint32_t x, y;
  };
  [[nodiscard]] Coord coord_of(CoreId c) const;
  /// Directed link index from node (x,y) towards a neighbour.
  [[nodiscard]] std::size_t link_index(Coord from, Coord to) const;
  [[nodiscard]] std::vector<std::size_t> route(CoreId src, CoreId dst) const;
  [[nodiscard]] DurationPs serialization_time(std::uint64_t bytes) const;

  Kernel& kernel_;
  Config cfg_;
  std::vector<TimePs> link_busy_until_;
};

}  // namespace rw::sim
