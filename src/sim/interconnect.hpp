// On-chip interconnect models: shared bus and 2-D mesh NoC.
//
// Sec. II-A asks for a "scalable, fast and low-latency chip interconnect"
// and warns that centralized constructs inhibit scalability. Both claims
// need a contention model to be testable: the shared bus serializes all
// traffic (the centralized construct), the mesh distributes it. Transfers
// are modelled transactionally: a reservation returns start/finish times
// honouring prior traffic on each resource.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

/// Abstract transfer fabric between cores.
class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Reserve fabric resources for a `bytes`-sized transfer from core
  /// `src` to core `dst` starting no earlier than `earliest`.
  /// Returns {start, finish}.
  virtual std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                                     std::uint64_t bytes,
                                                     TimePs earliest) = 0;

  /// Pure latency (no contention) of such a transfer, for planners.
  [[nodiscard]] virtual DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;

  /// Aggregate time transfers spent waiting for busy fabric resources.
  [[nodiscard]] DurationPs total_contention() const { return contention_; }
  [[nodiscard]] std::uint64_t transfer_count() const { return transfers_; }

  /// PMU observation point; nullptr (the default) disables all hooks.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }

  /// Fault model (rw::fault). set_degrade() scales every subsequent
  /// transfer's occupancy by `factor` (>= 1.0; 1.0 restores nominal) —
  /// a degraded link that still delivers, just slower. inject_drops()
  /// arms the next `n` transfers to each lose one packet: the transfer
  /// occupies the fabric twice as long (drop + retransmit) and counts in
  /// packets_dropped(). nominal_latency() stays un-faulted on purpose:
  /// it is the *planner's* view, and the gap between plan and faulted
  /// reality is exactly what E14 measures.
  void set_degrade(double factor) { degrade_ = factor < 1.0 ? 1.0 : factor; }
  void inject_drops(std::uint64_t n) { pending_drops_ += n; }
  [[nodiscard]] double degrade_factor() const { return degrade_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }

 protected:
  /// Apply the fault model to a nominal occupancy. Consumes one pending
  /// drop if armed (retransmit doubles the time on the wire).
  [[nodiscard]] DurationPs faulted(DurationPs nominal) {
    if (degrade_ == 1.0 && pending_drops_ == 0) return nominal;  // exact
    auto d = static_cast<DurationPs>(static_cast<double>(nominal) * degrade_);
    if (pending_drops_ > 0) {
      --pending_drops_;
      ++dropped_;
      d *= 2;
    }
    return d;
  }

  DurationPs contention_ = 0;
  std::uint64_t transfers_ = 0;
  double degrade_ = 1.0;
  std::uint64_t pending_drops_ = 0;
  std::uint64_t dropped_ = 0;
  PerfSink* perf_ = nullptr;
};

/// Single shared bus: every transfer serializes through one arbiter —
/// the archetypal "centralized construct".
class SharedBus final : public Interconnect {
 public:
  struct Config {
    HertzT frequency = mhz(200);
    std::uint32_t width_bytes = 8;     // bytes moved per bus cycle
    Cycles arbitration_cycles = 4;     // per-transfer arbitration overhead
  };

  SharedBus(Kernel& kernel, Config cfg) : kernel_(kernel), cfg_(cfg) {}

  std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                             std::uint64_t bytes,
                                             TimePs earliest) override;
  [[nodiscard]] DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  [[nodiscard]] DurationPs transfer_duration(std::uint64_t bytes) const;

  Kernel& kernel_;
  Config cfg_;
  TimePs busy_until_ = 0;
};

/// 2-D mesh NoC with dimension-ordered (XY) routing and per-link
/// serialization; distributed by construction.
class MeshNoc final : public Interconnect {
 public:
  struct Config {
    std::uint32_t width = 4;         // mesh columns
    std::uint32_t height = 4;        // mesh rows
    DurationPs hop_latency = nanoseconds(5);
    HertzT link_frequency = mhz(500);
    std::uint32_t link_width_bytes = 4;
  };

  MeshNoc(Kernel& kernel, Config cfg);

  std::pair<TimePs, TimePs> reserve_transfer(CoreId src, CoreId dst,
                                             std::uint64_t bytes,
                                             TimePs earliest) override;
  [[nodiscard]] DurationPs nominal_latency(
      CoreId src, CoreId dst, std::uint64_t bytes) const override;
  [[nodiscard]] std::string describe() const override;

  /// Number of mesh hops between two cores (XY route length).
  [[nodiscard]] std::uint32_t hop_count(CoreId src, CoreId dst) const;

  /// Directed link indices of the XY route between two cores, in traversal
  /// order (empty when src and dst map to the same node).
  [[nodiscard]] std::vector<std::size_t> route_links(CoreId src,
                                                     CoreId dst) const {
    return route(src, dst);
  }

  /// Per-link fault: scale the occupancy of one directed link (on top of
  /// the fabric-wide set_degrade factor). factor < 1.0 clamps to 1.0.
  void set_link_degrade(std::size_t link, double factor);
  [[nodiscard]] double link_degrade(std::size_t link) const;
  [[nodiscard]] std::size_t num_links() const {
    return link_busy_until_.size();
  }

 private:
  struct Coord {
    std::uint32_t x, y;
  };
  [[nodiscard]] Coord coord_of(CoreId c) const;
  /// Directed link index from node (x,y) towards a neighbour.
  [[nodiscard]] std::size_t link_index(Coord from, Coord to) const;
  [[nodiscard]] std::vector<std::size_t> route(CoreId src, CoreId dst) const;
  [[nodiscard]] DurationPs serialization_time(std::uint64_t bytes) const;

  Kernel& kernel_;
  Config cfg_;
  std::vector<TimePs> link_busy_until_;
  std::vector<double> link_degrade_;  // lazily sized; empty == all nominal
};

/// Static fabric timing model, exposed as pure functions of the configs so
/// trace-driven analysis (rw::critpath) can replay exactly the arithmetic
/// the live fabric uses — any drift between the two would silently bias
/// what-if predictions, so the member functions delegate here.
[[nodiscard]] DurationPs bus_transfer_duration(const SharedBus::Config& cfg,
                                               std::uint64_t bytes);
[[nodiscard]] DurationPs mesh_serialization_time(const MeshNoc::Config& cfg,
                                                 std::uint64_t bytes);
/// XY-route directed link indices between two cores under `cfg`'s
/// geometry (same encoding as MeshNoc: node*4 + direction).
[[nodiscard]] std::vector<std::size_t> mesh_route(const MeshNoc::Config& cfg,
                                                  CoreId src, CoreId dst);

/// Smallest latency the fabric can impose on any cross-core message — the
/// conservative lookahead floor of the tiled engine (parallel.hpp). For
/// the bus it is the per-transfer arbitration overhead (paid before the
/// first beat lands); for the mesh it is one hop's latency. A config that
/// makes these zero cannot bound cross-tile causality and is rejected by
/// validate_tiling().
[[nodiscard]] DurationPs bus_min_latency(const SharedBus::Config& cfg);
[[nodiscard]] DurationPs mesh_min_latency(const MeshNoc::Config& cfg);

}  // namespace rw::sim
