// Tile-partitioned parallel simulation (conservative lookahead sync).
//
// The platform decomposes into tiles — a set of cores with their local
// scratchpads and a fabric endpoint stub — each running its own Kernel
// event queue. Tiles synchronize conservatively, SystemC/TLM2 style: every
// epoch the engine takes the global minimum next-event time `m` and lets
// each tile execute its window of events with timestamps in
// [m, m + L - 1], where the lookahead L = sim::min_cross_tile_latency() is
// the smallest latency the fabric can impose on any cross-tile message
// (bus arbitration floor / one mesh hop). Cross-tile events travel through
// per-(src,dst) timestamped mailboxes and are drained at the epoch
// barrier, merged into the destination wheel in (time, priority, src tile,
// emission seq) order.
//
// Determinism proof sketch (the full version lives in DESIGN.md):
//   1. A message posted from a window event at time u carries a timestamp
//      t >= u + L >= m + L, i.e. strictly beyond every timestamp the
//      current windows may execute — so no tile can ever receive an event
//      it should already have run (conservative safety).
//   2. Within a tile, events execute in the kernel's strict (time,
//      priority, seq) total order; mailbox merges happen between windows
//      in a fixed sort order, so destination seq numbers are assigned
//      identically on every run.
//   3. Tiles share no mutable state (enforced by the memory system's
//      cross-tile access guard), so the interleaving of two tiles'
//      windows cannot be observed by either.
// Therefore the execution each tile performs is a pure function of the
// epoch schedule, which is itself computed single-threaded at barriers —
// and ExecMode::kParallel (one worker thread per tile) is bit-identical
// to ExecMode::kSequential (tile windows iterated in order) by
// construction. The sequential mode is the reference; the parallel mode
// only buys wall-clock time.
//
// Worker threads come out of the process-wide thread budget
// (common/thread_budget.hpp). When the budget is exhausted — e.g. inside
// a harness sweep that already owns the machine — the engine silently
// falls back to sequential execution, which is safe precisely because of
// the identity above.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "sim/kernel.hpp"

namespace rw::sim {

struct PlatformConfig;

/// Smallest latency the platform's fabric can impose on a cross-tile
/// message: the conservative lookahead bound. Zero means the config
/// cannot support tiled execution (validate_tiling rejects it).
[[nodiscard]] DurationPs min_cross_tile_latency(const PlatformConfig& cfg);

/// Typed validation of a config's tiling parameters: rejects
/// num_tiles == 0, num_tiles > core count, core tile indices out of
/// range, and zero-lookahead fabrics (a 0-latency cross-tile link would
/// degenerate conservative sync to lockstep). num_tiles == 1 is always
/// valid — it is the plain sequential kernel.
[[nodiscard]] Status validate_tiling(const PlatformConfig& cfg);

/// Configure `cfg` for parallel tiled execution with (up to) `num_tiles`
/// tiles — the CLI --threads entry point. Clamps to the core count; 1 is
/// a no-op (sequential reference). With `partition_cores` the cores are
/// spread over the tiles in contiguous balanced blocks; without it every
/// core stays on tile 0 (legal: the extra tiles idle, which is how
/// workloads with cross-core shared state run under --threads).
void apply_tiling(PlatformConfig& cfg, std::uint32_t num_tiles,
                  bool partition_cores);

/// Drives one Kernel per tile through barrier-synchronized epoch windows.
/// Owned by Platform when KernelConfig::num_tiles > 1; tests may also
/// build one directly over bare kernels.
class TiledEngine {
 public:
  struct Options {
    ExecMode mode = ExecMode::kSequential;
    /// Testing hook: spawn worker threads even when the thread budget is
    /// exhausted (the TSan racing-mailbox tests must exercise real
    /// threads on any machine).
    bool force_threads = false;
  };

  /// `kernels` are borrowed, one per tile, and must outlive the engine.
  /// `lookahead` must be positive.
  TiledEngine(std::vector<Kernel*> kernels, DurationPs lookahead,
              Options opts);
  TiledEngine(const TiledEngine&) = delete;
  TiledEngine& operator=(const TiledEngine&) = delete;

  /// Post an event into another tile, from inside a window of tile
  /// `src`. The timestamp must respect the lookahead contract
  /// (t >= src tile's now + lookahead); it lands in the (src,dst)
  /// mailbox and is merged into dst's queue at the next epoch barrier.
  void post(std::uint32_t src, std::uint32_t dst, TimePs t, EventFn fn,
            int priority = 0, bool daemon = false);

  /// Tiled analogue of Kernel::run(): epochs until no live events remain
  /// anywhere (mailboxes included), a stop is requested on any tile, or
  /// the event budget is exhausted. The budget is checked at epoch
  /// barriers, so it is an approximate safety net, not an exact count.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Tiled analogue of Kernel::run_until(): run all events (daemons
  /// included) with timestamp <= t, then advance every tile's clock to t.
  void run_until(TimePs t);

  [[nodiscard]] std::size_t tile_count() const { return tiles_.size(); }
  [[nodiscard]] DurationPs lookahead() const { return lookahead_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  void set_mode(ExecMode mode) { opts_.mode = mode; }
  void set_force_threads(bool on) { opts_.force_threads = on; }

  /// Epoch barriers crossed and cross-tile messages merged so far.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t cross_posts() const { return cross_posts_; }
  /// Whether the last run()/run_until() actually used worker threads
  /// (false in sequential mode and on thread-budget fallback).
  [[nodiscard]] bool last_run_parallel() const { return last_parallel_; }

  /// Sum of events executed across tiles / max of tile clocks.
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] TimePs now() const;

 private:
  struct Mail {
    TimePs time;
    std::int32_t priority;
    std::uint32_t src;
    std::uint64_t seq;  // per-(src,dst) emission counter
    EventFn fn;
    bool daemon;
  };

  /// Merge every mailbox into its destination kernel, in (time, priority,
  /// src, seq) order per destination. Runs single-threaded at barriers.
  void drain_mailboxes();
  /// Shared epoch driver for run()/run_until(); `until` bounds windows
  /// (UINT64_MAX for run()), `live_gated` selects run()'s termination.
  void run_epochs(TimePs until, std::uint64_t max_events, bool live_gated);
  /// Compute the next window into window_limit_/window_live_only_.
  /// Returns false when this epoch terminates the run.
  bool plan_epoch(TimePs until, std::uint64_t max_events,
                  std::uint64_t base_executed, bool live_gated);

  std::vector<Kernel*> tiles_;
  DurationPs lookahead_;
  Options opts_;

  std::vector<std::vector<Mail>> mail_;  // [src * T + dst]
  std::vector<std::uint64_t> mail_seq_;  // per-pair emission counters
  std::vector<Mail> merge_scratch_;

  // Window parameters for the current epoch: written by the coordinator
  // between barriers, read by workers inside the window phase (the
  // barrier provides the ordering).
  TimePs window_limit_ = 0;
  std::vector<std::uint8_t> window_live_only_;
  bool done_ = false;

  std::uint64_t epochs_ = 0;
  std::uint64_t cross_posts_ = 0;
  bool last_parallel_ = false;
  bool running_ = false;
};

}  // namespace rw::sim
