// Virtual platform assembly.
//
// A Platform is the "functionally accurate simulator of a SoC" of Sec. VII:
// cores, memory map, interconnect and the shared peripherals, all on one
// deterministic event kernel. Construction is configuration-driven so the
// benches can sweep core counts, interconnect types and frequencies.
#pragma once

#include <memory>
#include <vector>

#include "sim/core.hpp"
#include "sim/interconnect.hpp"
#include "sim/kernel.hpp"
#include "sim/memory.hpp"
#include "sim/peripherals.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

struct PlatformConfig {
  struct CoreCfg {
    PeClass cls = PeClass::kRisc;
    HertzT frequency = mhz(400);
    std::uint64_t scratchpad_bytes = 64 * 1024;
  };

  std::vector<CoreCfg> cores;

  std::uint64_t shared_mem_bytes = 1 << 20;
  Cycles shared_mem_latency = 12;  // cycles per access (uncontended)
  Cycles scratchpad_latency = 1;

  enum class Icn { kSharedBus, kMesh } interconnect = Icn::kSharedBus;
  SharedBus::Config bus;
  MeshNoc::Config mesh;

  /// Event-queue implementation and calendar-wheel geometry. The policy
  /// choice must never be observable in simulation results; the kernel
  /// determinism tests hold platforms to that across the workload corpus.
  KernelConfig kernel;

  bool enforce_locality = false;
  bool trace_enabled = false;

  /// Homogeneous platform: `n` identical RISC cores (Sec. II's preferred
  /// architecture).
  static PlatformConfig homogeneous(std::size_t n, HertzT freq = mhz(400));

  /// Heterogeneous example platform: RISC control cores + DSPs (the
  /// "wireless multimedia terminal" shape MAPS targets, Sec. IV).
  static PlatformConfig heterogeneous(std::size_t riscs, std::size_t dsps);
};

/// Fixed memory-map constants.
inline constexpr Addr kScratchpadBase = 0x1000'0000;
inline constexpr Addr kScratchpadStride = 0x0010'0000;
inline constexpr Addr kSharedBase = 0x8000'0000;

/// IRQ line assignments.
inline constexpr std::size_t kIrqTimer = 0;
inline constexpr std::size_t kIrqDma = 1;
inline constexpr std::size_t kIrqSoftBase = 8;  // first software IRQ line

class Platform {
 public:
  explicit Platform(PlatformConfig cfg);
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] MemorySystem& memory() { return memory_; }
  [[nodiscard]] Interconnect& interconnect() { return *icn_; }
  [[nodiscard]] InterruptController& irqc() { return *irqc_; }
  [[nodiscard]] TimerPeripheral& timer() { return *timer_; }
  [[nodiscard]] DmaEngine& dma() { return *dma_; }
  [[nodiscard]] HwSemaphores& hwsem() { return *hwsem_; }

  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] Core& core(CoreId id) { return *cores_.at(id.index()); }
  [[nodiscard]] Core& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] const std::vector<std::unique_ptr<Core>>& cores() const {
    return cores_;
  }

  /// Memory-map lookups.
  [[nodiscard]] Addr scratchpad_base(CoreId id) const {
    return kScratchpadBase + id.value() * kScratchpadStride;
  }
  [[nodiscard]] Addr shared_base() const { return kSharedBase; }

  /// All peripherals, for the debugger's register view.
  [[nodiscard]] std::vector<Peripheral*> peripherals();

  /// Attach/detach a PMU observation sink on every instrumented component
  /// (cores, memory, interconnect, DMA). Passing nullptr detaches; with no
  /// sink attached every hook site reduces to one null check and the
  /// simulation is bit-identical to an unobserved run.
  void set_perf_sink(PerfSink* sink);

  [[nodiscard]] const PlatformConfig& config() const { return cfg_; }

 private:
  PlatformConfig cfg_;
  Kernel kernel_;
  Tracer tracer_;
  MemorySystem memory_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<Interconnect> icn_;
  std::unique_ptr<InterruptController> irqc_;
  std::unique_ptr<TimerPeripheral> timer_;
  std::unique_ptr<DmaEngine> dma_;
  std::unique_ptr<HwSemaphores> hwsem_;
};

}  // namespace rw::sim
