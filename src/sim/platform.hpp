// Virtual platform assembly.
//
// A Platform is the "functionally accurate simulator of a SoC" of Sec. VII:
// cores, memory map, interconnect and the shared peripherals, all on one
// deterministic event kernel. Construction is configuration-driven so the
// benches can sweep core counts, interconnect types and frequencies.
#pragma once

#include <memory>
#include <vector>

#include "common/result.hpp"
#include "sim/core.hpp"
#include "sim/interconnect.hpp"
#include "sim/kernel.hpp"
#include "sim/memory.hpp"
#include "sim/parallel.hpp"
#include "sim/peripherals.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

struct PlatformConfig {
  struct CoreCfg {
    PeClass cls = PeClass::kRisc;
    HertzT frequency = mhz(400);
    std::uint64_t scratchpad_bytes = 64 * 1024;
    /// Tile the core (and its scratchpad) belongs to when
    /// kernel.num_tiles > 1; must be < num_tiles (validate()).
    std::uint32_t tile = 0;
  };

  std::vector<CoreCfg> cores;

  std::uint64_t shared_mem_bytes = 1 << 20;
  Cycles shared_mem_latency = 12;  // cycles per access (uncontended)
  Cycles scratchpad_latency = 1;

  enum class Icn { kSharedBus, kMesh } interconnect = Icn::kSharedBus;
  SharedBus::Config bus;
  MeshNoc::Config mesh;

  /// Event-queue implementation and calendar-wheel geometry. The policy
  /// choice must never be observable in simulation results; the kernel
  /// determinism tests hold platforms to that across the workload corpus.
  KernelConfig kernel;

  bool enforce_locality = false;
  bool trace_enabled = false;

  /// Typed validation of the tiling parameters (kernel.num_tiles vs the
  /// core list, per-core tile indices, fabric lookahead). The Platform
  /// constructor enforces this; callers that want an error value instead
  /// of a throw check it first.
  [[nodiscard]] Status validate() const;

  /// Homogeneous platform: `n` identical RISC cores (Sec. II's preferred
  /// architecture).
  static PlatformConfig homogeneous(std::size_t n, HertzT freq = mhz(400));

  /// Heterogeneous example platform: RISC control cores + DSPs (the
  /// "wireless multimedia terminal" shape MAPS targets, Sec. IV).
  static PlatformConfig heterogeneous(std::size_t riscs, std::size_t dsps);
};

/// Fixed memory-map constants.
inline constexpr Addr kScratchpadBase = 0x1000'0000;
inline constexpr Addr kScratchpadStride = 0x0010'0000;
inline constexpr Addr kSharedBase = 0x8000'0000;

/// IRQ line assignments.
inline constexpr std::size_t kIrqTimer = 0;
inline constexpr std::size_t kIrqDma = 1;
inline constexpr std::size_t kIrqSoftBase = 8;  // first software IRQ line

class Platform {
 public:
  explicit Platform(PlatformConfig cfg);
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] MemorySystem& memory() { return memory_; }

  /// Tile partition (kernel.num_tiles > 1). Tile 0 is the platform's
  /// primary kernel/tracer — on an untiled platform it is the only one,
  /// and engine() is nullptr.
  [[nodiscard]] std::size_t tile_count() const {
    return 1 + extra_kernels_.size();
  }
  [[nodiscard]] Kernel& tile_kernel(std::uint32_t t) {
    return t == 0 ? kernel_ : *extra_kernels_.at(t - 1);
  }
  [[nodiscard]] Tracer& tile_tracer(std::uint32_t t) {
    return t == 0 ? tracer_ : *extra_tracers_.at(t - 1);
  }
  [[nodiscard]] std::uint32_t tile_of_core(std::size_t i) const {
    return cfg_.cores.at(i).tile;
  }
  [[nodiscard]] TiledEngine* engine() { return engine_.get(); }

  /// Run the platform: the tiled engine when one exists, the plain kernel
  /// otherwise. Use these instead of kernel().run()/run_until() in code
  /// that must work on any num_tiles. now() is the max of the tile clocks.
  void run(std::uint64_t max_events = UINT64_MAX);
  void run_until(TimePs t);
  [[nodiscard]] TimePs now() const;
  [[nodiscard]] Interconnect& interconnect() { return *icn_; }
  [[nodiscard]] InterruptController& irqc() { return *irqc_; }
  [[nodiscard]] TimerPeripheral& timer() { return *timer_; }
  [[nodiscard]] DmaEngine& dma() { return *dma_; }
  [[nodiscard]] HwSemaphores& hwsem() { return *hwsem_; }

  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] Core& core(CoreId id) { return *cores_.at(id.index()); }
  [[nodiscard]] Core& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] const std::vector<std::unique_ptr<Core>>& cores() const {
    return cores_;
  }

  /// Memory-map lookups.
  [[nodiscard]] Addr scratchpad_base(CoreId id) const {
    return kScratchpadBase + id.value() * kScratchpadStride;
  }
  [[nodiscard]] Addr shared_base() const { return kSharedBase; }

  /// All peripherals, for the debugger's register view.
  [[nodiscard]] std::vector<Peripheral*> peripherals();

  /// Attach/detach a PMU observation sink on every instrumented component
  /// (cores, memory, interconnect, DMA). Passing nullptr detaches; with no
  /// sink attached every hook site reduces to one null check and the
  /// simulation is bit-identical to an unobserved run.
  void set_perf_sink(PerfSink* sink);

  [[nodiscard]] const PlatformConfig& config() const { return cfg_; }

 private:
  PlatformConfig cfg_;
  Kernel kernel_;
  Tracer tracer_;
  // Kernels/tracers of tiles 1..N-1 (tile 0 is kernel_/tracer_ above).
  // Declared before memory_ and cores_, which hold pointers into them.
  std::vector<std::unique_ptr<Kernel>> extra_kernels_;
  std::vector<std::unique_ptr<Tracer>> extra_tracers_;
  MemorySystem memory_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<Interconnect> icn_;
  std::unique_ptr<InterruptController> irqc_;
  std::unique_ptr<TimerPeripheral> timer_;
  std::unique_ptr<DmaEngine> dma_;
  std::unique_ptr<HwSemaphores> hwsem_;
  std::unique_ptr<TiledEngine> engine_;  // only when kernel.num_tiles > 1
};

}  // namespace rw::sim
