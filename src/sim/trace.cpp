#include "sim/trace.hpp"

#include "common/strings.hpp"

namespace rw::sim {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kTaskStart: return "task_start";
    case TraceKind::kTaskEnd: return "task_end";
    case TraceKind::kComputeStart: return "compute_start";
    case TraceKind::kComputeEnd: return "compute_end";
    case TraceKind::kMsgSend: return "msg_send";
    case TraceKind::kMsgRecv: return "msg_recv";
    case TraceKind::kMemRead: return "mem_read";
    case TraceKind::kMemWrite: return "mem_write";
    case TraceKind::kIrqRaise: return "irq_raise";
    case TraceKind::kIrqAck: return "irq_ack";
    case TraceKind::kDmaStart: return "dma_start";
    case TraceKind::kDmaEnd: return "dma_end";
    case TraceKind::kFreqChange: return "freq_change";
    case TraceKind::kSchedDispatch: return "sched_dispatch";
    case TraceKind::kSchedPreempt: return "sched_preempt";
    case TraceKind::kCustom: return "custom";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::string core_str =
      core.is_valid() ? strformat("core%u", core.value()) : "-";
  return strformat("[%12llu ps] %-14s %-6s %-20s a=%llu b=%llu",
                   static_cast<unsigned long long>(time),
                   trace_kind_name(kind), core_str.c_str(), label.c_str(),
                   static_cast<unsigned long long>(a),
                   static_cast<unsigned long long>(b));
}

}  // namespace rw::sim
