// Named boolean signals with observers.
//
// Sec. VII: "A watchpoint can be set on a signal, such as the interrupt
// line of a peripheral." Signals are the debugger-visible wires of the
// platform: interrupt lines, DMA-busy, timer-expired. Observers fire
// synchronously on every level change.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rw::sim {

class Signal {
 public:
  explicit Signal(std::string name, bool level = false)
      : name_(std::move(name)), level_(level) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool level() const { return level_; }
  [[nodiscard]] std::uint64_t toggle_count() const { return toggles_; }

  using Observer = std::function<void(const Signal&, bool old_level)>;
  void add_observer(Observer fn) { observers_.push_back(std::move(fn)); }
  void clear_observers() { observers_.clear(); }

  /// Drive the signal; observers run only on actual level changes.
  void set(bool level) {
    if (level == level_) return;
    const bool old = level_;
    level_ = level;
    ++toggles_;
    for (auto& o : observers_)
      if (o) o(*this, old);
  }

  void raise() { set(true); }
  void lower() { set(false); }

  /// Pulse: raise then immediately lower (both edges observable).
  void pulse() {
    set(true);
    set(false);
  }

 private:
  std::string name_;
  bool level_;
  std::uint64_t toggles_ = 0;
  std::vector<Observer> observers_;
};

}  // namespace rw::sim
