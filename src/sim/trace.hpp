// Execution tracing.
//
// Sec. VII names "hardware and software tracing capabilities" as a key
// virtual-platform debugging feature: "a history of function execution
// within the different processes, and their access to memories and
// peripherals". Every component of the platform reports events here; the
// vpdebug layer and the experiment harnesses consume them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace rw::sim {

struct CoreTag {};
using CoreId = Id<CoreTag>;

enum class TraceKind : std::uint8_t {
  kTaskStart,
  kTaskEnd,
  kComputeStart,
  kComputeEnd,
  kMsgSend,
  kMsgRecv,
  kMemRead,
  kMemWrite,
  kIrqRaise,
  kIrqAck,
  kDmaStart,
  kDmaEnd,
  kFreqChange,
  kSchedDispatch,
  kSchedPreempt,
  kCustom,
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  TimePs time = 0;
  TraceKind kind = TraceKind::kCustom;
  CoreId core{};
  std::string label;    // task/function/peripheral name
  std::uint64_t a = 0;  // kind-specific (address, irq line, value, ...)
  std::uint64_t b = 0;  // kind-specific (size, old value, ...)

  [[nodiscard]] std::string to_string() const;
};

/// Append-only trace buffer with an optional live listener (the debugger
/// hooks in here for watchpoints and scripted assertions).
class Tracer {
 public:
  using Listener = std::function<void(const TraceEvent&)>;

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Live listener invoked synchronously on every event, even when buffer
  /// retention is disabled. Returns a token for removal.
  std::size_t add_listener(Listener fn) {
    listeners_.push_back(std::move(fn));
    return listeners_.size() - 1;
  }
  void clear_listeners() { listeners_.clear(); }

  void record(TraceEvent ev) {
    for (auto& l : listeners_)
      if (l) l(ev);
    if (enabled_) events_.push_back(std::move(ev));
  }

  void record(TimePs time, TraceKind kind, CoreId core, std::string label,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    record(TraceEvent{time, kind, core, std::move(label), a, b});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  /// Events matching a predicate (convenience for tests and reports).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_)
      if (e.kind == kind) out.push_back(e);
    return out;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::vector<Listener> listeners_;
};

}  // namespace rw::sim
