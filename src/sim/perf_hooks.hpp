// Performance-monitoring hooks for the virtual platform.
//
// Sec. VII's core argument for virtual platforms is *non-intrusive
// observability*: "hardware and software tracing capabilities" that real
// silicon cannot offer without perturbing the system under test. PerfSink
// is the observation boundary that makes this true by construction — sim
// components call into an attached sink at the points a hardware PMU would
// count (core reservations, memory accesses, fabric transfers, DMA), and
// every call site is guarded by a nullable pointer:
//
//   if (perf_) perf_->on_core_reserve(...);
//
// With no sink attached the hook is a single predictable branch and the
// simulation state is bit-identical to a build that never heard of
// performance counters (tests/test_perf_pmu.cpp holds replay fingerprints
// and RunMetrics to that). The sim layer depends only on this interface;
// the actual counters live in rw::perf, which depends on sim — never the
// other way around.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

/// Observation interface implemented by rw::perf::Pmu. All methods have
/// empty default bodies so sinks override only what they count. Sinks must
/// not mutate simulation state from a hook (they see const facts about
/// decisions already taken) — that is what keeps attachment zero-overhead.
class PerfSink {
 public:
  virtual ~PerfSink() = default;

  // --- core ---
  /// Core `core` reserved `cycles` of work over [start, finish] at clock
  /// `freq`. Fires for every reservation path (compute awaitables and
  /// direct reserve_from callers such as the MAPS replayer).
  virtual void on_core_reserve(CoreId core, Cycles cycles, TimePs start,
                               TimePs finish, HertzT freq) {
    (void)core, (void)cycles, (void)start, (void)finish, (void)freq;
  }
  /// A labelled compute block retired (fires at the block's end event, so
  /// the timestamps are final). Start/finish bracket the whole block.
  virtual void on_compute_block(CoreId core, const std::string& label,
                                Cycles cycles, TimePs start, TimePs finish) {
    (void)core, (void)label, (void)cycles, (void)start, (void)finish;
  }
  /// DVFS transition on `core`.
  virtual void on_freq_change(CoreId core, HertzT from, HertzT to) {
    (void)core, (void)from, (void)to;
  }

  // --- memory ---
  /// One memory access. `local` is true for the accessing core's own
  /// scratchpad; `latency` is the region's access latency in core cycles
  /// (the stall the access costs a blocking core).
  virtual void on_mem_access(CoreId core, bool is_write, bool local,
                             std::uint32_t bytes, Cycles latency) {
    (void)core, (void)is_write, (void)local, (void)bytes, (void)latency;
  }

  // --- interconnect ---
  /// One fabric transfer. `wait` is time spent queued behind prior traffic
  /// (the contention the paper's "centralized constructs" warning is
  /// about); `duration` is occupancy from grant to delivery; `hops` is the
  /// NoC route length (0 on a shared bus).
  virtual void on_transfer(CoreId src, CoreId dst, std::uint64_t bytes,
                           DurationPs wait, DurationPs duration,
                           std::uint32_t hops) {
    (void)src, (void)dst, (void)bytes, (void)wait, (void)duration,
        (void)hops;
  }
  /// One directed NoC link was occupied for `busy` ps (fires per hop; the
  /// shared bus reports itself as link 0).
  virtual void on_link_busy(std::size_t link, DurationPs busy) {
    (void)link, (void)busy;
  }

  // --- DMA ---
  /// One DMA block copy completed its reservation over [start, finish].
  virtual void on_dma(std::uint64_t bytes, TimePs start, TimePs finish) {
    (void)bytes, (void)start, (void)finish;
  }
};

}  // namespace rw::sim
