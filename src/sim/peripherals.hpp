// Shared platform peripherals: interrupt controller, timer, DMA,
// hardware semaphores.
//
// Sec. VII lists exactly these as the "shared platform resources [that]
// may not be controlled anymore by a single software stack" — the things a
// debugger must be able to inspect consistently. Every peripheral exposes
// a named register file (for the vpdebug register view) and named signals
// (for signal watchpoints).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/memory.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/signal.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

class Interconnect;

/// Debugger-facing description of one peripheral register.
struct RegInfo {
  std::string name;
  std::size_t index;
};

/// Base class for memory-mapped-style peripherals.
class Peripheral {
 public:
  explicit Peripheral(std::string name) : name_(std::move(name)) {}
  virtual ~Peripheral() = default;
  Peripheral(const Peripheral&) = delete;
  Peripheral& operator=(const Peripheral&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Register file access (index space defined per peripheral).
  [[nodiscard]] virtual std::uint64_t read_reg(std::size_t index) const = 0;
  virtual void write_reg(std::size_t index, std::uint64_t value) = 0;
  [[nodiscard]] virtual std::vector<RegInfo> registers() const = 0;

  /// Signals the debugger can watch.
  [[nodiscard]] virtual std::vector<Signal*> signals() { return {}; }

 private:
  std::string name_;
};

/// Level-triggered interrupt controller with per-line mask/pending bits.
class InterruptController final : public Peripheral {
 public:
  static constexpr std::size_t kNumLines = 32;
  // Register indices.
  static constexpr std::size_t kRegPending = 0;
  static constexpr std::size_t kRegMask = 1;
  static constexpr std::size_t kRegRaisedCount = 2;
  static constexpr std::size_t kRegDropCount = 3;

  InterruptController(Kernel& kernel, Tracer& tracer);

  /// Assert a line. If unmasked, the registered handler is dispatched as a
  /// kernel event at the current time. If masked, the interrupt stays
  /// pending and fires on unmask — the wrongly-masked-interrupt scenario
  /// from Sec. VII is reproducible.
  void raise(std::size_t line);

  /// Acknowledge (clear pending, lower the line signal).
  void ack(std::size_t line);

  /// Mask control. Unmasking a pending line dispatches it immediately.
  void set_masked(std::size_t line, bool masked);
  [[nodiscard]] bool is_masked(std::size_t line) const;
  [[nodiscard]] bool is_pending(std::size_t line) const;

  using Handler = std::function<void(std::size_t line)>;
  void set_handler(std::size_t line, Handler fn);

  /// Fault model (rw::fault): arm the next `n` raise() calls on `line` to
  /// be silently lost — the wrongly-dropped interrupt of Sec. VII. The
  /// line never goes pending and no handler runs; the loss is only
  /// visible in DROP_COUNT and the trace ("irqc.drop"), which is what
  /// makes it a detection problem. A *spurious* interrupt needs no
  /// special hook: injectors simply call raise() on an unexpected line.
  void inject_drops(std::size_t line, std::uint64_t n);
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_count_; }

  /// Signal for a line (watchpoint target).
  Signal& line_signal(std::size_t line) { return *lines_.at(line); }

  std::uint64_t read_reg(std::size_t index) const override;
  void write_reg(std::size_t index, std::uint64_t value) override;
  std::vector<RegInfo> registers() const override;
  std::vector<Signal*> signals() override;

 private:
  void dispatch(std::size_t line);

  Kernel& kernel_;
  Tracer& tracer_;
  std::uint64_t pending_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t raised_count_ = 0;
  std::uint64_t dropped_count_ = 0;
  std::vector<std::uint64_t> drop_pending_;  // armed drops per line
  std::vector<std::unique_ptr<Signal>> lines_;
  std::vector<Handler> handlers_;
};

/// Programmable periodic / one-shot timer bound to an interrupt line.
class TimerPeripheral final : public Peripheral {
 public:
  static constexpr std::size_t kRegPeriodPs = 0;
  static constexpr std::size_t kRegCtrl = 1;   // bit0 enable, bit1 periodic
  static constexpr std::size_t kRegFireCount = 2;

  TimerPeripheral(Kernel& kernel, Tracer& tracer, InterruptController& irqc,
                  std::size_t irq_line, std::string name = "timer");

  /// Start firing every `period` ps (first fire after one period).
  void start_periodic(DurationPs period);
  void start_oneshot(DurationPs delay);
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t fire_count() const { return fire_count_; }
  Signal& expired_signal() { return expired_; }

  std::uint64_t read_reg(std::size_t index) const override;
  void write_reg(std::size_t index, std::uint64_t value) override;
  std::vector<RegInfo> registers() const override;
  std::vector<Signal*> signals() override;

 private:
  void schedule_fire();

  Kernel& kernel_;
  Tracer& tracer_;
  InterruptController& irqc_;
  std::size_t irq_line_;
  DurationPs period_ = 0;
  bool periodic_ = false;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // invalidates stale fire events
  std::uint64_t fire_count_ = 0;
  Signal expired_;
};

/// DMA engine: copies blocks between memory regions over the interconnect
/// and raises an interrupt on completion.
class DmaEngine final : public Peripheral {
 public:
  static constexpr std::size_t kRegSrc = 0;
  static constexpr std::size_t kRegDst = 1;
  static constexpr std::size_t kRegLen = 2;
  static constexpr std::size_t kRegStatus = 3;  // 0 idle, 1 busy
  static constexpr std::size_t kRegDoneCount = 4;
  static constexpr std::size_t kRegError = 5;

  /// ERROR register values. Rejected programming never schedules a
  /// completion (no silent no-op transfer): the error is latched here for
  /// software to poll, exactly like a real engine's error status.
  enum ErrorCode : std::uint64_t {
    kErrNone = 0,
    kErrZeroLength = 1,
    kErrOverlap = 2,
    kErrAborted = 3,
  };

  DmaEngine(Kernel& kernel, Tracer& tracer, MemorySystem& memory,
            Interconnect* icn, InterruptController& irqc,
            std::size_t irq_line);

  /// Start an asynchronous copy; throws if the engine is busy (programming
  /// error), returns false after latching ERROR for rejected programming —
  /// zero length or overlapping src/dst ranges. `on_done` runs at
  /// completion time, after the completion interrupt is raised.
  /// It is taken by value and moved end-to-end (kernel-owned callable
  /// type, so move-only captures work and nothing is copied or heap-
  /// allocated on the way to the completion event).
  bool start(Addr src, Addr dst, std::uint64_t len, EventFn on_done = {});

  /// Fault model (rw::fault): abort the in-flight transfer. No data moves,
  /// no completion fires; ERROR latches kErrAborted and the completion IRQ
  /// is raised so software notices the hole. Returns false when idle.
  bool abort();

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] ErrorCode error() const { return error_; }
  [[nodiscard]] std::uint64_t abort_count() const { return abort_count_; }
  Signal& busy_signal() { return busy_signal_; }

  /// PMU observation point; nullptr (the default) disables all hooks.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }

  std::uint64_t read_reg(std::size_t index) const override;
  void write_reg(std::size_t index, std::uint64_t value) override;
  std::vector<RegInfo> registers() const override;
  std::vector<Signal*> signals() override;

 private:
  Kernel& kernel_;
  Tracer& tracer_;
  MemorySystem& memory_;
  Interconnect* icn_;
  InterruptController& irqc_;
  std::size_t irq_line_;
  bool busy_ = false;
  Addr src_ = 0, dst_ = 0;
  std::uint64_t len_ = 0;
  std::uint64_t done_count_ = 0;
  std::uint64_t abort_count_ = 0;
  ErrorCode error_ = kErrNone;
  std::uint64_t generation_ = 0;  // invalidates aborted completion events
  Signal busy_signal_;
  PerfSink* perf_ = nullptr;
  // One transfer outstanding at a time (guarded by busy_), so the pending
  // completion callback lives here instead of inside the kernel event —
  // the event capture then stays within EventFn's inline buffer.
  EventFn on_done_;
};

/// Bank of hardware test-and-set semaphores (one register per cell).
/// Reading a cell returns its previous value and sets it (acquire);
/// writing 0 releases. This is the classic MPSoC synchronization block.
class HwSemaphores final : public Peripheral {
 public:
  explicit HwSemaphores(Kernel& kernel, Tracer& tracer,
                        std::size_t cells = 16);

  /// Atomic test-and-set; returns true when the semaphore was acquired.
  bool try_acquire(std::size_t cell, CoreId by);
  void release(std::size_t cell, CoreId by);
  [[nodiscard]] bool held(std::size_t cell) const;
  [[nodiscard]] CoreId holder(std::size_t cell) const;
  [[nodiscard]] std::size_t num_cells() const { return holders_.size(); }

  /// Recovery hook (rw::fault): release a cell regardless of holder —
  /// what watchdog recovery does after the holding core died, so other
  /// cores don't livelock on a semaphore nobody can release. Returns
  /// false when the cell was already free.
  bool force_release(std::size_t cell);

  std::uint64_t read_reg(std::size_t index) const override;
  void write_reg(std::size_t index, std::uint64_t value) override;
  std::vector<RegInfo> registers() const override;

 private:
  Kernel& kernel_;
  Tracer& tracer_;
  std::vector<CoreId> holders_;
};

}  // namespace rw::sim
