#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "common/strings.hpp"
#include "common/thread_budget.hpp"
#include "sim/platform.hpp"

namespace rw::sim {

DurationPs min_cross_tile_latency(const PlatformConfig& cfg) {
  switch (cfg.interconnect) {
    case PlatformConfig::Icn::kSharedBus: return bus_min_latency(cfg.bus);
    case PlatformConfig::Icn::kMesh: return mesh_min_latency(cfg.mesh);
  }
  return 0;
}

Status validate_tiling(const PlatformConfig& cfg) {
  const std::uint32_t tiles = cfg.kernel.num_tiles;
  if (tiles == 0)
    return make_error("KernelConfig: num_tiles must be at least 1");
  if (tiles > cfg.cores.size())
    return make_error(strformat(
        "KernelConfig: num_tiles (%u) exceeds the platform's core count (%zu)",
        tiles, cfg.cores.size()));
  for (std::size_t i = 0; i < cfg.cores.size(); ++i) {
    if (cfg.cores[i].tile >= tiles)
      return make_error(
          strformat("core%zu is assigned to tile %u but num_tiles is %u", i,
                    cfg.cores[i].tile, tiles));
  }
  if (tiles > 1 && min_cross_tile_latency(cfg) == 0)
    return make_error(
        "tiled execution requires a positive cross-tile lookahead, but the "
        "fabric config yields a 0 ps minimum latency (conservative sync "
        "would degenerate to lockstep)");
  return Status::ok_status();
}

void apply_tiling(PlatformConfig& cfg, std::uint32_t num_tiles,
                  bool partition_cores) {
  const std::size_t n = cfg.cores.size();
  if (num_tiles > n) num_tiles = static_cast<std::uint32_t>(n);
  if (num_tiles <= 1) return;
  cfg.kernel.num_tiles = num_tiles;
  cfg.kernel.exec = ExecMode::kParallel;
  for (std::size_t i = 0; i < n; ++i)
    cfg.cores[i].tile =
        partition_cores
            ? static_cast<std::uint32_t>(i * num_tiles / n)
            : 0;
}

TiledEngine::TiledEngine(std::vector<Kernel*> kernels, DurationPs lookahead,
                         Options opts)
    : tiles_(std::move(kernels)), lookahead_(lookahead), opts_(opts) {
  if (tiles_.empty())
    throw std::invalid_argument("TiledEngine: needs at least one tile");
  for (const Kernel* k : tiles_)
    if (k == nullptr)
      throw std::invalid_argument("TiledEngine: null tile kernel");
  if (lookahead_ == 0)
    throw std::invalid_argument("TiledEngine: lookahead must be positive");
  mail_.resize(tiles_.size() * tiles_.size());
  mail_seq_.assign(tiles_.size() * tiles_.size(), 0);
  window_live_only_.assign(tiles_.size(), 0);
}

std::uint64_t TiledEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const Kernel* k : tiles_) n += k->events_executed();
  return n;
}

TimePs TiledEngine::now() const {
  TimePs t = 0;
  for (const Kernel* k : tiles_) t = std::max(t, k->now());
  return t;
}

void TiledEngine::post(std::uint32_t src, std::uint32_t dst, TimePs t,
                       EventFn fn, int priority, bool daemon) {
  assert(src < tiles_.size() && dst < tiles_.size() && src != dst);
  // The conservative contract: a cross-tile message must never land inside
  // a window the current epoch may still execute.
  assert(t >= tiles_[src]->now() + lookahead_);
  const std::size_t pair = src * tiles_.size() + dst;
  mail_[pair].push_back(
      Mail{t, priority, src, mail_seq_[pair]++, std::move(fn), daemon});
}

void TiledEngine::drain_mailboxes() {
  const std::size_t t = tiles_.size();
  for (std::size_t dst = 0; dst < t; ++dst) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src < t; ++src) {
      auto& box = mail_[src * t + dst];
      for (auto& m : box) merge_scratch_.push_back(std::move(m));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // (time, priority, src, seq) is a strict total order — (src, seq) is
    // unique — so destination seq numbers are assigned identically on
    // every run and in both exec modes.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Mail& a, const Mail& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.priority != b.priority) return a.priority < b.priority;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (auto& m : merge_scratch_) {
      ++cross_posts_;
      if (m.daemon) {
        tiles_[dst]->schedule_daemon_at(m.time, std::move(m.fn), m.priority);
      } else {
        tiles_[dst]->schedule_at(m.time, std::move(m.fn), m.priority);
      }
    }
  }
  merge_scratch_.clear();
}

bool TiledEngine::plan_epoch(TimePs until, std::uint64_t max_events,
                             std::uint64_t base_executed, bool live_gated) {
  drain_mailboxes();
  for (const Kernel* k : tiles_)
    if (k->stop_requested()) return false;
  if (events_executed() - base_executed >= max_events) return false;

  TimePs next = UINT64_MAX;
  std::size_t total_live = 0;
  for (const Kernel* k : tiles_) {
    next = std::min(next, k->next_event_time());
    total_live += k->live_events();
  }
  if (live_gated && total_live == 0) return false;
  if (next == UINT64_MAX || next > until) return false;

  // Window: timestamps in [next, next + L - 1]; time is integer ps, so the
  // inclusive limit is exact. Clamped against run_until()'s bound.
  TimePs limit = next >= UINT64_MAX - lookahead_ ? UINT64_MAX - 1
                                                 : next + lookahead_ - 1;
  window_limit_ = std::min(limit, until);
  for (std::size_t k = 0; k < tiles_.size(); ++k) {
    // A tile holding *all* remaining live events stops at its last one,
    // exactly like Kernel::run() — which is what makes untiled workloads
    // on a tiled platform bit-identical to the plain kernel. A tile whose
    // liveness depends on others (or any tile under run_until semantics)
    // runs daemons through the whole window.
    const std::size_t others = total_live - tiles_[k]->live_events();
    window_live_only_[k] = static_cast<std::uint8_t>(live_gated && others == 0);
  }
  return true;
}

void TiledEngine::run_epochs(TimePs until, std::uint64_t max_events,
                             bool live_gated) {
  if (running_)
    throw std::logic_error("TiledEngine: re-entrant run");
  running_ = true;
  last_parallel_ = false;
  done_ = false;
  for (Kernel* k : tiles_) k->clear_stop();
  const std::uint64_t base = events_executed();
  const std::size_t t = tiles_.size();

  bool use_threads = opts_.mode == ExecMode::kParallel && t > 1;
  std::uint32_t permits = 0;
  if (use_threads && !opts_.force_threads) {
    const auto wanted = static_cast<std::uint32_t>(t - 1);
    if (common::thread_budget_try_acquire(wanted)) {
      permits = wanted;
    } else {
      // Budget exhausted (e.g. a harness sweep owns the machine): fall
      // back to the bit-identical sequential mode.
      use_threads = false;
    }
  }

  if (!use_threads) {
    while (plan_epoch(until, max_events, base, live_gated)) {
      ++epochs_;
      for (std::size_t k = 0; k < t; ++k)
        tiles_[k]->run_window(window_limit_, window_live_only_[k] != 0);
    }
  } else {
    last_parallel_ = true;
    // Two-phase epochs: the coordinator plans single-threaded, the start
    // barrier publishes the window, every participant runs its tile's
    // window, the finish barrier returns control to the coordinator. The
    // barriers carry all synchronization; no tile state is touched
    // concurrently. The coordinator doubles as tile 0's worker.
    std::barrier start_barrier(static_cast<std::ptrdiff_t>(t));
    std::barrier finish_barrier(static_cast<std::ptrdiff_t>(t));
    std::vector<std::jthread> workers;
    workers.reserve(t - 1);
    for (std::size_t k = 1; k < t; ++k) {
      workers.emplace_back([this, k, &start_barrier, &finish_barrier] {
        for (;;) {
          start_barrier.arrive_and_wait();
          if (done_) return;
          tiles_[k]->run_window(window_limit_, window_live_only_[k] != 0);
          finish_barrier.arrive_and_wait();
        }
      });
    }
    for (;;) {
      const bool go = plan_epoch(until, max_events, base, live_gated);
      done_ = !go;
      start_barrier.arrive_and_wait();
      if (!go) break;
      ++epochs_;
      tiles_[0]->run_window(window_limit_, window_live_only_[0] != 0);
      finish_barrier.arrive_and_wait();
    }
    workers.clear();  // join
  }
  if (permits > 0) common::thread_budget_release(permits);

  if (until != UINT64_MAX) {
    bool stopped = false;
    for (const Kernel* k : tiles_) stopped = stopped || k->stop_requested();
    if (!stopped)
      for (Kernel* k : tiles_) k->advance_to(until);
  }
  running_ = false;
}

void TiledEngine::run(std::uint64_t max_events) {
  run_epochs(UINT64_MAX, max_events, /*live_gated=*/true);
}

void TiledEngine::run_until(TimePs until) {
  run_epochs(until, UINT64_MAX, /*live_gated=*/false);
}

}  // namespace rw::sim
