// Bounded blocking channels between simulation processes.
//
// Channels are the asynchronous-message primitive the paper's Sec. II
// programming model is built on ("de-coupled threads of execution,
// communicating using asynchronous messages") and the inter-task channel
// of the CIC model (Sec. V). send() blocks when the buffer is full — the
// back-pressure that Sec. III's data-driven execution relies on — and
// recv() blocks when it is empty.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "sim/kernel.hpp"

namespace rw::sim {

template <typename T>
class Channel {
 public:
  /// `capacity` is the number of in-flight messages the buffer holds;
  /// it must be at least 1.
  Channel(Kernel& kernel, std::size_t capacity, std::string name = "chan")
      : kernel_(kernel), capacity_(capacity), name_(std::move(name)) {
    assert(capacity_ >= 1);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  struct SendAwaitable {
    Channel& ch;
    T value;
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (ch.try_deliver_direct(value)) return true;
      if (ch.buffer_.size() < ch.capacity_) {
        ch.buffer_.push_back(std::move(value));
        ++ch.total_sent_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.send_waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };

  struct RecvAwaitable {
    Channel& ch;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (!ch.buffer_.empty()) {
        value = std::move(ch.buffer_.front());
        ch.buffer_.pop_front();
        ++ch.total_received_;
        ch.refill_from_sender();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.recv_waiters_.push_back(this);
    }
    T await_resume() {
      assert(value.has_value());
      return std::move(*value);
    }
  };

  /// co_await ch.send(v): enqueue v, blocking while the buffer is full.
  [[nodiscard]] SendAwaitable send(T value) {
    return SendAwaitable{*this, std::move(value)};
  }

  /// co_await ch.recv(): dequeue the oldest message, blocking while empty.
  [[nodiscard]] RecvAwaitable recv() { return RecvAwaitable{*this}; }

  /// Non-blocking probes (used by schedulers and the data-driven executor).
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }
  [[nodiscard]] bool full() const { return buffer_.size() >= capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_received() const {
    return total_received_;
  }

  /// Non-blocking send; returns false if it would have blocked.
  bool try_send(T value) {
    if (try_deliver_direct(value)) return true;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(value));
      ++total_sent_;
      return true;
    }
    return false;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (buffer_.empty()) return std::nullopt;
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    ++total_received_;
    refill_from_sender();
    return v;
  }

 private:
  friend struct SendAwaitable;
  friend struct RecvAwaitable;

  /// Hand `value` straight to a blocked receiver, if any. Returns true when
  /// delivered. The receiver is resumed via a kernel event at the current
  /// time so that send() is never re-entered by receiver code.
  bool try_deliver_direct(T& value) {
    if (recv_waiters_.empty()) return false;
    RecvAwaitable* waiter = recv_waiters_.front();
    recv_waiters_.pop_front();
    waiter->value = std::move(value);
    ++total_sent_;
    ++total_received_;
    auto h = waiter->handle;
    kernel_.schedule_at(kernel_.now(), [h] {
      if (!h.done()) h.resume();
    });
    return true;
  }

  /// After a buffer slot frees up, move one blocked sender's message in.
  void refill_from_sender() {
    if (send_waiters_.empty() || buffer_.size() >= capacity_) return;
    SendAwaitable* waiter = send_waiters_.front();
    send_waiters_.pop_front();
    buffer_.push_back(std::move(waiter->value));
    ++total_sent_;
    auto h = waiter->handle;
    kernel_.schedule_at(kernel_.now(), [h] {
      if (!h.done()) h.resume();
    });
  }

  Kernel& kernel_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> buffer_;
  std::deque<SendAwaitable*> send_waiters_;
  std::deque<RecvAwaitable*> recv_waiters_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_received_ = 0;
};

}  // namespace rw::sim
