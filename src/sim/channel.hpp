// Bounded blocking channels between simulation processes.
//
// Channels are the asynchronous-message primitive the paper's Sec. II
// programming model is built on ("de-coupled threads of execution,
// communicating using asynchronous messages") and the inter-task channel
// of the CIC model (Sec. V). send() blocks when the buffer is full — the
// back-pressure that Sec. III's data-driven execution relies on — and
// recv() blocks when it is empty.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "sim/kernel.hpp"

namespace rw::sim {

template <typename T>
class Channel {
 public:
  /// `capacity` is the number of in-flight messages the buffer holds;
  /// it must be at least 1.
  Channel(Kernel& kernel, std::size_t capacity, std::string name = "chan")
      : kernel_(kernel), capacity_(capacity), name_(std::move(name)) {
    assert(capacity_ >= 1);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  ~Channel() {
    // Parked timed waiters may outlive the channel (their frames are
    // destroyed later, e.g. at kernel teardown); clear their armed slots
    // so ~RecvForAwaitable/~SendForAwaitable don't call back into a dead
    // channel.
    for (TimedEntry& e : timed_waiters_) *e.armed_slot = nullptr;
  }

  struct SendAwaitable {
    Channel& ch;
    T value;
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (ch.try_deliver_direct(value)) return true;
      if (ch.buffer_.size() < ch.capacity_) {
        ch.buffer_.push_back(std::move(value));
        ++ch.total_sent_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.send_waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };

  struct RecvAwaitable {
    Channel& ch;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (!ch.buffer_.empty()) {
        value = std::move(ch.buffer_.front());
        ch.buffer_.pop_front();
        ++ch.total_received_;
        ch.refill_from_sender();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.recv_waiters_.push_back(this);
    }
    T await_resume() {
      assert(value.has_value());
      return std::move(*value);
    }
  };

  /// Timeout-bounded variants (rw::fault detection primitives). They park
  /// like send()/recv() but additionally arm a kernel event at now+timeout;
  /// whichever fires first in kernel event order — delivery or deadline —
  /// wins, so a tie at the exact deadline is broken deterministically by
  /// the kernel's (time, priority, seq) total order, not by wall clock.
  /// On expiry the awaitable un-parks and resolves to an Error, which is
  /// what lets a process survive a peer that crashed or was destroyed.
  struct RecvForAwaitable : RecvAwaitable {
    DurationPs timeout;
    bool timed_out = false;

    RecvForAwaitable(Channel& c, DurationPs t)
        : RecvAwaitable{c}, timeout(t) {}
    RecvForAwaitable(const RecvForAwaitable&) = delete;
    RecvForAwaitable& operator=(const RecvForAwaitable&) = delete;
    /// A coroutine destroyed while parked here (e.g. kernel teardown of an
    /// abandoned process, or an owner dropping a suspended process
    /// mid-run) never resumes, so its still-armed deadline event would
    /// otherwise fire against the freed frame. Untracking in the
    /// destructor defuses that event — its (address, gen) lookup fails —
    /// and removes the dangling waiter from the park deque. `armed_` is
    /// non-null exactly while a live registration exists; every resolution
    /// path (delivery, timeout, ~Channel) clears it through the entry's
    /// armed slot.
    ~RecvForAwaitable() {
      if (armed_ != nullptr) {
        Channel& c = *armed_;
        c.untrack_timed(this);
        std::erase(c.recv_waiters_, static_cast<RecvAwaitable*>(this));
      }
    }

    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      Channel& c = this->ch;
      c.recv_waiters_.push_back(this);
      const std::uint64_t gen = c.track_timed(this, &armed_);
      RecvForAwaitable* self = this;
      Channel* chp = &c;
      c.kernel_.schedule_in(
          timeout, [chp, self, gen] { chp->on_recv_timeout(self, gen); });
    }
    Result<T> await_resume() {
      if (timed_out)
        return make_error("recv timeout on channel '" + this->ch.name_ + "'");
      assert(this->value.has_value());
      return std::move(*this->value);
    }

   private:
    Channel* armed_ = nullptr;  // owning channel while registration is live
  };

  struct SendForAwaitable : SendAwaitable {
    DurationPs timeout;
    bool timed_out = false;

    SendForAwaitable(Channel& c, T v, DurationPs t)
        : SendAwaitable{c, std::move(v)}, timeout(t) {}
    SendForAwaitable(const SendForAwaitable&) = delete;
    SendForAwaitable& operator=(const SendForAwaitable&) = delete;
    /// See ~RecvForAwaitable(): defuse the deadline of a waiter destroyed
    /// without ever resuming.
    ~SendForAwaitable() {
      if (armed_ != nullptr) {
        Channel& c = *armed_;
        c.untrack_timed(this);
        std::erase(c.send_waiters_, static_cast<SendAwaitable*>(this));
      }
    }

    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      Channel& c = this->ch;
      c.send_waiters_.push_back(this);
      const std::uint64_t gen = c.track_timed(this, &armed_);
      SendForAwaitable* self = this;
      Channel* chp = &c;
      c.kernel_.schedule_in(
          timeout, [chp, self, gen] { chp->on_send_timeout(self, gen); });
    }
    Status await_resume() {
      if (timed_out)
        return make_error("send timeout on channel '" + this->ch.name_ + "'");
      return Status::ok_status();
    }

   private:
    Channel* armed_ = nullptr;  // owning channel while registration is live
  };

  /// co_await ch.send(v): enqueue v, blocking while the buffer is full.
  [[nodiscard]] SendAwaitable send(T value) {
    return SendAwaitable{*this, std::move(value)};
  }

  /// co_await ch.recv(): dequeue the oldest message, blocking while empty.
  [[nodiscard]] RecvAwaitable recv() { return RecvAwaitable{*this}; }

  /// co_await ch.recv_for(d): as recv(), but resolves to an Error instead
  /// of blocking past `d`.
  [[nodiscard]] RecvForAwaitable recv_for(DurationPs timeout) {
    return RecvForAwaitable(*this, timeout);
  }

  /// co_await ch.send_for(v, d): as send(), but gives up (dropping the
  /// message) with an Error instead of blocking past `d`.
  [[nodiscard]] SendForAwaitable send_for(T value, DurationPs timeout) {
    return SendForAwaitable(*this, std::move(value), timeout);
  }

  /// Non-blocking probes (used by schedulers and the data-driven executor).
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }
  [[nodiscard]] bool full() const { return buffer_.size() >= capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_received() const {
    return total_received_;
  }

  /// Non-blocking send; returns false if it would have blocked.
  bool try_send(T value) {
    if (try_deliver_direct(value)) return true;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(value));
      ++total_sent_;
      return true;
    }
    return false;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (buffer_.empty()) return std::nullopt;
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    ++total_received_;
    refill_from_sender();
    return v;
  }

 private:
  friend struct SendAwaitable;
  friend struct RecvAwaitable;
  friend struct RecvForAwaitable;
  friend struct SendForAwaitable;

  /// Hand `value` straight to a blocked receiver, if any. Returns true when
  /// delivered. The receiver is resumed via a kernel event at the current
  /// time so that send() is never re-entered by receiver code.
  bool try_deliver_direct(T& value) {
    if (recv_waiters_.empty()) return false;
    RecvAwaitable* waiter = recv_waiters_.front();
    recv_waiters_.pop_front();
    untrack_timed(waiter);  // delivery beat the deadline: defuse the timeout
    waiter->value = std::move(value);
    ++total_sent_;
    ++total_received_;
    auto h = waiter->handle;
    kernel_.schedule_at(kernel_.now(), [h] {
      if (!h.done()) h.resume();
    });
    return true;
  }

  /// After a buffer slot frees up, move one blocked sender's message in.
  void refill_from_sender() {
    if (send_waiters_.empty() || buffer_.size() >= capacity_) return;
    SendAwaitable* waiter = send_waiters_.front();
    send_waiters_.pop_front();
    untrack_timed(waiter);
    buffer_.push_back(std::move(waiter->value));
    ++total_sent_;
    auto h = waiter->handle;
    kernel_.schedule_at(kernel_.now(), [h] {
      if (!h.done()) h.resume();
    });
  }

  /// Register a timed waiter and return its registration generation.
  /// Generations disambiguate address reuse: a retry loop re-awaits a new
  /// timed awaitable at the same frame address, so a *stale* timeout event
  /// (whose waiter was resumed by delivery and whose entry was untracked)
  /// must not match the successor that now lives at that address.
  /// `armed_slot` is the waiter's back-pointer to this channel: set here,
  /// cleared by whichever path retires the registration, so the waiter's
  /// destructor knows whether it still must untrack itself.
  std::uint64_t track_timed(const void* p, Channel** armed_slot) {
    const std::uint64_t gen = ++timed_gen_;
    *armed_slot = this;
    timed_waiters_.push_back({p, gen, armed_slot});
    return gen;
  }

  /// Stop tracking a timed waiter by address (delivery paths; at most one
  /// *live* registration per address can exist). Returns false when `p`
  /// was never timed or its deadline already resolved.
  bool untrack_timed(const void* p) {
    auto it = std::find_if(timed_waiters_.begin(), timed_waiters_.end(),
                           [p](const TimedEntry& e) { return e.waiter == p; });
    if (it == timed_waiters_.end()) return false;
    *it->armed_slot = nullptr;
    timed_waiters_.erase(it);
    return true;
  }

  /// As above, but from a timeout event: both address and generation must
  /// match, so stale deadlines never touch (or forge a timeout for) a
  /// successor awaitable reusing the address.
  bool untrack_timed(const void* p, std::uint64_t gen) {
    auto it = std::find_if(timed_waiters_.begin(), timed_waiters_.end(),
                           [p, gen](const TimedEntry& e) {
                             return e.waiter == p && e.gen == gen;
                           });
    if (it == timed_waiters_.end()) return false;
    *it->armed_slot = nullptr;
    timed_waiters_.erase(it);
    return true;
  }

  void on_recv_timeout(RecvForAwaitable* self, std::uint64_t gen) {
    if (!untrack_timed(self, gen)) return;  // delivered before the deadline
    std::erase(recv_waiters_, static_cast<RecvAwaitable*>(self));
    self->timed_out = true;
    self->handle.resume();  // already inside a kernel event
  }

  void on_send_timeout(SendForAwaitable* self, std::uint64_t gen) {
    if (!untrack_timed(self, gen)) return;
    std::erase(send_waiters_, static_cast<SendAwaitable*>(self));
    self->timed_out = true;
    self->handle.resume();
  }

  Kernel& kernel_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> buffer_;
  struct TimedEntry {
    const void* waiter;
    std::uint64_t gen;
    Channel** armed_slot;  // the waiter's `armed_` member, see track_timed()
  };

  std::deque<SendAwaitable*> send_waiters_;
  std::deque<RecvAwaitable*> recv_waiters_;
  std::vector<TimedEntry> timed_waiters_;
  std::uint64_t timed_gen_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_received_ = 0;
};

}  // namespace rw::sim
