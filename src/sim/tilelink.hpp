// Cross-tile message links (the NoC/bus endpoint stub of a tile).
//
// Channel<T> delivers with zero latency on one kernel, which is exactly
// what tiled execution cannot allow: the conservative engine's lookahead
// is the *minimum* cross-tile latency, so every cross-tile message must
// pay the fabric. A TileLink<T> is a bounded point-to-point link between
// two cores whose timing comes from the platform's fabric config — the
// message latency is the fabric's nominal latency for `bytes_per_msg`
// (clamped up to the lookahead floor) and back-to-back sends serialize on
// the link for its occupancy time. Flow control is credit-based: capacity
// counts messages in flight plus buffered at the receiver; send() parks
// when no credit remains and resumes when the receiver's dequeue returns
// one (credits pay the same latency on the way back).
//
// Every piece of link state lives on exactly one tile: credits, the park
// queue of blocked senders and the link-occupancy clock on the sender's
// tile; the delivery buffer and blocked receivers on the receiver's tile.
// Cross-tile hops happen only through TiledEngine mailboxes (or plain
// kernel events when both endpoints share a tile / the platform is
// untiled), so a TileLink is data-race-free under parallel execution and
// its timing is byte-identical across num_tiles and ExecMode choices.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "sim/parallel.hpp"
#include "sim/platform.hpp"

namespace rw::sim {

template <typename T>
class TileLink {
 public:
  TileLink(Platform& plat, CoreId src, CoreId dst, std::size_t capacity,
           std::uint64_t bytes_per_msg, std::string name = "link")
      : name_(std::move(name)),
        src_core_(src),
        dst_core_(dst),
        src_tile_(plat.tile_of_core(src.index())),
        dst_tile_(plat.tile_of_core(dst.index())),
        engine_(plat.engine()),
        src_kernel_(&plat.tile_kernel(src_tile_)),
        dst_kernel_(&plat.tile_kernel(dst_tile_)),
        src_tracer_(&plat.tile_tracer(src_tile_)),
        dst_tracer_(&plat.tile_tracer(dst_tile_)),
        credits_(capacity) {
    assert(capacity >= 1);
    const PlatformConfig& cfg = plat.config();
    // Nominal fabric timing, independent of the tile partition: the link
    // models a dedicated point-to-point lane with sender-side
    // serialization, so a workload's timing does not change when its
    // cores are re-binned into tiles.
    latency_ = plat.interconnect().nominal_latency(src, dst, bytes_per_msg);
    switch (cfg.interconnect) {
      case PlatformConfig::Icn::kSharedBus:
        occupancy_ = bus_transfer_duration(cfg.bus, bytes_per_msg);
        break;
      case PlatformConfig::Icn::kMesh:
        occupancy_ = mesh_serialization_time(cfg.mesh, bytes_per_msg);
        break;
    }
    const DurationPs floor = min_cross_tile_latency(cfg);
    if (latency_ < floor) latency_ = floor;
    if (latency_ == 0) latency_ = 1;  // same-node mesh, untiled: keep causal
  }

  TileLink(const TileLink&) = delete;
  TileLink& operator=(const TileLink&) = delete;

  struct SendAwaitable {
    TileLink& ln;
    T value;
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (ln.credits_ > 0) {
        ln.do_send(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ln.send_waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };

  struct RecvAwaitable {
    TileLink& ln;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (!ln.buffer_.empty()) {
        value = std::move(ln.buffer_.front());
        ln.buffer_.pop_front();
        ln.return_credit();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ln.recv_waiters_.push_back(this);
    }
    T await_resume() {
      assert(value.has_value());
      return std::move(*value);
    }
  };

  /// co_await link.send(v) — from a process on the sender's tile only.
  [[nodiscard]] SendAwaitable send(T value) {
    return SendAwaitable{*this, std::move(value)};
  }

  /// co_await link.recv() — from a process on the receiver's tile only.
  [[nodiscard]] RecvAwaitable recv() { return RecvAwaitable{*this}; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] DurationPs latency() const { return latency_; }
  [[nodiscard]] DurationPs occupancy() const { return occupancy_; }
  [[nodiscard]] std::size_t credits() const { return credits_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_;
  }
  [[nodiscard]] bool cross_tile() const { return src_tile_ != dst_tile_; }

 private:
  friend struct SendAwaitable;
  friend struct RecvAwaitable;

  /// Hop an event onto the peer tile: through the engine's mailbox when
  /// the endpoints live on different tiles, as a plain kernel event
  /// otherwise. Timing is identical either way.
  void post_to(std::uint32_t from, std::uint32_t to, Kernel& k, TimePs t,
               EventFn fn) {
    if (engine_ != nullptr && from != to) {
      engine_->post(from, to, t, std::move(fn));
    } else {
      k.schedule_at(t, std::move(fn));
    }
  }

  /// Sender tile: consume a credit, serialize on the link, launch the
  /// message towards the receiver.
  void do_send(T v) {
    --credits_;
    const TimePs now = src_kernel_->now();
    const TimePs depart = now > link_free_ ? now : link_free_;
    link_free_ = depart + occupancy_;
    const TimePs at = depart + latency_;
    ++total_sent_;
    src_tracer_->record(now, TraceKind::kMsgSend, src_core_, name_,
                        total_sent_, at);
    post_to(src_tile_, dst_tile_, *dst_kernel_, at,
            [this, v = std::move(v)]() mutable { arrive(std::move(v)); });
  }

  /// Receiver tile: a message lands. Hand it to a parked receiver (the
  /// buffer slot is never held, so its credit leaves immediately) or
  /// buffer it until recv().
  void arrive(T v) {
    ++total_delivered_;
    dst_tracer_->record(dst_kernel_->now(), TraceKind::kMsgRecv, dst_core_,
                        name_, total_delivered_, 0);
    if (!recv_waiters_.empty()) {
      RecvAwaitable* w = recv_waiters_.front();
      recv_waiters_.pop_front();
      w->value = std::move(v);
      return_credit();
      w->handle.resume();  // already inside a dst-tile kernel event
    } else {
      buffer_.push_back(std::move(v));
    }
  }

  /// Receiver tile: a slot freed; send the credit home.
  void return_credit() {
    post_to(dst_tile_, src_tile_, *src_kernel_,
            dst_kernel_->now() + latency_, [this] { credit_arrive(); });
  }

  /// Sender tile: a credit returned; unpark the oldest blocked sender.
  void credit_arrive() {
    ++credits_;
    if (!send_waiters_.empty()) {
      SendAwaitable* w = send_waiters_.front();
      send_waiters_.pop_front();
      do_send(std::move(w->value));
      w->handle.resume();  // already inside a src-tile kernel event
    }
  }

  std::string name_;
  CoreId src_core_;
  CoreId dst_core_;
  std::uint32_t src_tile_;
  std::uint32_t dst_tile_;
  TiledEngine* engine_;  // nullptr on untiled platforms
  Kernel* src_kernel_;
  Kernel* dst_kernel_;
  Tracer* src_tracer_;
  Tracer* dst_tracer_;

  DurationPs latency_ = 1;
  DurationPs occupancy_ = 0;

  // Sender-tile state.
  std::size_t credits_;
  TimePs link_free_ = 0;
  std::deque<SendAwaitable*> send_waiters_;
  std::uint64_t total_sent_ = 0;

  // Receiver-tile state.
  std::deque<T> buffer_;
  std::deque<RecvAwaitable*> recv_waiters_;
  std::uint64_t total_delivered_ = 0;
};

}  // namespace rw::sim
