#include "sim/peripherals.hpp"

#include <stdexcept>

#include "common/strings.hpp"
#include "sim/interconnect.hpp"

namespace rw::sim {

// ----------------------------------------------------- InterruptController

InterruptController::InterruptController(Kernel& kernel, Tracer& tracer)
    : Peripheral("irqc"), kernel_(kernel), tracer_(tracer) {
  lines_.reserve(kNumLines);
  for (std::size_t i = 0; i < kNumLines; ++i)
    lines_.push_back(std::make_unique<Signal>(strformat("irq%zu", i)));
  handlers_.resize(kNumLines);
  drop_pending_.assign(kNumLines, 0);
}

void InterruptController::inject_drops(std::size_t line, std::uint64_t n) {
  if (line >= kNumLines) throw std::out_of_range("irq line out of range");
  drop_pending_[line] += n;
}

void InterruptController::raise(std::size_t line) {
  if (line >= kNumLines) throw std::out_of_range("irq line out of range");
  if (drop_pending_[line] > 0) {
    --drop_pending_[line];
    ++dropped_count_;
    tracer_.record(kernel_.now(), TraceKind::kCustom, CoreId{}, "irqc.drop",
                   line, 0);
    return;  // lost on the wire: no pending bit, no dispatch
  }
  ++raised_count_;
  pending_ |= (1ULL << line);
  lines_[line]->raise();
  tracer_.record(kernel_.now(), TraceKind::kIrqRaise, CoreId{}, name(), line,
                 is_masked(line));
  if (!is_masked(line)) dispatch(line);
}

void InterruptController::dispatch(std::size_t line) {
  if (!handlers_[line]) return;
  // Dispatch as a kernel event so handler code never runs re-entrantly
  // inside the raising peripheral.
  kernel_.schedule_at(kernel_.now(), [this, line] {
    if (is_pending(line) && !is_masked(line) && handlers_[line])
      handlers_[line](line);
  });
}

void InterruptController::ack(std::size_t line) {
  if (line >= kNumLines) throw std::out_of_range("irq line out of range");
  pending_ &= ~(1ULL << line);
  lines_[line]->lower();
  tracer_.record(kernel_.now(), TraceKind::kIrqAck, CoreId{}, name(), line,
                 0);
}

void InterruptController::set_masked(std::size_t line, bool masked) {
  if (line >= kNumLines) throw std::out_of_range("irq line out of range");
  const bool was_masked = is_masked(line);
  if (masked) {
    mask_ |= (1ULL << line);
  } else {
    mask_ &= ~(1ULL << line);
    // Unmasking a pending line delivers the interrupt now (Sec. VII's
    // wrongly-masked interrupt becomes visible the moment the mask drops).
    if (was_masked && is_pending(line)) dispatch(line);
  }
}

bool InterruptController::is_masked(std::size_t line) const {
  return (mask_ >> line) & 1ULL;
}

bool InterruptController::is_pending(std::size_t line) const {
  return (pending_ >> line) & 1ULL;
}

void InterruptController::set_handler(std::size_t line, Handler fn) {
  handlers_.at(line) = std::move(fn);
}

std::uint64_t InterruptController::read_reg(std::size_t index) const {
  switch (index) {
    case kRegPending: return pending_;
    case kRegMask: return mask_;
    case kRegRaisedCount: return raised_count_;
    case kRegDropCount: return dropped_count_;
    default: throw std::out_of_range("irqc register index");
  }
}

void InterruptController::write_reg(std::size_t index, std::uint64_t value) {
  switch (index) {
    case kRegMask:
      for (std::size_t line = 0; line < kNumLines; ++line)
        set_masked(line, (value >> line) & 1ULL);
      break;
    case kRegPending:
      // Write-one-to-clear semantics.
      for (std::size_t line = 0; line < kNumLines; ++line)
        if ((value >> line) & 1ULL) ack(line);
      break;
    default:
      throw std::out_of_range("irqc register not writable");
  }
}

std::vector<RegInfo> InterruptController::registers() const {
  return {{"PENDING", kRegPending},
          {"MASK", kRegMask},
          {"RAISED_COUNT", kRegRaisedCount},
          {"DROP_COUNT", kRegDropCount}};
}

std::vector<Signal*> InterruptController::signals() {
  std::vector<Signal*> out;
  out.reserve(lines_.size());
  for (auto& l : lines_) out.push_back(l.get());
  return out;
}

// --------------------------------------------------------- TimerPeripheral

TimerPeripheral::TimerPeripheral(Kernel& kernel, Tracer& tracer,
                                 InterruptController& irqc,
                                 std::size_t irq_line, std::string name)
    : Peripheral(std::move(name)),
      kernel_(kernel),
      tracer_(tracer),
      irqc_(irqc),
      irq_line_(irq_line),
      expired_(Peripheral::name() + ".expired") {}

void TimerPeripheral::start_periodic(DurationPs period) {
  if (period == 0) throw std::invalid_argument("timer period must be > 0");
  period_ = period;
  periodic_ = true;
  running_ = true;
  ++generation_;
  schedule_fire();
}

void TimerPeripheral::start_oneshot(DurationPs delay) {
  if (delay == 0) throw std::invalid_argument("timer delay must be > 0");
  period_ = delay;
  periodic_ = false;
  running_ = true;
  ++generation_;
  schedule_fire();
}

void TimerPeripheral::stop() {
  running_ = false;
  ++generation_;
}

void TimerPeripheral::schedule_fire() {
  const std::uint64_t gen = generation_;
  kernel_.schedule_in(period_, [this, gen] {
    if (gen != generation_ || !running_) return;  // cancelled/restarted
    ++fire_count_;
    expired_.pulse();
    irqc_.raise(irq_line_);
    if (periodic_) {
      schedule_fire();
    } else {
      running_ = false;
    }
  });
}

std::uint64_t TimerPeripheral::read_reg(std::size_t index) const {
  switch (index) {
    case kRegPeriodPs: return period_;
    case kRegCtrl:
      return (running_ ? 1ULL : 0ULL) | (periodic_ ? 2ULL : 0ULL);
    case kRegFireCount: return fire_count_;
    default: throw std::out_of_range("timer register index");
  }
}

void TimerPeripheral::write_reg(std::size_t index, std::uint64_t value) {
  switch (index) {
    case kRegPeriodPs:
      period_ = value;
      break;
    case kRegCtrl:
      if ((value & 1ULL) == 0) {
        stop();
      } else if (value & 2ULL) {
        start_periodic(period_);
      } else {
        start_oneshot(period_);
      }
      break;
    default:
      throw std::out_of_range("timer register not writable");
  }
}

std::vector<RegInfo> TimerPeripheral::registers() const {
  return {{"PERIOD_PS", kRegPeriodPs},
          {"CTRL", kRegCtrl},
          {"FIRE_COUNT", kRegFireCount}};
}

std::vector<Signal*> TimerPeripheral::signals() { return {&expired_}; }

// --------------------------------------------------------------- DmaEngine

DmaEngine::DmaEngine(Kernel& kernel, Tracer& tracer, MemorySystem& memory,
                     Interconnect* icn, InterruptController& irqc,
                     std::size_t irq_line)
    : Peripheral("dma"),
      kernel_(kernel),
      tracer_(tracer),
      memory_(memory),
      icn_(icn),
      irqc_(irqc),
      irq_line_(irq_line),
      busy_signal_("dma.busy") {}

bool DmaEngine::start(Addr src, Addr dst, std::uint64_t len,
                      EventFn on_done) {
  if (busy_) throw std::runtime_error("DMA engine is busy");
  // Rejected programming latches ERROR and schedules nothing — a silent
  // no-op completion would hide the bug from both software and the trace.
  if (len == 0) {
    error_ = kErrZeroLength;
    tracer_.record(kernel_.now(), TraceKind::kCustom, CoreId{}, "dma.reject",
                   kErrZeroLength, src);
    return false;
  }
  if (src < dst + len && dst < src + len) {
    error_ = kErrOverlap;
    tracer_.record(kernel_.now(), TraceKind::kCustom, CoreId{}, "dma.reject",
                   kErrOverlap, src);
    return false;
  }
  busy_ = true;
  error_ = kErrNone;
  src_ = src;
  dst_ = dst;
  len_ = len;
  on_done_ = std::move(on_done);
  busy_signal_.raise();
  tracer_.record(kernel_.now(), TraceKind::kDmaStart, CoreId{}, name(), src,
                 len);

  // Transfer time over the interconnect (DMA acts as an anonymous master).
  TimePs finish = kernel_.now();
  if (icn_ != nullptr) {
    finish = icn_->reserve_transfer(CoreId{0}, CoreId{0}, len, kernel_.now())
                 .second;
  } else {
    finish += nanoseconds(len);  // fallback: 1 byte/ns
  }

  const std::uint64_t gen = generation_;
  kernel_.schedule_at(finish, [this, gen, started = kernel_.now()] {
    if (gen != generation_) return;  // transfer was aborted mid-flight
    // Detach the callback first: it may start (and re-arm) the engine.
    EventFn done = std::move(on_done_);
    std::vector<std::uint8_t> buf(len_);
    memory_.read_block(CoreId{}, src_, buf);
    memory_.write_block(CoreId{}, dst_, buf);
    busy_ = false;
    ++done_count_;
    busy_signal_.lower();
    tracer_.record(kernel_.now(), TraceKind::kDmaEnd, CoreId{}, name(),
                   dst_, len_);
    if (perf_) perf_->on_dma(len_, started, kernel_.now());
    irqc_.raise(irq_line_);
    if (done) done();
  });
  return true;
}

bool DmaEngine::abort() {
  if (!busy_) return false;
  ++generation_;  // the in-flight completion event becomes a no-op
  busy_ = false;
  ++abort_count_;
  error_ = kErrAborted;
  on_done_ = {};
  busy_signal_.lower();
  tracer_.record(kernel_.now(), TraceKind::kCustom, CoreId{}, "dma.abort",
                 src_, len_);
  // The completion IRQ still fires: software polls ERROR, sees kErrAborted,
  // and knows the destination block never arrived.
  irqc_.raise(irq_line_);
  return true;
}

std::uint64_t DmaEngine::read_reg(std::size_t index) const {
  switch (index) {
    case kRegSrc: return src_;
    case kRegDst: return dst_;
    case kRegLen: return len_;
    case kRegStatus: return busy_ ? 1 : 0;
    case kRegDoneCount: return done_count_;
    case kRegError: return error_;
    default: throw std::out_of_range("dma register index");
  }
}

void DmaEngine::write_reg(std::size_t index, std::uint64_t value) {
  switch (index) {
    case kRegSrc: src_ = value; break;
    case kRegDst: dst_ = value; break;
    case kRegLen: len_ = value; break;
    case kRegStatus:
      if (value == 1) start(src_, dst_, len_);
      break;
    default:
      throw std::out_of_range("dma register not writable");
  }
}

std::vector<RegInfo> DmaEngine::registers() const {
  return {{"SRC", kRegSrc},
          {"DST", kRegDst},
          {"LEN", kRegLen},
          {"STATUS", kRegStatus},
          {"DONE_COUNT", kRegDoneCount},
          {"ERROR", kRegError}};
}

std::vector<Signal*> DmaEngine::signals() { return {&busy_signal_}; }

// ------------------------------------------------------------ HwSemaphores

HwSemaphores::HwSemaphores(Kernel& kernel, Tracer& tracer, std::size_t cells)
    : Peripheral("hwsem"), kernel_(kernel), tracer_(tracer) {
  holders_.assign(cells, CoreId{});
}

bool HwSemaphores::try_acquire(std::size_t cell, CoreId by) {
  auto& holder = holders_.at(cell);
  if (holder.is_valid()) return false;
  holder = by;
  tracer_.record(kernel_.now(), TraceKind::kCustom, by, "hwsem.acquire",
                 cell, 1);
  return true;
}

void HwSemaphores::release(std::size_t cell, CoreId by) {
  auto& holder = holders_.at(cell);
  if (holder != by)
    throw std::logic_error("semaphore released by a non-holder");
  holder = CoreId{};
  tracer_.record(kernel_.now(), TraceKind::kCustom, by, "hwsem.release",
                 cell, 0);
}

bool HwSemaphores::force_release(std::size_t cell) {
  auto& holder = holders_.at(cell);
  if (!holder.is_valid()) return false;
  tracer_.record(kernel_.now(), TraceKind::kCustom, holder,
                 "hwsem.force_release", cell, 0);
  holder = CoreId{};
  return true;
}

bool HwSemaphores::held(std::size_t cell) const {
  return holders_.at(cell).is_valid();
}

CoreId HwSemaphores::holder(std::size_t cell) const {
  return holders_.at(cell);
}

std::uint64_t HwSemaphores::read_reg(std::size_t index) const {
  const auto& h = holders_.at(index);
  return h.is_valid() ? h.value() + 1ULL : 0ULL;
}

void HwSemaphores::write_reg(std::size_t index, std::uint64_t value) {
  if (value == 0) holders_.at(index) = CoreId{};
}

std::vector<RegInfo> HwSemaphores::registers() const {
  std::vector<RegInfo> out;
  out.reserve(holders_.size());
  for (std::size_t i = 0; i < holders_.size(); ++i)
    out.push_back({strformat("SEM%zu", i), i});
  return out;
}

}  // namespace rw::sim
