#include "sim/memory.hpp"

#include <cstring>
#include <stdexcept>

#include "common/strings.hpp"

namespace rw::sim {

RegionId MemorySystem::add_region(std::string name, Addr base,
                                  std::uint64_t size, Cycles access_latency,
                                  CoreId owner) {
  for (const auto& r : regions_) {
    const bool overlaps = base < r.base + r.size && r.base < base + size;
    if (overlaps)
      throw std::invalid_argument("memory region '" + name + "' overlaps '" +
                                  r.name + "'");
  }
  Region r;
  r.id = RegionId{static_cast<std::uint32_t>(regions_.size())};
  r.name = std::move(name);
  r.base = base;
  r.size = size;
  r.access_latency = access_latency;
  r.owner = owner;
  r.bytes.assign(size, 0);
  regions_.push_back(std::move(r));
  return regions_.back().id;
}

void MemorySystem::set_region_context(RegionId id, std::uint32_t tile,
                                      Kernel* clock, Tracer* trace) {
  Region& r = regions_.at(id.index());
  r.tile = tile;
  r.clock = clock;
  r.trace = trace;
}

const Region* MemorySystem::find_region(Addr a) const {
  for (const auto& r : regions_)
    if (a >= r.base && a < r.base + r.size) return &r;
  return nullptr;
}

Cycles MemorySystem::latency_for(Addr a) const {
  const Region* r = find_region(a);
  return r ? r->access_latency : 1;
}

Region& MemorySystem::region_for(Addr a, std::uint64_t len, CoreId core,
                                 bool is_write) {
  for (auto& r : regions_) {
    if (!r.contains(a, len)) continue;
    // Under tiled execution a region is only reachable from cores on its
    // own tile: the tiles' clocks are not ordered inside an epoch, so a
    // cross-tile load/store would have no defined timestamp (use a
    // TileLink or DMA through the fabric instead).
    if (!core_tiles_.empty() && core.is_valid() &&
        core.index() < core_tiles_.size() &&
        core_tiles_[core.index()] != r.tile) {
      throw std::logic_error(strformat(
          "cross-tile memory access: core%u (tile %u) touched %s (tile %u)",
          core.value(), core_tiles_[core.index()], r.name.c_str(), r.tile));
    }
    if (enforce_locality_ && r.is_local() && core.is_valid() &&
        r.owner != core) {
      locality_violations_.fetch_add(1, std::memory_order_relaxed);
      tracer_of(r).record(clock_of(r).now(),
                          is_write ? TraceKind::kMemWrite : TraceKind::kMemRead,
                          core, "LOCALITY_VIOLATION:" + r.name, a, len);
      throw std::runtime_error(strformat(
          "locality violation: core%u accessed %s (owned by core%u)",
          core.value(), r.name.c_str(), r.owner.value()));
    }
    return r;
  }
  // An unmapped access has no region and hence no tile context; recording
  // it on the tile-0 tracer is only safe when the caller is tile 0 (the
  // throw below terminates the run either way).
  const bool tile0 = core_tiles_.empty() || !core.is_valid() ||
                     core.index() >= core_tiles_.size() ||
                     core_tiles_[core.index()] == 0;
  if (tile0)
    tracer_.record(kernel_.now(),
                   is_write ? TraceKind::kMemWrite : TraceKind::kMemRead, core,
                   "ILLEGAL_ACCESS", a, len);
  throw std::out_of_range(
      strformat("illegal access to unmapped address 0x%llx (%llu bytes)",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(len)));
}

void MemorySystem::notify(const MemAccess& acc) {
  for (auto& o : observers_)
    if (o) o(acc);
}

std::uint64_t MemorySystem::read_u64(CoreId core, Addr a) {
  Region& r = region_for(a, 8, core, /*is_write=*/false);
  std::uint64_t v = 0;
  std::memcpy(&v, r.bytes.data() + (a - r.base), 8);
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemRead, core, r.name, a,
                      v);
  count_access(r, core, /*is_write=*/false, 8);
  notify(MemAccess{clock_of(r).now(), core, a, 8, false, v});
  return v;
}

void MemorySystem::write_u64(CoreId core, Addr a, std::uint64_t v) {
  Region& r = region_for(a, 8, core, /*is_write=*/true);
  std::memcpy(r.bytes.data() + (a - r.base), &v, 8);
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemWrite, core, r.name, a,
                      v);
  count_access(r, core, /*is_write=*/true, 8);
  notify(MemAccess{clock_of(r).now(), core, a, 8, true, v});
}

std::uint32_t MemorySystem::read_u32(CoreId core, Addr a) {
  Region& r = region_for(a, 4, core, /*is_write=*/false);
  std::uint32_t v = 0;
  std::memcpy(&v, r.bytes.data() + (a - r.base), 4);
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemRead, core, r.name, a,
                      v);
  count_access(r, core, /*is_write=*/false, 4);
  notify(MemAccess{clock_of(r).now(), core, a, 4, false, v});
  return v;
}

void MemorySystem::write_u32(CoreId core, Addr a, std::uint32_t v) {
  Region& r = region_for(a, 4, core, /*is_write=*/true);
  std::memcpy(r.bytes.data() + (a - r.base), &v, 4);
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemWrite, core, r.name, a,
                      v);
  count_access(r, core, /*is_write=*/true, 4);
  notify(MemAccess{clock_of(r).now(), core, a, 4, true, v});
}

void MemorySystem::read_block(CoreId core, Addr a,
                              std::span<std::uint8_t> out) {
  Region& r = region_for(a, out.size(), core, /*is_write=*/false);
  std::memcpy(out.data(), r.bytes.data() + (a - r.base), out.size());
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemRead, core, r.name, a,
                      out.size());
  count_access(r, core, /*is_write=*/false,
               static_cast<std::uint32_t>(out.size()));
  notify(MemAccess{clock_of(r).now(), core, a,
                   static_cast<std::uint32_t>(out.size()), false, 0});
}

void MemorySystem::write_block(CoreId core, Addr a,
                               std::span<const std::uint8_t> in) {
  Region& r = region_for(a, in.size(), core, /*is_write=*/true);
  std::memcpy(r.bytes.data() + (a - r.base), in.data(), in.size());
  tracer_of(r).record(clock_of(r).now(), TraceKind::kMemWrite, core, r.name, a,
                      in.size());
  count_access(r, core, /*is_write=*/true,
               static_cast<std::uint32_t>(in.size()));
  notify(MemAccess{clock_of(r).now(), core, a,
                   static_cast<std::uint32_t>(in.size()), true, 0});
}

void MemorySystem::poke(Addr a, std::span<const std::uint8_t> in) {
  for (auto& r : regions_) {
    if (r.contains(a, in.size())) {
      std::memcpy(r.bytes.data() + (a - r.base), in.data(), in.size());
      return;
    }
  }
  throw std::out_of_range("poke outside mapped memory");
}

void MemorySystem::peek(Addr a, std::span<std::uint8_t> out) const {
  for (const auto& r : regions_) {
    if (r.contains(a, out.size())) {
      std::memcpy(out.data(), r.bytes.data() + (a - r.base), out.size());
      return;
    }
  }
  throw std::out_of_range("peek outside mapped memory");
}

}  // namespace rw::sim
