#include "sim/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strings.hpp"

namespace rw::sim {

// ------------------------------------------------ static timing model

DurationPs bus_transfer_duration(const SharedBus::Config& cfg,
                                 std::uint64_t bytes) {
  const std::uint64_t beats =
      (bytes + cfg.width_bytes - 1) / cfg.width_bytes;
  return cycles_to_ps(cfg.arbitration_cycles + beats, cfg.frequency);
}

DurationPs mesh_serialization_time(const MeshNoc::Config& cfg,
                                   std::uint64_t bytes) {
  const std::uint64_t flits =
      (bytes + cfg.link_width_bytes - 1) / cfg.link_width_bytes;
  return cycles_to_ps(std::max<std::uint64_t>(flits, 1), cfg.link_frequency);
}

DurationPs bus_min_latency(const SharedBus::Config& cfg) {
  return cycles_to_ps(cfg.arbitration_cycles, cfg.frequency);
}

DurationPs mesh_min_latency(const MeshNoc::Config& cfg) {
  return cfg.hop_latency;
}

namespace {

struct MeshCoord {
  std::uint32_t x, y;
};

MeshCoord mesh_coord_of(const MeshNoc::Config& cfg, CoreId c) {
  const std::uint32_t idx = c.value() % (cfg.width * cfg.height);
  return MeshCoord{idx % cfg.width, idx / cfg.width};
}

std::size_t mesh_link_index(const MeshNoc::Config& cfg, MeshCoord from,
                            MeshCoord to) {
  // Direction encoding: 0=+x, 1=-x, 2=+y, 3=-y.
  std::size_t dir = 0;
  if (to.x == from.x + 1) {
    dir = 0;
  } else if (from.x == to.x + 1) {
    dir = 1;
  } else if (to.y == from.y + 1) {
    dir = 2;
  } else if (from.y == to.y + 1) {
    dir = 3;
  } else {
    throw std::logic_error("link_index: nodes are not neighbours");
  }
  const std::size_t node = from.y * cfg.width + from.x;
  return node * 4 + dir;
}

}  // namespace

std::vector<std::size_t> mesh_route(const MeshNoc::Config& cfg, CoreId src,
                                    CoreId dst) {
  std::vector<std::size_t> links;
  MeshCoord cur = mesh_coord_of(cfg, src);
  const MeshCoord end = mesh_coord_of(cfg, dst);
  // X first, then Y (deterministic, deadlock-free dimension ordering).
  while (cur.x != end.x) {
    const MeshCoord next{cur.x < end.x ? cur.x + 1 : cur.x - 1, cur.y};
    links.push_back(mesh_link_index(cfg, cur, next));
    cur = next;
  }
  while (cur.y != end.y) {
    const MeshCoord next{cur.x, cur.y < end.y ? cur.y + 1 : cur.y - 1};
    links.push_back(mesh_link_index(cfg, cur, next));
    cur = next;
  }
  return links;
}

// ---------------------------------------------------------------- SharedBus

DurationPs SharedBus::transfer_duration(std::uint64_t bytes) const {
  return bus_transfer_duration(cfg_, bytes);
}

std::pair<TimePs, TimePs> SharedBus::reserve_transfer(CoreId src, CoreId dst,
                                                      std::uint64_t bytes,
                                                      TimePs earliest) {
  const TimePs ready = std::max(earliest, kernel_.now());
  const TimePs start = std::max(ready, busy_until_);
  contention_ += start - ready;
  const TimePs finish = start + faulted(transfer_duration(bytes));
  busy_until_ = finish;
  ++transfers_;
  if (perf_) {
    perf_->on_transfer(src, dst, bytes, start - ready, finish - start,
                       /*hops=*/0);
    perf_->on_link_busy(0, finish - start);
  }
  return {start, finish};
}

DurationPs SharedBus::nominal_latency(CoreId, CoreId,
                                      std::uint64_t bytes) const {
  return transfer_duration(bytes);
}

std::string SharedBus::describe() const {
  return strformat("shared-bus(%s, %uB wide)", format_hz(cfg_.frequency).c_str(),
                   cfg_.width_bytes);
}

// ------------------------------------------------------------------ MeshNoc

MeshNoc::MeshNoc(Kernel& kernel, Config cfg) : kernel_(kernel), cfg_(cfg) {
  if (cfg_.width == 0 || cfg_.height == 0)
    throw std::invalid_argument("mesh dimensions must be positive");
  // Four directed links per node is an upper bound; unused slots stay idle.
  link_busy_until_.assign(
      static_cast<std::size_t>(cfg_.width) * cfg_.height * 4, 0);
}

MeshNoc::Coord MeshNoc::coord_of(CoreId c) const {
  const MeshCoord m = mesh_coord_of(cfg_, c);
  return Coord{m.x, m.y};
}

std::size_t MeshNoc::link_index(Coord from, Coord to) const {
  return mesh_link_index(cfg_, MeshCoord{from.x, from.y},
                         MeshCoord{to.x, to.y});
}

std::vector<std::size_t> MeshNoc::route(CoreId src, CoreId dst) const {
  return mesh_route(cfg_, src, dst);
}

std::uint32_t MeshNoc::hop_count(CoreId src, CoreId dst) const {
  const Coord a = coord_of(src);
  const Coord b = coord_of(dst);
  const auto dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const auto dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

void MeshNoc::set_link_degrade(std::size_t link, double factor) {
  if (link >= link_busy_until_.size())
    throw std::out_of_range("set_link_degrade: no such link");
  if (link_degrade_.empty()) link_degrade_.assign(link_busy_until_.size(), 1.0);
  link_degrade_[link] = factor < 1.0 ? 1.0 : factor;
}

double MeshNoc::link_degrade(std::size_t link) const {
  return link < link_degrade_.size() ? link_degrade_[link] : 1.0;
}

DurationPs MeshNoc::serialization_time(std::uint64_t bytes) const {
  return mesh_serialization_time(cfg_, bytes);
}

std::pair<TimePs, TimePs> MeshNoc::reserve_transfer(CoreId src, CoreId dst,
                                                    std::uint64_t bytes,
                                                    TimePs earliest) {
  const TimePs ready = std::max(earliest, kernel_.now());
  if (src == dst) {
    // Local delivery: no links used.
    ++transfers_;
    if (perf_) perf_->on_transfer(src, dst, bytes, 0, 0, 0);
    return {ready, ready};
  }
  // Store-and-forward per hop: each link is reserved in sequence for the
  // message's serialization time plus the hop latency. Fault model: the
  // fabric-wide and per-link degrade factors stretch each link's
  // occupancy; an armed packet drop is charged once, on the first link
  // (drop + retransmit at the injecting router).
  const DurationPs ser = serialization_time(bytes);
  bool charge_drop = pending_drops_ > 0;
  if (charge_drop) {
    --pending_drops_;
    ++dropped_;
  }
  TimePs t = ready;
  TimePs first_start = 0;
  bool first = true;
  std::uint32_t hops = 0;
  for (const std::size_t link : route(src, dst)) {
    const TimePs start = std::max(t, link_busy_until_[link]);
    if (first) {
      first_start = start;
      contention_ += start - ready;
    }
    DurationPs occ = ser + cfg_.hop_latency;
    const double f =
        degrade_ * (link < link_degrade_.size() ? link_degrade_[link] : 1.0);
    if (f != 1.0) occ = static_cast<DurationPs>(static_cast<double>(occ) * f);
    if (first && charge_drop) occ *= 2;
    first = false;
    const TimePs done = start + occ;
    link_busy_until_[link] = done;
    if (perf_) perf_->on_link_busy(link, done - start);
    t = done;
    ++hops;
  }
  ++transfers_;
  if (perf_)
    perf_->on_transfer(src, dst, bytes, first_start - ready, t - first_start,
                       hops);
  return {first_start, t};
}

DurationPs MeshNoc::nominal_latency(CoreId src, CoreId dst,
                                    std::uint64_t bytes) const {
  const std::uint32_t hops = hop_count(src, dst);
  if (hops == 0) return 0;
  return hops * (serialization_time(bytes) + cfg_.hop_latency);
}

std::string MeshNoc::describe() const {
  return strformat("mesh-noc(%ux%u, %s links)", cfg_.width, cfg_.height,
                   format_hz(cfg_.link_frequency).c_str());
}

}  // namespace rw::sim
