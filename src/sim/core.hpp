// Transaction-level processor core model.
//
// Cores execute work measured in cycles; the model captures exactly the
// properties the paper's arguments depend on — per-core frequency that can
// be changed at run time ("frequency variability per core", Sec. II-A),
// a PE class for heterogeneous platforms (Sec. IV/V), serialization of
// work submitted to the same core, and architectural state a debugger can
// inspect while the system is suspended (Sec. VII).
#pragma once

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/kernel.hpp"
#include "sim/perf_hooks.hpp"
#include "sim/trace.hpp"

namespace rw::sim {

/// Processing-element class. Heterogeneous platforms mix these; the
/// homogeneous-ISA platforms of Sec. II use kRisc everywhere.
enum class PeClass : std::uint8_t { kRisc, kDsp, kVliw, kAsip, kAccel };

const char* pe_class_name(PeClass c);

// --- seeded-defect test hook (rw::fuzz selftest) ---------------------
//
// Compiling with -DRW_SEEDED_DEFECT (CMake option RW_SEEDED_DEFECT)
// builds in a switchable regression of a PR 5 review fix: is_active()
// drops its issue-tag comparison and validates pending compute events by
// active_-membership alone, so a stale end event from before a crash can
// revalidate against the re-issued block and complete it early. The fuzz
// campaign's defect selftest proves the invariant oracle finds and
// shrinks this within its seed budget. Release/tier-1 builds do not
// define the macro: the hook compiles away entirely.

/// True when the binary was compiled with the defect hook present.
bool seeded_defect_compiled();
/// Arm/disarm the defect at run time (no-op unless compiled in).
void set_seeded_defect(bool on);
/// Current arm state (always false unless compiled in and armed).
bool seeded_defect_enabled();

class Core {
 public:
  Core(Kernel& kernel, Tracer& tracer, CoreId id, PeClass cls, HertzT freq)
      : kernel_(kernel),
        tracer_(tracer),
        id_(id),
        cls_(cls),
        freq_(freq),
        nominal_freq_(freq) {}

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] PeClass pe_class() const { return cls_; }
  [[nodiscard]] HertzT frequency() const { return freq_; }
  [[nodiscard]] HertzT nominal_frequency() const { return nominal_freq_; }

  /// DVFS: change the clock. Affects work reserved after this call; work
  /// already in flight completes at the old rate (a conservative model of
  /// PLL relock). Traced as kFreqChange.
  void set_frequency(HertzT f);

  /// Reserve the core for `cycles` of work starting no earlier than now.
  /// Returns {start, finish} in simulated time; the core is busy until
  /// `finish`. Work submitted while busy queues FIFO behind it.
  std::pair<TimePs, TimePs> reserve(Cycles cycles);

  /// As reserve(), but the work starts no earlier than `earliest`.
  std::pair<TimePs, TimePs> reserve_from(TimePs earliest, Cycles cycles);

  /// Awaitable: run `cycles` of computation labelled `label` on this core.
  /// `core` is a pointer (not a reference) because a parked computation can
  /// be migrated to a surviving core after a crash — see migrate_parked().
  struct ComputeAwaitable {
    Core* core;
    Cycles cycles;
    std::string label;
    TimePs finish = 0;
    std::coroutine_handle<> handle{};
    std::uint64_t issue = 0;  // globally-unique issue tag (see start_compute)

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  [[nodiscard]] ComputeAwaitable compute(Cycles cycles,
                                         std::string label = "work") {
    return ComputeAwaitable{this, cycles, std::move(label)};
  }

  /// Fault model (rw::fault). fail() crashes the core: computation in
  /// flight is lost (its coroutine parks, never resuming on its own) and
  /// computation submitted while crashed parks immediately — exactly the
  /// silent lockup a watchdog exists to catch. recover() models a reset:
  /// parked work re-executes from scratch on this core. migrate_parked()
  /// re-executes parked work on a surviving core instead (degradation-aware
  /// remapping); the parked awaitables are retargeted, so the coroutines
  /// resume on the survivor. stall() is a transient fault: the core's
  /// availability is pushed out by `d` without losing any work. All four
  /// are deterministic and trace as kCustom events.
  void fail();
  void recover();
  std::size_t migrate_parked(Core& to);
  void stall(DurationPs d);
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t parked_count() const { return parked_.size(); }
  [[nodiscard]] std::uint64_t fail_count() const { return fail_count_; }
  [[nodiscard]] std::uint64_t stall_count() const { return stall_count_; }
  /// Time of the most recent fail() (recovery-latency bookkeeping).
  [[nodiscard]] TimePs last_fail_time() const { return last_fail_time_; }

  /// Time at which the core next becomes idle.
  [[nodiscard]] TimePs busy_until() const { return busy_until_; }
  [[nodiscard]] bool idle_at(TimePs t) const { return busy_until_ <= t; }

  /// Total cycles executed and busy time (for utilization reports).
  [[nodiscard]] Cycles cycles_executed() const { return cycles_executed_; }
  [[nodiscard]] DurationPs busy_time() const { return busy_time_; }
  [[nodiscard]] double utilization(TimePs horizon) const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(busy_time_) /
                              static_cast<double>(horizon);
  }

  /// Architectural state visible to the debugger while suspended.
  static constexpr std::size_t kNumRegs = 16;
  [[nodiscard]] std::uint64_t reg(std::size_t i) const { return regs_.at(i); }
  void set_reg(std::size_t i, std::uint64_t v) { regs_.at(i) = v; }
  [[nodiscard]] const std::string& current_label() const {
    return current_label_;
  }

  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  /// PMU observation point; nullptr (the default) disables all hooks.
  void set_perf_sink(PerfSink* sink) { perf_ = sink; }
  [[nodiscard]] PerfSink* perf_sink() const { return perf_; }

 private:
  friend struct ComputeAwaitable;
  /// (Re)issue a compute block: reserve the core and schedule the start/end
  /// trace + resume events, or park `aw` when the core is crashed.
  void start_compute(ComputeAwaitable* aw);

  /// Globally-unique issue tag: this core's id in the high 32 bits over a
  /// per-core monotonic count. A tag captured by a scheduled event can
  /// therefore never collide with a re-issue on another core (distinct id
  /// bits) nor with a later re-issue on this core (monotonic count).
  [[nodiscard]] std::uint64_t make_issue_tag() {
    return (static_cast<std::uint64_t>(id_.value()) << 32) | ++issue_seq_;
  }

  /// Event-side validity check for a pending start/end event issued by
  /// *this* core: `aw` must still be in our active_ list (a pointer-only
  /// membership scan — safe even when `aw` is dangling) and, once known
  /// live, still carry the issue tag the event captured.
  [[nodiscard]] bool is_active(const ComputeAwaitable* aw,
                               std::uint64_t issue) const {
    const bool member =
        std::find(active_.begin(), active_.end(), aw) != active_.end();
#ifdef RW_SEEDED_DEFECT
    // Armed defect: membership alone, no tag — the exact pre-PR-5-fix
    // validation. A stale end event whose block was re-issued on this
    // core after a crash revalidates and completes the block early.
    if (seeded_defect_enabled()) return member;
#endif
    return member && aw->issue == issue;
  }

  Kernel& kernel_;
  Tracer& tracer_;
  PerfSink* perf_ = nullptr;
  CoreId id_;
  PeClass cls_;
  HertzT freq_;
  HertzT nominal_freq_;
  bool failed_ = false;
  std::uint64_t issue_seq_ = 0;  // per-core count under make_issue_tag()
  std::uint64_t fail_count_ = 0;
  std::uint64_t stall_count_ = 0;
  TimePs last_fail_time_ = 0;
  std::vector<ComputeAwaitable*> active_;  // in-flight compute blocks
  std::vector<ComputeAwaitable*> parked_;  // lost to a crash, awaiting rerun
  TimePs busy_until_ = 0;
  Cycles cycles_executed_ = 0;
  DurationPs busy_time_ = 0;
  std::array<std::uint64_t, kNumRegs> regs_{};
  std::string current_label_ = "<idle>";
};

}  // namespace rw::sim
