#include "sim/core.hpp"

#include <algorithm>

namespace rw::sim {

const char* pe_class_name(PeClass c) {
  switch (c) {
    case PeClass::kRisc: return "RISC";
    case PeClass::kDsp: return "DSP";
    case PeClass::kVliw: return "VLIW";
    case PeClass::kAsip: return "ASIP";
    case PeClass::kAccel: return "ACCEL";
  }
  return "?";
}

void Core::set_frequency(HertzT f) {
  if (f == freq_) return;
  tracer_.record(kernel_.now(), TraceKind::kFreqChange, id_, "dvfs", f,
                 freq_);
  if (perf_) perf_->on_freq_change(id_, freq_, f);
  freq_ = f;
}

std::pair<TimePs, TimePs> Core::reserve(Cycles cycles) {
  return reserve_from(kernel_.now(), cycles);
}

std::pair<TimePs, TimePs> Core::reserve_from(TimePs earliest, Cycles cycles) {
  const TimePs start = std::max({earliest, kernel_.now(), busy_until_});
  const DurationPs dur = cycles_to_ps(cycles, freq_);
  const TimePs finish = start + dur;
  busy_until_ = finish;
  cycles_executed_ += cycles;
  busy_time_ += dur;
  if (perf_) perf_->on_core_reserve(id_, cycles, start, finish, freq_);
  return {start, finish};
}

void Core::ComputeAwaitable::await_suspend(std::coroutine_handle<> h) {
  handle = h;
  core->start_compute(this);
}

void Core::start_compute(ComputeAwaitable* aw) {
  aw->core = this;
  if (failed_) {
    parked_.push_back(aw);
    return;
  }
  auto [start, end] = reserve(aw->cycles);
  aw->finish = end;
  aw->epoch = fail_epoch_;
  aw->issue = ++issue_seq_;
  const std::uint64_t issue = aw->issue;
  active_.push_back(aw);
  // Record trace events at their proper timestamps (via kernel events) so
  // the trace stays chronological even when several cores overlap. Both
  // events go stale when the core crashes before they run: fail() parks
  // the awaitable immediately (fail_epoch_ mismatch), and a later
  // recover()/migrate_parked() re-issues the whole block under a fresh
  // issue tag — without the tag, a re-issue *before* the original end
  // event's timestamp would revalidate the stale event (aw->epoch is
  // reset to the live epoch) and the block would complete twice,
  // resuming a finished coroutine.
  kernel_.schedule_at(start, [aw, issue] {
    if (aw->issue != issue) return;
    Core& c = *aw->core;
    if (aw->epoch != c.fail_epoch_) return;
    c.current_label_ = aw->label;
    c.tracer_.record(c.kernel_.now(), TraceKind::kComputeStart, c.id_,
                     aw->label, aw->cycles, 0);
  });
  kernel_.schedule_at(end, [aw, start, issue] {
    if (aw->issue != issue) return;
    Core& c = *aw->core;
    if (aw->epoch != c.fail_epoch_) return;
    std::erase(c.active_, aw);
    c.tracer_.record(c.kernel_.now(), TraceKind::kComputeEnd, c.id_,
                     aw->label, aw->cycles, 0);
    if (c.perf_)
      c.perf_->on_compute_block(c.id_, aw->label, aw->cycles, start,
                                c.kernel_.now());
    c.current_label_ = "<idle>";
    aw->handle.resume();
  });
}

void Core::fail() {
  if (failed_) return;
  failed_ = true;
  ++fail_count_;
  last_fail_time_ = kernel_.now();
  ++fail_epoch_;  // every scheduled start/end event of this core goes stale
  // In-flight work is lost: park it for a later recover()/migrate_parked().
  for (ComputeAwaitable* aw : active_) parked_.push_back(aw);
  active_.clear();
  busy_until_ = kernel_.now();  // the flushed reservations no longer occupy
  current_label_ = "<crashed>";
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_crash",
                 parked_.size(), 0);
}

void Core::recover() {
  if (!failed_) return;
  failed_ = false;
  current_label_ = "<idle>";
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_recover",
                 parked_.size(), 0);
  // Re-execute everything that was lost, in park order (deterministic).
  std::vector<ComputeAwaitable*> lost;
  lost.swap(parked_);
  for (ComputeAwaitable* aw : lost) start_compute(aw);
}

std::size_t Core::migrate_parked(Core& to) {
  const std::size_t n = parked_.size();
  if (n == 0) return 0;
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_remap",
                 n, to.id_.value());
  std::vector<ComputeAwaitable*> lost;
  lost.swap(parked_);
  for (ComputeAwaitable* aw : lost) to.start_compute(aw);
  return n;
}

void Core::stall(DurationPs d) {
  ++stall_count_;
  busy_until_ = std::max(busy_until_, kernel_.now()) + d;
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_stall",
                 d, 0);
}

}  // namespace rw::sim
