#include "sim/core.hpp"

#include <algorithm>
#include <atomic>

namespace rw::sim {

namespace {
// Armed state for the compiled-in seeded defect. Atomic so a campaign
// running scenario fan-out on harness threads can read it racelessly;
// it is only ever written between runs.
std::atomic<bool> g_seeded_defect{false};
}  // namespace

bool seeded_defect_compiled() {
#ifdef RW_SEEDED_DEFECT
  return true;
#else
  return false;
#endif
}

void set_seeded_defect(bool on) {
  g_seeded_defect.store(on, std::memory_order_relaxed);
}

bool seeded_defect_enabled() {
  return seeded_defect_compiled() &&
         g_seeded_defect.load(std::memory_order_relaxed);
}

const char* pe_class_name(PeClass c) {
  switch (c) {
    case PeClass::kRisc: return "RISC";
    case PeClass::kDsp: return "DSP";
    case PeClass::kVliw: return "VLIW";
    case PeClass::kAsip: return "ASIP";
    case PeClass::kAccel: return "ACCEL";
  }
  return "?";
}

void Core::set_frequency(HertzT f) {
  if (f == freq_) return;
  tracer_.record(kernel_.now(), TraceKind::kFreqChange, id_, "dvfs", f,
                 freq_);
  if (perf_) perf_->on_freq_change(id_, freq_, f);
  freq_ = f;
}

std::pair<TimePs, TimePs> Core::reserve(Cycles cycles) {
  return reserve_from(kernel_.now(), cycles);
}

std::pair<TimePs, TimePs> Core::reserve_from(TimePs earliest, Cycles cycles) {
  const TimePs start = std::max({earliest, kernel_.now(), busy_until_});
  const DurationPs dur = cycles_to_ps(cycles, freq_);
  const TimePs finish = start + dur;
  busy_until_ = finish;
  cycles_executed_ += cycles;
  busy_time_ += dur;
  if (perf_) perf_->on_core_reserve(id_, cycles, start, finish, freq_);
  return {start, finish};
}

void Core::ComputeAwaitable::await_suspend(std::coroutine_handle<> h) {
  handle = h;
  core->start_compute(this);
}

void Core::start_compute(ComputeAwaitable* aw) {
  aw->core = this;
  if (failed_) {
    parked_.push_back(aw);
    return;
  }
  auto [start, end] = reserve(aw->cycles);
  aw->finish = end;
  aw->issue = make_issue_tag();
  const std::uint64_t issue = aw->issue;
  active_.push_back(aw);
  // Record trace events at their proper timestamps (via kernel events) so
  // the trace stays chronological even when several cores overlap. Both
  // events go stale when the core crashes before they run: fail() moves
  // the awaitable from active_ to parked_, and a later recover()/
  // migrate_parked() re-issues the whole block under a fresh globally
  // unique tag. Each event captures the core that issued it (`self`) and
  // validates via is_active(): membership in self->active_ is a
  // pointer-only scan, so a stale event whose awaitable migrated away —
  // and whose coroutine frame may have completed and been freed on the
  // survivor — never dereferences `aw`; tags are globally unique, so a
  // stale tag can never coincide with a re-issue on another core.
  // Without the tag, a same-core re-issue landing back in active_ before
  // the original end event's timestamp would revalidate the stale event
  // and the block would complete twice, resuming a finished coroutine.
  Core* self = this;
  kernel_.schedule_at(start, [self, aw, issue] {
    if (!self->is_active(aw, issue)) return;
    self->current_label_ = aw->label;
    self->tracer_.record(self->kernel_.now(), TraceKind::kComputeStart,
                         self->id_, aw->label, aw->cycles, 0);
  });
  kernel_.schedule_at(end, [self, aw, start, issue] {
    if (!self->is_active(aw, issue)) return;
    std::erase(self->active_, aw);
    self->tracer_.record(self->kernel_.now(), TraceKind::kComputeEnd,
                         self->id_, aw->label, aw->cycles, 0);
    if (self->perf_)
      self->perf_->on_compute_block(self->id_, aw->label, aw->cycles, start,
                                    self->kernel_.now());
    self->current_label_ = "<idle>";
    aw->handle.resume();
  });
}

void Core::fail() {
  if (failed_) return;
  failed_ = true;
  ++fail_count_;
  last_fail_time_ = kernel_.now();
  // In-flight work is lost: park it for a later recover()/migrate_parked().
  // Leaving active_ is what invalidates the blocks' pending start/end
  // events (see the is_active() checks in start_compute).
  for (ComputeAwaitable* aw : active_) parked_.push_back(aw);
  active_.clear();
  busy_until_ = kernel_.now();  // the flushed reservations no longer occupy
  current_label_ = "<crashed>";
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_crash",
                 parked_.size(), 0);
}

void Core::recover() {
  if (!failed_) return;
  failed_ = false;
  current_label_ = "<idle>";
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_recover",
                 parked_.size(), 0);
  // Re-execute everything that was lost, in park order (deterministic).
  std::vector<ComputeAwaitable*> lost;
  lost.swap(parked_);
  for (ComputeAwaitable* aw : lost) start_compute(aw);
}

std::size_t Core::migrate_parked(Core& to) {
  const std::size_t n = parked_.size();
  if (n == 0) return 0;
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_remap",
                 n, to.id_.value());
  std::vector<ComputeAwaitable*> lost;
  lost.swap(parked_);
  for (ComputeAwaitable* aw : lost) to.start_compute(aw);
  return n;
}

void Core::stall(DurationPs d) {
  ++stall_count_;
  busy_until_ = std::max(busy_until_, kernel_.now()) + d;
  tracer_.record(kernel_.now(), TraceKind::kCustom, id_, "fault.core_stall",
                 d, 0);
}

}  // namespace rw::sim
