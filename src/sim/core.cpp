#include "sim/core.hpp"

#include <algorithm>

namespace rw::sim {

const char* pe_class_name(PeClass c) {
  switch (c) {
    case PeClass::kRisc: return "RISC";
    case PeClass::kDsp: return "DSP";
    case PeClass::kVliw: return "VLIW";
    case PeClass::kAsip: return "ASIP";
    case PeClass::kAccel: return "ACCEL";
  }
  return "?";
}

void Core::set_frequency(HertzT f) {
  if (f == freq_) return;
  tracer_.record(kernel_.now(), TraceKind::kFreqChange, id_, "dvfs", f,
                 freq_);
  if (perf_) perf_->on_freq_change(id_, freq_, f);
  freq_ = f;
}

std::pair<TimePs, TimePs> Core::reserve(Cycles cycles) {
  return reserve_from(kernel_.now(), cycles);
}

std::pair<TimePs, TimePs> Core::reserve_from(TimePs earliest, Cycles cycles) {
  const TimePs start = std::max({earliest, kernel_.now(), busy_until_});
  const DurationPs dur = cycles_to_ps(cycles, freq_);
  const TimePs finish = start + dur;
  busy_until_ = finish;
  cycles_executed_ += cycles;
  busy_time_ += dur;
  if (perf_) perf_->on_core_reserve(id_, cycles, start, finish, freq_);
  return {start, finish};
}

void Core::ComputeAwaitable::await_suspend(std::coroutine_handle<> h) {
  auto [start, end] = core.reserve(cycles);
  finish = end;
  // Record trace events at their proper timestamps (via kernel events) so
  // the trace stays chronological even when several cores overlap.
  core.kernel_.schedule_at(start, [this] {
    core.current_label_ = label;
    core.tracer_.record(core.kernel_.now(), TraceKind::kComputeStart,
                        core.id_, label, cycles, 0);
  });
  core.kernel_.schedule_at(end, [this, h, start] {
    core.tracer_.record(core.kernel_.now(), TraceKind::kComputeEnd, core.id_,
                        label, cycles, 0);
    if (core.perf_)
      core.perf_->on_compute_block(core.id_, label, cycles, start,
                                   core.kernel_.now());
    core.current_label_ = "<idle>";
    h.resume();
  });
}

}  // namespace rw::sim
