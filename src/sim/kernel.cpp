#include "sim/kernel.hpp"

#include <cassert>
#include <stdexcept>

namespace rw::sim {

void Kernel::push(TimePs t, EventFn fn, int priority, bool daemon) {
  if (t < now_)
    throw std::logic_error("Kernel::schedule_at: time travels backwards");
  queue_.push(Entry{t, priority, seq_++, std::move(fn), daemon});
  if (!daemon) ++live_;
}

void Kernel::schedule_at(TimePs t, EventFn fn, int priority) {
  push(t, std::move(fn), priority, /*daemon=*/false);
}

void Kernel::schedule_in(DurationPs d, EventFn fn, int priority) {
  push(now_ + d, std::move(fn), priority, /*daemon=*/false);
}

void Kernel::schedule_daemon_at(TimePs t, EventFn fn, int priority) {
  push(t, std::move(fn), priority, /*daemon=*/true);
}

void Kernel::schedule_daemon_in(DurationPs d, EventFn fn, int priority) {
  push(now_ + d, std::move(fn), priority, /*daemon=*/true);
}

bool Kernel::step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Entry e = queue_.top();
  queue_.pop();
  if (!e.daemon) --live_;
  assert(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Kernel::run(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t budget = max_events;
  // Stop once only daemons remain: observers never keep the model alive,
  // and the simulated end time stays that of the last live event.
  while (budget-- > 0 && !stop_requested_ && live_ > 0 && step()) {
  }
}

void Kernel::run_until(TimePs t) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (now_ < t && !stop_requested_) now_ = t;
}

Kernel::~Kernel() {
  // Processes suspend at final_suspend (see process.hpp), so every adopted
  // handle — finished or not — is still valid here and owned by the kernel.
  for (auto h : adopted_) {
    if (h) h.destroy();
  }
}

}  // namespace rw::sim
