#include "sim/kernel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace rw::sim {

const char* queue_policy_name(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kCalendar: return "calendar";
    case QueuePolicy::kBinaryHeap: return "heap";
  }
  return "?";
}

const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kSequential: return "seq";
    case ExecMode::kParallel: return "par";
  }
  return "?";
}

Kernel::Kernel(const KernelConfig& cfg) : cfg_(cfg) {
  if (cfg_.bucket_width_log2 >= 32 || cfg_.num_buckets_log2 >= 24)
    throw std::invalid_argument("KernelConfig: wheel parameters too large");
  num_buckets_ = 1ULL << cfg_.num_buckets_log2;
  if (cfg_.policy == QueuePolicy::kCalendar) {
    buckets_.resize(num_buckets_);
    bucket_bits_.resize((num_buckets_ + 63) / 64, 0);
  }
}

// ------------------------------------------------------------- entry pool

std::uint32_t Kernel::acquire_entry(EventFn fn, bool daemon) {
  if (free_head_ != kNone) {
    const std::uint32_t idx = free_head_;
    Entry& e = pool_[idx];
    free_head_ = e.next_free;
    e.fn = std::move(fn);
    e.daemon = daemon;
    return idx;
  }
  pool_.push_back(Entry{std::move(fn), kNone, daemon});
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Kernel::release_entry(std::uint32_t idx) {
  Entry& e = pool_[idx];
  e.fn.reset();
  e.next_free = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------- two-tier queue

void Kernel::wheel_insert(const Node& n) {
  const std::uint64_t i = bucket_offset(n.time);
  auto& b = buckets_[i];
  b.push_back(n);
  std::push_heap(b.begin(), b.end(), NodeAfter{});
  bucket_bits_[i >> 6] |= 1ULL << (i & 63);
  ++wheel_count_;
}

std::size_t Kernel::next_occupied_bucket(std::size_t from) const {
  std::size_t word = from >> 6;
  std::uint64_t bits = bucket_bits_[word] & (~0ULL << (from & 63));
  while (bits == 0) bits = bucket_bits_[++word];
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
}

void Kernel::rebase_from_spill() {
  // Only reached with an empty wheel, so the spill minimum is the global
  // minimum; re-anchor the wheel at its bucket and migrate every spill
  // event that now falls within the horizon. Migration happens strictly
  // before any same-time event is popped, so events that were once far
  // future merge back into the exact (time, priority, seq) order.
  assert(wheel_count_ == 0 && !spill_.empty());
  wheel_base_ = spill_.front().time &
                ~((static_cast<TimePs>(1) << cfg_.bucket_width_log2) - 1);
  cur_bucket_ = 0;
  while (!spill_.empty() && bucket_offset(spill_.front().time) < num_buckets_) {
    std::pop_heap(spill_.begin(), spill_.end(), NodeAfter{});
    wheel_insert(spill_.back());
    spill_.pop_back();
  }
}

void Kernel::settle_min_bucket() {
  assert(size_ > 0);
  for (;;) {
    if (wheel_count_ > 0) {
      // Insertions never land before cur_bucket_ (they are >= now), so the
      // cursor is monotone within one wheel epoch.
      cur_bucket_ = next_occupied_bucket(cur_bucket_);
      return;
    }
    rebase_from_spill();
  }
}

bool Kernel::step_calendar() {
  if (size_ == 0) return false;
  settle_min_bucket();
  auto& b = buckets_[cur_bucket_];
  std::pop_heap(b.begin(), b.end(), NodeAfter{});
  const Node n = b.back();
  b.pop_back();
  if (b.empty())
    bucket_bits_[cur_bucket_ >> 6] &= ~(1ULL << (cur_bucket_ & 63));
  --wheel_count_;
  --size_;
  Entry& e = pool_[n.idx];
  if (!e.daemon) --live_;
  assert(n.time >= now_);
  now_ = n.time;
  ++executed_;
  // Move the callable out before running it: the handler may schedule new
  // events, which can reuse (or grow past) this pool slot.
  EventFn fn = std::move(e.fn);
  release_entry(n.idx);
  fn();
  return true;
}

// ------------------------------------------------------ legacy binary heap

bool Kernel::step_legacy() {
  if (legacy_.empty()) return false;
  // Move out before pop: the handler may schedule new events. (top() is
  // const; the move is safe because pop() destroys the moved-from entry.)
  LegacyEntry e = std::move(const_cast<LegacyEntry&>(legacy_.top()));
  legacy_.pop();
  --size_;
  if (!e.daemon) --live_;
  assert(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

// ------------------------------------------------------------- public API

void Kernel::push(TimePs t, EventFn fn, int priority, bool daemon) {
  if (t < now_)
    throw std::logic_error("Kernel::schedule_at: time travels backwards");
  if (cfg_.policy == QueuePolicy::kBinaryHeap) {
    legacy_.push(LegacyEntry{t, priority, seq_++, std::move(fn), daemon});
  } else {
    const Node n{t, seq_++, priority,
                 acquire_entry(std::move(fn), daemon)};
    // wheel_base_ <= now_ <= t always holds here (the wheel is only ever
    // re-anchored at the next event to pop), so bucket_offset is exact.
    if (bucket_offset(t) < num_buckets_) {
      wheel_insert(n);
    } else {
      spill_.push_back(n);
      std::push_heap(spill_.begin(), spill_.end(), NodeAfter{});
    }
  }
  ++size_;
  if (!daemon) ++live_;
}

void Kernel::schedule_at(TimePs t, EventFn fn, int priority) {
  push(t, std::move(fn), priority, /*daemon=*/false);
}

void Kernel::schedule_in(DurationPs d, EventFn fn, int priority) {
  push(now_ + d, std::move(fn), priority, /*daemon=*/false);
}

void Kernel::schedule_daemon_at(TimePs t, EventFn fn, int priority) {
  push(t, std::move(fn), priority, /*daemon=*/true);
}

void Kernel::schedule_daemon_in(DurationPs d, EventFn fn, int priority) {
  push(now_ + d, std::move(fn), priority, /*daemon=*/true);
}

TimePs Kernel::next_event_time() const {
  if (size_ == 0) return UINT64_MAX;
  if (cfg_.policy == QueuePolicy::kBinaryHeap) return legacy_.top().time;
  if (wheel_count_ == 0) return spill_.front().time;
  // All buckets before cur_bucket_ are empty and spill events lie beyond
  // the horizon, so the first non-empty bucket's heap front is the global
  // minimum. step() re-finds (and commits) the same bucket.
  return buckets_[next_occupied_bucket(cur_bucket_)].front().time;
}

bool Kernel::step() {
  return cfg_.policy == QueuePolicy::kBinaryHeap ? step_legacy()
                                                 : step_calendar();
}

void Kernel::run(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t budget = max_events;
  // Stop once only daemons remain: observers never keep the model alive,
  // and the simulated end time stays that of the last live event.
  while (budget-- > 0 && !stop_requested_ && live_ > 0 && step()) {
  }
}

void Kernel::run_until(TimePs t) {
  stop_requested_ = false;
  while (!stop_requested_ && size_ > 0 && next_event_time() <= t) {
    step();
  }
  if (now_ < t && !stop_requested_) now_ = t;
}

std::uint64_t Kernel::run_window(TimePs limit, bool live_only) {
  std::uint64_t n = 0;
  while (!stop_requested_ && size_ > 0 && (!live_only || live_ > 0) &&
         next_event_time() <= limit) {
    step();
    ++n;
  }
  return n;
}

void Kernel::advance_to(TimePs t) {
  assert(size_ == 0 || next_event_time() >= t);
  if (t > now_) now_ = t;
}

Kernel::~Kernel() {
  // Processes suspend at final_suspend (see process.hpp), so every adopted
  // handle — finished or not — is still valid here and owned by the kernel.
  for (auto h : adopted_) {
    if (h) h.destroy();
  }
}

}  // namespace rw::sim
