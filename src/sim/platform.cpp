#include "sim/platform.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace rw::sim {

PlatformConfig PlatformConfig::homogeneous(std::size_t n, HertzT freq) {
  PlatformConfig cfg;
  cfg.cores.assign(n, CoreCfg{PeClass::kRisc, freq, 64 * 1024});
  return cfg;
}

PlatformConfig PlatformConfig::heterogeneous(std::size_t riscs,
                                             std::size_t dsps) {
  PlatformConfig cfg;
  for (std::size_t i = 0; i < riscs; ++i)
    cfg.cores.push_back(CoreCfg{PeClass::kRisc, mhz(400), 64 * 1024});
  for (std::size_t i = 0; i < dsps; ++i)
    cfg.cores.push_back(CoreCfg{PeClass::kDsp, mhz(300), 128 * 1024});
  return cfg;
}

Platform::Platform(PlatformConfig cfg)
    : cfg_(std::move(cfg)), kernel_(cfg_.kernel), memory_(kernel_, tracer_) {
  if (cfg_.cores.empty())
    throw std::invalid_argument("platform needs at least one core");

  tracer_.set_enabled(cfg_.trace_enabled);

  for (std::size_t i = 0; i < cfg_.cores.size(); ++i) {
    const auto& cc = cfg_.cores[i];
    const CoreId id{static_cast<std::uint32_t>(i)};
    cores_.push_back(
        std::make_unique<Core>(kernel_, tracer_, id, cc.cls, cc.frequency));
    if (cc.scratchpad_bytes > 0) {
      if (cc.scratchpad_bytes > kScratchpadStride)
        throw std::invalid_argument("scratchpad exceeds memory-map stride");
      memory_.add_region(strformat("spm%zu", i), scratchpad_base(id),
                         cc.scratchpad_bytes, cfg_.scratchpad_latency, id);
    }
  }

  if (cfg_.shared_mem_bytes > 0) {
    memory_.add_region("shared", kSharedBase, cfg_.shared_mem_bytes,
                       cfg_.shared_mem_latency);
  }
  memory_.set_enforce_locality(cfg_.enforce_locality);

  switch (cfg_.interconnect) {
    case PlatformConfig::Icn::kSharedBus:
      icn_ = std::make_unique<SharedBus>(kernel_, cfg_.bus);
      break;
    case PlatformConfig::Icn::kMesh:
      icn_ = std::make_unique<MeshNoc>(kernel_, cfg_.mesh);
      break;
  }

  irqc_ = std::make_unique<InterruptController>(kernel_, tracer_);
  timer_ = std::make_unique<TimerPeripheral>(kernel_, tracer_, *irqc_,
                                             kIrqTimer);
  dma_ = std::make_unique<DmaEngine>(kernel_, tracer_, memory_, icn_.get(),
                                     *irqc_, kIrqDma);
  hwsem_ = std::make_unique<HwSemaphores>(kernel_, tracer_);
}

std::vector<Peripheral*> Platform::peripherals() {
  return {irqc_.get(), timer_.get(), dma_.get(), hwsem_.get()};
}

void Platform::set_perf_sink(PerfSink* sink) {
  for (auto& c : cores_) c->set_perf_sink(sink);
  memory_.set_perf_sink(sink);
  icn_->set_perf_sink(sink);
  dma_->set_perf_sink(sink);
}

}  // namespace rw::sim
