#include "sim/platform.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace rw::sim {

PlatformConfig PlatformConfig::homogeneous(std::size_t n, HertzT freq) {
  PlatformConfig cfg;
  cfg.cores.assign(n, CoreCfg{PeClass::kRisc, freq, 64 * 1024});
  return cfg;
}

PlatformConfig PlatformConfig::heterogeneous(std::size_t riscs,
                                             std::size_t dsps) {
  PlatformConfig cfg;
  for (std::size_t i = 0; i < riscs; ++i)
    cfg.cores.push_back(CoreCfg{PeClass::kRisc, mhz(400), 64 * 1024});
  for (std::size_t i = 0; i < dsps; ++i)
    cfg.cores.push_back(CoreCfg{PeClass::kDsp, mhz(300), 128 * 1024});
  return cfg;
}

Status PlatformConfig::validate() const { return validate_tiling(*this); }

Platform::Platform(PlatformConfig cfg)
    : cfg_(std::move(cfg)), kernel_(cfg_.kernel), memory_(kernel_, tracer_) {
  if (cfg_.cores.empty())
    throw std::invalid_argument("platform needs at least one core");
  if (const Status st = cfg_.validate(); !st.ok())
    throw std::invalid_argument(st.error().message);

  tracer_.set_enabled(cfg_.trace_enabled);

  const std::uint32_t tiles = cfg_.kernel.num_tiles;
  for (std::uint32_t t = 1; t < tiles; ++t) {
    // Every tile runs the same KernelConfig — the queue-policy identity
    // contract holds per tile exactly as it does for the whole platform.
    extra_kernels_.push_back(std::make_unique<Kernel>(cfg_.kernel));
    extra_tracers_.push_back(std::make_unique<Tracer>());
    extra_tracers_.back()->set_enabled(cfg_.trace_enabled);
  }

  for (std::size_t i = 0; i < cfg_.cores.size(); ++i) {
    const auto& cc = cfg_.cores[i];
    const CoreId id{static_cast<std::uint32_t>(i)};
    cores_.push_back(std::make_unique<Core>(tile_kernel(cc.tile),
                                            tile_tracer(cc.tile), id, cc.cls,
                                            cc.frequency));
    if (cc.scratchpad_bytes > 0) {
      if (cc.scratchpad_bytes > kScratchpadStride)
        throw std::invalid_argument("scratchpad exceeds memory-map stride");
      const RegionId rid =
          memory_.add_region(strformat("spm%zu", i), scratchpad_base(id),
                             cc.scratchpad_bytes, cfg_.scratchpad_latency, id);
      if (cc.tile != 0)
        memory_.set_region_context(rid, cc.tile, &tile_kernel(cc.tile),
                                   &tile_tracer(cc.tile));
    }
  }

  if (cfg_.shared_mem_bytes > 0) {
    // The shared region stays on tile 0; the cross-tile guard makes it
    // reachable only from tile-0 cores on a tiled platform.
    memory_.add_region("shared", kSharedBase, cfg_.shared_mem_bytes,
                       cfg_.shared_mem_latency);
  }
  memory_.set_enforce_locality(cfg_.enforce_locality);
  if (tiles > 1) {
    std::vector<std::uint32_t> core_tiles;
    core_tiles.reserve(cfg_.cores.size());
    for (const auto& cc : cfg_.cores) core_tiles.push_back(cc.tile);
    memory_.set_core_tiles(std::move(core_tiles));
  }

  switch (cfg_.interconnect) {
    case PlatformConfig::Icn::kSharedBus:
      icn_ = std::make_unique<SharedBus>(kernel_, cfg_.bus);
      break;
    case PlatformConfig::Icn::kMesh:
      icn_ = std::make_unique<MeshNoc>(kernel_, cfg_.mesh);
      break;
  }

  irqc_ = std::make_unique<InterruptController>(kernel_, tracer_);
  timer_ = std::make_unique<TimerPeripheral>(kernel_, tracer_, *irqc_,
                                             kIrqTimer);
  dma_ = std::make_unique<DmaEngine>(kernel_, tracer_, memory_, icn_.get(),
                                     *irqc_, kIrqDma);
  hwsem_ = std::make_unique<HwSemaphores>(kernel_, tracer_);

  if (tiles > 1) {
    std::vector<Kernel*> tile_kernels;
    tile_kernels.reserve(tiles);
    for (std::uint32_t t = 0; t < tiles; ++t)
      tile_kernels.push_back(&tile_kernel(t));
    engine_ = std::make_unique<TiledEngine>(
        std::move(tile_kernels), min_cross_tile_latency(cfg_),
        TiledEngine::Options{cfg_.kernel.exec, /*force_threads=*/false});
  }
}

void Platform::run(std::uint64_t max_events) {
  if (engine_) {
    engine_->run(max_events);
  } else {
    kernel_.run(max_events);
  }
}

void Platform::run_until(TimePs t) {
  if (engine_) {
    engine_->run_until(t);
  } else {
    kernel_.run_until(t);
  }
}

TimePs Platform::now() const {
  return engine_ ? engine_->now() : kernel_.now();
}

std::vector<Peripheral*> Platform::peripherals() {
  return {irqc_.get(), timer_.get(), dma_.get(), hwsem_.get()};
}

void Platform::set_perf_sink(PerfSink* sink) {
  for (auto& c : cores_) c->set_perf_sink(sink);
  memory_.set_perf_sink(sink);
  icn_->set_perf_sink(sink);
  dma_->set_perf_sink(sink);
}

}  // namespace rw::sim
