// rw::ert job model — the one sanctioned description of "a workload to
// run" across every subsystem.
//
// The paper's thesis is that MPSoC programming needs stable software
// roads: tooling layers that outlive any one platform. Until this module,
// each subsystem exposed its own ad-hoc run description (maps::multiapp
// task graphs, harness closures, bench-local structs). A JobSpec is the
// single source of truth: a task graph plus QoS and resource demands.
// Adapters (adapters.hpp) convert the legacy descriptions to and from it,
// and the Service (service.hpp) is the runtime that executes them for N
// concurrent tenants.
#pragma once

#include <climits>
#include <cstdint>
#include <memory>
#include <string>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/run_metrics.hpp"
#include "common/units.hpp"
#include "maps/taskgraph.hpp"
#include "sched/task.hpp"

namespace rw::ert {

struct JobTag {};
// 64-bit: tenant index in the high word, per-tenant sequence in the low
// word — wide enough that the packing cannot silently collide.
using JobId = Id<JobTag, std::uint64_t>;

/// Deadline classes, mirroring the paper's static-for-hard /
/// dynamic-best-effort split (Sec. IV): realtime jobs are granted first
/// and carry a deadline; standard jobs are the fair-share default; batch
/// jobs absorb leftover capacity.
enum class QosClass : std::uint8_t { kRealtime, kStandard, kBatch };

const char* qos_name(QosClass q);
QosClass qos_from_criticality(sched::Criticality c);
sched::Criticality criticality_from_qos(QosClass q);

/// One job: a task graph with QoS and resource demands. This is the
/// api_redesign surface — benches, tools and the harness all describe
/// work as a JobSpec and run it through an ert::Session.
struct JobSpec {
  std::string name = "job";
  maps::TaskGraph graph;  // the unit of work (maps/CIC adapters fill it)

  QosClass qos = QosClass::kStandard;
  DurationPs deadline = 0;  // end-to-end budget; required for kRealtime
  DurationPs period = 0;    // release period (metadata for periodic
                            // adapters such as maps::multiapp; the
                            // service itself runs one release per submit)
  TimePs arrival = 0;       // requested virtual submission time

  std::size_t min_cores = 1;        // gang demand (space-shared, Sec. II-B)
  std::size_t max_cores = SIZE_MAX; // moldable up to this many cores
};

/// One completed job. `metrics` holds the pure execution metrics on the
/// granted gang and is bit-identical to the direct path
/// (run_jobspec_direct) for the same core count — the service adds
/// nothing to them; queueing shows up only in the timestamps here.
struct JobResult {
  JobId id{};
  std::string name;
  std::string tenant;
  QosClass qos = QosClass::kStandard;
  std::uint64_t sequence = 0;  // per-tenant submission sequence

  TimePs submitted = 0;  // virtual time the job entered the queue
  TimePs started = 0;    // gang granted (after admission + arbitration)
  TimePs finished = 0;
  std::size_t cores = 0;     // gang size granted
  bool deadline_met = true;  // end-to-end latency vs spec.deadline

  RunMetrics metrics;  // execution on the granted gang (direct-path equal)

  [[nodiscard]] DurationPs queue_wait() const { return started - submitted; }
  [[nodiscard]] DurationPs latency() const { return finished - submitted; }
};

class Service;

namespace detail {
struct JobNode;
}

/// Future-style handle for a submitted job. `result()` pumps the owning
/// service until this job completes (single-tenant callers never touch
/// Service::drain directly); completion is Result-based — admission
/// rejections and validation failures surface as Errors, not exceptions.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return node_ != nullptr; }
  /// True once the job has completed (successfully or not).
  [[nodiscard]] bool ready() const;
  /// The job's outcome; drains the owning service until available.
  [[nodiscard]] const Result<JobResult>& result() const;

 private:
  friend class Service;
  JobHandle(Service* service, std::shared_ptr<detail::JobNode> node)
      : service_(service), node_(std::move(node)) {}

  Service* service_ = nullptr;
  std::shared_ptr<detail::JobNode> node_;
};

}  // namespace rw::ert
