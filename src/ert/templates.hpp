// Canonical JobSpec templates.
//
// The rwert CLI, bench_e15 and the tests all need small representative
// jobs; building them here (instead of per-caller) keeps every consumer
// on identical, deterministically named workloads. The cic_chain template
// goes through jobspec_from_cic, so the CIC submission path is exercised
// by the same registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ert/job.hpp"

namespace rw::ert {

/// Registered template names, in registry order.
[[nodiscard]] std::vector<std::string> template_names();

/// Build a template job. `scale` multiplies the per-task cycle counts
/// (scale 1 jobs run tens of microseconds on a 400 MHz core). Throws on
/// an unknown name.
[[nodiscard]] JobSpec make_template(const std::string& name,
                                    std::uint64_t scale = 1);

}  // namespace rw::ert
