// The rwert driver, as a library so tests exercise exactly what the CLI
// does: open N tenant sessions against one ert::Service, submit template
// jobs with seeded Poisson arrivals, print the per-tenant QoS table, and
// write the deterministic ERT_service.json / ERT_trace.json documents.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "ert/service.hpp"
#include "tools/cli_common.hpp"

namespace rw::ert {

struct ErtOptions : cli::CommonOptions {
  std::size_t cores = 8;          // --cores N
  std::size_t tenants = 2;        // --tenants N
  std::uint64_t jobs = 8;         // --jobs J (per tenant)
  std::uint64_t scale = 1;        // --scale K (template cycle multiplier)
  std::size_t reserved = 0;       // --reserved R (first R tenants carved)
  std::uint64_t mean_gap_us = 25; // --gap-us G (mean inter-arrival)
  std::vector<std::string> templates;  // positional; empty = all
};

/// Parse rwert's argv (without argv[0]).
Result<ErtOptions> parse_ert_args(const std::vector<std::string>& args);

struct ErtReport {
  std::vector<TenantStats> tenants;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  int exit_code = 0;
  std::string json_path;   // empty when not written
  std::string trace_path;  // empty when not written
};

/// The legacy (pre-envelope) combined document, schema rw-ert-run-1.
std::string ert_json(const ErtOptions& opts,
                     const std::vector<TenantStats>& tenants);

/// Run per options, writing human output (or the JSON doc) to `out`.
ErtReport run_ert(const ErtOptions& opts, std::ostream& out);

}  // namespace rw::ert
