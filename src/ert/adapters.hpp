// Conversions that make ert::JobSpec the single source of truth for job
// descriptions.
//
// Before rw::ert, every layer grew its own run description: maps::multiapp
// consumed annotated TaskGraphs, rw::harness consumed opaque closures, the
// benches kept local duplicates (bench_a4's pipeline builder), and CIC
// programs could only run through the translator. These adapters convert
// each legacy shape to and from JobSpec so the old entry points become
// thin views of the one API:
//
//   maps::TaskGraph  <-> JobSpec      (multiapp app descriptors)
//   cic::CicProgram   -> JobSpec      (architecture-independent programs)
//   vector<JobSpec>   -> harness::Scenario (fan-out via ert Sessions)
#pragma once

#include <string>
#include <vector>

#include "cic/model.hpp"
#include "ert/job.hpp"
#include "ert/service.hpp"
#include "harness/harness.hpp"
#include "maps/multiapp.hpp"

namespace rw::ert {

/// JobSpec from an annotated maps task graph: criticality maps to the QoS
/// class, period/deadline carry over (a hard-RT graph with a period but
/// no explicit deadline keeps deadline==period, the multiapp convention).
[[nodiscard]] JobSpec jobspec_from_taskgraph(const maps::TaskGraph& g);

/// The inverse: a multiapp-ready descriptor (graph + RtAnnotation) from a
/// spec. jobspec_from_taskgraph ∘ taskgraph_from_jobspec is the identity
/// on the fields both sides model.
[[nodiscard]] maps::TaskGraph taskgraph_from_jobspec(const JobSpec& spec);

/// JobSpec from an architecture-independent CIC program: each task
/// becomes a node costing wcet*iterations reference cycles, each channel
/// an edge moving token_bytes*iterations bytes. Periodic sources make the
/// job realtime with deadline = max task deadline (if any is annotated).
[[nodiscard]] JobSpec jobspec_from_cic(const cic::CicProgram& prog,
                                       std::uint64_t iterations = 1);

/// Harness adapter: one labelled run per spec, each executed through a
/// fresh single-tenant ert::Session — the harness drives the sanctioned
/// API instead of hand-rolled closures. Failed jobs surface as thrown
/// run errors (the harness records them per run).
[[nodiscard]] harness::Scenario scenario_from_jobspecs(
    std::string name, std::vector<JobSpec> specs, ServiceConfig cfg,
    std::uint64_t base_seed = harness::Scenario::kDefaultBaseSeed);

}  // namespace rw::ert
