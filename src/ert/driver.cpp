#include "ert/driver.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "ert/templates.hpp"
#include "perf/export.hpp"

namespace rw::ert {
namespace {

bool known_template(const std::string& name) {
  const auto names = template_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

void write_tenant(json::Writer& w, const TenantStats& s) {
  w.begin_object();
  w.key("tenant").value(s.name);
  w.key("submitted").value(s.submitted);
  w.key("completed").value(s.completed);
  w.key("rejected").value(s.rejected);
  w.key("deadline_misses").value(s.deadline_misses);
  w.key("peak_cores").value(static_cast<std::uint64_t>(s.peak_cores));
  w.key("core_ps").value(s.core_ps);
  w.key("p50_latency_ps").value(s.percentile(50.0));
  w.key("p99_latency_ps").value(s.percentile(99.0));
  w.key("mean_latency_us").value(s.mean_latency_us());
  w.key("fingerprint").value(
      strformat("%016llx", static_cast<unsigned long long>(s.fingerprint)));
  w.end_object();
}

}  // namespace

Result<ErtOptions> parse_ert_args(const std::vector<std::string>& args) {
  ErtOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a == "--cores") {
      opts.cores = static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.cores == 0) return make_error("--cores must be >= 1");
    } else if (a == "--tenants") {
      opts.tenants =
          static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.tenants == 0) return make_error("--tenants must be >= 1");
    } else if (a == "--jobs") {
      opts.jobs = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.jobs == 0) return make_error("--jobs must be >= 1");
    } else if (a == "--scale") {
      opts.scale = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.scale == 0) return make_error("--scale must be >= 1");
    } else if (a == "--reserved") {
      opts.reserved =
          static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
    } else if (a == "--gap-us") {
      opts.mean_gap_us = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.mean_gap_us == 0) return make_error("--gap-us must be >= 1");
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwert ") + cli::common_usage() +
                        " [--cores N] [--tenants N] [--jobs J] [--scale K]"
                        " [--reserved R] [--gap-us G] [template...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      if (!known_template(a)) return make_error("unknown job template: " + a);
      opts.templates.push_back(a);
    }
  }
  if (opts.reserved > opts.tenants)
    return make_error("--reserved must be <= --tenants");
  return opts;
}

std::string ert_json(const ErtOptions& opts,
                     const std::vector<TenantStats>& tenants) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-ert-run-1");
  w.key("config");
  w.begin_object();
  w.key("cores").value(static_cast<std::uint64_t>(opts.cores));
  w.key("tenants").value(static_cast<std::uint64_t>(opts.tenants));
  w.key("jobs_per_tenant").value(opts.jobs);
  w.key("scale").value(opts.scale);
  w.key("reserved").value(static_cast<std::uint64_t>(opts.reserved));
  w.key("mean_gap_us").value(opts.mean_gap_us);
  w.key("seed").value(opts.seed);
  w.key("templates").begin_array();
  const auto templates =
      opts.templates.empty() ? template_names() : opts.templates;
  for (const std::string& t : templates) w.value(t);
  w.end_array();
  w.end_object();
  w.key("tenants").begin_array();
  for (const TenantStats& s : tenants) write_tenant(w, s);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

ErtReport run_ert(const ErtOptions& opts, std::ostream& out) {
  ErtReport rep;
  if (opts.list) {
    Table t({"template", "tasks", "edges", "qos", "deadline_us",
             "crit_path_kcycles"});
    for (const std::string& name : template_names()) {
      const JobSpec spec = make_template(name, opts.scale);
      t.add_row({name, Table::num(spec.graph.tasks().size()),
                 Table::num(spec.graph.edges().size()), qos_name(spec.qos),
                 strformat("%.1f", static_cast<double>(spec.deadline) * 1e-6),
                 Table::num(spec.graph.critical_path_cycles() / 1000)});
    }
    out << t.to_string();
    return rep;
  }

  ServiceConfig cfg;
  cfg.total_cores = opts.cores;
  Service service(cfg);

  const auto templates =
      opts.templates.empty() ? template_names() : opts.templates;
  const double share = 1.0 / static_cast<double>(opts.tenants);

  std::vector<Session> sessions;
  for (std::size_t t = 0; t < opts.tenants; ++t) {
    TenantConfig tc;
    tc.name = strformat("t%zu", t);
    tc.share = share;
    tc.reserved = t < opts.reserved;
    auto session = service.open_session(tc);
    if (!session.ok()) {
      out << "rwert: " << session.error().to_string() << "\n";
      rep.exit_code = 2;
      return rep;
    }
    sessions.push_back(session.value());
  }

  // Seeded open-loop arrivals: each tenant gets its own stream so the
  // workload of tenant i is independent of how many tenants run beside it.
  std::vector<JobHandle> handles;
  for (std::size_t t = 0; t < opts.tenants; ++t) {
    Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + t);
    TimePs arrival = 0;
    for (std::uint64_t j = 0; j < opts.jobs; ++j) {
      arrival += static_cast<DurationPs>(rng.next_exponential(
          static_cast<double>(microseconds(opts.mean_gap_us))));
      JobSpec spec = make_template(
          templates[static_cast<std::size_t>(j) % templates.size()],
          opts.scale);
      spec.arrival = arrival;
      handles.push_back(sessions[t].submit(std::move(spec)));
    }
  }
  for (const JobHandle& h : handles) (void)h.result();

  rep.tenants = service.all_tenant_stats();
  for (const TenantStats& s : rep.tenants) {
    rep.completed += s.completed;
    rep.rejected += s.rejected;
  }

  if (opts.write_files) {
    rep.json_path = opts.out_dir + "/ERT_service.json";
    if (!perf::write_text(rep.json_path, ert_json(opts, rep.tenants))) {
      out << "rwert: error: failed writing " << rep.json_path << "\n";
      rep.exit_code = 1;
    }
    rep.trace_path = opts.out_dir + "/ERT_trace.json";
    if (!perf::write_text(rep.trace_path,
                          perf::to_chrome_trace(service.trace()))) {
      out << "rwert: error: failed writing " << rep.trace_path << "\n";
      rep.exit_code = 1;
    }
  }

  if (opts.json_stdout) {
    const std::string legacy = ert_json(opts, rep.tenants);
    if (opts.legacy_json)
      out << legacy;
    else
      out << cli::envelope("rwert", opts.seed, legacy) << "\n";
    return rep;
  }

  out << strformat(
      "== rwert service: %zu cores, %zu tenants (%zu reserved), "
      "%llu jobs/tenant, seed %llu\n\n",
      opts.cores, opts.tenants, opts.reserved,
      static_cast<unsigned long long>(opts.jobs),
      static_cast<unsigned long long>(opts.seed));
  Table t({"tenant", "sub", "done", "rej", "miss", "p50_us", "p99_us",
           "mean_us", "peak", "fingerprint"});
  for (const TenantStats& s : rep.tenants) {
    t.add_row(
        {s.name, Table::num(s.submitted), Table::num(s.completed),
         Table::num(s.rejected), Table::num(s.deadline_misses),
         strformat("%.2f", static_cast<double>(s.percentile(50.0)) * 1e-6),
         strformat("%.2f", static_cast<double>(s.percentile(99.0)) * 1e-6),
         strformat("%.2f", s.mean_latency_us()), Table::num(s.peak_cores),
         strformat("%016llx",
                   static_cast<unsigned long long>(s.fingerprint))});
  }
  out << t.to_string();
  if (!rep.json_path.empty()) out << "\nwrote " << rep.json_path;
  if (!rep.trace_path.empty()) out << "\nwrote " << rep.trace_path;
  out << "\n";
  return rep;
}

}  // namespace rw::ert
