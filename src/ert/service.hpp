// rw::ert — multi-tenant platform job service.
//
// Modeled on XRT's embedded-runtime command-queue scheduler: N client
// tenants concurrently submit task-graph jobs through Sessions into one
// command queue; a deterministic virtual-time engine runs
//
//   queue -> admission controller -> batcher -> space allocator
//
// over the shared core pool. Per-tenant QoS: deadline classes
// (ert::QosClass), fair shares (deficit-ordered grants with a
// work-conserving share cap under contention — when no capped grant can
// proceed and the pool would otherwise idle, one grant may exceed the
// cap so every admitted job makes progress), and optional hard
// reservations (a carved-out
// SpaceAllocator pool, the static-reservation half of the paper's
// Sec. IV split — a reserved tenant's schedule is a pure function of its
// own submissions, which is the isolation property test_ert holds).
//
// Determinism contract: results are a pure function of the set of
// submitted (tenant, sequence, JobSpec) triples — never of thread timing
// or submission interleaving. Sessions may submit from any thread (the
// command queue is mutex-protected); the engine orders work by
// (arrival, qos, tenant deficit, tenant, sequence) and grants cores
// lowest-index-first, so fixed specs => byte-identical results. A
// single-tenant single-job run reproduces run_jobspec_direct() exactly.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/run_metrics.hpp"
#include "common/units.hpp"
#include "ert/job.hpp"
#include "maps/mapping.hpp"
#include "sched/spacealloc.hpp"
#include "sim/trace.hpp"

namespace rw::ert {

/// Per-tenant QoS contract, fixed at session open.
struct TenantConfig {
  std::string name;
  double share = 1.0;     // fair-share weight; with `reserved`, the
                          // fraction of the machine carved out
  bool reserved = false;  // hard partition: floor(share*cores) dedicated
  std::uint64_t max_pending = UINT64_MAX;  // admission cap (queued+running)
};

struct ServiceConfig {
  std::size_t total_cores = 8;
  HertzT core_frequency = mhz(400);
  // Homogeneous RISC pool: reservations carve index ranges, so per-core
  // heterogeneity would make "which cores" observable; keep it uniform.
  DurationPs comm_latency = nanoseconds(150);
  double comm_bytes_per_ps = 0.004;
  DurationPs arbitration_latency = microseconds(5);  // per grant batch
  std::size_t batch_max = 8;  // jobs granted per arbitration pass (per pool)
  bool record_trace = true;   // per-job compute events for rw::perf export

  // Static admission precheck (ISSUE 7): reject a kRealtime job at
  // submit when its gang-size-independent static makespan bound
  // (maps::static_makespan_bound_any_gang under this config's cost
  // model) plus one arbitration pass already exceeds its deadline — the
  // job would miss even on an otherwise-idle machine, so burn no shared
  // cores discovering that dynamically. Rejections carry a typed
  // "static-infeasible:" reason. Off by default: the dynamic behavior
  // stays the reference.
  bool static_admission = false;
};

/// The admission precheck's bound: every task priced on one pool core,
/// every edge charged as a cross-PE transfer — an upper bound on the
/// HEFT makespan of ANY gang this service could grant the job.
[[nodiscard]] DurationPs static_makespan_bound_ps(const JobSpec& spec,
                                                  const ServiceConfig& cfg);

/// Aggregated per-tenant counters plus the completion-order latency
/// stream and a deterministic fingerprint over completion records —
/// the per-tenant metrics surface the benches and the isolation property
/// test consume.
struct TenantStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;        // admission-controller rejections
  std::uint64_t deadline_misses = 0; // end-to-end, realtime/deadline jobs
  std::size_t peak_cores = 0;        // max cores held at once
  double core_ps = 0;                // core-picoseconds consumed
  std::vector<DurationPs> latencies; // submit->finish, completion order

  /// FNV-1a over (sequence, cores, started, finished, makespan) of every
  /// completed job, in completion order. For a reserved tenant this is
  /// invariant under any other tenant's load or submission order.
  std::uint64_t fingerprint = 0xcbf29ce484222325ULL;

  [[nodiscard]] DurationPs percentile(double p) const;  // p in [0,100]
  [[nodiscard]] double mean_latency_us() const;
  /// Harness-exportable shape (completed/rejected/misses/p50/p99/... as
  /// extras) for the per-tenant metrics stream.
  [[nodiscard]] RunMetrics to_metrics() const;
};

class Session;

/// The multi-tenant job service. Thread-safe for submission; the engine
/// itself is serialized (one drain at a time) and fully deterministic.
class Service {
 public:
  explicit Service(ServiceConfig cfg);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Register a tenant. Fails on duplicate/empty names, shares outside
  /// (0, 1], or a reservation the remaining shared pool cannot cover.
  [[nodiscard]] Result<Session> open_session(TenantConfig tenant);

  /// Run the engine until every job queued so far has completed. Any
  /// thread may call this; JobHandle::result() calls it on demand.
  /// Jobs submitted later with arrivals before the engine's clock are
  /// clamped to it (virtual time never rewinds).
  void drain();

  /// Engine virtual time (advances only inside drain()).
  [[nodiscard]] TimePs now() const;
  /// Free cores in the shared pool right now — the admission-controller
  /// view, backed by sched::SpaceAllocator::available().
  [[nodiscard]] std::size_t shared_available() const;

  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t tenant_count() const;
  /// Snapshot of a tenant's stats (by session index, in open order).
  [[nodiscard]] TenantStats tenant_stats(std::size_t tenant) const;
  [[nodiscard]] std::vector<TenantStats> all_tenant_stats() const;

  /// Per-job ComputeStart/ComputeEnd events (core = first core of the
  /// granted gang, label = "tenant/job#seq"), ready for the rw::perf
  /// exporters (perf::to_chrome_trace). Empty when record_trace is off.
  [[nodiscard]] std::vector<sim::TraceEvent> trace() const;

 private:
  friend class Session;
  friend class JobHandle;

  struct Impl;
  JobHandle submit(std::size_t tenant, JobSpec spec);
  void finish_job_locked(std::size_t tenant_idx, std::uint64_t seq);
  void grant_pass_locked();

  ServiceConfig cfg_;
  std::unique_ptr<Impl> impl_;
};

/// A tenant's lightweight submission endpoint. Copyable; all state lives
/// in the Service, which must outlive its sessions and handles.
class Session {
 public:
  /// Enqueue a job; safe to call from any thread.
  [[nodiscard]] JobHandle submit(JobSpec spec) {
    return service_->submit(tenant_, std::move(spec));
  }
  [[nodiscard]] const std::string& tenant_name() const { return name_; }
  [[nodiscard]] std::size_t tenant_index() const { return tenant_; }
  [[nodiscard]] Service& service() const { return *service_; }

 private:
  friend class Service;
  Session(Service* service, std::size_t tenant, std::string name)
      : service_(service), tenant_(tenant), name_(std::move(name)) {}

  Service* service_;
  std::size_t tenant_;
  std::string name_;
};

/// Execution metrics of `spec` on a gang of `cores` homogeneous cores
/// under `cfg`'s cost model (HEFT on the gang; utilization from the
/// schedule slots). This is THE job execution model: the service calls it
/// per grant, and the direct path below is the same call — which is what
/// makes the single-tenant identity gate exact rather than approximate.
[[nodiscard]] RunMetrics job_execution_metrics(const JobSpec& spec,
                                               std::size_t cores,
                                               const ServiceConfig& cfg);

/// The direct path: run one spec on an otherwise-idle machine, no
/// service in the loop (the gang is min(max_cores, total)). A
/// single-tenant single-job Session run must reproduce this exactly.
[[nodiscard]] Result<RunMetrics> run_jobspec_direct(const JobSpec& spec,
                                                    const ServiceConfig& cfg);

/// Validation shared by the admission controller and the direct path.
/// `pool_capacity` is the most the caller's pool can ever grant — for a
/// shared tenant that is total cores minus reserved carve-outs, so a job
/// that can never fit is rejected instead of queued forever.
[[nodiscard]] Status validate_jobspec(const JobSpec& spec,
                                      std::size_t pool_capacity);

}  // namespace rw::ert
