#include "ert/templates.hpp"

#include <stdexcept>

#include "ert/adapters.hpp"

namespace rw::ert {
namespace {

JobSpec pipeline_template(std::uint64_t scale) {
  JobSpec spec;
  spec.name = "pipeline";
  auto& g = spec.graph;
  g.name = spec.name;
  const auto rx = g.add_task("rx", 20'000 * scale);
  const auto dec = g.add_task("decode", 40'000 * scale);
  const auto proc = g.add_task("process", 40'000 * scale);
  const auto tx = g.add_task("tx", 20'000 * scale);
  g.add_edge(rx, dec, 2048);
  g.add_edge(dec, proc, 2048);
  g.add_edge(proc, tx, 1024);
  spec.max_cores = 2;  // a chain can overlap at most its comm slack
  return spec;
}

JobSpec forkjoin_template(std::uint64_t scale) {
  JobSpec spec;
  spec.name = "forkjoin";
  auto& g = spec.graph;
  g.name = spec.name;
  const auto src = g.add_task("scatter", 8'000 * scale);
  const auto join = g.add_task("gather", 8'000 * scale);
  for (int i = 0; i < 6; ++i) {
    const auto mid = g.add_task("work" + std::to_string(i),
                                30'000 * scale);
    g.add_edge(src, mid, 1024);
    g.add_edge(mid, join, 1024);
  }
  spec.max_cores = 6;
  return spec;
}

JobSpec diamond_template(std::uint64_t scale) {
  JobSpec spec;
  spec.name = "diamond";
  auto& g = spec.graph;
  g.name = spec.name;
  const auto a = g.add_task("a", 10'000 * scale);
  const auto b = g.add_task("b", 25'000 * scale);
  const auto c = g.add_task("c", 25'000 * scale);
  const auto d = g.add_task("d", 10'000 * scale);
  g.add_edge(a, b, 512);
  g.add_edge(a, c, 512);
  g.add_edge(b, d, 512);
  g.add_edge(c, d, 512);
  spec.max_cores = 2;
  return spec;
}

JobSpec cic_chain_template(std::uint64_t scale) {
  cic::CicProgram prog("cic_chain");
  const auto src = prog.add_task("source", 6'000, {}, {"out"});
  const auto filt = prog.add_task("filter", 18'000, {"in"}, {"out"});
  const auto sink = prog.add_task("sink", 6'000, {"in"}, {});
  prog.set_period(src, microseconds(10));
  prog.set_deadline(sink, microseconds(40));  // realtime via jobspec_from_cic
  if (auto c = prog.connect(src, "out", filt, "in"); !c.ok())
    throw std::runtime_error(c.error().to_string());
  if (auto c = prog.connect(filt, "out", sink, "in"); !c.ok())
    throw std::runtime_error(c.error().to_string());
  JobSpec spec = jobspec_from_cic(prog, scale);
  spec.max_cores = 1;  // a chain gains nothing from a wider gang
  return spec;
}

}  // namespace

std::vector<std::string> template_names() {
  return {"pipeline", "forkjoin", "diamond", "cic_chain"};
}

JobSpec make_template(const std::string& name, std::uint64_t scale) {
  if (scale == 0) scale = 1;
  if (name == "pipeline") return pipeline_template(scale);
  if (name == "forkjoin") return forkjoin_template(scale);
  if (name == "diamond") return diamond_template(scale);
  if (name == "cic_chain") return cic_chain_template(scale);
  throw std::invalid_argument("unknown ert job template: " + name);
}

}  // namespace rw::ert
