#include "ert/service.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <map>
#include <queue>
#include <stdexcept>

#include "maps/perf_bounds.hpp"

namespace rw::ert {

const char* qos_name(QosClass q) {
  switch (q) {
    case QosClass::kRealtime: return "realtime";
    case QosClass::kStandard: return "standard";
    case QosClass::kBatch: return "batch";
  }
  return "?";
}

QosClass qos_from_criticality(sched::Criticality c) {
  switch (c) {
    case sched::Criticality::kHard: return QosClass::kRealtime;
    case sched::Criticality::kSoft: return QosClass::kStandard;
    case sched::Criticality::kBestEffort: return QosClass::kBatch;
  }
  return QosClass::kStandard;
}

sched::Criticality criticality_from_qos(QosClass q) {
  switch (q) {
    case QosClass::kRealtime: return sched::Criticality::kHard;
    case QosClass::kStandard: return sched::Criticality::kSoft;
    case QosClass::kBatch: return sched::Criticality::kBestEffort;
  }
  return sched::Criticality::kSoft;
}

namespace detail {
struct JobNode {
  std::atomic<bool> done{false};
  // Written by the engine under its mutex before done is released;
  // readers only touch it after observing done (acquire).
  Result<JobResult> outcome{make_error("pending")};
};
}  // namespace detail

bool JobHandle::ready() const {
  return node_ && node_->done.load(std::memory_order_acquire);
}

const Result<JobResult>& JobHandle::result() const {
  if (!node_) throw std::logic_error("result() on an empty JobHandle");
  while (!node_->done.load(std::memory_order_acquire)) service_->drain();
  return node_->outcome;
}

DurationPs TenantStats::percentile(double p) const {
  if (latencies.empty()) return 0;
  std::vector<DurationPs> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Nearest-rank: smallest value with at least p% of samples at or below.
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double TenantStats::mean_latency_us() const {
  if (latencies.empty()) return 0.0;
  double sum = 0;
  for (const DurationPs l : latencies) sum += static_cast<double>(l);
  return sum / static_cast<double>(latencies.size()) / 1e6;
}

RunMetrics TenantStats::to_metrics() const {
  RunMetrics m;
  m.deadline_misses = deadline_misses;
  m.set_extra("ert.submitted", static_cast<double>(submitted));
  m.set_extra("ert.completed", static_cast<double>(completed));
  m.set_extra("ert.rejected", static_cast<double>(rejected));
  m.set_extra("ert.peak_cores", static_cast<double>(peak_cores));
  m.set_extra("ert.core_ms", core_ps / 1e9);
  m.set_extra("ert.p50_us", static_cast<double>(percentile(50)) / 1e6);
  m.set_extra("ert.p99_us", static_cast<double>(percentile(99)) / 1e6);
  m.set_extra("ert.mean_us", mean_latency_us());
  m.set_extra("ert.fingerprint_lo",
              static_cast<double>(fingerprint % 1000000));
  return m;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Status validate_jobspec(const JobSpec& spec, std::size_t pool_capacity) {
  if (spec.graph.tasks().empty())
    return make_error("job '" + spec.name + "': empty task graph");
  if (!spec.graph.is_acyclic())
    return make_error("job '" + spec.name + "': cyclic task graph");
  if (spec.min_cores == 0)
    return make_error("job '" + spec.name + "': min_cores must be >= 1");
  if (spec.min_cores > spec.max_cores)
    return make_error("job '" + spec.name + "': min_cores > max_cores");
  if (spec.min_cores > pool_capacity)
    return make_error("job '" + spec.name + "': needs " +
                      std::to_string(spec.min_cores) + " cores, pool has " +
                      std::to_string(pool_capacity));
  if (spec.qos == QosClass::kRealtime && spec.deadline == 0)
    return make_error("job '" + spec.name +
                      "': realtime jobs need a deadline");
  return Status::ok_status();
}

DurationPs static_makespan_bound_ps(const JobSpec& spec,
                                    const ServiceConfig& cfg) {
  return maps::static_makespan_bound_any_gang(
             spec.graph,
             maps::PeDesc{sim::PeClass::kRisc, cfg.core_frequency},
             maps::simple_comm_cost(cfg.comm_latency, cfg.comm_bytes_per_ps))
      .bound;
}

RunMetrics job_execution_metrics(const JobSpec& spec, std::size_t cores,
                                 const ServiceConfig& cfg) {
  const std::vector<maps::PeDesc> pes(
      cores, maps::PeDesc{sim::PeClass::kRisc, cfg.core_frequency});
  const maps::CommCost comm =
      maps::simple_comm_cost(cfg.comm_latency, cfg.comm_bytes_per_ps);
  const maps::MappingResult mr = maps::heft_map(spec.graph, pes, comm);

  RunMetrics m;
  m.makespan = mr.makespan;
  if (mr.makespan > 0 && cores > 0) {
    double busy = 0;
    for (const auto& s : mr.slots)
      busy += static_cast<double>(s.finish - s.start);
    m.mean_core_utilization = busy / (static_cast<double>(cores) *
                                      static_cast<double>(mr.makespan));
  }
  m.deadline_misses =
      (spec.deadline > 0 && mr.makespan > spec.deadline) ? 1 : 0;
  const TimePs seq = maps::best_sequential_time(spec.graph, pes);
  m.set_extra("ert.cores", static_cast<double>(cores));
  m.set_extra("ert.sequential_ps", static_cast<double>(seq));
  m.set_extra("ert.speedup", mr.speedup_vs(seq));
  return m;
}

Result<RunMetrics> run_jobspec_direct(const JobSpec& spec,
                                      const ServiceConfig& cfg) {
  RW_TRY_STATUS(validate_jobspec(spec, cfg.total_cores));
  const std::size_t cores = std::min(spec.max_cores, cfg.total_cores);
  return job_execution_metrics(spec, cores, cfg);
}

// ---------------------------------------------------------------------------
// Engine.

namespace {

struct Command {
  std::size_t tenant = 0;
  std::uint64_t seq = 0;
  JobSpec spec;
  std::shared_ptr<detail::JobNode> node;
};

struct PendingJob {
  std::size_t tenant = 0;
  std::uint64_t seq = 0;
  JobId id{};
  TimePs arrival = 0;
  JobSpec spec;
  std::shared_ptr<detail::JobNode> node;
};

struct RunningJob {
  PendingJob job;
  TimePs started = 0;
  TimePs finished = 0;
  std::vector<std::size_t> cores;
  RunMetrics metrics;
};

struct Event {
  TimePs time = 0;
  bool completion = false;
  std::size_t tenant = 0;
  std::uint64_t seq = 0;

  // Min-heap order: earliest first; completions before arrivals at the
  // same instant (frees cores first, matching run_gang_schedule); then
  // (tenant, seq) for a total deterministic order.
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (completion != o.completion) return !completion;
    if (tenant != o.tenant) return tenant > o.tenant;
    return seq > o.seq;
  }
};

struct Tenant {
  TenantConfig cfg;
  // Reserved tenants own a carved-out pool; shared tenants use the
  // service-wide one.
  std::unique_ptr<sched::SpaceAllocator> pool;
  std::uint64_t next_seq = 0;   // guarded by the queue mutex
  std::uint64_t in_flight = 0;  // queued + running, engine-guarded
  std::size_t in_use_cores = 0;
  TenantStats stats;
};

int qos_rank(QosClass q) { return static_cast<int>(q); }

}  // namespace

struct Service::Impl {
  // Front end: the command queue tenants submit into (any thread).
  std::mutex queue_mu;
  std::vector<Command> queue;

  // Engine: virtual-time state, serialized by engine_mu.
  mutable std::mutex engine_mu;
  TimePs now = 0;
  std::uint64_t shared_share_sum_milli = 0;  // sum of shared shares *1000
  std::size_t reserved_total = 0;  // cores carved out for reserved tenants
  sched::SpaceAllocator shared_pool;

  // What shared tenants can ever be granted: reserved carve-outs stay
  // allocated in shared_pool for the service's lifetime, so capacity()
  // alone overstates the pool. Admission and the share cap both use this.
  [[nodiscard]] std::size_t shared_effective_capacity() const {
    return shared_pool.capacity() - reserved_total;
  }
  std::vector<Tenant> tenants;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::map<std::pair<std::size_t, std::uint64_t>, PendingJob> waiting;
  std::vector<PendingJob> ready;
  std::map<std::pair<std::size_t, std::uint64_t>, RunningJob> running;
  std::vector<sim::TraceEvent> trace;

  explicit Impl(const ServiceConfig& cfg) : shared_pool(cfg.total_cores) {}
};

Service::Service(ServiceConfig cfg)
    : cfg_(cfg), impl_(std::make_unique<Impl>(cfg)) {
  if (cfg_.total_cores == 0)
    throw std::invalid_argument("ert::Service needs cores");
}

Service::~Service() = default;

Result<Session> Service::open_session(TenantConfig tenant) {
  std::scoped_lock lock(impl_->engine_mu, impl_->queue_mu);
  if (tenant.name.empty()) return make_error("tenant needs a name");
  for (const Tenant& t : impl_->tenants)
    if (t.cfg.name == tenant.name)
      return make_error("tenant '" + tenant.name + "' already registered");
  if (!(tenant.share > 0.0) || tenant.share > 1.0)
    return make_error("tenant '" + tenant.name +
                      "': share must be in (0, 1]");

  Tenant t;
  t.cfg = tenant;
  t.stats.name = tenant.name;
  if (tenant.reserved) {
    const auto want = static_cast<std::size_t>(
        tenant.share * static_cast<double>(cfg_.total_cores));
    if (want == 0)
      return make_error("tenant '" + tenant.name +
                        "': reservation rounds to zero cores");
    // Carve the reservation out of the shared pool: the highest free
    // indices, so shared-pool grants (lowest-first) keep stable indices.
    if (impl_->shared_pool.available() < want)
      return make_error("tenant '" + tenant.name + "': reservation of " +
                        std::to_string(want) +
                        " cores exceeds the free shared pool");
    const std::size_t spare = impl_->shared_pool.available() - want;
    std::vector<std::size_t> keep;
    if (spare > 0) keep = impl_->shared_pool.allocate(spare, spare);
    const std::vector<std::size_t> carved =
        impl_->shared_pool.allocate(want, want);
    if (!keep.empty()) impl_->shared_pool.release(keep);
    if (carved.back() - carved.front() + 1 != carved.size()) {
      impl_->shared_pool.release(carved);
      return make_error("tenant '" + tenant.name +
                        "': shared pool fragmented (open reserved sessions "
                        "before submitting work)");
    }
    // Dedicated pool over the carved contiguous index range.
    t.pool = std::make_unique<sched::SpaceAllocator>(carved.size(),
                                                     carved.front());
    impl_->reserved_total += carved.size();
  } else {
    impl_->shared_share_sum_milli +=
        static_cast<std::uint64_t>(tenant.share * 1000.0 + 0.5);
  }
  const std::size_t index = impl_->tenants.size();
  impl_->tenants.push_back(std::move(t));
  return Session(this, index, tenant.name);
}

JobHandle Service::submit(std::size_t tenant, JobSpec spec) {
  auto node = std::make_shared<detail::JobNode>();
  {
    std::lock_guard lock(impl_->queue_mu);
    Command cmd;
    cmd.tenant = tenant;
    cmd.seq = impl_->tenants.at(tenant).next_seq++;
    cmd.spec = std::move(spec);
    cmd.node = node;
    impl_->queue.push_back(std::move(cmd));
  }
  return JobHandle(this, std::move(node));
}

TimePs Service::now() const {
  std::lock_guard lock(impl_->engine_mu);
  return impl_->now;
}

std::size_t Service::shared_available() const {
  std::lock_guard lock(impl_->engine_mu);
  return impl_->shared_pool.available();
}

std::size_t Service::tenant_count() const {
  std::lock_guard lock(impl_->engine_mu);
  return impl_->tenants.size();
}

TenantStats Service::tenant_stats(std::size_t tenant) const {
  std::lock_guard lock(impl_->engine_mu);
  return impl_->tenants.at(tenant).stats;
}

std::vector<TenantStats> Service::all_tenant_stats() const {
  std::lock_guard lock(impl_->engine_mu);
  std::vector<TenantStats> out;
  out.reserve(impl_->tenants.size());
  for (const Tenant& t : impl_->tenants) out.push_back(t.stats);
  return out;
}

std::vector<sim::TraceEvent> Service::trace() const {
  std::lock_guard lock(impl_->engine_mu);
  return impl_->trace;
}

namespace {

/// Complete a node under the engine lock, then publish.
void complete(const std::shared_ptr<detail::JobNode>& node,
              Result<JobResult> outcome) {
  node->outcome = std::move(outcome);
  node->done.store(true, std::memory_order_release);
}

}  // namespace

void Service::drain() {
  Impl& im = *impl_;
  std::lock_guard engine(im.engine_mu);

  // --- Ingest: pull the command queue through the admission controller's
  // validation half. Per-tenant outcomes depend only on per-tenant state
  // (commands of one tenant arrive in sequence order), so cross-tenant
  // queue interleaving cannot change any result.
  std::vector<Command> batch;
  {
    std::lock_guard q(im.queue_mu);
    batch.swap(im.queue);
  }
  for (Command& cmd : batch) {
    Tenant& t = im.tenants.at(cmd.tenant);
    ++t.stats.submitted;
    // Shared tenants validate against the effective pool (capacity minus
    // reserved carve-outs): a job wider than that could be admitted but
    // never granted, and its handle would spin in drain() forever.
    // Reservations only happen in open_session, which excludes drain(),
    // and drain() runs every admitted job to completion — so the
    // effective capacity can never shrink under an already-admitted job.
    const std::size_t capacity =
        t.pool ? t.pool->capacity() : im.shared_effective_capacity();
    if (Status v = validate_jobspec(cmd.spec, capacity); !v.ok()) {
      ++t.stats.rejected;
      complete(cmd.node, v.error());
      continue;
    }
    // Static admission (opt-in): a realtime job whose conservative
    // execution bound plus one arbitration pass cannot fit its deadline
    // would miss even alone on an idle machine — reject at submit with
    // a typed reason instead of queueing it.
    if (cfg_.static_admission && cmd.spec.qos == QosClass::kRealtime &&
        cmd.spec.deadline > 0) {
      const DurationPs bound = static_makespan_bound_ps(cmd.spec, cfg_);
      if (cfg_.arbitration_latency + bound > cmd.spec.deadline) {
        ++t.stats.rejected;
        complete(cmd.node,
                 make_error("static-infeasible: job '" + cmd.spec.name +
                            "': static makespan bound " +
                            std::to_string(bound) + " ps + arbitration " +
                            std::to_string(cfg_.arbitration_latency) +
                            " ps exceeds deadline " +
                            std::to_string(cmd.spec.deadline) + " ps"));
        continue;
      }
    }
    if (t.in_flight >= t.cfg.max_pending) {
      ++t.stats.rejected;
      complete(cmd.node,
               make_error("tenant '" + t.cfg.name +
                          "': admission queue full (max_pending=" +
                          std::to_string(t.cfg.max_pending) + ")"));
      continue;
    }
    ++t.in_flight;
    PendingJob job;
    job.tenant = cmd.tenant;
    job.seq = cmd.seq;
    // Deterministic id independent of cross-tenant submission order.
    assert(cmd.tenant < (1ULL << 32) && cmd.seq < (1ULL << 32));
    job.id = JobId{(static_cast<std::uint64_t>(cmd.tenant) << 32) |
                   static_cast<std::uint64_t>(cmd.seq)};
    job.arrival = std::max(cmd.spec.arrival, im.now);
    job.spec = std::move(cmd.spec);
    job.node = std::move(cmd.node);
    im.events.push(Event{job.arrival, false, job.tenant, job.seq});
    im.waiting.emplace(std::make_pair(job.tenant, job.seq), std::move(job));
  }

  // --- Event loop: apply every event at an instant, then one grant pass.
  while (!im.events.empty()) {
    const TimePs t = im.events.top().time;
    im.now = std::max(im.now, t);
    while (!im.events.empty() && im.events.top().time == t) {
      const Event ev = im.events.top();
      im.events.pop();
      if (ev.completion) {
        finish_job_locked(ev.tenant, ev.seq);
      } else {
        const auto it = im.waiting.find({ev.tenant, ev.seq});
        assert(it != im.waiting.end());
        im.ready.push_back(std::move(it->second));
        im.waiting.erase(it);
      }
    }
    grant_pass_locked();
  }
}

void Service::finish_job_locked(std::size_t tenant_idx, std::uint64_t seq) {
  Impl& im = *impl_;
  const auto it = im.running.find({tenant_idx, seq});
  assert(it != im.running.end());
  RunningJob run = std::move(it->second);
  im.running.erase(it);

  Tenant& t = im.tenants.at(tenant_idx);
  (t.pool ? *t.pool : im.shared_pool).release(run.cores);
  t.in_use_cores -= run.cores.size();
  --t.in_flight;

  JobResult res;
  res.id = run.job.id;
  res.name = run.job.spec.name;
  res.tenant = t.cfg.name;
  res.qos = run.job.spec.qos;
  res.sequence = run.job.seq;
  res.submitted = run.job.arrival;
  res.started = run.started;
  res.finished = run.finished;
  res.cores = run.cores.size();
  res.metrics = std::move(run.metrics);
  const DurationPs latency = res.finished - res.submitted;
  res.deadline_met =
      run.job.spec.deadline == 0 || latency <= run.job.spec.deadline;

  ++t.stats.completed;
  if (!res.deadline_met) ++t.stats.deadline_misses;
  t.stats.latencies.push_back(latency);
  std::uint64_t h = t.stats.fingerprint;
  h = fnv_mix(h, res.sequence);
  h = fnv_mix(h, res.cores);
  h = fnv_mix(h, res.started);
  h = fnv_mix(h, res.finished);
  h = fnv_mix(h, res.metrics.makespan);
  t.stats.fingerprint = h;

  complete(run.job.node, std::move(res));
}

void Service::grant_pass_locked() {
  Impl& im = *impl_;
  if (im.ready.empty()) return;

  // Deficit-weighted order: QoS class first, then the tenant with the
  // least committed work relative to its share, then FIFO.
  std::vector<double> deficit(im.tenants.size(), 0.0);
  for (std::size_t i = 0; i < im.tenants.size(); ++i) {
    const Tenant& t = im.tenants[i];
    deficit[i] = t.stats.core_ps / t.cfg.share;
  }
  std::vector<std::size_t> order(im.ready.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PendingJob& x = im.ready[a];
    const PendingJob& y = im.ready[b];
    const int rx = qos_rank(x.spec.qos);
    const int ry = qos_rank(y.spec.qos);
    if (rx != ry) return rx < ry;
    if (deficit[x.tenant] != deficit[y.tenant])
      return deficit[x.tenant] < deficit[y.tenant];
    if (x.arrival != y.arrival) return x.arrival < y.arrival;
    if (x.tenant != y.tenant) return x.tenant < y.tenant;
    return x.seq < y.seq;
  });

  // Shared-pool contention: at least two shared tenants want cores now.
  // Under contention the share cap applies; when alone the pool is fully
  // work-conserving.
  std::size_t shared_tenants_waiting = 0;
  {
    std::vector<bool> seen(im.tenants.size(), false);
    for (const PendingJob& j : im.ready) {
      if (!im.tenants[j.tenant].pool && !seen[j.tenant]) {
        seen[j.tenant] = true;
        ++shared_tenants_waiting;
      }
    }
  }
  const bool contended = shared_tenants_waiting > 1;
  const std::size_t shared_capacity = im.shared_effective_capacity();

  // Batcher: grants are packed into arbitration batches per pool; batch
  // k of a pool is granted at now + (k+1)*arbitration_latency (one
  // arbitration operation covers up to batch_max gangs).
  std::vector<std::size_t> pool_grants(im.tenants.size() + 1, 0);
  const std::size_t batch_max = std::max<std::size_t>(1, cfg_.batch_max);
  // A realtime job the shared pool cannot serve yet blocks lower classes
  // from backfilling in front of it (head-of-line only across classes —
  // within a class, moldable jobs keep backfilling).
  bool shared_blocked_below_realtime = false;

  std::vector<bool> granted(im.ready.size(), false);
  auto try_grant = [&](std::size_t idx, bool enforce_cap) -> bool {
    PendingJob& job = im.ready[idx];
    Tenant& t = im.tenants[job.tenant];
    sched::SpaceAllocator& pool = t.pool ? *t.pool : im.shared_pool;
    const std::size_t pool_id = t.pool ? job.tenant + 1 : 0;

    std::size_t limit = pool.available();
    if (!t.pool && contended && enforce_cap) {
      // Share cap: under contention a tenant may not hold more than its
      // normalized share of the effective pool — capacity minus reserved
      // carve-outs, the cores shared tenants can actually be granted —
      // rounded up, so every tenant with a positive share can always
      // hold at least one core.
      const double norm =
          t.cfg.share * 1000.0 /
          static_cast<double>(std::max<std::uint64_t>(
              1, im.shared_share_sum_milli));
      const auto cap = static_cast<std::size_t>(std::ceil(
          norm * static_cast<double>(shared_capacity)));
      limit = t.in_use_cores >= cap
                  ? 0
                  : std::min(limit, cap - t.in_use_cores);
    }
    const std::size_t want_max = std::min(job.spec.max_cores, limit);
    if (want_max < job.spec.min_cores) {
      if (!t.pool && job.spec.qos == QosClass::kRealtime)
        shared_blocked_below_realtime = true;
      return false;
    }
    std::vector<std::size_t> cores =
        pool.allocate(job.spec.min_cores, want_max);
    if (cores.empty()) return false;

    const std::size_t batch_index = pool_grants[pool_id] / batch_max;
    ++pool_grants[pool_id];
    const TimePs start =
        im.now +
        cfg_.arbitration_latency * static_cast<TimePs>(batch_index + 1);

    RunningJob run;
    run.metrics = job_execution_metrics(job.spec, cores.size(), cfg_);
    run.started = start;
    run.finished = start + run.metrics.makespan;
    run.cores = std::move(cores);
    // Charge committed work at grant time so the deficit order reflects
    // in-flight gangs, not just finished ones.
    t.stats.core_ps += static_cast<double>(run.cores.size()) *
                       static_cast<double>(run.metrics.makespan);
    t.in_use_cores += run.cores.size();
    t.stats.peak_cores = std::max(t.stats.peak_cores, t.in_use_cores);

    if (cfg_.record_trace) {
      sim::TraceEvent ev;
      ev.core = sim::CoreId{static_cast<std::uint32_t>(run.cores.front())};
      ev.label = t.cfg.name + "/" + job.spec.name + "#" +
                 std::to_string(job.seq);
      ev.a = run.cores.size();
      ev.time = run.started;
      ev.kind = sim::TraceKind::kComputeStart;
      im.trace.push_back(ev);
      ev.time = run.finished;
      ev.kind = sim::TraceKind::kComputeEnd;
      im.trace.push_back(ev);
    }

    im.events.push(Event{run.finished, true, job.tenant, job.seq});
    run.job = std::move(job);
    granted[idx] = true;
    im.running.emplace(std::make_pair(run.job.tenant, run.job.seq),
                       std::move(run));
    return true;
  };

  for (const std::size_t idx : order) {
    const PendingJob& job = im.ready[idx];
    if (!im.tenants[job.tenant].pool && shared_blocked_below_realtime &&
        job.spec.qos != QosClass::kRealtime)
      continue;
    try_grant(idx, /*enforce_cap=*/true);
  }

  // Work-conserving guarantee: when the capped pass granted nothing from
  // the shared pool and the pool sits completely idle, the share cap is
  // the only thing between a ready job and otherwise-wasted cores (e.g.
  // every contender's min_cores exceeds its cap — capped grants alone
  // would leave those jobs ready forever with no completion event to
  // wake them). Lift the cap for exactly one grant — the deficit order
  // picks whose — so the engine always makes progress; the completion it
  // schedules re-runs the capped pass for everyone else.
  if (pool_grants[0] == 0 &&
      im.shared_pool.available() == shared_capacity) {
    for (const std::size_t idx : order) {
      if (granted[idx] || im.tenants[im.ready[idx].tenant].pool) continue;
      if (try_grant(idx, /*enforce_cap=*/false)) break;
    }
  }

  std::vector<PendingJob> remaining;
  remaining.reserve(im.ready.size());
  for (std::size_t i = 0; i < im.ready.size(); ++i)
    if (!granted[i]) remaining.push_back(std::move(im.ready[i]));
  im.ready.swap(remaining);
}

}  // namespace rw::ert
