#include "ert/adapters.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rw::ert {

JobSpec jobspec_from_taskgraph(const maps::TaskGraph& g) {
  JobSpec spec;
  spec.name = g.name;
  spec.graph = g;
  spec.qos = qos_from_criticality(g.annotation.criticality);
  spec.period = g.annotation.period;
  spec.deadline = g.annotation.deadline;
  if (spec.deadline == 0 && spec.qos == QosClass::kRealtime)
    spec.deadline = g.annotation.period;  // multiapp: deadline==period
  return spec;
}

maps::TaskGraph taskgraph_from_jobspec(const JobSpec& spec) {
  maps::TaskGraph g = spec.graph;
  g.name = spec.name;
  g.annotation.criticality = criticality_from_qos(spec.qos);
  g.annotation.period = spec.period;
  g.annotation.deadline = spec.deadline;
  return g;
}

JobSpec jobspec_from_cic(const cic::CicProgram& prog,
                         std::uint64_t iterations) {
  if (iterations == 0) iterations = 1;
  JobSpec spec;
  spec.name = prog.name();
  spec.graph.name = prog.name();

  std::vector<maps::TaskNodeId> nodes;
  nodes.reserve(prog.tasks().size());
  DurationPs deadline = 0;
  bool periodic_source = false;
  for (const cic::CicTask& t : prog.tasks()) {
    const maps::TaskNodeId id =
        spec.graph.add_task(t.name, t.wcet * iterations);
    if (t.preferred_pe) spec.graph.task(id).preferred_pe = t.preferred_pe;
    nodes.push_back(id);
    deadline = std::max(deadline, t.deadline);
    if (t.period > 0 && t.in_ports.empty()) periodic_source = true;
  }
  for (const cic::CicChannel& ch : prog.channels()) {
    spec.graph.add_edge(nodes.at(ch.src.index()), nodes.at(ch.dst.index()),
                        static_cast<std::uint64_t>(ch.token_bytes) *
                            iterations);
  }
  if (deadline > 0) {
    spec.deadline = deadline * iterations;
    if (periodic_source) spec.qos = QosClass::kRealtime;
  }
  return spec;
}

harness::Scenario scenario_from_jobspecs(std::string name,
                                         std::vector<JobSpec> specs,
                                         ServiceConfig cfg,
                                         std::uint64_t base_seed) {
  harness::Scenario scenario(std::move(name), base_seed);
  for (JobSpec& spec : specs) {
    std::string label = spec.name;
    scenario.add_run(std::move(label),
                     [spec = std::move(spec), cfg](
                         const harness::RunContext&) -> RunMetrics {
                       Service service(cfg);
                       auto session = service.open_session(
                           TenantConfig{.name = "harness"});
                       if (!session.ok())
                         throw std::runtime_error(
                             session.error().to_string());
                       const JobHandle handle =
                           session.value().submit(spec);
                       const auto& outcome = handle.result();
                       if (!outcome.ok())
                         throw std::runtime_error(
                             outcome.error().to_string());
                       RunMetrics m = outcome.value().metrics;
                       m.set_extra("ert.latency_us",
                                   static_cast<double>(
                                       outcome.value().latency()) /
                                       1e6);
                       return m;
                     });
  }
  return scenario;
}

}  // namespace rw::ert
