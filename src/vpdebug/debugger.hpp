// Virtual-platform debugger (Sec. VII).
//
// "Using a virtual platform the entire system can be synchronously
// suspended from execution. This non-intrusive system suspension does not
// impact the system behaviour ... During a system suspend, a virtual
// platform provides a consistent view into the state of all cores and
// peripherals."
//
// The Debugger owns run control over a Platform's kernel. Because the
// platform is a single deterministic event simulation, suspending between
// events is *exactly* non-intrusive: simulated time does not advance while
// the debugger inspects cores, memories, peripheral registers and signals.
// Breakpoints and watchpoints stop the whole system, not one core.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace rw::vpdebug {

enum class StopKind : std::uint8_t {
  kNone,
  kBreakpointTask,   // a compute block with a watched label started
  kWatchpointMem,    // a watched address was accessed
  kWatchpointSignal, // a watched signal changed level
  kAssertion,        // a scripted assertion failed
  kTimeReached,      // run-until target hit
  kFinished,         // event queue drained
  kManual,           // user-requested stop
};

const char* stop_kind_name(StopKind k);

struct StopInfo {
  StopKind kind = StopKind::kNone;
  TimePs time = 0;
  std::string detail;
};

class Debugger {
 public:
  explicit Debugger(sim::Platform& platform);
  ~Debugger();
  Debugger(const Debugger&) = delete;
  Debugger& operator=(const Debugger&) = delete;

  // ------------------------------------------------------- run control
  /// Run until a stop condition fires or the queue drains.
  StopInfo resume(std::uint64_t max_events = UINT64_MAX);
  /// Run until simulated time t (or an earlier stop condition).
  StopInfo run_until(TimePs t);
  /// Execute exactly one kernel event.
  StopInfo step_event();

  // ------------------------------------------------------ breakpoints
  /// Stop when a compute block whose label contains `label` starts.
  std::size_t break_on_task(std::string label);
  /// Stop when memory in [addr, addr+len) is accessed (write and/or read).
  std::size_t watch_memory(sim::Addr addr, std::uint64_t len,
                           bool on_write = true, bool on_read = false);
  /// Stop when the named signal changes (e.g. "irq3", "dma.busy").
  std::size_t watch_signal(const std::string& name);
  void clear_stops();

  /// Assertions: predicate evaluated after every event; returning false
  /// suspends the system with kAssertion.
  std::size_t add_assertion(std::string description,
                            std::function<bool()> predicate);

  // ------------------------------------------------- state inspection
  [[nodiscard]] TimePs now() const;
  [[nodiscard]] const StopInfo& last_stop() const { return last_stop_; }

  /// Consistent whole-system snapshot, printable while suspended.
  [[nodiscard]] std::string snapshot() const;

  [[nodiscard]] std::uint64_t core_register(std::size_t core,
                                            std::size_t reg) const;
  [[nodiscard]] std::string core_task(std::size_t core) const;
  [[nodiscard]] std::uint64_t peripheral_register(const std::string& periph,
                                                  std::size_t reg) const;
  [[nodiscard]] bool signal_level(const std::string& name) const;
  [[nodiscard]] std::uint64_t read_mem_u64(sim::Addr addr) const;

  [[nodiscard]] sim::Platform& platform() { return platform_; }

 private:
  void arm_hooks();
  void request_stop(StopKind kind, std::string detail);
  sim::Signal* find_signal(const std::string& name) const;

  sim::Platform& platform_;
  StopInfo last_stop_;
  std::optional<StopInfo> pending_stop_;

  std::vector<std::string> task_breaks_;
  struct MemWatch {
    sim::Addr addr;
    std::uint64_t len;
    bool on_write, on_read;
  };
  std::vector<MemWatch> mem_watches_;
  std::vector<std::string> signal_watches_;
  struct Assertion {
    std::string description;
    std::function<bool()> predicate;
  };
  std::vector<Assertion> assertions_;
};

}  // namespace rw::vpdebug
