// Scriptable debug framework (Sec. VII).
//
// "CoWare Virtual Platforms provide a scriptable debug framework. Using a
// TCL based scripting language, the control and inspection of hardware
// and software can be automated. This scripting capability allows
// implementing system level software assertions, without changing the
// software code."
//
// A small TCL-flavoured command language driving the Debugger:
//
//   break-task fir               # breakpoint on a task label
//   watch-mem 0x80000000 8 w     # memory watchpoint (w, r or rw)
//   watch-sig irq0               # signal watchpoint
//   assert-mem-le 0x80000000 100 counter stays small
//   assert-sem-free 3            # hw semaphore 3 never held
//   run                          # resume until a stop condition
//   run-until 2000000            # run to absolute time (ps)
//   step                         # single kernel event
//   snapshot                     # consistent whole-system dump
//   print-mem 0x80000000
//   print-reg 0 1                # core 0, register r1
//   print-periph timer 2
//   echo text...
//
// Commands execute against the live platform; all output lands in the
// transcript. Unknown commands are errors (scripts are checked, not
// silently skipped).
#pragma once

#include <string>

#include "common/result.hpp"
#include "vpdebug/debugger.hpp"

namespace rw::vpdebug {

class ScriptEngine {
 public:
  explicit ScriptEngine(Debugger& dbg) : dbg_(dbg) {}

  /// Execute one command line; output is appended to the transcript.
  Status execute_line(const std::string& line);

  /// Execute a whole script (newline-separated; '#' comments allowed).
  /// Stops at the first failing command.
  Status execute_script(const std::string& script);

  [[nodiscard]] const std::string& transcript() const { return out_; }
  void clear_transcript() { out_.clear(); }

  /// Number of assertion stops observed while running under the script.
  [[nodiscard]] std::uint64_t assertion_failures() const {
    return assertion_failures_;
  }

 private:
  void emit(const std::string& line) { out_ += line + "\n"; }
  void note_stop(const StopInfo& stop);

  Debugger& dbg_;
  std::string out_;
  std::uint64_t assertion_failures_ = 0;
};

}  // namespace rw::vpdebug
