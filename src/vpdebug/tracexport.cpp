#include "vpdebug/tracexport.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"

namespace rw::vpdebug {

std::vector<ExecutedBlock> function_history(
    const std::vector<sim::TraceEvent>& trace, sim::CoreId core) {
  std::vector<ExecutedBlock> out;
  std::vector<ExecutedBlock> open;  // compute blocks may nest per label
  for (const auto& ev : trace) {
    if (ev.core != core) continue;
    if (ev.kind == sim::TraceKind::kComputeStart) {
      open.push_back(ExecutedBlock{ev.label, ev.time, 0});
    } else if (ev.kind == sim::TraceKind::kComputeEnd) {
      // Close the most recent open block with this label.
      for (auto it = open.rbegin(); it != open.rend(); ++it) {
        if (it->label == ev.label && it->end == 0) {
          it->end = ev.time;
          out.push_back(*it);
          open.erase(std::next(it).base());
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExecutedBlock& a, const ExecutedBlock& b) {
              return a.start < b.start;
            });
  return out;
}

std::string render_gantt(const std::vector<sim::TraceEvent>& trace,
                         std::size_t num_cores, TimePs t0, TimePs t1,
                         std::size_t width) {
  if (t1 <= t0 || width == 0) return "";
  // Stable legend: label -> letter, in first-appearance order.
  std::map<std::string, char> legend;
  auto letter_for = [&](const std::string& label) {
    auto it = legend.find(label);
    if (it != legend.end()) return it->second;
    const char c = static_cast<char>('a' + (legend.size() % 26));
    legend.emplace(label, c);
    return c;
  };

  std::string out;
  for (std::size_t c = 0; c < num_cores; ++c) {
    std::string row(width, '.');
    for (const auto& blk : function_history(
             trace, sim::CoreId{static_cast<std::uint32_t>(c)})) {
      if (blk.end <= t0 || blk.start >= t1) continue;
      const TimePs s = std::max(blk.start, t0);
      const TimePs e = std::min(blk.end, t1);
      const auto from = static_cast<std::size_t>(
          (s - t0) * width / (t1 - t0));
      auto to = static_cast<std::size_t>((e - t0) * width / (t1 - t0));
      to = std::max(to, from + 1);
      const char ch = letter_for(blk.label);
      for (std::size_t i = from; i < std::min(to, width); ++i) row[i] = ch;
    }
    out += strformat("core%-2zu |%s|\n", c, row.c_str());
  }
  out += "legend:";
  for (const auto& [label, ch] : legend)
    out += strformat(" %c=%s", ch, label.c_str());
  out += "\n";
  return out;
}

std::string export_vcd(const std::vector<sim::TraceEvent>& trace,
                       std::size_t num_cores) {
  // Which IRQ lines ever appear?
  std::set<std::uint64_t> irq_lines;
  for (const auto& ev : trace)
    if (ev.kind == sim::TraceKind::kIrqRaise ||
        ev.kind == sim::TraceKind::kIrqAck)
      irq_lines.insert(ev.a);

  std::string vcd;
  vcd += "$timescale 1ps $end\n$scope module platform $end\n";
  auto core_id = [](std::size_t c) {
    return strformat("b%zu", c);
  };
  auto irq_id = [](std::uint64_t l) {
    return strformat("q%llu", static_cast<unsigned long long>(l));
  };
  for (std::size_t c = 0; c < num_cores; ++c)
    vcd += strformat("$var wire 1 %s core%zu_busy $end\n",
                     core_id(c).c_str(), c);
  for (const auto l : irq_lines)
    vcd += strformat("$var wire 1 %s irq%llu $end\n", irq_id(l).c_str(),
                     static_cast<unsigned long long>(l));
  vcd += "$upscope $end\n$enddefinitions $end\n";

  // Initial values.
  vcd += "#0\n";
  for (std::size_t c = 0; c < num_cores; ++c)
    vcd += strformat("0%s\n", core_id(c).c_str());
  for (const auto l : irq_lines)
    vcd += strformat("0%s\n", irq_id(l).c_str());

  // Busy depth per core (nested compute blocks keep the wire high).
  std::vector<int> depth(num_cores, 0);
  TimePs last_time = 0;
  bool time_open = true;
  auto at_time = [&](TimePs t) {
    if (t != last_time || !time_open) {
      vcd += strformat("#%llu\n", static_cast<unsigned long long>(t));
      last_time = t;
      time_open = true;
    }
  };

  for (const auto& ev : trace) {
    switch (ev.kind) {
      case sim::TraceKind::kComputeStart: {
        if (!ev.core.is_valid() || ev.core.index() >= num_cores) break;
        if (depth[ev.core.index()]++ == 0) {
          at_time(ev.time);
          vcd += strformat("1%s\n", core_id(ev.core.index()).c_str());
        }
        break;
      }
      case sim::TraceKind::kComputeEnd: {
        if (!ev.core.is_valid() || ev.core.index() >= num_cores) break;
        if (--depth[ev.core.index()] == 0) {
          at_time(ev.time);
          vcd += strformat("0%s\n", core_id(ev.core.index()).c_str());
        }
        break;
      }
      case sim::TraceKind::kIrqRaise:
        at_time(ev.time);
        vcd += strformat("1%s\n", irq_id(ev.a).c_str());
        break;
      case sim::TraceKind::kIrqAck:
        at_time(ev.time);
        vcd += strformat("0%s\n", irq_id(ev.a).c_str());
        break;
      default:
        break;
    }
  }
  return vcd;
}

}  // namespace rw::vpdebug
