#include "vpdebug/race.hpp"

#include "common/strings.hpp"

namespace rw::vpdebug {

std::string RaceReport::to_string() const {
  return strformat(
      "race on 0x%llx: core%u %s @%s vs core%u %s @%s",
      static_cast<unsigned long long>(addr), first_core.value(),
      first_is_write ? "W" : "R", format_time(first_time).c_str(),
      second_core.value(), second_is_write ? "W" : "R",
      format_time(second_time).c_str());
}

void RaceReport::to_json(json::Writer& w) const {
  w.begin_object();
  w.key("addr").value(strformat("0x%llx",
                                static_cast<unsigned long long>(addr)));
  w.key("first_core").value(static_cast<std::uint64_t>(first_core.value()));
  w.key("second_core").value(
      static_cast<std::uint64_t>(second_core.value()));
  w.key("first_time_ps").value(static_cast<std::uint64_t>(first_time));
  w.key("second_time_ps").value(static_cast<std::uint64_t>(second_time));
  w.key("first_is_write").value(first_is_write);
  w.key("second_is_write").value(second_is_write);
  w.end_object();
}

std::string races_to_json(const std::vector<RaceReport>& races) {
  json::Writer w;
  w.begin_object();
  w.key("races").begin_array();
  for (const auto& r : races) r.to_json(w);
  w.end_array();
  w.end_object();
  return w.str();
}

RaceDetector::RaceDetector(sim::Platform& platform, sim::Addr base,
                           std::uint64_t len, DurationPs window)
    : platform_(platform), base_(base), len_(len), window_(window) {
  platform_.memory().add_observer(
      [this](const sim::MemAccess& acc) { on_access(acc); });
}

bool RaceDetector::core_holds_lock(sim::CoreId core) const {
  auto& sem = const_cast<sim::Platform&>(platform_).hwsem();
  for (std::size_t cell = 0; cell < 16; ++cell)
    if (sem.holder(cell) == core) return true;
  return false;
}

void RaceDetector::on_access(const sim::MemAccess& acc) {
  if (acc.addr + acc.size <= base_ || acc.addr >= base_ + len_) return;
  if (!acc.core.is_valid()) return;  // DMA handled as core-anonymous
  ++seen_;

  // Age out accesses beyond the window.
  while (!recent_.empty() && recent_.front().time + window_ < acc.time)
    recent_.pop_front();

  const bool locked = core_holds_lock(acc.core);
  for (const auto& prev : recent_) {
    if (prev.core == acc.core) continue;
    const bool overlap =
        acc.addr < prev.addr + prev.size && prev.addr < acc.addr + acc.size;
    if (!overlap) continue;
    if (!prev.is_write && !acc.is_write) continue;  // read-read is fine
    if (prev.locked && locked) continue;  // both under a hw semaphore
    races_.push_back(RaceReport{prev.time, acc.time, prev.core, acc.core,
                                acc.addr, prev.is_write, acc.is_write});
  }
  recent_.push_back(PendingAccess{acc.time, acc.core, acc.addr, acc.size,
                                  acc.is_write, locked});
}

}  // namespace rw::vpdebug
