// Concurrency-bug victim workloads (Sec. VII's debugging subjects).
//
// The classic MPSoC defect catalogue: a shared-counter race (lost
// updates), a deadlock on hardware semaphores, and a wrongly-masked
// interrupt. Each is seeded and parameterized so experiments can measure
// how often the defect manifests and how debugging technique affects
// reproduction (the "Heisenbug" effect).
#pragma once

#include <cstdint>

#include "sim/platform.hpp"

namespace rw::vpdebug {

struct RacyCounterConfig {
  std::uint64_t increments_per_core = 50;
  std::uint64_t seed = 1;
  Cycles work_cycles = 300;       // computation between RMW accesses
  Cycles rmw_gap_cycles = 60;     // read->write window (the race window)
  std::uint64_t jitter_cycles = 40;  // per-iteration random jitter
  /// Intrusive-debugging model: extra stall injected on core 0 at every
  /// counter access (a JTAG single-core halt perturbs exactly like this;
  /// 0 = non-intrusive).
  DurationPs probe_stall_ps = 0;
  bool use_semaphore = false;  // the fixed version takes hwsem cell 0
};

struct RacyCounterResult {
  std::uint64_t expected = 0;
  std::uint64_t observed = 0;
  [[nodiscard]] std::uint64_t lost_updates() const {
    return expected - observed;
  }
  [[nodiscard]] bool bug_manifested() const { return observed != expected; }
};

/// Two cores increment a shared counter with an unprotected read-modify-
/// write. Returns the lost-update count. Deterministic in (platform
/// config, cfg.seed).
RacyCounterResult run_racy_counter(sim::Platform& platform,
                                   const RacyCounterConfig& cfg);

/// Address the shared counter lives at (for watchpoints).
sim::Addr racy_counter_addr(const sim::Platform& platform);

struct MaskedIrqResult {
  bool handler_ran = false;
  bool irq_line_high = false;  // visible on the wire even when masked
};

/// The Sec. VII scenario: firmware masks a timer interrupt by mistake and
/// waits for a flag its handler would set. On real hardware the developer
/// sees only a hang; on the virtual platform the pending line is visible.
MaskedIrqResult run_masked_irq_bug(sim::Platform& platform,
                                   DurationPs run_for = microseconds(500));

}  // namespace rw::vpdebug
