#include "vpdebug/script.hpp"

#include <cstdlib>

#include "common/strings.hpp"
#include "vpdebug/tracexport.hpp"

namespace rw::vpdebug {
namespace {

bool parse_addr(const std::string& s, sim::Addr& out) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    char* end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return end == s.c_str() + s.size();
  }
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = v;
  return true;
}

std::string rest_of(const std::vector<std::string>& words,
                    std::size_t from) {
  std::vector<std::string> tail(words.begin() +
                                    static_cast<std::ptrdiff_t>(from),
                                words.end());
  return join(tail, " ");
}

}  // namespace

void ScriptEngine::note_stop(const StopInfo& stop) {
  emit(strformat("[stopped: %s at %s] %s", stop_kind_name(stop.kind),
                 format_time(stop.time).c_str(), stop.detail.c_str()));
  if (stop.kind == StopKind::kAssertion) ++assertion_failures_;
}

Status ScriptEngine::execute_line(const std::string& raw) {
  const auto line = std::string(trim(raw));
  if (line.empty() || line[0] == '#') return Status::ok_status();
  const auto words = split_ws(line);
  const std::string& cmd = words[0];

  auto need = [&](std::size_t n) -> Status {
    if (words.size() < n + 1)
      return make_error("'" + cmd + "' needs " + std::to_string(n) +
                        " argument(s)");
    return Status::ok_status();
  };

  if (cmd == "echo") {
    emit(rest_of(words, 1));
    return Status::ok_status();
  }
  if (cmd == "break-task") {
    if (auto s = need(1); !s.ok()) return s;
    dbg_.break_on_task(words[1]);
    emit("breakpoint on task '" + words[1] + "'");
    return Status::ok_status();
  }
  if (cmd == "watch-mem") {
    if (auto s = need(2); !s.ok()) return s;
    sim::Addr addr = 0;
    std::uint64_t len = 0;
    if (!parse_addr(words[1], addr) || !parse_u64(words[2], len))
      return make_error("watch-mem: bad address/length");
    const std::string mode = words.size() > 3 ? words[3] : "w";
    dbg_.watch_memory(addr, len, mode.find('w') != std::string::npos,
                      mode.find('r') != std::string::npos);
    emit(strformat("watchpoint at 0x%llx (%s)",
                   static_cast<unsigned long long>(addr), mode.c_str()));
    return Status::ok_status();
  }
  if (cmd == "watch-sig") {
    if (auto s = need(1); !s.ok()) return s;
    dbg_.watch_signal(words[1]);
    emit("watchpoint on signal '" + words[1] + "'");
    return Status::ok_status();
  }
  if (cmd == "assert-mem-le") {
    if (auto s = need(2); !s.ok()) return s;
    sim::Addr addr = 0;
    std::uint64_t limit = 0;
    if (!parse_addr(words[1], addr) || !parse_u64(words[2], limit))
      return make_error("assert-mem-le: bad address/limit");
    const std::string desc = words.size() > 3
                                 ? rest_of(words, 3)
                                 : strformat("mem[0x%llx] <= %llu",
                                             static_cast<unsigned long long>(
                                                 addr),
                                             static_cast<unsigned long long>(
                                                 limit));
    dbg_.add_assertion(desc, [this, addr, limit] {
      return dbg_.read_mem_u64(addr) <= limit;
    });
    emit("assertion armed: " + desc);
    return Status::ok_status();
  }
  if (cmd == "assert-sem-free") {
    if (auto s = need(1); !s.ok()) return s;
    std::uint64_t cell = 0;
    if (!parse_u64(words[1], cell))
      return make_error("assert-sem-free: bad cell");
    dbg_.add_assertion(
        "hwsem " + words[1] + " free",
        [this, cell] { return !dbg_.platform().hwsem().held(cell); });
    emit("assertion armed: hwsem " + words[1] + " free");
    return Status::ok_status();
  }
  if (cmd == "run") {
    note_stop(dbg_.resume());
    return Status::ok_status();
  }
  if (cmd == "run-until") {
    if (auto s = need(1); !s.ok()) return s;
    std::uint64_t t = 0;
    if (!parse_u64(words[1], t)) return make_error("run-until: bad time");
    note_stop(dbg_.run_until(t));
    return Status::ok_status();
  }
  if (cmd == "step") {
    note_stop(dbg_.step_event());
    return Status::ok_status();
  }
  if (cmd == "snapshot") {
    out_ += dbg_.snapshot();
    return Status::ok_status();
  }
  if (cmd == "print-mem") {
    if (auto s = need(1); !s.ok()) return s;
    sim::Addr addr = 0;
    if (!parse_addr(words[1], addr)) return make_error("print-mem: bad addr");
    emit(strformat("mem[0x%llx] = %llu",
                   static_cast<unsigned long long>(addr),
                   static_cast<unsigned long long>(dbg_.read_mem_u64(addr))));
    return Status::ok_status();
  }
  if (cmd == "print-reg") {
    if (auto s = need(2); !s.ok()) return s;
    std::uint64_t core = 0, reg = 0;
    if (!parse_u64(words[1], core) || !parse_u64(words[2], reg))
      return make_error("print-reg: bad core/reg");
    emit(strformat("core%llu.r%llu = %llu",
                   static_cast<unsigned long long>(core),
                   static_cast<unsigned long long>(reg),
                   static_cast<unsigned long long>(
                       dbg_.core_register(core, reg))));
    return Status::ok_status();
  }
  if (cmd == "print-periph") {
    if (auto s = need(2); !s.ok()) return s;
    std::uint64_t reg = 0;
    if (!parse_u64(words[2], reg)) return make_error("print-periph: bad reg");
    emit(strformat("%s[%llu] = %llu", words[1].c_str(),
                   static_cast<unsigned long long>(reg),
                   static_cast<unsigned long long>(
                       dbg_.peripheral_register(words[1], reg))));
    return Status::ok_status();
  }
  if (cmd == "gantt") {
    // gantt [<width>] — ASCII timeline of the trace so far.
    std::uint64_t width = 64;
    if (words.size() > 1 && !parse_u64(words[1], width))
      return make_error("gantt: bad width");
    auto& p = dbg_.platform();
    out_ += render_gantt(p.tracer().events(), p.core_count(), 0,
                         std::max<TimePs>(p.kernel().now(), 1),
                         static_cast<std::size_t>(width));
    return Status::ok_status();
  }
  if (cmd == "history") {
    // history <core> — executed compute blocks on a core.
    if (auto s = need(1); !s.ok()) return s;
    std::uint64_t core = 0;
    if (!parse_u64(words[1], core)) return make_error("history: bad core");
    const auto blocks = function_history(
        dbg_.platform().tracer().events(),
        sim::CoreId{static_cast<std::uint32_t>(core)});
    emit(strformat("core%llu executed %zu blocks:",
                   static_cast<unsigned long long>(core), blocks.size()));
    for (const auto& b : blocks)
      emit(strformat("  %-20s %s .. %s", b.label.c_str(),
                     format_time(b.start).c_str(),
                     format_time(b.end).c_str()));
    return Status::ok_status();
  }
  return make_error("unknown command '" + cmd + "'");
}

Status ScriptEngine::execute_script(const std::string& script) {
  for (const auto& line : split(script, '\n')) {
    if (auto s = execute_line(line); !s.ok()) return s;
  }
  return Status::ok_status();
}

}  // namespace rw::vpdebug
