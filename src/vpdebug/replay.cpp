#include "vpdebug/replay.hpp"

namespace rw::vpdebug {
namespace {

constexpr std::uint64_t kFnvInit = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fold_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ExecutionRecorder::ExecutionRecorder(sim::Platform& platform) {
  slots_.resize(platform.tile_count());
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    platform.tile_tracer(static_cast<std::uint32_t>(t))
        .add_listener(
            [this, t](const sim::TraceEvent& ev) { fold(t, ev); });
  }
}

std::uint64_t ExecutionRecorder::fingerprint() const {
  // One tile: exactly the historical single-stream digest.
  if (slots_.size() == 1) return slots_[0].hash;
  // Many tiles: combine (tile, digest, count) in tile order. Counts are
  // folded so a tile swallowing another's events cannot cancel out.
  std::uint64_t h = kFnvInit;
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    h = fold_u64(h, t);
    h = fold_u64(h, slots_[t].hash);
    h = fold_u64(h, slots_[t].count);
  }
  return h;
}

std::uint64_t ExecutionRecorder::events() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) n += s.count;
  return n;
}

void ExecutionRecorder::fold(std::size_t tile, const sim::TraceEvent& ev) {
  Slot& s = slots_[tile];
  ++s.count;
  s.hash = fold_u64(s.hash, ev.time);
  s.hash = fold_u64(s.hash, static_cast<std::uint64_t>(ev.kind));
  s.hash = fold_u64(s.hash, ev.core.is_valid() ? ev.core.value() : ~0ULL);
  s.hash = fold_str(s.hash, ev.label);
  s.hash = fold_u64(s.hash, ev.a);
  s.hash = fold_u64(s.hash, ev.b);
}

}  // namespace rw::vpdebug
