#include "vpdebug/replay.hpp"

namespace rw::vpdebug {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fold_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ExecutionRecorder::ExecutionRecorder(sim::Platform& platform) {
  platform.tracer().add_listener(
      [this](const sim::TraceEvent& ev) { fold(ev); });
}

void ExecutionRecorder::fold(const sim::TraceEvent& ev) {
  ++count_;
  hash_ = fold_u64(hash_, ev.time);
  hash_ = fold_u64(hash_, static_cast<std::uint64_t>(ev.kind));
  hash_ = fold_u64(hash_, ev.core.is_valid() ? ev.core.value() : ~0ULL);
  hash_ = fold_str(hash_, ev.label);
  hash_ = fold_u64(hash_, ev.a);
  hash_ = fold_u64(hash_, ev.b);
}

}  // namespace rw::vpdebug
