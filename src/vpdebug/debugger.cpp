#include "vpdebug/debugger.hpp"

#include <cstring>
#include <stdexcept>

#include "common/strings.hpp"

namespace rw::vpdebug {

const char* stop_kind_name(StopKind k) {
  switch (k) {
    case StopKind::kNone: return "none";
    case StopKind::kBreakpointTask: return "breakpoint";
    case StopKind::kWatchpointMem: return "mem-watchpoint";
    case StopKind::kWatchpointSignal: return "signal-watchpoint";
    case StopKind::kAssertion: return "assertion";
    case StopKind::kTimeReached: return "time-reached";
    case StopKind::kFinished: return "finished";
    case StopKind::kManual: return "manual";
  }
  return "?";
}

Debugger::Debugger(sim::Platform& platform) : platform_(platform) {
  arm_hooks();
}

Debugger::~Debugger() {
  // Leave the platform functional: drop our observers.
  platform_.tracer().clear_listeners();
  platform_.memory().clear_observers();
}

void Debugger::arm_hooks() {
  platform_.tracer().add_listener([this](const sim::TraceEvent& ev) {
    if (ev.kind == sim::TraceKind::kComputeStart) {
      for (const auto& label : task_breaks_) {
        if (ev.label.find(label) != std::string::npos) {
          request_stop(StopKind::kBreakpointTask,
                       "task '" + ev.label + "' started on core" +
                           std::to_string(ev.core.value()));
        }
      }
    }
  });

  platform_.memory().add_observer([this](const sim::MemAccess& acc) {
    for (const auto& w : mem_watches_) {
      if (acc.addr + acc.size <= w.addr || acc.addr >= w.addr + w.len)
        continue;
      if ((acc.is_write && w.on_write) || (!acc.is_write && w.on_read)) {
        request_stop(
            StopKind::kWatchpointMem,
            strformat("core%u %s 0x%llx (value %llu)",
                      acc.core.is_valid() ? acc.core.value() : 999,
                      acc.is_write ? "wrote" : "read",
                      static_cast<unsigned long long>(acc.addr),
                      static_cast<unsigned long long>(acc.value)));
      }
    }
  });

  for (auto* periph : platform_.peripherals()) {
    for (auto* sig : periph->signals()) {
      sig->add_observer([this, sig](const sim::Signal&, bool old_level) {
        for (const auto& name : signal_watches_) {
          if (sig->name() == name) {
            request_stop(StopKind::kWatchpointSignal,
                         strformat("signal %s: %d -> %d",
                                   sig->name().c_str(), old_level ? 1 : 0,
                                   sig->level() ? 1 : 0));
          }
        }
      });
    }
  }
}

void Debugger::request_stop(StopKind kind, std::string detail) {
  // First stop reason per event wins; the kernel halts after the event.
  if (!pending_stop_) {
    pending_stop_ = StopInfo{kind, platform_.kernel().now(),
                             std::move(detail)};
  }
  platform_.kernel().request_stop();
}

StopInfo Debugger::resume(std::uint64_t max_events) {
  auto& kernel = platform_.kernel();
  pending_stop_.reset();
  std::uint64_t budget = max_events;
  while (budget-- > 0) {
    if (!kernel.step()) {
      last_stop_ = StopInfo{StopKind::kFinished, kernel.now(), "queue empty"};
      return last_stop_;
    }
    // Scripted assertions are checked on the consistent state between
    // events — the "system level software assertions" of Sec. VII.
    for (const auto& a : assertions_) {
      if (!a.predicate()) {
        pending_stop_ = StopInfo{StopKind::kAssertion, kernel.now(),
                                 "assertion failed: " + a.description};
        break;
      }
    }
    if (pending_stop_) {
      kernel.clear_stop();
      last_stop_ = *pending_stop_;
      return last_stop_;
    }
  }
  last_stop_ = StopInfo{StopKind::kManual, kernel.now(), "event budget"};
  return last_stop_;
}

StopInfo Debugger::run_until(TimePs t) {
  auto& kernel = platform_.kernel();
  pending_stop_.reset();
  while (!kernel.empty() && kernel.next_event_time() <= t) {
    const StopInfo s = step_event();
    if (s.kind != StopKind::kNone && s.kind != StopKind::kTimeReached)
      return s;
  }
  last_stop_ = StopInfo{kernel.empty() ? StopKind::kFinished
                                       : StopKind::kTimeReached,
                        kernel.now(), ""};
  return last_stop_;
}

StopInfo Debugger::step_event() {
  auto& kernel = platform_.kernel();
  pending_stop_.reset();
  if (!kernel.step()) {
    last_stop_ = StopInfo{StopKind::kFinished, kernel.now(), "queue empty"};
    return last_stop_;
  }
  for (const auto& a : assertions_) {
    if (!a.predicate()) {
      pending_stop_ = StopInfo{StopKind::kAssertion, kernel.now(),
                               "assertion failed: " + a.description};
      break;
    }
  }
  kernel.clear_stop();
  if (pending_stop_) {
    last_stop_ = *pending_stop_;
  } else {
    last_stop_ = StopInfo{StopKind::kNone, kernel.now(), ""};
  }
  return last_stop_;
}

std::size_t Debugger::break_on_task(std::string label) {
  task_breaks_.push_back(std::move(label));
  return task_breaks_.size() - 1;
}

std::size_t Debugger::watch_memory(sim::Addr addr, std::uint64_t len,
                                   bool on_write, bool on_read) {
  mem_watches_.push_back(MemWatch{addr, len, on_write, on_read});
  return mem_watches_.size() - 1;
}

std::size_t Debugger::watch_signal(const std::string& name) {
  signal_watches_.push_back(name);
  return signal_watches_.size() - 1;
}

void Debugger::clear_stops() {
  task_breaks_.clear();
  mem_watches_.clear();
  signal_watches_.clear();
  assertions_.clear();
}

std::size_t Debugger::add_assertion(std::string description,
                                    std::function<bool()> predicate) {
  assertions_.push_back({std::move(description), std::move(predicate)});
  return assertions_.size() - 1;
}

TimePs Debugger::now() const { return platform_.kernel().now(); }

sim::Signal* Debugger::find_signal(const std::string& name) const {
  for (auto* periph :
       const_cast<sim::Platform&>(platform_).peripherals()) {
    for (auto* sig : periph->signals())
      if (sig->name() == name) return sig;
  }
  return nullptr;
}

std::uint64_t Debugger::core_register(std::size_t core,
                                      std::size_t reg) const {
  return const_cast<sim::Platform&>(platform_).core(core).reg(reg);
}

std::string Debugger::core_task(std::size_t core) const {
  return const_cast<sim::Platform&>(platform_).core(core).current_label();
}

std::uint64_t Debugger::peripheral_register(const std::string& periph,
                                            std::size_t reg) const {
  for (auto* p : const_cast<sim::Platform&>(platform_).peripherals())
    if (p->name() == periph) return p->read_reg(reg);
  throw std::invalid_argument("no peripheral '" + periph + "'");
}

bool Debugger::signal_level(const std::string& name) const {
  sim::Signal* sig = find_signal(name);
  if (!sig) throw std::invalid_argument("no signal '" + name + "'");
  return sig->level();
}

std::uint64_t Debugger::read_mem_u64(sim::Addr addr) const {
  std::uint8_t buf[8] = {};
  platform_.memory().peek(addr, buf);  // non-intrusive: no latency, no trace
  std::uint64_t v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

std::string Debugger::snapshot() const {
  auto& p = const_cast<sim::Platform&>(platform_);
  std::string s =
      strformat("=== system suspended at %s ===\n",
                format_time(p.kernel().now()).c_str());
  for (std::size_t c = 0; c < p.core_count(); ++c) {
    auto& core = p.core(c);
    s += strformat("core%zu [%s @%s] task=%s r0=%llu r1=%llu\n", c,
                   sim::pe_class_name(core.pe_class()),
                   format_hz(core.frequency()).c_str(),
                   core.current_label().c_str(),
                   static_cast<unsigned long long>(core.reg(0)),
                   static_cast<unsigned long long>(core.reg(1)));
  }
  for (auto* periph : p.peripherals()) {
    s += strformat("%s:", periph->name().c_str());
    for (const auto& reg : periph->registers())
      s += strformat(" %s=%llu", reg.name.c_str(),
                     static_cast<unsigned long long>(
                         periph->read_reg(reg.index)));
    s += "\n";
  }
  return s;
}

}  // namespace rw::vpdebug
