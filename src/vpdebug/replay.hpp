// Deterministic record/replay.
//
// Sec. VII phase 2 of the structured debugging process is "reproducing the
// defect". On a virtual platform a run is a pure function of its
// configuration and seeds, so reproduction is exact. The recorder folds
// the full trace-event stream into a fingerprint; two runs replay
// identically iff their fingerprints match — which is how the tests and
// experiment E9 *prove* determinism instead of asserting it.
#pragma once

#include <cstdint>
#include <string>

#include "sim/platform.hpp"

namespace rw::vpdebug {

/// FNV-1a-folded digest of every trace event (time, kind, core, label,
/// payloads) plus the event count.
class ExecutionRecorder {
 public:
  explicit ExecutionRecorder(sim::Platform& platform);

  [[nodiscard]] std::uint64_t fingerprint() const { return hash_; }
  [[nodiscard]] std::uint64_t events() const { return count_; }

 private:
  void fold(const sim::TraceEvent& ev);
  std::uint64_t hash_ = 1469598103934665603ULL;
  std::uint64_t count_ = 0;
};

/// Convenience: run `scenario` twice on freshly-built platforms and
/// report whether the fingerprints match.
struct ReplayCheck {
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  [[nodiscard]] bool deterministic() const { return first == second; }
};

template <typename Scenario>
ReplayCheck check_replay(const sim::PlatformConfig& cfg,
                         Scenario&& scenario) {
  ReplayCheck out;
  {
    sim::Platform p(cfg);
    ExecutionRecorder rec(p);
    scenario(p);
    out.first = rec.fingerprint();
  }
  {
    sim::Platform p(cfg);
    ExecutionRecorder rec(p);
    scenario(p);
    out.second = rec.fingerprint();
  }
  return out;
}

}  // namespace rw::vpdebug
