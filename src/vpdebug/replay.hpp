// Deterministic record/replay.
//
// Sec. VII phase 2 of the structured debugging process is "reproducing the
// defect". On a virtual platform a run is a pure function of its
// configuration and seeds, so reproduction is exact. The recorder folds
// the full trace-event stream into a fingerprint; two runs replay
// identically iff their fingerprints match — which is how the tests and
// experiment E9 *prove* determinism instead of asserting it.
//
// On a tiled platform (KernelConfig::num_tiles > 1) the recorder keeps one
// fold per tile — each tile's trace stream is totally ordered by its own
// kernel, while the interleaving *between* tiles is exactly what parallel
// execution does not fix. The per-tile digests are combined in tile order
// into one canonical fingerprint, which is therefore identical across
// ExecMode::kSequential and kParallel and across reruns. With one tile the
// fingerprint is bit-for-bit the classic single-stream fold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace rw::vpdebug {

/// FNV-1a-folded digest of every trace event (time, kind, core, label,
/// payloads) plus the event count, canonicalized per tile.
class ExecutionRecorder {
 public:
  explicit ExecutionRecorder(sim::Platform& platform);

  /// Canonical digest: the tile-0 fold on an untiled platform, the
  /// tile-ordered combination of per-tile (digest, count) otherwise.
  [[nodiscard]] std::uint64_t fingerprint() const;
  /// Total trace events folded, across all tiles.
  [[nodiscard]] std::uint64_t events() const;

  [[nodiscard]] std::size_t tile_count() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t tile_fingerprint(std::size_t t) const {
    return slots_.at(t).hash;
  }

 private:
  struct Slot {
    std::uint64_t hash = 1469598103934665603ULL;
    std::uint64_t count = 0;
  };

  void fold(std::size_t tile, const sim::TraceEvent& ev);
  std::vector<Slot> slots_;  // one per tile; each written by one tile only
};

/// Convenience: run `scenario` twice on freshly-built platforms and
/// report whether the fingerprints match.
struct ReplayCheck {
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  [[nodiscard]] bool deterministic() const { return first == second; }
};

template <typename Scenario>
ReplayCheck check_replay(const sim::PlatformConfig& cfg,
                         Scenario&& scenario) {
  ReplayCheck out;
  {
    sim::Platform p(cfg);
    ExecutionRecorder rec(p);
    scenario(p);
    out.first = rec.fingerprint();
  }
  {
    sim::Platform p(cfg);
    ExecutionRecorder rec(p);
    scenario(p);
    out.second = rec.fingerprint();
  }
  return out;
}

}  // namespace rw::vpdebug
