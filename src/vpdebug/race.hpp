// Data-race detection on the virtual platform.
//
// Sec. VII: "race conditions on a shared memory access can be easily
// identified". The detector watches every access to watched address
// ranges and reports pairs from different cores that touch the same
// location within a time window with at least one write and with no
// common hardware semaphore held — the classic happens-before-free
// conflict on an MPSoC without coherent atomics.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sim/platform.hpp"

namespace rw::vpdebug {

struct RaceReport {
  TimePs first_time = 0;
  TimePs second_time = 0;
  sim::CoreId first_core{};
  sim::CoreId second_core{};
  sim::Addr addr = 0;
  bool first_is_write = false;
  bool second_is_write = false;

  [[nodiscard]] std::string to_string() const;
  /// Emit as one JSON object, so dynamic findings diff cleanly against
  /// the static rw::lint diagnostics (same writer, same determinism).
  void to_json(json::Writer& w) const;
};

/// A full detector result as a JSON document: {races: [...]}.
std::string races_to_json(const std::vector<RaceReport>& races);

class RaceDetector {
 public:
  /// Watch [base, base+len). `window` is the temporal vicinity within
  /// which unsynchronized conflicting accesses are reported.
  RaceDetector(sim::Platform& platform, sim::Addr base, std::uint64_t len,
               DurationPs window = microseconds(1));

  [[nodiscard]] const std::vector<RaceReport>& races() const {
    return races_;
  }
  [[nodiscard]] std::uint64_t accesses_observed() const { return seen_; }

 private:
  void on_access(const sim::MemAccess& acc);
  [[nodiscard]] bool core_holds_lock(sim::CoreId core) const;

  sim::Platform& platform_;
  sim::Addr base_;
  std::uint64_t len_;
  DurationPs window_;
  std::uint64_t seen_ = 0;

  struct PendingAccess {
    TimePs time;
    sim::CoreId core;
    sim::Addr addr;
    std::uint32_t size;
    bool is_write;
    bool locked;  // held any hw semaphore at access time
  };
  std::deque<PendingAccess> recent_;
  std::vector<RaceReport> races_;
};

}  // namespace rw::vpdebug
