#include "vpdebug/victim.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "sim/process.hpp"

namespace rw::vpdebug {
namespace {

sim::Process incrementer(sim::Platform& p, std::size_t core_idx,
                         const RacyCounterConfig cfg, sim::Addr counter,
                         std::uint64_t seed) {
  auto& core = p.core(core_idx);
  auto& kernel = p.kernel();
  auto& mem = p.memory();
  auto& sem = p.hwsem();
  const auto cid = sim::CoreId{static_cast<std::uint32_t>(core_idx)};
  Rng rng(seed);

  for (std::uint64_t i = 0; i < cfg.increments_per_core; ++i) {
    // Think time with jitter: interleavings vary with the seed.
    const Cycles think =
        cfg.work_cycles + rng.next_below(cfg.jitter_cycles + 1);
    co_await core.compute(think, "think");

    // Intrusive probe: a single-core debug stall right before the access.
    if (cfg.probe_stall_ps > 0 && core_idx == 0)
      co_await sim::delay(kernel, cfg.probe_stall_ps);

    if (cfg.use_semaphore) {
      // The fixed version: spin on hardware semaphore cell 0.
      while (!sem.try_acquire(0, cid))
        co_await core.compute(20, "spin");
    }

    // The racy read-modify-write: read, compute, write later.
    const std::uint64_t v = mem.read_u64(cid, counter);
    co_await core.compute(cfg.rmw_gap_cycles, "rmw");
    mem.write_u64(cid, counter, v + 1);

    if (cfg.use_semaphore) sem.release(0, cid);
  }
}

}  // namespace

sim::Addr racy_counter_addr(const sim::Platform& platform) {
  return platform.shared_base();  // counter lives at the base of shared mem
}

RacyCounterResult run_racy_counter(sim::Platform& platform,
                                   const RacyCounterConfig& cfg) {
  const sim::Addr counter = racy_counter_addr(platform);
  {
    const std::uint8_t zero[8] = {};
    platform.memory().poke(counter, zero);
  }
  sim::spawn(platform.kernel(),
             incrementer(platform, 0, cfg, counter, cfg.seed * 2 + 1));
  sim::spawn(platform.kernel(),
             incrementer(platform, 1, cfg, counter, cfg.seed * 2 + 2));
  platform.kernel().run();

  RacyCounterResult res;
  res.expected = 2 * cfg.increments_per_core;
  std::uint8_t buf[8] = {};
  platform.memory().peek(counter, buf);
  std::memcpy(&res.observed, buf, 8);
  return res;
}

namespace {

sim::Process masked_waiter(sim::Platform& p, MaskedIrqResult& out,
                           DurationPs run_for) {
  auto& kernel = p.kernel();
  auto& core = p.core(0);

  // The firmware bug: the timer IRQ is masked *before* the wait loop.
  p.irqc().set_masked(sim::kIrqTimer, true);
  p.irqc().set_handler(sim::kIrqTimer, [&](std::size_t line) {
    out.handler_ran = true;
    p.irqc().ack(line);
  });
  p.timer().start_oneshot(microseconds(50));

  // Poll the flag the handler would set; give up at the horizon.
  while (kernel.now() < run_for && !out.handler_ran)
    co_await core.compute(2'000, "poll_flag");

  // What only a virtual platform shows: the line is pending on the wire.
  out.irq_line_high = p.irqc().line_signal(sim::kIrqTimer).level();
}

}  // namespace

MaskedIrqResult run_masked_irq_bug(sim::Platform& platform,
                                   DurationPs run_for) {
  MaskedIrqResult out;
  sim::spawn(platform.kernel(), masked_waiter(platform, out, run_for));
  platform.kernel().run();
  return out;
}

}  // namespace rw::vpdebug
