// Trace export and inspection (Sec. VII).
//
// "The hardware and software tracing capabilities address another major
// problem of multi core software development — the ability to keep the
// overview during debugging. A history of function execution within the
// different processes, and their access to memories and peripherals, is
// of great help."
//
// Three consumers of the platform trace:
//   * function_history — per-core list of executed compute blocks,
//   * render_gantt     — ASCII timeline of all cores (the overview),
//   * export_vcd       — IEEE-1364 VCD dump of core-busy and IRQ wires,
//     loadable in any waveform viewer.
#pragma once

#include <string>
#include <vector>

#include "sim/platform.hpp"
#include "sim/trace.hpp"

namespace rw::vpdebug {

struct ExecutedBlock {
  std::string label;
  TimePs start = 0;
  TimePs end = 0;
};

/// All compute blocks executed on `core`, in time order (paired from the
/// kComputeStart/kComputeEnd events of the trace).
std::vector<ExecutedBlock> function_history(
    const std::vector<sim::TraceEvent>& trace, sim::CoreId core);

/// ASCII Gantt chart of core activity over [t0, t1], `width` columns.
/// Each core is one row; letters index into the legend of block labels.
std::string render_gantt(const std::vector<sim::TraceEvent>& trace,
                         std::size_t num_cores, TimePs t0, TimePs t1,
                         std::size_t width = 64);

/// Value-change-dump with one wire per core (busy) and per raised IRQ
/// line. Timescale 1 ps.
std::string export_vcd(const std::vector<sim::TraceEvent>& trace,
                       std::size_t num_cores);

}  // namespace rw::vpdebug
