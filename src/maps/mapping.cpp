#include "maps/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>

namespace rw::maps {

CommCost simple_comm_cost(DurationPs latency, double bytes_per_ps) {
  return [latency, bytes_per_ps](std::size_t src, std::size_t dst,
                                 std::uint64_t bytes) -> DurationPs {
    if (src == dst) return 0;
    if (bytes_per_ps <= 0) return latency;
    return latency +
           static_cast<DurationPs>(static_cast<double>(bytes) /
                                   bytes_per_ps);
  };
}

namespace {

DurationPs exec_time(const TaskNode& t, const PeDesc& pe) {
  return cycles_to_ps(t.cycles_on(pe.cls), pe.frequency);
}

/// Mean execution time across PEs honouring preferences (used for ranks).
double mean_exec(const TaskNode& t, const std::vector<PeDesc>& pes) {
  double sum = 0;
  int n = 0;
  for (const auto& pe : pes) {
    if (t.preferred_pe && pe.cls != *t.preferred_pe) continue;
    sum += static_cast<double>(exec_time(t, pe));
    ++n;
  }
  if (n == 0) {  // preference unsatisfiable: fall back to all PEs
    for (const auto& pe : pes) sum += static_cast<double>(exec_time(t, pe));
    n = static_cast<int>(pes.size());
  }
  return sum / std::max(1, n);
}

/// Upward ranks: rank(t) = mean_exec(t) + max over succ (mean_comm + rank).
std::vector<double> upward_ranks(const TaskGraph& g,
                                 const std::vector<PeDesc>& pes,
                                 const CommCost& comm) {
  const auto order = g.topological_order();
  if (order.empty())
    throw std::invalid_argument("task graph has a cycle; cannot schedule");
  std::vector<double> rank(g.tasks().size(), 0.0);
  // Mean communication cost approximated with PE pair (0, 1) when
  // available (uniform fabrics make this exact).
  auto mean_comm = [&](std::uint64_t bytes) {
    if (pes.size() < 2) return 0.0;
    return static_cast<double>(comm(0, 1, bytes));
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskNodeId t = *it;
    double best = 0;
    for (const auto& e : g.edges()) {
      if (e.src != t) continue;
      best = std::max(best, mean_comm(e.bytes) + rank[e.dst.index()]);
    }
    rank[t.index()] = mean_exec(g.task(t), pes) + best;
  }
  return rank;
}

struct ScheduleState {
  std::vector<TimePs> pe_free;
  std::vector<TimePs> task_finish;
  std::vector<std::size_t> task_pe;
  std::vector<ScheduleSlot> slots;
  TimePs makespan = 0;
};

/// Place `t` on `pe` as early as dependences and the PE allow.
void place(const TaskGraph& g, const std::vector<PeDesc>& pes,
           const CommCost& comm, ScheduleState& st, TaskNodeId t,
           std::size_t pe) {
  TimePs ready = 0;
  for (const auto& e : g.edges()) {
    if (e.dst != t) continue;
    const std::size_t src_pe = st.task_pe[e.src.index()];
    const TimePs avail =
        st.task_finish[e.src.index()] + comm(src_pe, pe, e.bytes);
    ready = std::max(ready, avail);
  }
  const TimePs start = std::max(ready, st.pe_free[pe]);
  const TimePs finish = start + exec_time(g.task(t), pes[pe]);
  st.pe_free[pe] = finish;
  st.task_finish[t.index()] = finish;
  st.task_pe[t.index()] = pe;
  st.slots.push_back(ScheduleSlot{t, pe, start, finish});
  st.makespan = std::max(st.makespan, finish);
}

std::vector<std::size_t> allowed_pes(const TaskNode& t,
                                     const std::vector<PeDesc>& pes) {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < pes.size(); ++p)
    if (!t.preferred_pe || pes[p].cls == *t.preferred_pe) out.push_back(p);
  if (out.empty())  // unsatisfiable preference: any PE may run it
    for (std::size_t p = 0; p < pes.size(); ++p) out.push_back(p);
  return out;
}

MappingResult finish_result(ScheduleState st) {
  MappingResult res;
  res.task_to_pe = std::move(st.task_pe);
  res.slots = std::move(st.slots);
  std::sort(res.slots.begin(), res.slots.end(),
            [](const ScheduleSlot& a, const ScheduleSlot& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });
  res.makespan = st.makespan;
  return res;
}

std::vector<TaskNodeId> rank_order(const TaskGraph& g,
                                   const std::vector<double>& rank) {
  // Topological order refined by descending upward rank (HEFT priority).
  auto order = g.topological_order();
  std::stable_sort(order.begin(), order.end(),
                   [&](TaskNodeId a, TaskNodeId b) {
                     return rank[a.index()] > rank[b.index()];
                   });
  // Re-establish precedence feasibility: stable sort by rank may violate
  // topological constraints only when a predecessor has lower rank, which
  // cannot happen (rank(pred) >= rank(succ) + exec > rank(succ)).
  return order;
}

}  // namespace

MappingResult heft_map(const TaskGraph& g, const std::vector<PeDesc>& pes,
                       const CommCost& comm) {
  if (pes.empty()) throw std::invalid_argument("no PEs to map onto");
  const auto rank = upward_ranks(g, pes, comm);
  ScheduleState st;
  st.pe_free.assign(pes.size(), 0);
  st.task_finish.assign(g.tasks().size(), 0);
  st.task_pe.assign(g.tasks().size(), 0);

  for (const TaskNodeId t : rank_order(g, rank)) {
    // Earliest-finish-time PE among allowed ones.
    std::size_t best_pe = 0;
    TimePs best_finish = std::numeric_limits<TimePs>::max();
    for (const std::size_t pe : allowed_pes(g.task(t), pes)) {
      // Tentative finish on this PE.
      TimePs ready = 0;
      for (const auto& e : g.edges()) {
        if (e.dst != t) continue;
        ready = std::max(ready, st.task_finish[e.src.index()] +
                                    comm(st.task_pe[e.src.index()], pe,
                                         e.bytes));
      }
      const TimePs start = std::max(ready, st.pe_free[pe]);
      const TimePs finish = start + exec_time(g.task(t), pes[pe]);
      if (finish < best_finish) {
        best_finish = finish;
        best_pe = pe;
      }
    }
    place(g, pes, comm, st, t, best_pe);
  }
  return finish_result(std::move(st));
}

TimePs evaluate_mapping(const TaskGraph& g, const std::vector<PeDesc>& pes,
                        const CommCost& comm,
                        const std::vector<std::size_t>& task_to_pe) {
  const auto rank = upward_ranks(g, pes, comm);
  ScheduleState st;
  st.pe_free.assign(pes.size(), 0);
  st.task_finish.assign(g.tasks().size(), 0);
  st.task_pe.assign(g.tasks().size(), 0);
  for (const TaskNodeId t : rank_order(g, rank))
    place(g, pes, comm, st, t, task_to_pe[t.index()]);
  return st.makespan;
}

MappingResult anneal_map(const TaskGraph& g, const std::vector<PeDesc>& pes,
                         const CommCost& comm, std::uint64_t seed,
                         int iterations) {
  MappingResult cur = heft_map(g, pes, comm);
  std::vector<std::size_t> best_assign = cur.task_to_pe;
  TimePs best_cost = cur.makespan;
  std::vector<std::size_t> assign = best_assign;
  TimePs cost = best_cost;

  Rng rng(seed);
  double temp = static_cast<double>(best_cost) * 0.1 + 1.0;
  const double cooling = 0.995;

  for (int i = 0; i < iterations; ++i) {
    // Move: reassign one random task to a random allowed PE.
    const std::size_t t = rng.next_below(g.tasks().size());
    const auto allowed =
        allowed_pes(g.tasks()[t], pes);
    const std::size_t pe = allowed[rng.next_below(allowed.size())];
    if (assign[t] == pe) continue;
    const std::size_t old = assign[t];
    assign[t] = pe;
    const TimePs next_cost = evaluate_mapping(g, pes, comm, assign);
    const double delta =
        static_cast<double>(next_cost) - static_cast<double>(cost);
    if (delta <= 0 || rng.next_double() < std::exp(-delta / temp)) {
      cost = next_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best_assign = assign;
      }
    } else {
      assign[t] = old;
    }
    temp *= cooling;
  }

  // Rebuild the full schedule for the best assignment found.
  const auto rank = upward_ranks(g, pes, comm);
  ScheduleState st;
  st.pe_free.assign(pes.size(), 0);
  st.task_finish.assign(g.tasks().size(), 0);
  st.task_pe.assign(g.tasks().size(), 0);
  for (const TaskNodeId t : rank_order(g, rank))
    place(g, pes, comm, st, t, best_assign[t.index()]);
  return finish_result(std::move(st));
}

MappingResult dynamic_schedule(const TaskGraph& g,
                               const std::vector<PeDesc>& pes,
                               const CommCost& comm) {
  // Run-time dispatcher: at each step pick the highest-priority READY task
  // (all preds finished) and the PE where it can start earliest.
  if (pes.empty()) throw std::invalid_argument("no PEs");
  const auto rank = upward_ranks(g, pes, comm);
  ScheduleState st;
  st.pe_free.assign(pes.size(), 0);
  st.task_finish.assign(g.tasks().size(), 0);
  st.task_pe.assign(g.tasks().size(), 0);

  const std::size_t n = g.tasks().size();
  std::vector<bool> done(n, false), scheduled(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    // Ready set under current completion state.
    TaskNodeId pick{};
    double pick_rank = -1;
    for (std::size_t t = 0; t < n; ++t) {
      if (scheduled[t]) continue;
      bool ready = true;
      for (const auto& e : g.edges())
        if (e.dst.index() == t && !scheduled[e.src.index()]) ready = false;
      if (!ready) continue;
      if (rank[t] > pick_rank) {
        pick_rank = rank[t];
        pick = TaskNodeId{static_cast<std::uint32_t>(t)};
      }
    }
    // Earliest-start PE (greedy run-time decision, no lookahead).
    std::size_t best_pe = 0;
    TimePs best_start = std::numeric_limits<TimePs>::max();
    for (const std::size_t pe : allowed_pes(g.task(pick), pes)) {
      TimePs ready = 0;
      for (const auto& e : g.edges()) {
        if (e.dst != pick) continue;
        ready = std::max(ready, st.task_finish[e.src.index()] +
                                    comm(st.task_pe[e.src.index()], pe,
                                         e.bytes));
      }
      const TimePs start = std::max(ready, st.pe_free[pe]);
      if (start < best_start) {
        best_start = start;
        best_pe = pe;
      }
    }
    place(g, pes, comm, st, pick, best_pe);
    scheduled[pick.index()] = true;
  }
  return finish_result(std::move(st));
}

TimePs best_sequential_time(const TaskGraph& g,
                            const std::vector<PeDesc>& pes) {
  TimePs best = std::numeric_limits<TimePs>::max();
  for (const auto& pe : pes) {
    TimePs total = 0;
    for (const auto& t : g.tasks()) total += exec_time(t, pe);
    best = std::min(best, total);
  }
  return best;
}

TimePs execute_on_platform(const TaskGraph& g,
                           const std::vector<std::size_t>& task_to_pe,
                           sim::Platform& platform) {
  const auto order = g.topological_order();
  if (order.empty()) throw std::invalid_argument("cyclic task graph");
  std::vector<TimePs> data_ready(g.tasks().size(), 0);
  std::vector<TimePs> finish(g.tasks().size(), 0);
  TimePs makespan = 0;

  for (const TaskNodeId t : order) {
    const std::size_t pe = task_to_pe.at(t.index()) % platform.core_count();
    auto& core = platform.core(pe);
    TimePs ready = 0;
    for (const auto& e : g.edges()) {
      if (e.dst != t) continue;
      const std::size_t src_pe =
          task_to_pe.at(e.src.index()) % platform.core_count();
      TimePs avail = finish[e.src.index()];
      if (src_pe != pe) {
        // Real transfer through the platform interconnect (contended).
        avail = platform.interconnect()
                    .reserve_transfer(sim::CoreId{static_cast<std::uint32_t>(
                                          src_pe)},
                                      sim::CoreId{static_cast<std::uint32_t>(
                                          pe)},
                                      e.bytes, avail)
                    .second;
      }
      ready = std::max(ready, avail);
    }
    data_ready[t.index()] = ready;
    const auto [start, end] =
        core.reserve_from(ready, g.task(t).cycles_on(core.pe_class()));
    finish[t.index()] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

TimePs execute_on_platform_traced(const TaskGraph& g,
                                  const std::vector<std::size_t>& task_to_pe,
                                  sim::Platform& platform) {
  const auto order = g.topological_order();
  if (order.empty()) throw std::invalid_argument("cyclic task graph");
  std::vector<TimePs> finish(g.tasks().size(), 0);
  TimePs makespan = 0;
  auto& tracer = platform.tracer();

  for (const TaskNodeId t : order) {
    const std::size_t pe = task_to_pe.at(t.index()) % platform.core_count();
    auto& core = platform.core(pe);
    TimePs ready = 0;
    for (const auto& e : g.edges()) {
      if (e.dst != t) continue;
      const std::size_t src_pe =
          task_to_pe.at(e.src.index()) % platform.core_count();
      const TimePs avail = finish[e.src.index()];
      TimePs xstart = avail;
      TimePs xfinish = avail;
      if (src_pe != pe) {
        std::tie(xstart, xfinish) =
            platform.interconnect().reserve_transfer(
                sim::CoreId{static_cast<std::uint32_t>(src_pe)},
                sim::CoreId{static_cast<std::uint32_t>(pe)}, e.bytes, avail);
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.src.value()) << 32) | e.dst.value();
      const std::string label =
          g.task(e.src).name + ">" + g.task(e.dst).name;
      tracer.record(xstart, sim::TraceKind::kMsgSend,
                    sim::CoreId{static_cast<std::uint32_t>(src_pe)}, label,
                    key, e.bytes);
      tracer.record(xfinish, sim::TraceKind::kMsgRecv,
                    sim::CoreId{static_cast<std::uint32_t>(pe)}, label, key,
                    e.bytes);
      ready = std::max(ready, xfinish);
    }
    const Cycles cyc = g.task(t).cycles_on(core.pe_class());
    const auto [start, end] = core.reserve_from(ready, cyc);
    tracer.record(start, sim::TraceKind::kTaskStart, core.id(),
                  g.task(t).name, t.value(), cyc);
    tracer.record(end, sim::TraceKind::kTaskEnd, core.id(), g.task(t).name,
                  t.value(), g.task(t).ref_cycles);
    finish[t.index()] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

MappingResult replan_survivors(const TaskGraph& g,
                               const std::vector<PeDesc>& pes,
                               const CommCost& comm, std::size_t dead_pe) {
  if (dead_pe >= pes.size())
    throw std::invalid_argument("replan_survivors: no such PE");
  if (pes.size() <= 1)
    throw std::invalid_argument("replan_survivors: no survivors");
  std::vector<PeDesc> sub;
  std::vector<std::size_t> orig;  // survivor index -> original PE index
  for (std::size_t p = 0; p < pes.size(); ++p) {
    if (p == dead_pe) continue;
    sub.push_back(pes[p]);
    orig.push_back(p);
  }
  MappingResult r = heft_map(
      g, sub,
      [&](std::size_t a, std::size_t b, std::uint64_t bytes) -> DurationPs {
        return comm(orig[a], orig[b], bytes);
      });
  for (auto& pe : r.task_to_pe) pe = orig[pe];
  for (auto& s : r.slots) s.pe = orig[s.pe];
  return r;
}

DegradationReport remap_on_failure(const TaskGraph& g,
                                   const std::vector<PeDesc>& pes,
                                   const CommCost& comm,
                                   const std::vector<std::size_t>& task_to_pe,
                                   std::size_t dead_pe) {
  if (dead_pe >= pes.size())
    throw std::invalid_argument("remap_on_failure: no such PE");
  DegradationReport rep;
  rep.dead_pe = dead_pe;
  rep.healthy_makespan = evaluate_mapping(g, pes, comm, task_to_pe);

  // Greedy online remap: orphans re-homed one at a time in HEFT priority
  // order, each to the survivor that minimizes the resulting makespan
  // given everything decided so far. Surviving assignments never move.
  auto assign = task_to_pe;
  const auto rank = upward_ranks(g, pes, comm);
  for (const TaskNodeId t : rank_order(g, rank)) {
    if (assign[t.index()] != dead_pe) continue;
    ++rep.moved_tasks;
    auto allowed = allowed_pes(g.task(t), pes);
    std::erase(allowed, dead_pe);
    if (allowed.empty())  // preference only satisfiable on the dead PE
      for (std::size_t p = 0; p < pes.size(); ++p)
        if (p != dead_pe) allowed.push_back(p);
    std::size_t best_pe = allowed.front();
    TimePs best_cost = std::numeric_limits<TimePs>::max();
    for (const std::size_t pe : allowed) {
      assign[t.index()] = pe;
      const TimePs cost = evaluate_mapping(g, pes, comm, assign);
      if (cost < best_cost) {
        best_cost = cost;
        best_pe = pe;
      }
    }
    assign[t.index()] = best_pe;
  }
  rep.remap_task_to_pe = assign;
  rep.remap_makespan = evaluate_mapping(g, pes, comm, assign);

  MappingResult oracle = replan_survivors(g, pes, comm, dead_pe);
  rep.oracle_task_to_pe = std::move(oracle.task_to_pe);
  rep.oracle_makespan = oracle.makespan;
  return rep;
}

}  // namespace rw::maps
