// OSIP — the task-dispatch ASIP cost model (Sec. IV).
//
// "in the future MAPS will also support a dedicated task dispatching ASIP
// (OSIP) in order to enable higher PE utilization via more fine-grained
// tasks and low context switching overhead. Early evaluation case studies
// exhibited great potential of the OSIP approach in lowering the task-
// switching overhead, compared to an additional RISC performing scheduling
// in a typical MPSoC environment."
//
// The model dispatches a bag of `num_tasks` independent tasks of a given
// grain onto `num_pes` workers through a scheduler that costs
// `dispatch_cycles` per decision and runs at `scheduler_frequency`. A RISC
// software scheduler both decides slowly and becomes the serialization
// point; an OSIP decides in a handful of cycles. The experiment sweeps the
// task grain: the finer the grain, the earlier the RISC scheduler's
// dispatch rate saturates PE utilization.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace rw::maps {

struct DispatcherModel {
  const char* name = "scheduler";
  Cycles dispatch_cycles = 1000;  // per scheduling decision
  HertzT frequency = mhz(400);
  /// Per-dispatch time the *worker PE* spends entering/leaving a task
  /// (register save/restore etc.), in cycles at the worker clock.
  Cycles pe_switch_cycles = 200;
};

/// A software scheduler on a spare RISC core: slow decisions, heavyweight
/// context switches.
DispatcherModel risc_dispatcher();

/// The OSIP scheduling ASIP: decisions in tens of cycles, hardware-assisted
/// context switch on the worker.
DispatcherModel osip_dispatcher();

struct DispatchResult {
  TimePs makespan = 0;
  double pe_utilization = 0;   // useful work / (PEs * makespan)
  double dispatch_overhead = 0;  // scheduler+switch time fraction
  std::uint64_t dispatches = 0;
};

/// Dispatch `num_tasks` tasks of `grain_cycles` each (at `pe_frequency`)
/// onto `num_pes` workers through `model`. The scheduler is a single
/// serial resource: decisions are pipelined with execution but at most one
/// decision is in flight at a time.
DispatchResult simulate_dispatch(std::uint64_t num_tasks,
                                 Cycles grain_cycles, std::size_t num_pes,
                                 HertzT pe_frequency,
                                 const DispatcherModel& model);

}  // namespace rw::maps
