#include "maps/workloads.hpp"

#include "common/strings.hpp"

namespace rw::maps {

SeqProgram jpeg_encoder_program(std::uint32_t blocks) {
  SeqProgram p;
  const VarId image = p.add_var("image", 64 * blocks * 3);
  const VarId bitstream = p.add_var("bitstream", 4096);

  // Per-block pipeline: each stage reads the previous stage's buffer.
  std::vector<VarId> zz(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const VarId rgb = p.add_var(strformat("rgb%u", b), 192);
    const VarId ycc = p.add_var(strformat("ycc%u", b), 192);
    const VarId dct = p.add_var(strformat("dct%u", b), 256);
    const VarId qnt = p.add_var(strformat("qnt%u", b), 256);
    zz[b] = p.add_var(strformat("zz%u", b), 128);

    p.add_stmt(strformat("load%u", b), 800, {image}, {rgb},
               StmtKind::kGeneric);
    p.add_stmt(strformat("ccvt%u", b), 2'500, {rgb}, {ycc},
               StmtKind::kDspKernel);
    p.add_stmt(strformat("dct%u", b), 9'000, {ycc}, {dct},
               StmtKind::kDspKernel);
    p.add_stmt(strformat("quant%u", b), 3'000, {dct}, {qnt},
               StmtKind::kDspKernel);
    p.add_stmt(strformat("zigzag%u", b), 1'200, {qnt}, {zz[b]},
               StmtKind::kGeneric);
  }
  // Serial entropy coder: consumes every block's zigzag output in order,
  // threading the bitstream state through (the Amdahl tail).
  for (std::uint32_t b = 0; b < blocks; ++b) {
    p.add_stmt(strformat("huff%u", b), 2'000, {zz[b], bitstream},
               {bitstream}, StmtKind::kControl);
  }
  return p;
}

TaskGraph h264_encoder_taskgraph(std::uint32_t slices) {
  TaskGraph g;
  g.name = "h264enc";
  const auto input = g.add_task("slice_reader", 20'000);
  std::vector<TaskNodeId> deblocks;
  for (std::uint32_t s = 0; s < slices; ++s) {
    const auto me = g.add_task(strformat("motion_est%u", s), 180'000);
    const auto intra = g.add_task(strformat("intra_pred%u", s), 60'000);
    const auto tq = g.add_task(strformat("transform%u", s), 90'000);
    const auto db = g.add_task(strformat("deblock%u", s), 45'000);
    g.task(me).factor_dsp = 0.35;
    g.task(tq).factor_dsp = 0.3;
    g.task(intra).factor_dsp = 0.6;
    g.task(db).factor_dsp = 0.5;
    g.add_edge(input, me, 16 * 1024);
    g.add_edge(input, intra, 8 * 1024);
    g.add_edge(me, tq, 12 * 1024);
    g.add_edge(intra, tq, 6 * 1024);
    g.add_edge(tq, db, 12 * 1024);
    deblocks.push_back(db);
  }
  const auto entropy = g.add_task("entropy_cabac", 120'000);
  g.task(entropy).factor_dsp = 1.6;  // control-heavy: DSP is worse
  for (const auto db : deblocks) g.add_edge(db, entropy, 10 * 1024);
  return g;
}

SeqProgram mixed_kind_program(std::uint32_t kernels) {
  SeqProgram p;
  const VarId cfg = p.add_var("cfg", 64);
  const VarId state = p.add_var("state", 64);
  p.add_stmt("parse_cfg", 3'000, {cfg}, {state}, StmtKind::kControl);
  std::vector<VarId> outs;
  for (std::uint32_t k = 0; k < kernels; ++k) {
    const VarId in = p.add_var(strformat("buf_in%u", k), 512);
    const VarId out = p.add_var(strformat("buf_out%u", k), 512);
    p.add_stmt(strformat("fill%u", k), 1'000, {state}, {in},
               StmtKind::kGeneric);
    p.add_stmt(strformat("fir%u", k), 12'000, {in}, {out},
               StmtKind::kDspKernel);
    outs.push_back(out);
  }
  const VarId result = p.add_var("result", 256);
  std::vector<VarId> reads = outs;
  p.add_stmt("combine", 2'500, reads, {result}, StmtKind::kControl);
  return p;
}

TaskGraph pipeline_taskgraph(const std::string& name, Cycles stage_cycles,
                             DurationPs period, sched::Criticality crit) {
  TaskGraph g;
  g.name = name;
  const auto a = g.add_task(name + "_rx", stage_cycles / 2);
  const auto b = g.add_task(name + "_proc", stage_cycles);
  const auto c = g.add_task(name + "_tx", stage_cycles / 2);
  g.add_edge(a, b, 512);
  g.add_edge(b, c, 512);
  g.annotation.period = period;
  g.annotation.criticality = crit;
  return g;
}

}  // namespace rw::maps
