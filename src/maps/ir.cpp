#include "maps/ir.hpp"

#include <algorithm>

namespace rw::maps {

double pe_cost_factor(StmtKind kind, sim::PeClass cls) {
  switch (cls) {
    case sim::PeClass::kRisc:
      return 1.0;
    case sim::PeClass::kDsp:
      switch (kind) {
        case StmtKind::kDspKernel: return 0.25;
        case StmtKind::kControl: return 1.8;
        case StmtKind::kGeneric: return 1.1;
      }
      break;
    case sim::PeClass::kVliw:
      switch (kind) {
        case StmtKind::kDspKernel: return 0.4;
        case StmtKind::kControl: return 1.3;
        case StmtKind::kGeneric: return 0.7;
      }
      break;
    case sim::PeClass::kAsip:
      return kind == StmtKind::kDspKernel ? 0.2 : 1.5;
    case sim::PeClass::kAccel:
      return kind == StmtKind::kDspKernel ? 0.1 : 4.0;
  }
  return 1.0;
}

VarId SeqProgram::add_var(std::string name, std::uint32_t bytes) {
  Var v;
  v.id = VarId{static_cast<std::uint32_t>(vars_.size())};
  v.name = std::move(name);
  v.bytes = bytes;
  vars_.push_back(std::move(v));
  return vars_.back().id;
}

StmtId SeqProgram::add_stmt(std::string name, Cycles cycles,
                            std::vector<VarId> reads,
                            std::vector<VarId> writes, StmtKind kind) {
  Stmt s;
  s.id = StmtId{static_cast<std::uint32_t>(stmts_.size())};
  s.name = std::move(name);
  s.cycles = cycles;
  s.kind = kind;
  s.reads = std::move(reads);
  s.writes = std::move(writes);
  stmts_.push_back(std::move(s));
  return stmts_.back().id;
}

std::vector<Dep> SeqProgram::dependences() const {
  std::vector<Dep> deps;
  // last_writer[v] / readers_since_write[v] track the classic def/use
  // chains in program order.
  std::vector<StmtId> last_writer(vars_.size());
  std::vector<std::vector<StmtId>> readers(vars_.size());

  for (const auto& s : stmts_) {
    for (const VarId v : s.reads) {
      if (last_writer[v.index()].is_valid()) {
        deps.push_back(Dep{last_writer[v.index()], s.id, DepKind::kFlow, v,
                           vars_[v.index()].bytes});
      }
      readers[v.index()].push_back(s.id);
    }
    for (const VarId v : s.writes) {
      // Anti deps from every reader since the last write.
      for (const StmtId r : readers[v.index()]) {
        if (r != s.id)
          deps.push_back(Dep{r, s.id, DepKind::kAnti, v, 0});
      }
      // Output dep from the previous writer.
      if (last_writer[v.index()].is_valid() &&
          last_writer[v.index()] != s.id) {
        deps.push_back(
            Dep{last_writer[v.index()], s.id, DepKind::kOutput, v, 0});
      }
      last_writer[v.index()] = s.id;
      readers[v.index()].clear();
    }
  }
  return deps;
}

Cycles SeqProgram::total_cycles() const {
  Cycles t = 0;
  for (const auto& s : stmts_) t += s.cycles;
  return t;
}

Cycles SeqProgram::critical_path() const {
  // Longest path over flow deps; statements are already in program order,
  // and deps always point forward, so one pass suffices.
  std::vector<Cycles> finish(stmts_.size(), 0);
  std::vector<std::vector<std::pair<std::size_t, Cycles>>> preds(
      stmts_.size());
  for (const auto& d : dependences()) {
    if (d.kind != DepKind::kFlow) continue;
    preds[d.dst.index()].emplace_back(d.src.index(), 0);
  }
  Cycles best = 0;
  for (std::size_t i = 0; i < stmts_.size(); ++i) {
    Cycles start = 0;
    for (const auto& [p, _] : preds[i]) start = std::max(start, finish[p]);
    finish[i] = start + stmts_[i].cycles;
    best = std::max(best, finish[i]);
  }
  return best;
}

double SeqProgram::ideal_speedup() const {
  const Cycles cp = critical_path();
  if (cp == 0) return 1.0;
  return static_cast<double>(total_cycles()) / static_cast<double>(cp);
}

}  // namespace rw::maps
