// Weighted statement IR — the "microprofile" MAPS partitions.
//
// Sec. IV: "MAPS uses advanced dataflow analysis to extract the available
// parallelism from the sequential codes and to form a set of fine-grained
// task graphs". The front end here is a sequential program given as a list
// of statements with cycle weights and def/use sets (what a profiling +
// dataflow-analysis pass produces from C source); dependences are derived
// from the def/use sets exactly as a compiler would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/core.hpp"

namespace rw::maps {

struct VarTag {};
using VarId = Id<VarTag>;
struct StmtTag {};
using StmtId = Id<StmtTag>;

/// Statement workload flavour: determines how well each PE class runs it.
enum class StmtKind : std::uint8_t { kGeneric, kControl, kDspKernel };

/// Cycle-count multiplier for running a statement kind on a PE class
/// (relative to a generic RISC). DSP kernels run 4x faster on a DSP;
/// control code runs *slower* there.
double pe_cost_factor(StmtKind kind, sim::PeClass cls);

struct Var {
  VarId id{};
  std::string name;
  std::uint32_t bytes = 4;  // communication volume when crossing tasks
};

struct Stmt {
  StmtId id{};
  std::string name;
  Cycles cycles = 0;  // profiled weight on the reference RISC
  StmtKind kind = StmtKind::kGeneric;
  std::vector<VarId> reads;
  std::vector<VarId> writes;
};

enum class DepKind : std::uint8_t { kFlow, kAnti, kOutput };

struct Dep {
  StmtId src{};
  StmtId dst{};
  DepKind kind = DepKind::kFlow;
  VarId var{};
  std::uint32_t bytes = 0;
};

class SeqProgram {
 public:
  VarId add_var(std::string name, std::uint32_t bytes = 4);
  StmtId add_stmt(std::string name, Cycles cycles, std::vector<VarId> reads,
                  std::vector<VarId> writes,
                  StmtKind kind = StmtKind::kGeneric);

  [[nodiscard]] const std::vector<Var>& vars() const { return vars_; }
  [[nodiscard]] const std::vector<Stmt>& stmts() const { return stmts_; }
  [[nodiscard]] const Stmt& stmt(StmtId s) const {
    return stmts_.at(s.index());
  }
  [[nodiscard]] const Var& var(VarId v) const { return vars_.at(v.index()); }

  /// Compute all data dependences between statements, in program order
  /// (src earlier than dst). Flow (RAW) deps carry the variable size as
  /// communication volume; anti/output deps carry zero bytes (they only
  /// constrain ordering and disappear after renaming/privatization).
  [[nodiscard]] std::vector<Dep> dependences() const;

  /// Total sequential work.
  [[nodiscard]] Cycles total_cycles() const;

  /// Length of the longest flow-dependence chain — the lower bound on any
  /// parallel execution (ideal span). Ignores anti/output deps, which a
  /// parallelizing tool removes by privatization.
  [[nodiscard]] Cycles critical_path() const;

  /// Ideal speedup = total / span.
  [[nodiscard]] double ideal_speedup() const;

 private:
  std::vector<Var> vars_;
  std::vector<Stmt> stmts_;
};

}  // namespace rw::maps
