// Task graphs — the unit MAPS maps onto the platform.
//
// Tasks carry per-PE-class costs, real-time annotations (the "lightweight
// C extensions" of Sec. IV: latency, period, preferred PE types) and data
// edges with communication volume. Task graphs come out of the partitioner
// (from sequential code) or are written directly (pre-parallelized
// processes).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sched/task.hpp"
#include "sim/core.hpp"

namespace rw::maps {

struct TaskNodeTag {};
using TaskNodeId = Id<TaskNodeTag>;

struct TaskNode {
  TaskNodeId id{};
  std::string name;
  Cycles ref_cycles = 0;  // cost on the reference RISC
  // Per-class cost multipliers are aggregated at partition time; cost on a
  // PE class = ref_cycles * factor.
  double factor_risc = 1.0;
  double factor_dsp = 1.0;
  double factor_vliw = 1.0;
  double factor_asip = 1.0;
  double factor_accel = 1.0;
  std::optional<sim::PeClass> preferred_pe;  // annotation

  [[nodiscard]] double factor(sim::PeClass cls) const {
    switch (cls) {
      case sim::PeClass::kRisc: return factor_risc;
      case sim::PeClass::kDsp: return factor_dsp;
      case sim::PeClass::kVliw: return factor_vliw;
      case sim::PeClass::kAsip: return factor_asip;
      case sim::PeClass::kAccel: return factor_accel;
    }
    return 1.0;
  }
  [[nodiscard]] Cycles cycles_on(sim::PeClass cls) const {
    return static_cast<Cycles>(static_cast<double>(ref_cycles) *
                                   factor(cls) +
                               0.5);
  }
};

struct TaskEdge {
  TaskNodeId src{};
  TaskNodeId dst{};
  std::uint64_t bytes = 0;
};

/// Real-time annotations for the whole graph (one application).
struct RtAnnotation {
  DurationPs period = 0;    // 0 = run-to-completion job
  DurationPs deadline = 0;  // end-to-end latency budget; 0 = none
  sched::Criticality criticality = sched::Criticality::kBestEffort;
};

class TaskGraph {
 public:
  TaskNodeId add_task(std::string name, Cycles ref_cycles);
  void add_edge(TaskNodeId src, TaskNodeId dst, std::uint64_t bytes);

  [[nodiscard]] const std::vector<TaskNode>& tasks() const { return tasks_; }
  [[nodiscard]] std::vector<TaskNode>& tasks() { return tasks_; }
  [[nodiscard]] const std::vector<TaskEdge>& edges() const { return edges_; }
  [[nodiscard]] const TaskNode& task(TaskNodeId t) const {
    return tasks_.at(t.index());
  }
  [[nodiscard]] TaskNode& task(TaskNodeId t) { return tasks_.at(t.index()); }

  [[nodiscard]] std::vector<TaskNodeId> predecessors(TaskNodeId t) const;
  [[nodiscard]] std::vector<TaskNodeId> successors(TaskNodeId t) const;

  /// Topological order; empty when the graph has a cycle.
  [[nodiscard]] std::vector<TaskNodeId> topological_order() const;
  [[nodiscard]] bool is_acyclic() const {
    return topological_order().size() == tasks_.size();
  }

  [[nodiscard]] Cycles total_ref_cycles() const;
  /// Critical path in reference cycles (computation only).
  [[nodiscard]] Cycles critical_path_cycles() const;

  RtAnnotation annotation;
  std::string name = "app";

 private:
  std::vector<TaskNode> tasks_;
  std::vector<TaskEdge> edges_;
};

}  // namespace rw::maps
