// Multi-application mapping and simulation (the MVP role, Sec. IV).
//
// "MAPS is thus inspired by a typical problem setting of SW development
// for wireless multimedia terminals, where multiple applications and
// radio standards can be activated simultaneously and partially compete
// for the same resources. ... Hard real-time applications are scheduled
// statically, while soft and non-real-time applications are scheduled
// dynamically according to their priority in best effort manner. The
// resulting mapping can be exercised and refined with a fast, high-level
// ... simulation environment (MAPS Virtual Platform, MVP), which has been
// designed to evaluate different software settings specifically in a
// multi-application scenario."
//
// A scenario holds several task graphs with RT annotations. Hard-RT apps
// get a static schedule computed at design time (their slots repeat every
// period and always win the PE); soft/best-effort apps release jobs
// periodically too, but their tasks are dispatched dynamically, by
// priority, into whatever gaps remain.
#pragma once

#include <string>
#include <vector>

#include "maps/mapping.hpp"
#include "maps/taskgraph.hpp"

namespace rw::maps {

struct MultiAppResult {
  struct PerApp {
    std::string name;
    sched::Criticality criticality{};
    std::uint64_t jobs_released = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t deadline_misses = 0;
    DurationPs worst_latency = 0;   // release -> graph completion
    double mean_latency = 0;        // ps
  };
  std::vector<PerApp> apps;
  double pe_utilization = 0;

  [[nodiscard]] std::uint64_t hard_misses() const {
    std::uint64_t n = 0;
    for (const auto& a : apps)
      if (a.criticality == sched::Criticality::kHard)
        n += a.deadline_misses;
    return n;
  }
};

struct MultiAppConfig {
  std::vector<PeDesc> pes;
  CommCost comm;
  DurationPs horizon = 0;  // 0 = one hyper-ish window (16x longest period)
};

/// Simulate all apps sharing the PEs. Hard-RT graphs are laid out
/// statically with HEFT at design time and their reservations are
/// inviolable; soft/best-effort jobs fill the gaps dynamically in
/// priority order (soft before best-effort, then earlier release first).
/// Every app's `annotation.period` must be set; deadline defaults to the
/// period. Deterministic.
MultiAppResult simulate_multiapp(const std::vector<TaskGraph>& apps,
                                 const MultiAppConfig& cfg);

}  // namespace rw::maps
