#include "maps/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace rw::maps {

double PartitionResult::bound_speedup(std::size_t pes) const {
  if (total_cycles == 0 || pes == 0) return 1.0;
  Cycles max_task = 0;
  for (const auto& t : graph.tasks())
    max_task = std::max(max_task, t.ref_cycles);
  const double lower = std::max<double>(
      {static_cast<double>(critical_path),
       static_cast<double>(total_cycles) / static_cast<double>(pes),
       static_cast<double>(max_task)});
  return static_cast<double>(total_cycles) / lower;
}

namespace {

/// Merge strongly connected components of the cluster digraph so the task
/// graph is acyclic (iterative Tarjan).
std::vector<std::size_t> condense_sccs(
    std::size_t n, const std::map<std::pair<std::size_t, std::size_t>,
                                  std::uint64_t>& edges) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [key, _] : edges) adj[key.first].push_back(key.second);

  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> comp(n, SIZE_MAX);
  int next_index = 0;
  std::size_t comp_count = 0;

  // Iterative Tarjan with an explicit frame stack.
  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          // Pop one SCC.
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = comp_count;
            if (w == f.v) break;
          }
          ++comp_count;
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  return comp;
}

PartitionResult build_result(const SeqProgram& prog,
                             std::vector<std::size_t> stmt_cluster,
                             std::size_t cluster_count) {
  // Condense any cycles among clusters (anti/output deps are ignored for
  // cycle formation too — they are removed by privatization — but flow
  // deps can still form cycles through bad placement).
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> flow_edges;
  for (const auto& d : prog.dependences()) {
    if (d.kind != DepKind::kFlow) continue;
    const std::size_t a = stmt_cluster[d.src.index()];
    const std::size_t b = stmt_cluster[d.dst.index()];
    if (a != b) flow_edges[{a, b}] += d.bytes;
  }
  const auto comp = condense_sccs(cluster_count, flow_edges);

  // Renumber components densely in order of first statement, so task
  // numbering is stable and meaningful.
  std::vector<std::size_t> dense(cluster_count, SIZE_MAX);
  std::size_t next_dense = 0;
  PartitionResult res;
  std::vector<std::size_t> final_cluster(stmt_cluster.size());
  for (std::size_t s = 0; s < stmt_cluster.size(); ++s) {
    const std::size_t c = comp[stmt_cluster[s]];
    if (dense[c] == SIZE_MAX) dense[c] = next_dense++;
    final_cluster[s] = dense[c];
  }

  // Build tasks: aggregate cycles and a cost factor blended by the cycle
  // weight of each statement kind.
  struct Agg {
    Cycles cycles = 0;
    double weighted_dsp = 0, weighted_vliw = 0, weighted_asip = 0,
           weighted_accel = 0;
  };
  std::vector<Agg> agg(next_dense);
  for (std::size_t s = 0; s < final_cluster.size(); ++s) {
    const Stmt& st = prog.stmts()[s];
    Agg& a = agg[final_cluster[s]];
    a.cycles += st.cycles;
    const double w = static_cast<double>(st.cycles);
    a.weighted_dsp += w * pe_cost_factor(st.kind, sim::PeClass::kDsp);
    a.weighted_vliw += w * pe_cost_factor(st.kind, sim::PeClass::kVliw);
    a.weighted_asip += w * pe_cost_factor(st.kind, sim::PeClass::kAsip);
    a.weighted_accel += w * pe_cost_factor(st.kind, sim::PeClass::kAccel);
  }
  for (std::size_t c = 0; c < next_dense; ++c) {
    const auto id = res.graph.add_task("task" + std::to_string(c),
                                       agg[c].cycles);
    auto& t = res.graph.task(id);
    const double w = std::max(1.0, static_cast<double>(agg[c].cycles));
    t.factor_dsp = agg[c].weighted_dsp / w;
    t.factor_vliw = agg[c].weighted_vliw / w;
    t.factor_asip = agg[c].weighted_asip / w;
    t.factor_accel = agg[c].weighted_accel / w;
  }

  // Task edges: aggregate crossing flow-dep bytes.
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> task_edges;
  for (const auto& d : prog.dependences()) {
    if (d.kind != DepKind::kFlow) continue;
    const std::size_t a = final_cluster[d.src.index()];
    const std::size_t b = final_cluster[d.dst.index()];
    if (a != b) task_edges[{a, b}] += d.bytes;
  }
  for (const auto& [key, bytes] : task_edges) {
    res.graph.add_edge(TaskNodeId{static_cast<std::uint32_t>(key.first)},
                       TaskNodeId{static_cast<std::uint32_t>(key.second)},
                       bytes);
    res.cut_bytes += bytes;
  }

  res.stmt_to_task = std::move(final_cluster);
  res.total_cycles = prog.total_cycles();
  res.critical_path = prog.critical_path();
  return res;
}

}  // namespace

PartitionResult sequential_partition(const SeqProgram& prog) {
  return build_result(prog,
                      std::vector<std::size_t>(prog.stmts().size(), 0), 1);
}

PartitionResult partition_program(const SeqProgram& prog,
                                  const PartitionConfig& cfg) {
  const std::size_t k = std::max<std::size_t>(1, cfg.max_tasks);
  const std::size_t n = prog.stmts().size();
  if (n == 0 || k == 1) return sequential_partition(prog);

  // Precompute, per statement, the flow-dep bytes from each predecessor.
  std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>> preds(n);
  for (const auto& d : prog.dependences()) {
    if (d.kind != DepKind::kFlow) continue;
    preds[d.dst.index()].emplace_back(d.src.index(), d.bytes);
  }

  std::vector<std::size_t> cluster(n, SIZE_MAX);
  std::vector<double> load(k, 0.0);
  // Communication is priced at ~16 cycles per byte crossing a cut (a
  // typical shared-memory copy cost), scaled by the config weight.
  const double cycles_per_cut_byte = 16.0 * cfg.comm_weight;

  // Cluster-level reachability closure: reach[a][b] = a can reach b in the
  // cluster digraph. Placing a statement into cluster c adds edges p -> c
  // from every predecessor cluster p; the placement is forbidden when c
  // already reaches p (it would close a cycle and collapse under SCC
  // condensation). This keeps the emitted task graph genuinely parallel.
  std::vector<std::vector<bool>> reach(k, std::vector<bool>(k, false));
  for (std::size_t c = 0; c < k; ++c) reach[c][c] = true;

  auto creates_cycle = [&](std::size_t c,
                           const std::vector<std::uint64_t>& pull) {
    for (std::size_t p = 0; p < k; ++p)
      if (pull[p] > 0 && p != c && reach[c][p]) return true;
    return false;
  };
  auto add_edges = [&](std::size_t c,
                       const std::vector<std::uint64_t>& pull) {
    for (std::size_t p = 0; p < k; ++p) {
      if (pull[p] == 0 || p == c || reach[p][c]) continue;
      for (std::size_t i = 0; i < k; ++i) {
        if (!reach[i][p]) continue;
        for (std::size_t j = 0; j < k; ++j)
          if (reach[c][j]) reach[i][j] = true;
      }
    }
  };

  for (std::size_t s = 0; s < n; ++s) {
    // Bytes this statement pulls from each cluster if placed elsewhere.
    std::vector<std::uint64_t> pull(k, 0);
    for (const auto& [p, bytes] : preds[s]) pull[cluster[p]] += bytes;
    const std::uint64_t pull_total =
        std::accumulate(pull.begin(), pull.end(), std::uint64_t{0});

    std::size_t best = SIZE_MAX;
    double best_cost = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (creates_cycle(c, pull)) continue;
      // Placement cost: resulting load plus the communication we'd cut.
      const double cut = static_cast<double>(pull_total - pull[c]);
      const double cost = load[c] +
                          static_cast<double>(prog.stmts()[s].cycles) +
                          cycles_per_cut_byte * cut;
      if (best == SIZE_MAX || cost < best_cost) {
        best = c;
        best_cost = cost;
      }
    }
    if (best == SIZE_MAX) {
      // Every placement closes a cycle (can happen when all predecessors
      // are mutually unreachable peers): fall back to the heaviest
      // predecessor's cluster, which never adds a new edge set that was
      // not already checked against — and merge later if needed.
      std::uint64_t best_pull = 0;
      best = 0;
      for (std::size_t c = 0; c < k; ++c)
        if (pull[c] >= best_pull) {
          best_pull = pull[c];
          best = c;
        }
    }
    cluster[s] = best;
    load[best] += static_cast<double>(prog.stmts()[s].cycles);
    add_edges(best, pull);
  }

  return build_result(prog, std::move(cluster), k);
}

}  // namespace rw::maps
